//! Opt-in structured per-link event tracing.
//!
//! A [`TraceSink`] installed on a [`Fabric`](crate::Fabric) with
//! [`Fabric::set_trace`](crate::Fabric::set_trace) receives one
//! [`TraceRecord`] per observable event on the fabric's hot paths —
//! enqueue / ECN mark / trim / drop verdicts, wire transmissions, PFC
//! pause and resume, plus transport-level ACK receipt and timer firings
//! recorded by the hosts. With no sink installed every hook is a single
//! `Option` check, and tracing is pure observation: installing a sink
//! never changes simulation behavior, so golden outputs stay
//! byte-identical whether or not a trace is captured.
//!
//! Two concrete sinks ship: [`JsonlSink`] (one JSON object per line, the
//! whole event stream) and [`crate::pcapng::PcapngSink`] (wire
//! transmissions only, as a pcapng capture openable in Wireshark).
//! [`MultiSink`] fans one stream out to several sinks, and
//! [`MemorySink`] buffers records in memory for tests.

use crate::fabric::{NodeId, PortId};
use crate::packet::{Packet, PacketKind, Priority};
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// What happened at a trace point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Packet admitted to an output queue unchanged.
    Enqueue,
    /// Packet admitted with the ECN congestion-experienced bit set.
    Mark,
    /// Packet trimmed to a header and admitted at control priority.
    Trim,
    /// Packet rejected at a full queue.
    Drop,
    /// Packet dequeued and put on the wire.
    Tx,
    /// A PFC pause frame took effect at this port.
    Pause,
    /// A PFC resume frame took effect at this port.
    Resume,
    /// A transport processed an acknowledgment at its NIC.
    Ack,
    /// A transport timer fired at this host.
    Timer,
}

impl TraceEvent {
    /// Stable lowercase name used in the JSON-lines encoding.
    pub fn name(self) -> &'static str {
        match self {
            TraceEvent::Enqueue => "enqueue",
            TraceEvent::Mark => "mark",
            TraceEvent::Trim => "trim",
            TraceEvent::Drop => "drop",
            TraceEvent::Tx => "tx",
            TraceEvent::Pause => "pause",
            TraceEvent::Resume => "resume",
            TraceEvent::Ack => "ack",
            TraceEvent::Timer => "timer",
        }
    }
}

/// Packet fields captured in a trace record (a flat, owned projection of
/// [`Packet`], so records outlive the arena slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketMeta {
    /// Flow id (`u32::MAX` for flow-less control traffic).
    pub flow: u32,
    /// Source host node id.
    pub src: usize,
    /// Destination host node id.
    pub dst: usize,
    /// Sequence number (pull counter for `Pull`, 0 for `Hello`).
    pub seq: u32,
    /// Bytes on the wire.
    pub size: u32,
    /// Queueing priority class.
    pub prio: Priority,
    /// Packet kind, as its stable lowercase name.
    pub kind: &'static str,
    /// The payload was trimmed at an overloaded queue.
    pub trimmed: bool,
    /// ECN congestion-experienced bit.
    pub ce: bool,
}

impl PacketMeta {
    /// Capture the traced fields of `p`.
    pub fn of(p: &Packet) -> Self {
        let (kind, seq, trimmed) = match p.kind {
            PacketKind::Data { seq, trimmed } => ("data", seq, trimmed),
            PacketKind::Ack { seq } => ("ack", seq, false),
            PacketKind::Nack { seq } => ("nack", seq, false),
            PacketKind::Pull { count } => ("pull", count, false),
            PacketKind::BulkData { seq, .. } => ("bulk", seq, false),
            PacketKind::BulkNack { seq } => ("bulk_nack", seq, false),
            PacketKind::Hello => ("hello", 0, false),
        };
        PacketMeta {
            flow: p.flow,
            src: p.src,
            dst: p.dst,
            seq,
            size: p.size,
            prio: p.prio,
            kind,
            trimmed,
            ce: p.ecn_ce,
        }
    }
}

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation time, nanoseconds.
    pub t_ns: u64,
    /// Node where the event happened (the transmitting/queueing side for
    /// packet events; the paused port's owner for pause/resume; the host
    /// NIC for ack/timer).
    pub node: NodeId,
    /// Port within `node`.
    pub port: PortId,
    /// What happened.
    pub event: TraceEvent,
    /// The packet involved, if any (`None` for pause/resume/timer).
    pub packet: Option<PacketMeta>,
}

/// Receiver of trace records.
///
/// `Debug` is required so a fabric holding a sink stays debuggable.
pub trait TraceSink: fmt::Debug {
    /// Observe one event. Sinks must not panic on I/O trouble — stash
    /// the error and surface it from [`TraceSink::finish`].
    fn record(&mut self, rec: &TraceRecord);

    /// Flush and report any deferred error. Called once, at end of run.
    fn finish(&mut self) -> Result<(), String> {
        Ok(())
    }
}

/// In-memory sink: buffers every record. For tests and programmatic
/// inspection.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Every record observed, in order.
    pub records: Vec<TraceRecord>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, rec: &TraceRecord) {
        self.records.push(*rec);
    }
}

/// Fan one event stream out to several sinks.
#[derive(Debug, Default)]
pub struct MultiSink {
    sinks: Vec<Box<dyn TraceSink>>,
}

impl MultiSink {
    /// An empty fan-out.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sink; returns `self` for chaining.
    pub fn with(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// True when no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl TraceSink for MultiSink {
    fn record(&mut self, rec: &TraceRecord) {
        for s in &mut self.sinks {
            s.record(rec);
        }
    }

    fn finish(&mut self) -> Result<(), String> {
        for s in &mut self.sinks {
            s.finish()?;
        }
        Ok(())
    }
}

/// JSON-lines sink: one JSON object per record, stable key order, no
/// external dependencies. The full event stream (every [`TraceEvent`]).
pub struct JsonlSink<W: Write> {
    out: W,
    lines: u64,
    error: Option<String>,
}

impl<W: Write> fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("lines", &self.lines)
            .field("error", &self.error)
            .finish()
    }
}

impl JsonlSink<BufWriter<File>> {
    /// Create (truncate) `path` and write records to it, buffered.
    pub fn create(path: &Path) -> Result<Self, String> {
        let f = File::create(path).map_err(|e| format!("trace jsonl {}: {e}", path.display()))?;
        Ok(JsonlSink::new(BufWriter::new(f)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wrap any writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            lines: 0,
            error: None,
        }
    }

    /// Records written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Consume the sink and return the inner writer (tests).
    pub fn into_inner(self) -> W {
        self.out
    }
}

/// Render one record as its JSON-lines object (no trailing newline).
/// Key order is part of the format: `t`, `event`, `node`, `port`, then —
/// for packet events — `flow`, `src`, `dst`, `seq`, `size`, `prio`,
/// `kind`, `trimmed`, `ce`.
pub fn jsonl_line(rec: &TraceRecord) -> String {
    let mut s = format!(
        "{{\"t\":{},\"event\":\"{}\",\"node\":{},\"port\":{}",
        rec.t_ns,
        rec.event.name(),
        rec.node,
        rec.port
    );
    if let Some(m) = &rec.packet {
        use std::fmt::Write as _;
        let _ = write!(
            s,
            ",\"flow\":{},\"src\":{},\"dst\":{},\"seq\":{},\"size\":{},\"prio\":{},\
             \"kind\":\"{}\",\"trimmed\":{},\"ce\":{}",
            m.flow, m.src, m.dst, m.seq, m.size, m.prio as u8, m.kind, m.trimmed, m.ce
        );
    }
    s.push('}');
    s
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, rec: &TraceRecord) {
        if self.error.is_some() {
            return;
        }
        let line = jsonl_line(rec);
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(format!("trace jsonl write: {e}"));
            return;
        }
        self.lines += 1;
    }

    fn finish(&mut self) -> Result<(), String> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out
            .flush()
            .map_err(|e| format!("trace jsonl flush: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(event: TraceEvent, packet: Option<PacketMeta>) -> TraceRecord {
        TraceRecord {
            t_ns: 1700,
            node: 2,
            port: 1,
            event,
            packet,
        }
    }

    #[test]
    fn jsonl_packet_line_is_stable() {
        let p = Packet::data(7, 0, 3, 5, 1500);
        let line = jsonl_line(&rec(TraceEvent::Tx, Some(PacketMeta::of(&p))));
        assert_eq!(
            line,
            "{\"t\":1700,\"event\":\"tx\",\"node\":2,\"port\":1,\"flow\":7,\"src\":0,\
             \"dst\":3,\"seq\":5,\"size\":1500,\"prio\":1,\"kind\":\"data\",\
             \"trimmed\":false,\"ce\":false}"
        );
    }

    #[test]
    fn jsonl_portonly_line_omits_packet_keys() {
        let line = jsonl_line(&rec(TraceEvent::Pause, None));
        assert_eq!(
            line,
            "{\"t\":1700,\"event\":\"pause\",\"node\":2,\"port\":1}"
        );
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let mut sink = JsonlSink::new(Vec::new());
        let p = Packet::data(1, 0, 1, 0, 64);
        sink.record(&rec(TraceEvent::Enqueue, Some(PacketMeta::of(&p))));
        sink.record(&rec(TraceEvent::Timer, None));
        sink.finish().unwrap();
        assert_eq!(sink.lines(), 2);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 2);
        for l in text.lines() {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn multi_sink_fans_out() {
        let multi = MultiSink::new()
            .with(Box::new(MemorySink::new()))
            .with(Box::new(MemorySink::new()));
        assert_eq!(multi.len(), 2);
        let mut multi = multi;
        multi.record(&rec(TraceEvent::Drop, None));
        multi.finish().unwrap();
        let dbg = format!("{multi:?}");
        assert!(dbg.contains("MemorySink"));
    }

    #[test]
    fn meta_captures_kind_names() {
        let kinds = [
            (
                PacketKind::Data {
                    seq: 3,
                    trimmed: true,
                },
                "data",
                3,
                true,
            ),
            (PacketKind::Ack { seq: 9 }, "ack", 9, false),
            (PacketKind::Nack { seq: 2 }, "nack", 2, false),
            (PacketKind::Pull { count: 4 }, "pull", 4, false),
            (PacketKind::Hello, "hello", 0, false),
        ];
        for (kind, name, seq, trimmed) in kinds {
            let mut p = Packet::data(1, 0, 1, 0, 64);
            p.kind = kind;
            let m = PacketMeta::of(&p);
            assert_eq!((m.kind, m.seq, m.trimmed), (name, seq, trimmed));
        }
    }
}
