//! Self-contained pcapng writer and reader.
//!
//! The writer emits a little-endian pcapng file — one Section Header
//! Block, one Interface Description Block per fabric link (registered
//! lazily, in first-transmission order; interleaving IDBs with packet
//! blocks is legal pcapng), and one Enhanced Packet Block per wire
//! transmission. Timestamps are raw simulation nanoseconds
//! (`if_tsresol = 9`). Since the simulator carries no payload bytes,
//! each EPB holds a synthesized Ethernet + IPv4 + UDP frame whose
//! addresses encode the fabric node ids and whose UDP payload is a
//! fixed-layout metadata capsule (flow, seq, kind, priority, flags,
//! simulated wire size) — enough for Wireshark to dissect and for the
//! [`read`] function to reconstruct every traced field exactly.
//!
//! The reader validates structure as it parses (magic, version, block
//! length framing, interface references, timestamp resolution, monotone
//! timestamps) and returns the decoded packets; round-tripping through
//! [`PcapngWriter`] then [`read`] is lossless for every
//! [`PacketMeta`] field. [`PcapngSink`] adapts the writer to the
//! [`TraceSink`] interface, keeping only [`TraceEvent::Tx`] records —
//! a capture file shows what was on the wire, not queue bookkeeping.

use crate::fabric::{NodeId, PortId};
use crate::packet::Priority;
use crate::trace::{PacketMeta, TraceEvent, TraceRecord, TraceSink};
use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// pcapng Section Header Block type.
const SHB: u32 = 0x0A0D_0D0A;
/// pcapng Interface Description Block type.
const IDB: u32 = 0x0000_0001;
/// pcapng Enhanced Packet Block type.
const EPB: u32 = 0x0000_0006;
/// Little-endian byte-order magic.
const MAGIC: u32 = 0x1A2B_3C4D;
/// LINKTYPE_ETHERNET.
const LINKTYPE: u16 = 1;
/// UDP destination port marking synthesized opera-repro frames
/// (`0x4F50` = ASCII "OP").
pub const UDP_PORT: u16 = 0x4F50;
/// Magic prefix of the metadata capsule carried as UDP payload.
const CAPSULE_MAGIC: &[u8; 4] = b"OPRA";
/// Capsule layout version.
const CAPSULE_VERSION: u8 = 1;
/// Capsule length: magic + version/kind/prio/flags + 5 × u32.
const CAPSULE_LEN: usize = 4 + 4 + 20;
/// Synthesized frame length: Ethernet(14) + IPv4(20) + UDP(8) + capsule.
const FRAME_LEN: usize = 14 + 20 + 8 + CAPSULE_LEN;

fn kind_code(kind: &str) -> u8 {
    match kind {
        "data" => 1,
        "ack" => 2,
        "nack" => 3,
        "pull" => 4,
        "bulk" => 5,
        "bulk_nack" => 6,
        _ => 7, // hello
    }
}

fn kind_name(code: u8) -> &'static str {
    match code {
        1 => "data",
        2 => "ack",
        3 => "nack",
        4 => "pull",
        5 => "bulk",
        6 => "bulk_nack",
        _ => "hello",
    }
}

fn prio_of(code: u8) -> Priority {
    match code {
        0 => Priority::Control,
        1 => Priority::LowLatency,
        _ => Priority::Bulk,
    }
}

/// Append one pcapng option (code, padded value) to `body`.
fn push_option(body: &mut Vec<u8>, code: u16, value: &[u8]) {
    body.extend_from_slice(&code.to_le_bytes());
    body.extend_from_slice(&(value.len() as u16).to_le_bytes());
    body.extend_from_slice(value);
    while !body.len().is_multiple_of(4) {
        body.push(0);
    }
}

/// A locally-administered MAC encoding a fabric node id.
fn mac_of(node: usize) -> [u8; 6] {
    let n = node as u32;
    [
        0x02,
        0x00,
        (n >> 24) as u8,
        (n >> 16) as u8,
        (n >> 8) as u8,
        n as u8,
    ]
}

/// `10.a.b.c` encoding the low 24 bits of a fabric node id.
fn ip_of(node: usize) -> [u8; 4] {
    let n = node as u32;
    [10, (n >> 16) as u8, (n >> 8) as u8, n as u8]
}

/// RFC 1071 ones-complement checksum over `bytes` (even length).
fn ipv4_checksum(bytes: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    for pair in bytes.chunks(2) {
        sum += u32::from(u16::from_be_bytes([pair[0], pair[1]]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Build the synthesized Ethernet/IPv4/UDP frame for one transmission.
fn synth_frame(meta: &PacketMeta) -> Vec<u8> {
    let mut f = Vec::with_capacity(FRAME_LEN);
    // Ethernet II.
    f.extend_from_slice(&mac_of(meta.dst));
    f.extend_from_slice(&mac_of(meta.src));
    f.extend_from_slice(&0x0800u16.to_be_bytes());
    // IPv4 header (ECN CE in the low TOS bits, UDP, no fragmentation).
    let ip_total = (20 + 8 + CAPSULE_LEN) as u16;
    let mut ip = Vec::with_capacity(20);
    ip.push(0x45);
    ip.push(if meta.ce { 0x03 } else { 0x00 });
    ip.extend_from_slice(&ip_total.to_be_bytes());
    ip.extend_from_slice(&(meta.seq as u16).to_be_bytes());
    ip.extend_from_slice(&[0, 0]); // flags + fragment offset
    ip.push(64); // TTL
    ip.push(17); // UDP
    ip.extend_from_slice(&[0, 0]); // checksum placeholder
    ip.extend_from_slice(&ip_of(meta.src));
    ip.extend_from_slice(&ip_of(meta.dst));
    let ck = ipv4_checksum(&ip);
    ip[10..12].copy_from_slice(&ck.to_be_bytes());
    f.extend_from_slice(&ip);
    // UDP header (checksum 0 = unused, legal for UDP/IPv4).
    f.extend_from_slice(&(meta.flow as u16).to_be_bytes());
    f.extend_from_slice(&UDP_PORT.to_be_bytes());
    f.extend_from_slice(&((8 + CAPSULE_LEN) as u16).to_be_bytes());
    f.extend_from_slice(&[0, 0]);
    // Metadata capsule.
    f.extend_from_slice(CAPSULE_MAGIC);
    f.push(CAPSULE_VERSION);
    f.push(kind_code(meta.kind));
    f.push(meta.prio as u8);
    f.push(u8::from(meta.ce) | (u8::from(meta.trimmed) << 1));
    f.extend_from_slice(&meta.flow.to_le_bytes());
    f.extend_from_slice(&meta.seq.to_le_bytes());
    f.extend_from_slice(&meta.size.to_le_bytes());
    f.extend_from_slice(&(meta.src as u32).to_le_bytes());
    f.extend_from_slice(&(meta.dst as u32).to_le_bytes());
    debug_assert_eq!(f.len(), FRAME_LEN);
    f
}

/// Streaming pcapng writer: one interface per fabric link, one enhanced
/// packet block per transmission.
pub struct PcapngWriter<W: Write> {
    out: W,
    ifaces: Vec<(NodeId, PortId)>,
    by_link: HashMap<(NodeId, PortId), u32>,
    packets: u64,
}

impl<W: Write> fmt::Debug for PcapngWriter<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PcapngWriter")
            .field("ifaces", &self.ifaces.len())
            .field("packets", &self.packets)
            .finish()
    }
}

impl PcapngWriter<BufWriter<File>> {
    /// Create (truncate) `path` and start a section there.
    pub fn create(path: &Path) -> Result<Self, String> {
        let f = File::create(path).map_err(|e| format!("pcapng {}: {e}", path.display()))?;
        PcapngWriter::new(BufWriter::new(f)).map_err(|e| format!("pcapng {}: {e}", path.display()))
    }
}

impl<W: Write> PcapngWriter<W> {
    /// Wrap `out` and write the Section Header Block.
    pub fn new(out: W) -> io::Result<Self> {
        let mut w = PcapngWriter {
            out,
            ifaces: Vec::new(),
            by_link: HashMap::new(),
            packets: 0,
        };
        let mut body = Vec::new();
        body.extend_from_slice(&MAGIC.to_le_bytes());
        body.extend_from_slice(&1u16.to_le_bytes()); // major
        body.extend_from_slice(&0u16.to_le_bytes()); // minor
        body.extend_from_slice(&u64::MAX.to_le_bytes()); // section length unknown
        push_option(&mut body, 4, b"opera-repro netsim"); // shb_userappl
        push_option(&mut body, 0, b""); // opt_endofopt
        w.block(SHB, &body)?;
        Ok(w)
    }

    fn block(&mut self, block_type: u32, body: &[u8]) -> io::Result<()> {
        debug_assert_eq!(body.len() % 4, 0);
        let total = (body.len() + 12) as u32;
        self.out.write_all(&block_type.to_le_bytes())?;
        self.out.write_all(&total.to_le_bytes())?;
        self.out.write_all(body)?;
        self.out.write_all(&total.to_le_bytes())?;
        Ok(())
    }

    /// Interface id for a link, writing its Interface Description Block
    /// on first sight. Call directly to register a link that may carry
    /// no packets (it still appears in the capture).
    pub fn register_link(&mut self, node: NodeId, port: PortId) -> io::Result<u32> {
        if let Some(&id) = self.by_link.get(&(node, port)) {
            return Ok(id);
        }
        let id = self.ifaces.len() as u32;
        self.ifaces.push((node, port));
        self.by_link.insert((node, port), id);
        let mut body = Vec::new();
        body.extend_from_slice(&LINKTYPE.to_le_bytes());
        body.extend_from_slice(&0u16.to_le_bytes()); // reserved
        body.extend_from_slice(&0u32.to_le_bytes()); // snaplen: unlimited
        push_option(&mut body, 2, format!("n{node}.p{port}").as_bytes()); // if_name
        push_option(&mut body, 9, &[9]); // if_tsresol: nanoseconds
        push_option(&mut body, 0, b"");
        self.block(IDB, &body)?;
        Ok(id)
    }

    /// Write one transmission as an Enhanced Packet Block on the
    /// interface of link `(node, port)` at `t_ns` simulation time.
    pub fn packet(
        &mut self,
        t_ns: u64,
        node: NodeId,
        port: PortId,
        meta: &PacketMeta,
    ) -> io::Result<()> {
        let iface = self.register_link(node, port)?;
        let frame = synth_frame(meta);
        let mut body = Vec::with_capacity(20 + FRAME_LEN + 4);
        body.extend_from_slice(&iface.to_le_bytes());
        body.extend_from_slice(&((t_ns >> 32) as u32).to_le_bytes());
        body.extend_from_slice(&(t_ns as u32).to_le_bytes());
        body.extend_from_slice(&(frame.len() as u32).to_le_bytes()); // captured
        body.extend_from_slice(&meta.size.to_le_bytes()); // original
        body.extend_from_slice(&frame);
        while !body.len().is_multiple_of(4) {
            body.push(0);
        }
        self.block(EPB, &body)?;
        self.packets += 1;
        Ok(())
    }

    /// Packets written so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Flush the underlying writer.
    pub fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Consume the writer and return the inner writer (tests).
    pub fn into_inner(self) -> W {
        self.out
    }
}

/// [`TraceSink`] adapter over [`PcapngWriter`]: records only
/// [`TraceEvent::Tx`] (what was actually on the wire), deferring I/O
/// errors to [`TraceSink::finish`].
pub struct PcapngSink<W: Write> {
    w: PcapngWriter<W>,
    error: Option<String>,
}

impl<W: Write> fmt::Debug for PcapngSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PcapngSink")
            .field("writer", &self.w)
            .field("error", &self.error)
            .finish()
    }
}

impl PcapngSink<BufWriter<File>> {
    /// Create (truncate) `path` and capture transmissions to it.
    pub fn create(path: &Path) -> Result<Self, String> {
        Ok(PcapngSink::new(PcapngWriter::create(path)?))
    }
}

impl<W: Write> PcapngSink<W> {
    /// Wrap an open writer.
    pub fn new(w: PcapngWriter<W>) -> Self {
        PcapngSink { w, error: None }
    }
}

impl<W: Write> TraceSink for PcapngSink<W> {
    fn record(&mut self, rec: &TraceRecord) {
        if self.error.is_some() || rec.event != TraceEvent::Tx {
            return;
        }
        let Some(meta) = &rec.packet else { return };
        if let Err(e) = self.w.packet(rec.t_ns, rec.node, rec.port, meta) {
            self.error = Some(format!("pcapng write: {e}"));
        }
    }

    fn finish(&mut self) -> Result<(), String> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.w.finish().map_err(|e| format!("pcapng flush: {e}"))
    }
}

/// One decoded Enhanced Packet Block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapngPacket {
    /// Interface (link) index within the capture.
    pub iface: u32,
    /// Timestamp, simulation nanoseconds.
    pub t_ns: u64,
    /// The traced packet fields decoded from the metadata capsule.
    pub meta: PacketMeta,
}

/// A parsed capture.
#[derive(Debug, Clone, Default)]
pub struct PcapngFile {
    /// Links, in interface-id order: `(node, port, if_name)`.
    pub ifaces: Vec<(NodeId, PortId, String)>,
    /// Every packet, in file order.
    pub packets: Vec<PcapngPacket>,
}

impl PcapngFile {
    /// Packet count per interface id (zero-packet links included).
    pub fn counts_per_link(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.ifaces.len()];
        for p in &self.packets {
            counts[p.iface as usize] += 1;
        }
        counts
    }
}

fn le_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Parse `if_name` of the form `n<node>.p<port>`.
fn parse_if_name(name: &str) -> Option<(NodeId, PortId)> {
    let rest = name.strip_prefix('n')?;
    let (node, port) = rest.split_once(".p")?;
    Some((node.parse().ok()?, port.parse().ok()?))
}

/// Parse and validate a capture produced by [`PcapngWriter`].
///
/// Structural validation is strict and every failure is a named error:
/// byte-order magic and version, block length framing (leading ==
/// trailing, multiple of 4, in bounds), `if_tsresol = 9` on every
/// interface, EPB interface references in range, capsule magic/version,
/// and globally monotone (non-decreasing) timestamps — the writer emits
/// events in simulation order, so any regression means corruption.
pub fn read(bytes: &[u8]) -> Result<PcapngFile, String> {
    let mut file = PcapngFile::default();
    let mut off = 0usize;
    let mut seen_shb = false;
    let mut last_ts = 0u64;
    while off < bytes.len() {
        if bytes.len() - off < 12 {
            return Err(format!("pcapng: trailing garbage at byte {off}"));
        }
        let btype = le_u32(&bytes[off..]);
        let total = le_u32(&bytes[off + 4..]) as usize;
        if total < 12 || !total.is_multiple_of(4) {
            return Err(format!("pcapng: bad block length {total} at byte {off}"));
        }
        if off + total > bytes.len() {
            return Err(format!(
                "pcapng: block at byte {off} overruns file ({total} > {} left)",
                bytes.len() - off
            ));
        }
        let trailer = le_u32(&bytes[off + total - 4..]) as usize;
        if trailer != total {
            return Err(format!(
                "pcapng: length trailer mismatch at byte {off}: {total} vs {trailer}"
            ));
        }
        let body = &bytes[off + 8..off + total - 4];
        if !seen_shb {
            if btype != SHB {
                return Err(format!("pcapng: first block type {btype:#x}, want SHB"));
            }
        } else if btype == SHB {
            return Err("pcapng: multiple sections unsupported".into());
        }
        match btype {
            SHB => {
                if body.len() < 16 {
                    return Err("pcapng: SHB too short".into());
                }
                let magic = le_u32(body);
                if magic == MAGIC.swap_bytes() {
                    return Err("pcapng: big-endian capture unsupported".into());
                }
                if magic != MAGIC {
                    return Err(format!("pcapng: bad byte-order magic {magic:#x}"));
                }
                let (maj, min) = (le_u16(&body[4..]), le_u16(&body[6..]));
                if (maj, min) != (1, 0) {
                    return Err(format!("pcapng: unsupported version {maj}.{min}"));
                }
                seen_shb = true;
            }
            IDB => {
                if body.len() < 8 {
                    return Err("pcapng: IDB too short".into());
                }
                if le_u16(body) != LINKTYPE {
                    return Err(format!("pcapng: linktype {}, want Ethernet", le_u16(body)));
                }
                let (name, tsresol) = parse_idb_options(&body[8..])?;
                if tsresol != Some(9) {
                    return Err(format!(
                        "pcapng: interface {name:?} if_tsresol {tsresol:?}, want 9 (ns)"
                    ));
                }
                let (node, port) = parse_if_name(&name)
                    .ok_or_else(|| format!("pcapng: unparseable if_name {name:?}"))?;
                file.ifaces.push((node, port, name));
            }
            EPB => {
                if body.len() < 20 {
                    return Err("pcapng: EPB too short".into());
                }
                let iface = le_u32(body);
                if iface as usize >= file.ifaces.len() {
                    return Err(format!(
                        "pcapng: EPB references interface {iface} of {}",
                        file.ifaces.len()
                    ));
                }
                let t_ns = (u64::from(le_u32(&body[4..])) << 32) | u64::from(le_u32(&body[8..]));
                if t_ns < last_ts {
                    return Err(format!(
                        "pcapng: timestamps not monotone ({t_ns} after {last_ts})"
                    ));
                }
                last_ts = t_ns;
                let caplen = le_u32(&body[12..]) as usize;
                let origlen = le_u32(&body[16..]);
                if caplen != FRAME_LEN || body.len() < 20 + caplen {
                    return Err(format!(
                        "pcapng: captured length {caplen}, want {FRAME_LEN}"
                    ));
                }
                let meta = decode_frame(&body[20..20 + caplen], origlen)?;
                file.packets.push(PcapngPacket { iface, t_ns, meta });
            }
            other => {
                return Err(format!("pcapng: unexpected block type {other:#x}"));
            }
        }
        off += total;
    }
    if !seen_shb {
        return Err("pcapng: empty file (no section header)".into());
    }
    Ok(file)
}

/// Extract `(if_name, if_tsresol)` from IDB options.
fn parse_idb_options(mut opts: &[u8]) -> Result<(String, Option<u8>), String> {
    let mut name = String::new();
    let mut tsresol = None;
    while opts.len() >= 4 {
        let code = le_u16(opts);
        let len = le_u16(&opts[2..]) as usize;
        let padded = len.div_ceil(4) * 4;
        if opts.len() < 4 + padded {
            return Err("pcapng: IDB option overruns block".into());
        }
        let val = &opts[4..4 + len];
        match code {
            0 => return Ok((name, tsresol)),
            2 => name = String::from_utf8_lossy(val).into_owned(),
            9 if len == 1 => tsresol = Some(val[0]),
            _ => {}
        }
        opts = &opts[4 + padded..];
    }
    Ok((name, tsresol))
}

/// Decode the synthesized frame back into the traced packet fields.
fn decode_frame(frame: &[u8], origlen: u32) -> Result<PacketMeta, String> {
    if frame.len() != FRAME_LEN {
        return Err(format!("pcapng: frame length {}", frame.len()));
    }
    let capsule = &frame[42..];
    if &capsule[0..4] != CAPSULE_MAGIC {
        return Err("pcapng: missing OPRA capsule magic".into());
    }
    if capsule[4] != CAPSULE_VERSION {
        return Err(format!("pcapng: capsule version {}", capsule[4]));
    }
    let flags = capsule[7];
    let meta = PacketMeta {
        kind: kind_name(capsule[5]),
        prio: prio_of(capsule[6]),
        ce: flags & 1 != 0,
        trimmed: flags & 2 != 0,
        flow: le_u32(&capsule[8..]),
        seq: le_u32(&capsule[12..]),
        size: le_u32(&capsule[16..]),
        src: le_u32(&capsule[20..]) as usize,
        dst: le_u32(&capsule[24..]) as usize,
    };
    if meta.size != origlen {
        return Err(format!(
            "pcapng: capsule size {} disagrees with EPB original length {origlen}",
            meta.size
        ));
    }
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use crate::trace::PacketMeta;

    fn meta(flow: u32, seq: u32) -> PacketMeta {
        PacketMeta::of(&Packet::data(flow, 3, 9, seq, 1500))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let mut w = PcapngWriter::new(Vec::new()).unwrap();
        w.register_link(7, 0).unwrap(); // zero-packet link
        let boundary = (1u64 << 32) - 2;
        for (i, t) in [boundary, boundary + 1, boundary + 3].iter().enumerate() {
            w.packet(*t, 1, i % 2, &meta(5, i as u32)).unwrap();
        }
        w.finish().unwrap();
        let bytes = w.into_inner();
        let f = read(&bytes).unwrap();
        assert_eq!(f.ifaces.len(), 3);
        assert_eq!(f.ifaces[0], (7, 0, "n7.p0".into()));
        assert_eq!(f.counts_per_link(), vec![0, 2, 1]);
        assert_eq!(f.packets.len(), 3);
        assert_eq!(f.packets[0].t_ns, boundary);
        assert_eq!(f.packets[2].t_ns, boundary + 3);
        for (i, p) in f.packets.iter().enumerate() {
            assert_eq!(p.meta, meta(5, i as u32));
        }
    }

    #[test]
    fn reader_rejects_truncation_and_corruption() {
        let mut w = PcapngWriter::new(Vec::new()).unwrap();
        w.packet(100, 0, 0, &meta(1, 0)).unwrap();
        let bytes = w.into_inner();
        // Truncation mid-block.
        let err = read(&bytes[..bytes.len() - 5]).unwrap_err();
        assert!(
            err.contains("overruns") || err.contains("trailing"),
            "{err}"
        );
        // Flip a length trailer.
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 1] ^= 0xFF;
        assert!(read(&bad).unwrap_err().contains("trailer"));
        // Empty input.
        assert!(read(&[]).unwrap_err().contains("empty"));
    }

    #[test]
    fn reader_rejects_nonmonotone_timestamps() {
        let mut w = PcapngWriter::new(Vec::new()).unwrap();
        w.packet(200, 0, 0, &meta(1, 0)).unwrap();
        w.packet(100, 0, 0, &meta(1, 1)).unwrap();
        let err = read(&w.into_inner()).unwrap_err();
        assert!(err.contains("monotone"), "{err}");
    }

    #[test]
    fn sink_keeps_only_tx_records() {
        let mut sink = PcapngSink::new(PcapngWriter::new(Vec::new()).unwrap());
        let p = PacketMeta::of(&Packet::data(1, 0, 1, 0, 64));
        for ev in [TraceEvent::Enqueue, TraceEvent::Tx, TraceEvent::Drop] {
            sink.record(&TraceRecord {
                t_ns: 10,
                node: 0,
                port: 0,
                event: ev,
                packet: Some(p),
            });
        }
        sink.finish().unwrap();
        let f = read(&sink.w.into_inner()).unwrap();
        assert_eq!(f.packets.len(), 1);
    }

    #[test]
    fn ipv4_checksum_verifies() {
        // The checksum of a header including its checksum field is 0.
        let mut w = PcapngWriter::new(Vec::new()).unwrap();
        w.packet(1, 0, 0, &meta(1, 0)).unwrap();
        let f = w.into_inner();
        // Find the EPB frame: last block; IPv4 header at frame offset 14.
        let epb_body_start = f.len() - (12 + 20 + FRAME_LEN.div_ceil(4) * 4) + 8;
        let ip = &f[epb_body_start + 20 + 14..epb_body_start + 20 + 34];
        assert_eq!(ipv4_checksum(ip), 0);
    }
}
