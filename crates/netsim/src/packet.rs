//! The packet model.
//!
//! Packets carry semantic header fields only — no payload bytes exist in
//! the simulation; all timing is computed from the declared wire size.
//! Sizes follow the paper: 1500-byte MTU data packets and 64-byte headers
//! (control packets and trimmed data headers).

use crate::flows::FlowId;

/// Full-size data packet on the wire, bytes (the paper's MTU).
pub const MTU: u32 = 1500;
/// Header-only packet size, bytes (control packets, trimmed data).
pub const HEADER_SIZE: u32 = 64;

/// Strict priority levels at every output port, highest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Control traffic and trimmed headers: ACK/NACK/PULL, hellos.
    Control = 0,
    /// Low-latency (NDP) data.
    LowLatency = 1,
    /// Bulk (RotorLB) data.
    Bulk = 2,
}

/// Number of priority levels.
pub const PRIORITY_LEVELS: usize = 3;

/// What a packet *is*, from the transport protocols' perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// NDP data segment `seq` of its flow. `trimmed` means the payload was
    /// cut at an overloaded queue and only the header is in flight.
    Data {
        /// Sequence number of this segment within its flow.
        seq: u32,
        /// The payload was cut at an overloaded queue; only the header flies.
        trimmed: bool,
    },
    /// NDP acknowledgment of segment `seq`.
    Ack {
        /// Acknowledged segment sequence number.
        seq: u32,
    },
    /// NDP negative acknowledgment of segment `seq` (generated from a
    /// trimmed header at the receiver).
    Nack {
        /// Negatively acknowledged segment sequence number.
        seq: u32,
    },
    /// NDP pull: receiver-paced credit for one more data packet.
    Pull {
        /// Cumulative pull counter pacing the sender.
        count: u32,
    },
    /// RotorLB bulk data segment. `relay` is `Some(final_rack)` while the
    /// packet is on the first hop of a two-hop Valiant path.
    BulkData {
        /// Sequence number of this bulk segment within its flow.
        seq: u32,
        /// `Some(final_rack)` on the first hop of a two-hop Valiant path.
        relay: Option<u32>,
    },
    /// RotorLB bulk NACK: ToR could not forward the segment within its
    /// transmission window (§4.2.2); sender must requeue it.
    BulkNack {
        /// Sequence number the sender must requeue.
        seq: u32,
    },
    /// Fault-detection hello exchanged when a new circuit is established
    /// (§3.6.2).
    Hello,
}

/// A slab handle to a [`Packet`] parked in a [`PacketArena`].
///
/// Four bytes instead of the ~40-byte packet itself: port queues store
/// these, so queue churn moves `u32`s and the packet bodies stay put in
/// the arena until transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketRef(u32);

/// Slab storage for queued packets with a free list.
///
/// The hot path of the simulation parks every enqueued packet here and
/// reclaims the slot at dequeue, so steady-state forwarding performs no
/// per-packet allocation: slots are recycled through the free list and
/// the slab only grows to the high-water mark of simultaneously queued
/// packets (see [`PacketArena::peak_live`], recorded by `bench_record`).
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Packet>,
    free: Vec<u32>,
    live: usize,
    peak: usize,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Park a packet, returning its slab handle.
    pub fn alloc(&mut self, packet: Packet) -> PacketRef {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = packet;
                PacketRef(i)
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("over 4G packets queued");
                self.slots.push(packet);
                PacketRef(i)
            }
        }
    }

    /// Read a parked packet.
    pub fn get(&self, r: PacketRef) -> &Packet {
        &self.slots[r.0 as usize]
    }

    /// Remove a parked packet, recycling its slot.
    pub fn take(&mut self, r: PacketRef) -> Packet {
        debug_assert!(!self.free.contains(&r.0), "double take of {r:?}");
        self.live -= 1;
        self.free.push(r.0);
        self.slots[r.0 as usize]
    }

    /// Packets currently parked.
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of simultaneously parked packets.
    pub fn peak_live(&self) -> usize {
        self.peak
    }
}

/// A simulated packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Flow this packet belongs to (`FlowId::MAX` for control traffic that
    /// has no flow, e.g. hellos).
    pub flow: FlowId,
    /// Source host (node id).
    pub src: usize,
    /// Destination host (node id).
    pub dst: usize,
    /// Bytes on the wire (payload + header).
    pub size: u32,
    /// Queueing priority class.
    pub prio: Priority,
    /// Transport semantics.
    pub kind: PacketKind,
    /// ToR-to-ToR hops taken so far (for path-length accounting and loop
    /// suppression).
    pub hops: u8,
    /// ECN congestion-experienced: set by an
    /// [`EcnMark`](crate::policy::EcnMark) switch on enqueue, echoed by
    /// DCTCP receivers on the matching ACK.
    pub ecn_ce: bool,
}

impl Packet {
    /// A full-size NDP data packet (size may be less than MTU for the tail
    /// segment of a flow).
    pub fn data(flow: FlowId, src: usize, dst: usize, seq: u32, size: u32) -> Self {
        Packet {
            flow,
            src,
            dst,
            size,
            prio: Priority::LowLatency,
            kind: PacketKind::Data {
                seq,
                trimmed: false,
            },
            hops: 0,
            ecn_ce: false,
        }
    }

    /// A bulk (RotorLB) data packet.
    pub fn bulk(flow: FlowId, src: usize, dst: usize, seq: u32, size: u32) -> Self {
        Packet {
            flow,
            src,
            dst,
            size,
            prio: Priority::Bulk,
            kind: PacketKind::BulkData { seq, relay: None },
            hops: 0,
            ecn_ce: false,
        }
    }

    /// A 64-byte control packet of the given kind from `src` to `dst`.
    pub fn control(flow: FlowId, src: usize, dst: usize, kind: PacketKind) -> Self {
        Packet {
            flow,
            src,
            dst,
            size: HEADER_SIZE,
            prio: Priority::Control,
            kind,
            hops: 0,
            ecn_ce: false,
        }
    }

    /// Payload bytes this packet carries (0 for control/trimmed packets).
    pub fn payload(&self) -> u32 {
        match self.kind {
            PacketKind::Data { trimmed: false, .. } | PacketKind::BulkData { .. } => {
                self.size.saturating_sub(HEADER_SIZE)
            }
            _ => 0,
        }
    }

    /// Trim this packet to its header (NDP §4.2.1): the payload is
    /// discarded, the header continues at control priority.
    ///
    /// # Panics
    /// Panics when called on a non-data packet — trimming control traffic
    /// is a logic error.
    pub fn trim(mut self) -> Packet {
        match self.kind {
            PacketKind::Data { seq, .. } => {
                self.kind = PacketKind::Data { seq, trimmed: true };
                self.size = HEADER_SIZE;
                self.prio = Priority::Control;
                self
            }
            _ => panic!("trim() on non-NDP-data packet {:?}", self.kind),
        }
    }

    /// True for data packets whose payload has been trimmed away.
    pub fn is_trimmed(&self) -> bool {
        matches!(self.kind, PacketKind::Data { trimmed: true, .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_packet_payload() {
        let p = Packet::data(1, 0, 5, 3, MTU);
        assert_eq!(p.payload(), MTU - HEADER_SIZE);
        assert_eq!(p.prio, Priority::LowLatency);
        assert!(!p.is_trimmed());
    }

    #[test]
    fn trim_moves_to_control() {
        let p = Packet::data(1, 0, 5, 3, MTU).trim();
        assert!(p.is_trimmed());
        assert_eq!(p.size, HEADER_SIZE);
        assert_eq!(p.prio, Priority::Control);
        assert_eq!(p.payload(), 0);
        match p.kind {
            PacketKind::Data { seq, trimmed } => {
                assert_eq!(seq, 3);
                assert!(trimmed);
            }
            _ => panic!("kind changed"),
        }
    }

    #[test]
    #[should_panic(expected = "non-NDP-data")]
    fn trim_control_panics() {
        Packet::control(0, 0, 1, PacketKind::Hello).trim();
    }

    #[test]
    fn control_sizes() {
        let p = Packet::control(2, 1, 4, PacketKind::Pull { count: 7 });
        assert_eq!(p.size, HEADER_SIZE);
        assert_eq!(p.prio, Priority::Control);
        assert_eq!(p.payload(), 0);
    }

    #[test]
    fn priority_order() {
        assert!(Priority::Control < Priority::LowLatency);
        assert!(Priority::LowLatency < Priority::Bulk);
    }

    #[test]
    fn arena_recycles_slots() {
        let mut arena = PacketArena::new();
        let a = arena.alloc(Packet::data(1, 0, 1, 0, MTU));
        let b = arena.alloc(Packet::data(2, 0, 1, 1, MTU));
        assert_eq!(arena.live(), 2);
        assert_eq!(arena.get(a).flow, 1);
        assert_eq!(arena.take(a).flow, 1);
        assert_eq!(arena.live(), 1);
        // The freed slot is reused: no slab growth.
        let c = arena.alloc(Packet::data(3, 0, 1, 2, MTU));
        assert_eq!(arena.slots.len(), 2);
        assert_eq!(arena.get(c).flow, 3);
        assert_eq!(arena.take(b).flow, 2);
        assert_eq!(arena.take(c).flow, 3);
        assert_eq!(arena.live(), 0);
        assert_eq!(arena.peak_live(), 2);
    }
}
