//! Nodes, ports, priority queues, links, and wiring.
//!
//! Every node (host NIC or switch) owns a set of output ports. A port has
//! one strict-priority queue per [`Priority`] level, a link specification
//! (rate + propagation delay), and a peer — the `(node, port)` at the other
//! end of the cable. Peers can be *rewired at run time*, which is how
//! circuit-switch reconfiguration is modeled: a rotor switch is not a
//! simulated node, it is a time-varying wiring of ToR uplink ports.
//!
//! Transmission is store-and-forward: dequeuing a packet occupies the port
//! for `size/rate` (serialization), and the packet arrives at the peer
//! after serialization + propagation. Packets dequeued mid-slice keep the
//! peer captured at dequeue time, so an in-flight packet is unaffected by a
//! later rewire — matching the physical behavior the guard bands of §3.5
//! protect.
//!
//! What happens when a packet meets a full (or filling) queue is the
//! port's [`SwitchPolicy`] — trim, drop, mark, or pause upstream; see
//! [`crate::policy`].

use crate::packet::{Packet, PacketArena, PacketRef, Priority, PRIORITY_LEVELS};
use crate::policy::{QueueView, SwitchPolicyKind, Verdict};
use crate::trace::{PacketMeta, TraceEvent, TraceRecord, TraceSink};
use simkit::engine::EventContext;
use simkit::time::serialization_ns;
use simkit::SimTime;
use std::collections::VecDeque;

/// Node index within a fabric.
pub type NodeId = usize;
/// Port index within a node.
pub type PortId = usize;

/// Per-port queue capacities and queueing policy.
///
/// Built with [`QueueConfig::builder`]; the default matches the paper's
/// Opera configuration — 12 KB data queues with an equal-sized header
/// queue (§4.2.1) and NDP trimming.
#[derive(Debug, Clone, Copy)]
pub struct QueueConfig {
    /// Capacity in bytes for each priority level's queue.
    pub cap_bytes: [u64; PRIORITY_LEVELS],
    /// The queueing decision at this port (trim / drop / mark / pause).
    pub policy: SwitchPolicyKind,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig::builder().build()
    }
}

impl QueueConfig {
    /// Start from the paper's defaults: 12 KB header queue, 12 KB
    /// low-latency data queue (8 full packets), 24 KB bulk staging queue,
    /// NDP trimming.
    pub fn builder() -> QueueConfigBuilder {
        QueueConfigBuilder {
            cfg: QueueConfig {
                cap_bytes: [12_000, 12_000, 24_000],
                policy: SwitchPolicyKind::default(),
            },
        }
    }
}

/// Builder for [`QueueConfig`] — capacities compose with a
/// [`SwitchPolicy`](crate::policy::SwitchPolicy) implementation.
#[derive(Debug, Clone, Copy)]
pub struct QueueConfigBuilder {
    cfg: QueueConfig,
}

impl QueueConfigBuilder {
    /// Set all three per-priority capacities, bytes.
    pub fn caps(mut self, cap_bytes: [u64; PRIORITY_LEVELS]) -> Self {
        self.cfg.cap_bytes = cap_bytes;
        self
    }

    /// Set one priority level's capacity, bytes.
    pub fn cap(mut self, prio: Priority, bytes: u64) -> Self {
        self.cfg.cap_bytes[prio as usize] = bytes;
        self
    }

    /// Effectively unbounded lossless queues (host NIC staging,
    /// debugging): every capacity maxed, plain drop-tail (which can then
    /// never fire).
    pub fn unbounded(mut self) -> Self {
        self.cfg.cap_bytes = [u64::MAX; PRIORITY_LEVELS];
        self.cfg.policy = SwitchPolicyKind::DropTail(crate::policy::DropTail);
        self
    }

    /// Select the queueing policy.
    pub fn policy(mut self, policy: impl Into<SwitchPolicyKind>) -> Self {
        self.cfg.policy = policy.into();
        self
    }

    /// Finish the config.
    pub fn build(self) -> QueueConfig {
        self.cfg
    }
}

/// Link properties of a port.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// Line rate in Gb/s.
    pub gbps: f64,
    /// One-way propagation delay.
    pub delay: SimTime,
}

impl LinkSpec {
    /// The paper's defaults: 10 Gb/s, 500 ns (≈100 m fiber).
    pub fn paper_default() -> Self {
        LinkSpec {
            gbps: 10.0,
            delay: SimTime::from_ns(500),
        }
    }

    /// Serialization time of `bytes` on this link.
    pub fn serialize(&self, bytes: u32) -> SimTime {
        SimTime::from_ns(serialization_ns(bytes as u64, self.gbps))
    }
}

/// Result of [`Fabric::send`], so callers can react to loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Packet queued (or already transmitting), possibly ECN-marked.
    Queued,
    /// Data queue was full; packet trimmed to a header and queued at
    /// control priority.
    Trimmed,
    /// Dropped: queue full (and trimming not applicable/also full).
    Dropped,
}

#[derive(Debug)]
struct Port {
    /// Slab handles into [`Fabric::arena`]; the packet bodies stay put
    /// until transmission, so queue churn moves 4-byte refs.
    queues: [VecDeque<PacketRef>; PRIORITY_LEVELS],
    queued_bytes: [u64; PRIORITY_LEVELS],
    cfg: QueueConfig,
    link: LinkSpec,
    peer: Option<(NodeId, PortId)>,
    busy: bool,
    failed: bool,
    /// A downstream peer sent a PFC pause frame: no dequeues until resume.
    paused: bool,
    /// This port's queues crossed its policy's pause threshold and count
    /// toward the owning node's congested-port total.
    congesting: bool,
}

impl Port {
    fn new(cfg: QueueConfig, link: LinkSpec) -> Self {
        Port {
            queues: Default::default(),
            queued_bytes: [0; PRIORITY_LEVELS],
            cfg,
            link,
            peer: None,
            busy: false,
            failed: false,
            paused: false,
            congesting: false,
        }
    }

    fn total_queued(&self) -> u64 {
        self.queued_bytes.iter().sum()
    }

    fn view(&self) -> QueueView<'_> {
        QueueView {
            queued_bytes: &self.queued_bytes,
            cap_bytes: &self.cfg.cap_bytes,
        }
    }
}

/// Aggregate event counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct FabricCounters {
    /// Packets enqueued successfully.
    pub queued: u64,
    /// Low-latency data packets trimmed to headers.
    pub trimmed: u64,
    /// Packets dropped at full queues.
    pub dropped: u64,
    /// Packets transmitted into an unconnected ("dark") port and lost.
    pub dark_drops: u64,
    /// Packets lost on failed links.
    pub failed_drops: u64,
    /// Packets fully delivered to a peer node.
    pub delivered: u64,
    /// Data packets ECN-marked at enqueue ([`crate::policy::EcnMark`]).
    pub ecn_marked: u64,
    /// PFC pause frames sent to upstream peers ([`crate::policy::Pfc`]).
    pub pause_frames: u64,
}

/// Events routed through the simulator for the fabric/logic pair.
#[derive(Debug, Clone, Copy)]
pub enum NetEvent {
    /// Packet fully received at `node` via its `port`.
    Arrive {
        /// Receiving node.
        node: NodeId,
        /// Ingress port at the receiving node.
        port: PortId,
        /// The packet.
        packet: Packet,
    },
    /// `node`'s `port` finished serializing; it may start the next packet.
    PortFree {
        /// Transmitting node.
        node: NodeId,
        /// The now-idle port.
        port: PortId,
    },
    /// A PFC pause or resume frame reached `node`'s `port` (sent by the
    /// port's downstream peer; modeled out-of-band so pause frames cannot
    /// be stuck behind the very queues they exist to relieve).
    PauseChange {
        /// Node whose port is being paused/resumed.
        node: NodeId,
        /// The paused/resumed port.
        port: PortId,
        /// True to pause, false to resume.
        paused: bool,
    },
    /// Logic-defined timer.
    Timer {
        /// Opaque token chosen by the logic when scheduling.
        token: u64,
    },
}

/// The network fabric: all nodes, ports, and wiring.
#[derive(Debug, Default)]
pub struct Fabric {
    nodes: Vec<Vec<Port>>,
    /// Per-node count of ports currently above their pause threshold;
    /// pause frames go out on 0→1, resumes on 1→0.
    congested: Vec<u32>,
    /// Slab backing every queued packet; slots recycle through a free
    /// list, so steady-state forwarding allocates nothing per packet.
    arena: PacketArena,
    /// Aggregate counters.
    pub counters: FabricCounters,
    /// Random per-packet loss: `(probability, rng)`. Applied to every
    /// transmission, modeling transient physical-layer corruption.
    loss: Option<(f64, simkit::SimRng)>,
    /// Opt-in event trace ([`crate::trace`]). `None` (the default) keeps
    /// every hot-path hook a single branch; tracing is pure observation
    /// and never changes simulation behavior.
    trace: Option<Box<dyn TraceSink>>,
}

impl Fabric {
    /// An empty fabric.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node with `ports` identical ports; returns its id.
    pub fn add_node(&mut self, ports: usize, cfg: QueueConfig, link: LinkSpec) -> NodeId {
        let id = self.nodes.len();
        self.nodes
            .push((0..ports).map(|_| Port::new(cfg, link)).collect());
        self.congested.push(0);
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the fabric has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ports on `node`.
    pub fn port_count(&self, node: NodeId) -> usize {
        self.nodes[node].len()
    }

    /// Connect `a.pa ↔ b.pb` (both directions). Panics if either port is
    /// already wired — use [`Fabric::rewire`] for circuit reconfiguration.
    pub fn connect(&mut self, a: NodeId, pa: PortId, b: NodeId, pb: PortId) {
        assert!(self.nodes[a][pa].peer.is_none(), "port {a}.{pa} wired");
        assert!(self.nodes[b][pb].peer.is_none(), "port {b}.{pb} wired");
        self.nodes[a][pa].peer = Some((b, pb));
        self.nodes[b][pb].peer = Some((a, pa));
        // A pause frame from a previous wiring no longer binds.
        self.nodes[a][pa].paused = false;
        self.nodes[b][pb].paused = false;
    }

    /// Disconnect a port pair (both directions). No-op if unwired.
    /// Unplugging clears any PFC pause on either end.
    pub fn disconnect(&mut self, a: NodeId, pa: PortId) {
        if let Some((b, pb)) = self.nodes[a][pa].peer.take() {
            self.nodes[b][pb].peer = None;
            self.nodes[b][pb].paused = false;
        }
        self.nodes[a][pa].paused = false;
    }

    /// Atomically repoint `a.pa ↔ b.pb`, detaching any previous peers —
    /// circuit-switch reconfiguration.
    pub fn rewire(&mut self, a: NodeId, pa: PortId, b: NodeId, pb: PortId) {
        self.disconnect(a, pa);
        self.disconnect(b, pb);
        self.nodes[a][pa].peer = Some((b, pb));
        self.nodes[b][pb].peer = Some((a, pa));
    }

    /// Current peer of a port.
    pub fn peer(&self, node: NodeId, port: PortId) -> Option<(NodeId, PortId)> {
        self.nodes[node][port].peer
    }

    /// Mark a port's link failed (packets sent are lost) — §5.5 fault
    /// injection.
    pub fn set_failed(&mut self, node: NodeId, port: PortId, failed: bool) {
        self.nodes[node][port].failed = failed;
    }

    /// Enable uniform random packet loss with probability `p` on every
    /// transmission (transient corruption; end-to-end recovery is the
    /// transports' job). `p = 0` disables.
    pub fn set_random_loss(&mut self, p: f64, seed: u64) {
        assert!((0.0..=1.0).contains(&p));
        self.loss = if p > 0.0 {
            Some((p, simkit::SimRng::new(seed)))
        } else {
            None
        };
    }

    /// Install an event trace sink ([`crate::trace`]). Tracing is pure
    /// observation: simulation behavior and all outputs are identical
    /// with or without a sink installed.
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Remove and return the trace sink (call its
    /// [`TraceSink::finish`] to flush).
    pub fn take_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// True when a trace sink is installed.
    pub fn has_trace(&self) -> bool {
        self.trace.is_some()
    }

    /// Record an event against link `(node, port)` at `now`. No-op
    /// without a sink. Used internally by the fabric hot paths and by
    /// transports for host-level events (ACK receipt, timer firings)
    /// that the fabric cannot see itself.
    #[inline]
    pub fn trace_event(
        &mut self,
        now: SimTime,
        node: NodeId,
        port: PortId,
        event: TraceEvent,
        packet: Option<&Packet>,
    ) {
        if let Some(sink) = &mut self.trace {
            sink.record(&TraceRecord {
                t_ns: now.as_ns(),
                node,
                port,
                event,
                packet: packet.map(PacketMeta::of),
            });
        }
    }

    /// Bytes queued at a port across all priorities.
    pub fn queued_bytes(&self, node: NodeId, port: PortId) -> u64 {
        self.nodes[node][port].total_queued()
    }

    /// Bytes queued at one priority level.
    pub fn queued_bytes_at(&self, node: NodeId, port: PortId, prio: Priority) -> u64 {
        self.nodes[node][port].queued_bytes[prio as usize]
    }

    /// True while the port is serializing a packet.
    pub fn is_busy(&self, node: NodeId, port: PortId) -> bool {
        self.nodes[node][port].busy
    }

    /// True while the port is paused by a downstream PFC pause frame.
    pub fn is_paused(&self, node: NodeId, port: PortId) -> bool {
        self.nodes[node][port].paused
    }

    /// The link spec of a port.
    pub fn link(&self, node: NodeId, port: PortId) -> LinkSpec {
        self.nodes[node][port].link
    }

    /// Enqueue `packet` for transmission out of `node.port`, starting
    /// transmission immediately if the port is idle and unpaused. The
    /// port's [`SwitchPolicy`](crate::policy::SwitchPolicy) decides the
    /// packet's fate (enqueue / mark / trim / drop) and whether upstream
    /// peers must be paused.
    pub fn send(
        &mut self,
        ctx: &mut EventContext<'_, NetEvent>,
        node: NodeId,
        port: PortId,
        packet: Packet,
    ) -> SendOutcome {
        let p = &self.nodes[node][port];
        let (packet, outcome, ev) = match p.cfg.policy.as_dyn().admit(p.view(), &packet) {
            Verdict::Enqueue => (packet, SendOutcome::Queued, TraceEvent::Enqueue),
            Verdict::Mark => {
                let mut marked = packet;
                marked.ecn_ce = true;
                self.counters.ecn_marked += 1;
                (marked, SendOutcome::Queued, TraceEvent::Mark)
            }
            Verdict::Trim => (packet.trim(), SendOutcome::Trimmed, TraceEvent::Trim),
            Verdict::Drop => {
                self.counters.dropped += 1;
                self.trace_event(ctx.now(), node, port, TraceEvent::Drop, Some(&packet));
                return SendOutcome::Dropped;
            }
        };
        self.trace_event(ctx.now(), node, port, ev, Some(&packet));

        let lvl = packet.prio as usize;
        let size = packet.size as u64;
        let r = self.arena.alloc(packet);
        let p = &mut self.nodes[node][port];
        p.queues[lvl].push_back(r);
        p.queued_bytes[lvl] += size;
        let idle = !p.busy && !p.paused;
        match outcome {
            SendOutcome::Trimmed => self.counters.trimmed += 1,
            _ => self.counters.queued += 1,
        }
        if idle {
            self.start_tx(ctx, node, port);
        }
        self.check_pause(ctx, node, port);
        outcome
    }

    /// Dequeue the highest-priority packet and put it on the wire.
    fn start_tx(&mut self, ctx: &mut EventContext<'_, NetEvent>, node: NodeId, port: PortId) {
        let Fabric {
            nodes,
            arena,
            loss,
            trace,
            ..
        } = self;
        let p = &mut nodes[node][port];
        debug_assert!(!p.busy && !p.paused);
        let Some(lvl) = (0..PRIORITY_LEVELS).find(|&l| !p.queues[l].is_empty()) else {
            return;
        };
        let r = p.queues[lvl].pop_front().expect("non-empty");
        let packet = arena.take(r);
        if let Some(sink) = trace {
            sink.record(&TraceRecord {
                t_ns: ctx.now().as_ns(),
                node,
                port,
                event: TraceEvent::Tx,
                packet: Some(PacketMeta::of(&packet)),
            });
        }
        p.queued_bytes[lvl] -= packet.size as u64;
        p.busy = true;
        let ser = p.link.serialize(packet.size);
        let delay = p.link.delay;
        let peer = p.peer;
        let failed = p.failed;
        ctx.schedule_in(ser, NetEvent::PortFree { node, port });
        let corrupted = match loss {
            Some((p, rng)) => rng.chance(*p),
            None => false,
        };
        match peer {
            Some(_) if corrupted => self.counters.failed_drops += 1,
            Some((pn, pp)) if !failed => {
                self.counters.delivered += 1;
                ctx.schedule_in(
                    ser + delay,
                    NetEvent::Arrive {
                        node: pn,
                        port: pp,
                        packet,
                    },
                );
            }
            Some(_) => self.counters.failed_drops += 1,
            None => self.counters.dark_drops += 1,
        }
        self.check_resume(ctx, node, port);
    }

    /// Handle a [`NetEvent::PortFree`]: mark idle and continue draining.
    pub fn on_port_free(
        &mut self,
        ctx: &mut EventContext<'_, NetEvent>,
        node: NodeId,
        port: PortId,
    ) {
        let p = &mut self.nodes[node][port];
        debug_assert!(p.busy);
        p.busy = false;
        if !p.paused && p.queues.iter().any(|q| !q.is_empty()) {
            self.start_tx(ctx, node, port);
        }
    }

    /// Handle a [`NetEvent::PauseChange`]: a downstream PFC pause/resume
    /// frame arrived at `node.port`.
    pub fn on_pause_change(
        &mut self,
        ctx: &mut EventContext<'_, NetEvent>,
        node: NodeId,
        port: PortId,
        paused: bool,
    ) {
        let ev = if paused {
            TraceEvent::Pause
        } else {
            TraceEvent::Resume
        };
        self.trace_event(ctx.now(), node, port, ev, None);
        let p = &mut self.nodes[node][port];
        p.paused = paused;
        if !paused && !p.busy && p.queues.iter().any(|q| !q.is_empty()) {
            self.start_tx(ctx, node, port);
        }
    }

    /// After an enqueue: latch the port as congesting when its policy asks
    /// to pause, and pause every upstream peer of the node on the first
    /// congested port (frames arrive after one propagation delay).
    fn check_pause(&mut self, ctx: &mut EventContext<'_, NetEvent>, node: NodeId, port: PortId) {
        let p = &self.nodes[node][port];
        if p.congesting || !p.cfg.policy.as_dyn().should_pause(p.view()) {
            return;
        }
        self.nodes[node][port].congesting = true;
        self.congested[node] += 1;
        if self.congested[node] == 1 {
            self.signal_peers(ctx, node, true);
        }
    }

    /// After a dequeue: un-latch a congesting port once its policy allows
    /// resumption, and resume upstream peers when the node's last
    /// congested port clears.
    fn check_resume(&mut self, ctx: &mut EventContext<'_, NetEvent>, node: NodeId, port: PortId) {
        let p = &self.nodes[node][port];
        if !p.congesting || !p.cfg.policy.as_dyn().should_resume(p.view()) {
            return;
        }
        self.nodes[node][port].congesting = false;
        self.congested[node] -= 1;
        if self.congested[node] == 0 {
            self.signal_peers(ctx, node, false);
        }
    }

    /// Send a pause (or resume) frame to the peer of every wired port of
    /// `node`.
    fn signal_peers(&mut self, ctx: &mut EventContext<'_, NetEvent>, node: NodeId, paused: bool) {
        for q in &self.nodes[node] {
            if let Some((pn, pp)) = q.peer {
                if paused {
                    self.counters.pause_frames += 1;
                }
                ctx.schedule_in(
                    q.link.delay,
                    NetEvent::PauseChange {
                        node: pn,
                        port: pp,
                        paused,
                    },
                );
            }
        }
    }

    /// Drop every queued bulk packet at a port, returning them — used by
    /// the RotorLB NACK path when a transmission window closes (§4.2.2).
    ///
    /// Note: this path does not emit PFC resumes (it has no event
    /// context); [`crate::policy::Pfc`] is intended for the low-latency
    /// datapath, not RotorLB bulk staging.
    pub fn drain_bulk(&mut self, node: NodeId, port: PortId) -> Vec<Packet> {
        let Fabric { nodes, arena, .. } = self;
        let p = &mut nodes[node][port];
        let lvl = Priority::Bulk as usize;
        p.queued_bytes[lvl] = 0;
        p.queues[lvl].drain(..).map(|r| arena.take(r)).collect()
    }

    /// High-water mark of simultaneously queued packets across the whole
    /// fabric (the arena's slab never shrinks below this).
    pub fn arena_peak_live(&self) -> usize {
        self.arena.peak_live()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketKind, HEADER_SIZE, MTU};
    use crate::policy::{DropTail, EcnMark, Pfc};
    use simkit::engine::{EventHandler, Simulator};

    /// World capturing arrivals for fabric unit tests.
    struct TestWorld {
        fabric: Fabric,
        arrivals: Vec<(u64, NodeId, Packet)>,
    }

    impl EventHandler for TestWorld {
        type Event = NetEvent;
        fn handle_event(&mut self, ev: NetEvent, ctx: &mut EventContext<'_, NetEvent>) {
            match ev {
                NetEvent::Arrive { node, packet, .. } => {
                    self.arrivals.push((ctx.now().as_ns(), node, packet));
                }
                NetEvent::PortFree { node, port } => {
                    self.fabric.on_port_free(ctx, node, port);
                }
                NetEvent::PauseChange { node, port, paused } => {
                    self.fabric.on_pause_change(ctx, node, port, paused);
                }
                NetEvent::Timer { .. } => {}
            }
        }
    }

    fn two_nodes(cfg: QueueConfig) -> TestWorld {
        let mut fabric = Fabric::new();
        let a = fabric.add_node(1, cfg, LinkSpec::paper_default());
        let b = fabric.add_node(1, cfg, LinkSpec::paper_default());
        fabric.connect(a, 0, b, 0);
        TestWorld {
            fabric,
            arrivals: vec![],
        }
    }

    #[test]
    fn single_packet_timing() {
        let sim = run_burst(
            QueueConfig::builder().build(),
            vec![Packet::data(0, 0, 1, 0, MTU)],
        );
        let arr = &sim.world.inner.arrivals;
        assert_eq!(arr.len(), 1);
        // 1500B @ 10G = 1200ns ser + 500ns prop = 1700ns.
        assert_eq!(arr[0].0, 1700);
        assert_eq!(arr[0].1, 1);
        assert_eq!(sim.world.inner.fabric.counters.queued, 1);
        assert_eq!(sim.world.inner.fabric.counters.delivered, 1);
    }

    // Shared world that sends a burst at t=0.
    struct BurstWorld {
        inner: TestWorld,
        burst: Vec<Packet>,
    }
    impl EventHandler for BurstWorld {
        type Event = NetEvent;
        fn handle_event(&mut self, ev: NetEvent, ctx: &mut EventContext<'_, NetEvent>) {
            if let NetEvent::Timer { .. } = ev {
                for pkt in self.burst.drain(..) {
                    self.inner.fabric.send(ctx, 0, 0, pkt);
                }
            } else {
                self.inner.handle_event(ev, ctx);
            }
        }
    }

    fn run_burst(cfg: QueueConfig, burst: Vec<Packet>) -> Simulator<BurstWorld> {
        let mut sim = Simulator::new(BurstWorld {
            inner: two_nodes(cfg),
            burst,
        });
        sim.schedule_at(SimTime::ZERO, NetEvent::Timer { token: 0 });
        sim.run();
        sim
    }

    #[test]
    fn priority_queue_orders_control_first() {
        let burst = vec![
            Packet::data(0, 0, 1, 0, MTU),
            Packet::data(0, 0, 1, 1, MTU),
            Packet::control(0, 0, 1, PacketKind::Pull { count: 1 }),
        ];
        let sim = run_burst(QueueConfig::builder().build(), burst);
        let kinds: Vec<PacketKind> = sim
            .world
            .inner
            .arrivals
            .iter()
            .map(|&(_, _, p)| p.kind)
            .collect();
        // First data packet was already serializing when the pull arrived;
        // the pull then jumps the second data packet.
        assert!(matches!(kinds[0], PacketKind::Data { seq: 0, .. }));
        assert!(matches!(kinds[1], PacketKind::Pull { .. }));
        assert!(matches!(kinds[2], PacketKind::Data { seq: 1, .. }));
    }

    #[test]
    fn trimming_when_data_queue_full() {
        // Queue capacity: 8 full packets (12KB). Send 1 (serializing) + 8
        // (queued) + 1 (trimmed).
        let burst: Vec<Packet> = (0..10).map(|s| Packet::data(0, 0, 1, s, MTU)).collect();
        let sim = run_burst(QueueConfig::builder().build(), burst);
        let arr = &sim.world.inner.arrivals;
        assert_eq!(arr.len(), 10);
        let trimmed: Vec<u32> = arr
            .iter()
            .filter(|&&(_, _, p)| p.is_trimmed())
            .map(|&(_, _, p)| match p.kind {
                PacketKind::Data { seq, .. } => seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(trimmed, vec![9]);
        assert_eq!(sim.world.inner.fabric.counters.trimmed, 1);
        // The trimmed header overtakes the queued full packets.
        let order: Vec<bool> = arr.iter().map(|&(_, _, p)| p.is_trimmed()).collect();
        assert!(order[1], "header should arrive right after first data");
    }

    #[test]
    fn drop_when_no_trim() {
        let cfg = QueueConfig::builder()
            .caps([HEADER_SIZE as u64, MTU as u64, 0])
            .policy(DropTail)
            .build();
        let burst: Vec<Packet> = (0..3).map(|s| Packet::data(0, 0, 1, s, MTU)).collect();
        let sim = run_burst(cfg, burst);
        // 1 serializing + 1 queued + 1 dropped.
        assert_eq!(sim.world.inner.arrivals.len(), 2);
        assert_eq!(sim.world.inner.fabric.counters.dropped, 1);
    }

    #[test]
    fn ecn_marks_standing_queue() {
        // Mark threshold of one MTU: the first packet goes out unmarked
        // (nothing standing), the second enqueues onto <1 MTU (the first
        // is serializing, queue empty again), later ones onto >=1 MTU.
        let cfg = QueueConfig::builder()
            .caps([12_000, 12_000, 24_000])
            .policy(EcnMark {
                mark_bytes: MTU as u64,
            })
            .build();
        let burst: Vec<Packet> = (0..4).map(|s| Packet::data(0, 0, 1, s, MTU)).collect();
        let sim = run_burst(cfg, burst);
        let marks: Vec<bool> = sim
            .world
            .inner
            .arrivals
            .iter()
            .map(|&(_, _, p)| p.ecn_ce)
            .collect();
        assert_eq!(marks, vec![false, false, true, true]);
        assert_eq!(sim.world.inner.fabric.counters.ecn_marked, 2);
        assert_eq!(sim.world.inner.fabric.counters.dropped, 0);
    }

    #[test]
    fn pfc_pauses_and_resumes_upstream() {
        // Host 0 → switch 1 → sink 2, with a slow egress link at the
        // switch so its queue builds. PFC must pause the host before the
        // switch queue grows past pause_bytes + in-flight headroom, drop
        // nothing, and deliver everything after resumes.
        let pfc = QueueConfig::builder()
            .caps([12_000, 12_000, 24_000])
            .policy(Pfc {
                pause_bytes: 6_000,
                resume_bytes: 3_000,
            })
            .build();
        let mut fabric = Fabric::new();
        let host = fabric.add_node(1, pfc, LinkSpec::paper_default());
        let sw = fabric.add_node(
            2,
            pfc,
            LinkSpec {
                gbps: 1.0, // 10x slower egress: congestion by construction
                delay: SimTime::from_ns(500),
            },
        );
        let sink = fabric.add_node(1, pfc, LinkSpec::paper_default());
        fabric.connect(host, 0, sw, 0);
        fabric.connect(sw, 1, sink, 0);

        struct PfcWorld {
            fabric: Fabric,
            arrivals: usize,
            host_paused_seen: bool,
        }
        impl EventHandler for PfcWorld {
            type Event = NetEvent;
            fn handle_event(&mut self, ev: NetEvent, ctx: &mut EventContext<'_, NetEvent>) {
                match ev {
                    NetEvent::Timer { .. } => {
                        for s in 0..40 {
                            self.fabric.send(ctx, 0, 0, Packet::data(0, 0, 2, s, MTU));
                        }
                    }
                    NetEvent::Arrive { node, packet, .. } => {
                        if node == 1 {
                            // Switch: forward to the sink out the slow port.
                            self.fabric.send(ctx, 1, 1, packet);
                        } else {
                            self.arrivals += 1;
                        }
                    }
                    NetEvent::PortFree { node, port } => {
                        self.fabric.on_port_free(ctx, node, port);
                        if self.fabric.is_paused(0, 0) {
                            self.host_paused_seen = true;
                        }
                    }
                    NetEvent::PauseChange { node, port, paused } => {
                        self.fabric.on_pause_change(ctx, node, port, paused);
                    }
                }
            }
        }
        let mut sim = Simulator::new(PfcWorld {
            fabric,
            arrivals: 0,
            host_paused_seen: false,
        });
        sim.schedule_at(SimTime::ZERO, NetEvent::Timer { token: 0 });
        sim.run();
        let w = &sim.world;
        assert_eq!(w.arrivals, 40, "lossless: every packet delivered");
        assert_eq!(w.fabric.counters.dropped, 0);
        assert_eq!(w.fabric.counters.trimmed, 0);
        assert!(w.host_paused_seen, "backpressure never reached the host");
        assert!(w.fabric.counters.pause_frames > 0);
        assert!(!w.fabric.is_paused(0, 0), "resume frees the host at drain");
    }

    #[test]
    fn dark_port_drops() {
        struct DarkWorld {
            fabric: Fabric,
        }
        impl EventHandler for DarkWorld {
            type Event = NetEvent;
            fn handle_event(&mut self, ev: NetEvent, ctx: &mut EventContext<'_, NetEvent>) {
                match ev {
                    NetEvent::Timer { .. } => {
                        let pkt = Packet::data(0, 0, 1, 0, MTU);
                        self.fabric.send(ctx, 0, 0, pkt);
                    }
                    NetEvent::PortFree { node, port } => self.fabric.on_port_free(ctx, node, port),
                    NetEvent::Arrive { .. } => panic!("nothing should arrive"),
                    NetEvent::PauseChange { .. } => {}
                }
            }
        }
        let mut fabric = Fabric::new();
        fabric.add_node(1, QueueConfig::builder().build(), LinkSpec::paper_default());
        let mut sim = Simulator::new(DarkWorld { fabric });
        sim.schedule_at(SimTime::ZERO, NetEvent::Timer { token: 0 });
        sim.run();
        assert_eq!(sim.world.fabric.counters.dark_drops, 1);
    }

    #[test]
    fn rewire_moves_traffic() {
        struct RewireWorld {
            inner: TestWorld,
            phase: u8,
        }
        impl EventHandler for RewireWorld {
            type Event = NetEvent;
            fn handle_event(&mut self, ev: NetEvent, ctx: &mut EventContext<'_, NetEvent>) {
                if let NetEvent::Timer { .. } = ev {
                    match self.phase {
                        0 => {
                            let pkt = Packet::data(0, 0, 1, 0, MTU);
                            self.inner.fabric.send(ctx, 0, 0, pkt);
                        }
                        1 => {
                            // Rewire node 0 port 0 to node 2.
                            self.inner.fabric.rewire(0, 0, 2, 0);
                            let pkt = Packet::data(0, 0, 2, 1, MTU);
                            self.inner.fabric.send(ctx, 0, 0, pkt);
                        }
                        _ => {}
                    }
                    self.phase += 1;
                } else {
                    self.inner.handle_event(ev, ctx);
                }
            }
        }
        let mut inner = two_nodes(QueueConfig::builder().build());
        inner
            .fabric
            .add_node(1, QueueConfig::builder().build(), LinkSpec::paper_default());
        let mut sim = Simulator::new(RewireWorld { inner, phase: 0 });
        sim.schedule_at(SimTime::ZERO, NetEvent::Timer { token: 0 });
        sim.schedule_at(SimTime::from_us(10), NetEvent::Timer { token: 1 });
        sim.run();
        let arr = &sim.world.inner.arrivals;
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].1, 1, "first packet to original peer");
        assert_eq!(arr[1].1, 2, "second packet to rewired peer");
        // Old peer's port is now unwired.
        assert_eq!(sim.world.inner.fabric.peer(1, 0), None);
    }

    #[test]
    fn failed_link_loses_packets() {
        let mut w = two_nodes(QueueConfig::builder().build());
        w.fabric.set_failed(0, 0, true);
        struct FailWorld {
            inner: TestWorld,
        }
        impl EventHandler for FailWorld {
            type Event = NetEvent;
            fn handle_event(&mut self, ev: NetEvent, ctx: &mut EventContext<'_, NetEvent>) {
                if let NetEvent::Timer { .. } = ev {
                    let pkt = Packet::data(0, 0, 1, 0, MTU);
                    self.inner.fabric.send(ctx, 0, 0, pkt);
                } else {
                    self.inner.handle_event(ev, ctx);
                }
            }
        }
        let mut sim = Simulator::new(FailWorld { inner: w });
        sim.schedule_at(SimTime::ZERO, NetEvent::Timer { token: 0 });
        sim.run();
        assert!(sim.world.inner.arrivals.is_empty());
        assert_eq!(sim.world.inner.fabric.counters.failed_drops, 1);
    }

    #[test]
    fn back_to_back_serialization() {
        let burst: Vec<Packet> = (0..3).map(|s| Packet::data(0, 0, 1, s, MTU)).collect();
        let sim = run_burst(QueueConfig::builder().build(), burst);
        let times: Vec<u64> = sim.world.inner.arrivals.iter().map(|a| a.0).collect();
        // 1200ns serialization each, 500ns prop: arrivals at 1700, 2900, 4100.
        assert_eq!(times, vec![1700, 2900, 4100]);
    }

    #[test]
    fn random_loss_drops_roughly_p() {
        let mut w = two_nodes(QueueConfig::builder().unbounded().build());
        w.fabric.set_random_loss(0.25, 7);
        struct LossWorld {
            inner: TestWorld,
        }
        impl EventHandler for LossWorld {
            type Event = NetEvent;
            fn handle_event(&mut self, ev: NetEvent, ctx: &mut EventContext<'_, NetEvent>) {
                if let NetEvent::Timer { .. } = ev {
                    for s in 0..400 {
                        self.inner
                            .fabric
                            .send(ctx, 0, 0, Packet::data(0, 0, 1, s, MTU));
                    }
                } else {
                    self.inner.handle_event(ev, ctx);
                }
            }
        }
        let mut sim = Simulator::new(LossWorld { inner: w });
        sim.schedule_at(SimTime::ZERO, NetEvent::Timer { token: 0 });
        sim.run();
        let got = sim.world.inner.arrivals.len();
        assert!(
            (240..=360).contains(&got),
            "arrivals {got} of 400 at p=0.25"
        );
        assert_eq!(
            sim.world.inner.fabric.counters.failed_drops as usize,
            400 - got
        );
    }

    #[test]
    fn trace_records_match_counters() {
        use crate::trace::{TraceEvent, TraceRecord, TraceSink};
        use std::cell::RefCell;
        use std::rc::Rc;

        /// Sink sharing its record buffer with the test body.
        #[derive(Debug, Default)]
        struct SharedSink(Rc<RefCell<Vec<TraceRecord>>>);
        impl TraceSink for SharedSink {
            fn record(&mut self, rec: &TraceRecord) {
                self.0.borrow_mut().push(*rec);
            }
        }

        // 1 serializing + 8 queued + 1 trimmed (the trimming_when_data_
        // queue_full scenario), with a trace installed.
        let records: Rc<RefCell<Vec<TraceRecord>>> = Rc::default();
        let burst: Vec<Packet> = (0..10).map(|s| Packet::data(0, 0, 1, s, MTU)).collect();
        let mut world = BurstWorld {
            inner: two_nodes(QueueConfig::builder().build()),
            burst,
        };
        world
            .inner
            .fabric
            .set_trace(Box::new(SharedSink(Rc::clone(&records))));
        let mut sim = Simulator::new(world);
        sim.schedule_at(SimTime::ZERO, NetEvent::Timer { token: 0 });
        sim.run();
        let fabric = &mut sim.world.inner.fabric;
        let count =
            |ev: TraceEvent| records.borrow().iter().filter(|r| r.event == ev).count() as u64;
        assert_eq!(count(TraceEvent::Enqueue), fabric.counters.queued);
        assert_eq!(count(TraceEvent::Trim), fabric.counters.trimmed);
        assert_eq!(count(TraceEvent::Tx), fabric.counters.delivered);
        assert_eq!(count(TraceEvent::Drop), 0);
        // Timestamps arrive in simulation order.
        let ts: Vec<u64> = records.borrow().iter().map(|r| r.t_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        // Every packet event carries metadata; the trimmed admit shows
        // header size.
        let trim = records
            .borrow()
            .iter()
            .find(|r| r.event == TraceEvent::Trim)
            .copied()
            .expect("trim traced");
        let meta = trim.packet.expect("packet meta");
        assert_eq!(meta.size, HEADER_SIZE);
        assert!(meta.trimmed);
        fabric.take_trace().expect("sink still installed");
    }

    #[test]
    fn drain_bulk_returns_packets() {
        let mut fabric = Fabric::new();
        let cfg = QueueConfig::builder().unbounded().build();
        let a = fabric.add_node(1, cfg, LinkSpec::paper_default());
        let b = fabric.add_node(1, cfg, LinkSpec::paper_default());
        fabric.connect(a, 0, b, 0);
        struct DrainWorld {
            fabric: Fabric,
            drained: usize,
        }
        impl EventHandler for DrainWorld {
            type Event = NetEvent;
            fn handle_event(&mut self, ev: NetEvent, ctx: &mut EventContext<'_, NetEvent>) {
                match ev {
                    NetEvent::Timer { token: 0 } => {
                        for s in 0..5 {
                            self.fabric.send(ctx, 0, 0, Packet::bulk(0, 0, 1, s, MTU));
                        }
                        // One is serializing; four are queued. Drain them.
                        self.drained = self.fabric.drain_bulk(0, 0).len();
                    }
                    NetEvent::PortFree { node, port } => self.fabric.on_port_free(ctx, node, port),
                    _ => {}
                }
            }
        }
        let mut sim = Simulator::new(DrainWorld { fabric, drained: 0 });
        sim.schedule_at(SimTime::ZERO, NetEvent::Timer { token: 0 });
        sim.run();
        assert_eq!(sim.world.drained, 4);
        assert_eq!(sim.world.fabric.queued_bytes(0, 0), 0);
    }
}
