//! Switch queueing policies: what a port does with a packet that wants in.
//!
//! The decision the fabric used to hard-code — trim over-capacity NDP data
//! to headers — is one point in a design space the paper never explores.
//! [`SwitchPolicy`] makes it pluggable: a policy classifies every packet at
//! enqueue time ([`SwitchPolicy::admit`]) and, for lossless operation, asks
//! the fabric to propagate pause/resume frames to upstream peers
//! ([`SwitchPolicy::should_pause`] / [`SwitchPolicy::should_resume`]).
//!
//! Four implementations ship:
//!
//! * [`DropTail`] — classic lossy FIFO: full queue drops.
//! * [`NdpTrim`] — the paper's datapath (§4.2.1) and the default: cut the
//!   payload of over-capacity low-latency data, forward the header at
//!   control priority, drop only when the header queue is also full.
//! * [`Pfc`] — priority flow control: never drop; when a port's queues
//!   cross `pause_bytes` the node pauses every upstream peer, resuming
//!   below `resume_bytes`. Lossless by construction (queues may exceed
//!   their nominal caps by the in-flight headroom).
//! * [`EcnMark`] — drop-tail plus DCTCP-style threshold marking: data
//!   enqueued above `mark_bytes` of standing queue gets its
//!   congestion-experienced bit set for the receiver to echo.
//!
//! To add a policy: implement [`SwitchPolicy`] on a small `Copy` struct,
//! add a [`SwitchPolicyKind`] variant wrapping it (ports store configs by
//! value), and wire the variant into `SwitchPolicyKind::as_dyn`.

use crate::packet::{Packet, Priority, HEADER_SIZE, PRIORITY_LEVELS};

/// A port's queue occupancy and capacity, as visible to a policy.
#[derive(Debug, Clone, Copy)]
pub struct QueueView<'a> {
    /// Bytes currently queued per priority level.
    pub queued_bytes: &'a [u64; PRIORITY_LEVELS],
    /// Nominal capacity per priority level.
    pub cap_bytes: &'a [u64; PRIORITY_LEVELS],
}

impl QueueView<'_> {
    /// Bytes queued across all priority levels.
    pub fn total(&self) -> u64 {
        self.queued_bytes.iter().sum()
    }

    /// True when `packet` fits its own priority level's queue.
    pub fn fits(&self, packet: &Packet) -> bool {
        let lvl = packet.prio as usize;
        self.queued_bytes[lvl] + packet.size as u64 <= self.cap_bytes[lvl]
    }
}

/// A policy's classification of one packet at enqueue time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Enqueue as-is.
    Enqueue,
    /// Enqueue with the ECN congestion-experienced bit set.
    Mark,
    /// Cut the payload; enqueue the header at control priority.
    Trim,
    /// Drop the packet.
    Drop,
}

/// The queueing decision at every output port.
///
/// Policies are consulted by [`crate::Fabric::send`] before a packet joins
/// a queue, and (for PFC) after enqueues/dequeues to drive pause frames.
pub trait SwitchPolicy: std::fmt::Debug {
    /// Classify `packet` against the port state `q`.
    fn admit(&self, q: QueueView<'_>, packet: &Packet) -> Verdict;

    /// After an enqueue left the port in state `q`: should this node pause
    /// its upstream peers? The fabric latches the answer per port and only
    /// re-asks after a resume.
    fn should_pause(&self, _q: QueueView<'_>) -> bool {
        false
    }

    /// After a dequeue left a pausing port in state `q`: may the node's
    /// upstream peers resume?
    fn should_resume(&self, _q: QueueView<'_>) -> bool {
        true
    }
}

/// Lossy FIFO: a packet that does not fit its queue is dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropTail;

impl SwitchPolicy for DropTail {
    fn admit(&self, q: QueueView<'_>, packet: &Packet) -> Verdict {
        if q.fits(packet) {
            Verdict::Enqueue
        } else {
            Verdict::Drop
        }
    }
}

/// The paper's NDP datapath (§4.2.1): over-capacity low-latency data is
/// trimmed to its header and forwarded at control priority; everything
/// else drop-tails.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NdpTrim;

impl SwitchPolicy for NdpTrim {
    fn admit(&self, q: QueueView<'_>, packet: &Packet) -> Verdict {
        if q.fits(packet) {
            Verdict::Enqueue
        } else if packet.prio == Priority::LowLatency && packet.payload() > 0 {
            let clvl = Priority::Control as usize;
            if q.queued_bytes[clvl] + HEADER_SIZE as u64 <= q.cap_bytes[clvl] {
                Verdict::Trim
            } else {
                Verdict::Drop
            }
        } else {
            Verdict::Drop
        }
    }
}

/// Priority flow control: lossless hop-by-hop backpressure.
///
/// Never drops. When a port's total standing queue crosses `pause_bytes`
/// the owning node sends pause frames to the peers of *all* its ports
/// (traffic can ingress anywhere); once every congested queue drains below
/// `resume_bytes` it sends resumes. Queues may exceed their nominal caps
/// by the pause-propagation headroom — that slack is the price of zero
/// loss, exactly as in real PFC buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pfc {
    /// Pause upstream when a port's total queue reaches this many bytes.
    pub pause_bytes: u64,
    /// Resume upstream when the queue drains below this many bytes.
    pub resume_bytes: u64,
}

impl Pfc {
    /// Defaults sized for the paper's 12 KB data queues: pause at 24 KB of
    /// standing queue, resume below 12 KB.
    pub fn paper_default() -> Self {
        Pfc {
            pause_bytes: 24_000,
            resume_bytes: 12_000,
        }
    }
}

impl SwitchPolicy for Pfc {
    fn admit(&self, _q: QueueView<'_>, _packet: &Packet) -> Verdict {
        Verdict::Enqueue
    }

    fn should_pause(&self, q: QueueView<'_>) -> bool {
        q.total() >= self.pause_bytes
    }

    fn should_resume(&self, q: QueueView<'_>) -> bool {
        q.total() < self.resume_bytes
    }
}

/// Drop-tail with DCTCP-style ECN threshold marking: data enqueued onto a
/// standing queue of `mark_bytes` or more gets its congestion-experienced
/// bit set; receivers echo it and senders back off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcnMark {
    /// Mark data when its priority level already holds this many bytes.
    pub mark_bytes: u64,
}

impl EcnMark {
    /// Default marking threshold: one third of the paper's combined
    /// low-latency capacity — early enough to keep standing queues short.
    pub fn paper_default() -> Self {
        EcnMark { mark_bytes: 9_000 }
    }
}

impl SwitchPolicy for EcnMark {
    fn admit(&self, q: QueueView<'_>, packet: &Packet) -> Verdict {
        if !q.fits(packet) {
            Verdict::Drop
        } else if packet.payload() > 0 && q.queued_bytes[packet.prio as usize] >= self.mark_bytes {
            Verdict::Mark
        } else {
            Verdict::Enqueue
        }
    }
}

/// The closed set of policies a port config can carry by value.
///
/// Ports store their [`crate::QueueConfig`] inline (configs are `Copy` and
/// replicated across hundreds of ports), so the policy is an enum of the
/// concrete implementations rather than a boxed trait object; dispatch
/// still goes through `dyn SwitchPolicy` via [`SwitchPolicyKind::as_dyn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchPolicyKind {
    /// [`DropTail`].
    DropTail(DropTail),
    /// [`NdpTrim`] (the default).
    NdpTrim(NdpTrim),
    /// [`Pfc`].
    Pfc(Pfc),
    /// [`EcnMark`].
    EcnMark(EcnMark),
}

impl SwitchPolicyKind {
    /// The policy as a trait object.
    pub fn as_dyn(&self) -> &dyn SwitchPolicy {
        match self {
            SwitchPolicyKind::DropTail(p) => p,
            SwitchPolicyKind::NdpTrim(p) => p,
            SwitchPolicyKind::Pfc(p) => p,
            SwitchPolicyKind::EcnMark(p) => p,
        }
    }
}

impl Default for SwitchPolicyKind {
    fn default() -> Self {
        SwitchPolicyKind::NdpTrim(NdpTrim)
    }
}

impl From<DropTail> for SwitchPolicyKind {
    fn from(p: DropTail) -> Self {
        SwitchPolicyKind::DropTail(p)
    }
}

impl From<NdpTrim> for SwitchPolicyKind {
    fn from(p: NdpTrim) -> Self {
        SwitchPolicyKind::NdpTrim(p)
    }
}

impl From<Pfc> for SwitchPolicyKind {
    fn from(p: Pfc) -> Self {
        SwitchPolicyKind::Pfc(p)
    }
}

impl From<EcnMark> for SwitchPolicyKind {
    fn from(p: EcnMark) -> Self {
        SwitchPolicyKind::EcnMark(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketKind, MTU};

    fn view<'a>(
        queued: &'a [u64; PRIORITY_LEVELS],
        caps: &'a [u64; PRIORITY_LEVELS],
    ) -> QueueView<'a> {
        QueueView {
            queued_bytes: queued,
            cap_bytes: caps,
        }
    }

    #[test]
    fn drop_tail_drops_at_capacity() {
        let caps = [1_000, 2_000, 3_000];
        let pkt = Packet::data(0, 0, 1, 0, MTU);
        assert_eq!(
            DropTail.admit(view(&[0, 0, 0], &caps), &pkt),
            Verdict::Enqueue
        );
        assert_eq!(
            DropTail.admit(view(&[0, 1_000, 0], &caps), &pkt),
            Verdict::Drop
        );
    }

    #[test]
    fn ndp_trim_matches_legacy_decision_table() {
        let caps = [12_000, 12_000, 24_000];
        let data = Packet::data(0, 0, 1, 0, MTU);
        let trim = NdpTrim;
        // Fits: enqueue.
        assert_eq!(trim.admit(view(&[0, 0, 0], &caps), &data), Verdict::Enqueue);
        // Data queue full, control queue open: trim.
        assert_eq!(
            trim.admit(view(&[0, 12_000, 0], &caps), &data),
            Verdict::Trim
        );
        // Both full: drop.
        assert_eq!(
            trim.admit(view(&[12_000, 12_000, 0], &caps), &data),
            Verdict::Drop
        );
        // Control traffic never trims.
        let ctl = Packet::control(0, 0, 1, PacketKind::Hello);
        assert_eq!(
            trim.admit(view(&[12_000, 0, 0], &caps), &ctl),
            Verdict::Drop
        );
        // Bulk never trims.
        let bulk = Packet::bulk(0, 0, 1, 0, MTU);
        assert_eq!(
            trim.admit(view(&[0, 0, 24_000], &caps), &bulk),
            Verdict::Drop
        );
        // An already-trimmed header (payload 0) at low-latency would drop,
        // but trimmed headers travel at control priority by construction.
    }

    #[test]
    fn pfc_never_drops_and_tracks_thresholds() {
        let caps = [12_000, 12_000, 24_000];
        let pfc = Pfc {
            pause_bytes: 10_000,
            resume_bytes: 5_000,
        };
        let pkt = Packet::data(0, 0, 1, 0, MTU);
        // Over nominal capacity: still enqueued.
        assert_eq!(
            pfc.admit(view(&[0, 50_000, 0], &caps), &pkt),
            Verdict::Enqueue
        );
        assert!(!pfc.should_pause(view(&[0, 9_999, 0], &caps)));
        assert!(pfc.should_pause(view(&[0, 10_000, 0], &caps)));
        assert!(!pfc.should_resume(view(&[0, 5_000, 0], &caps)));
        assert!(pfc.should_resume(view(&[0, 4_999, 0], &caps)));
    }

    #[test]
    fn ecn_marks_above_threshold_only() {
        let caps = [12_000, 48_000, 24_000];
        let ecn = EcnMark { mark_bytes: 9_000 };
        let pkt = Packet::data(0, 0, 1, 0, MTU);
        assert_eq!(
            ecn.admit(view(&[0, 8_999, 0], &caps), &pkt),
            Verdict::Enqueue
        );
        assert_eq!(ecn.admit(view(&[0, 9_000, 0], &caps), &pkt), Verdict::Mark);
        // Full queue still drop-tails.
        assert_eq!(ecn.admit(view(&[0, 47_000, 0], &caps), &pkt), Verdict::Drop);
        // Control packets are never marked.
        let ctl = Packet::control(0, 0, 1, PacketKind::Hello);
        assert_eq!(
            ecn.admit(view(&[9_000, 9_000, 0], &caps), &ctl),
            Verdict::Enqueue
        );
    }

    #[test]
    fn kind_default_is_ndp_trim() {
        assert_eq!(
            SwitchPolicyKind::default(),
            SwitchPolicyKind::NdpTrim(NdpTrim)
        );
    }
}
