//! The policy layer: [`NetLogic`] and the [`NetWorld`] event-loop adapter.
//!
//! A `NetLogic` decides what happens when packets arrive and when timers
//! fire; the [`Fabric`] handles queueing and wire timing. `NetWorld` glues
//! the two into a [`simkit::EventHandler`] so a `simkit::Simulator` can
//! drive the whole network.

use crate::fabric::{Fabric, NetEvent, NodeId, PortId};
use crate::packet::Packet;
use simkit::engine::{EventContext, EventHandler};
use simkit::{SimTime, Simulator};

/// Network policy: routing, transports, schedulers.
pub trait NetLogic {
    /// A packet fully arrived at `node` through `port`.
    fn on_arrive(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        node: NodeId,
        port: PortId,
        packet: Packet,
    );

    /// A timer scheduled with token `token` fired.
    fn on_timer(&mut self, fabric: &mut Fabric, ctx: &mut EventContext<'_, NetEvent>, token: u64);
}

/// A fabric plus its logic: the complete simulated world.
pub struct NetWorld<L: NetLogic> {
    /// The data plane.
    pub fabric: Fabric,
    /// The policy layer.
    pub logic: L,
}

impl<L: NetLogic> NetWorld<L> {
    /// Assemble a world.
    pub fn new(fabric: Fabric, logic: L) -> Self {
        NetWorld { fabric, logic }
    }

    /// Wrap in a simulator, scheduling an initial timer with `token` 0 at
    /// time zero so the logic can bootstrap (start flows, start slices).
    pub fn into_sim(self) -> Simulator<Self> {
        let mut sim = Simulator::new(self);
        sim.schedule_at(SimTime::ZERO, NetEvent::Timer { token: 0 });
        sim
    }
}

impl<L: NetLogic> EventHandler for NetWorld<L> {
    type Event = NetEvent;

    fn handle_event(&mut self, ev: NetEvent, ctx: &mut EventContext<'_, NetEvent>) {
        match ev {
            NetEvent::Arrive { node, port, packet } => {
                self.logic
                    .on_arrive(&mut self.fabric, ctx, node, port, packet);
            }
            NetEvent::PortFree { node, port } => {
                self.fabric.on_port_free(ctx, node, port);
            }
            NetEvent::PauseChange { node, port, paused } => {
                self.fabric.on_pause_change(ctx, node, port, paused);
            }
            NetEvent::Timer { token } => {
                self.logic.on_timer(&mut self.fabric, ctx, token);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{LinkSpec, QueueConfig};
    use crate::packet::{PacketKind, MTU};

    /// Echo logic: host 1 bounces every data packet back to host 0.
    struct Echo {
        got_at_0: Vec<Packet>,
    }

    impl NetLogic for Echo {
        fn on_arrive(
            &mut self,
            fabric: &mut Fabric,
            ctx: &mut EventContext<'_, NetEvent>,
            node: NodeId,
            _port: PortId,
            packet: Packet,
        ) {
            if node == 1 {
                let reply = Packet::control(packet.flow, 1, packet.src, PacketKind::Ack { seq: 0 });
                fabric.send(ctx, 1, 0, reply);
            } else {
                self.got_at_0.push(packet);
            }
        }

        fn on_timer(
            &mut self,
            fabric: &mut Fabric,
            ctx: &mut EventContext<'_, NetEvent>,
            token: u64,
        ) {
            if token == 0 {
                fabric.send(ctx, 0, 0, Packet::data(0, 0, 1, 0, MTU));
            }
        }
    }

    #[test]
    fn echo_roundtrip() {
        let mut fabric = Fabric::new();
        let a = fabric.add_node(1, QueueConfig::builder().build(), LinkSpec::paper_default());
        let b = fabric.add_node(1, QueueConfig::builder().build(), LinkSpec::paper_default());
        fabric.connect(a, 0, b, 0);
        let mut sim = NetWorld::new(fabric, Echo { got_at_0: vec![] }).into_sim();
        sim.run();
        assert_eq!(sim.world.logic.got_at_0.len(), 1);
        assert!(matches!(
            sim.world.logic.got_at_0[0].kind,
            PacketKind::Ack { .. }
        ));
        // data: 1200+500 = 1700; ack: 52 ser + 500 prop = 2252ns total.
        assert_eq!(sim.now().as_ns(), 2252);
    }
}
