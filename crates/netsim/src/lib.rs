//! `netsim` — a packet-level network fabric simulator.
//!
//! This crate replaces the data-plane machinery of the `htsim` simulator the
//! paper used: store-and-forward nodes with output-queued ports, strict
//! priority queues with NDP-style packet trimming, and links modeled as
//! serialization + propagation delay.
//!
//! The fabric is *policy-free*: what a node does with an arriving packet
//! (route it, consume it, answer it) is decided by a [`logic::NetLogic`]
//! implementation supplied by higher layers (`transport`, `opera`). The
//! split keeps the hot path monomorphic and the network models testable in
//! isolation.
//!
//! * [`packet`] — the packet model (semantic headers, no payload bytes),
//! * [`fabric`] — nodes, ports, queues, links, wiring (including live
//!   rewiring for circuit switches), counters, fault injection,
//! * [`policy`] — the [`policy::SwitchPolicy`] trait and the shipped
//!   queueing policies (drop-tail, NDP trim, PFC, ECN marking),
//! * [`logic`] — the [`logic::NetLogic`] trait and the
//!   [`logic::NetWorld`] event-loop adapter,
//! * [`flows`] — flow registry and FCT accounting,
//! * [`trace`] — opt-in structured per-link event tracing
//!   ([`trace::TraceSink`], JSON-lines sink),
//! * [`pcapng`] — self-contained pcapng writer/reader and the
//!   [`pcapng::PcapngSink`] capture adapter.

pub mod fabric;
pub mod flows;
pub mod logic;
pub mod packet;
pub mod pcapng;
pub mod policy;
pub mod trace;

pub use fabric::{Fabric, LinkSpec, NetEvent, NodeId, PortId, QueueConfig, SendOutcome};
pub use flows::{FlowClass, FlowId, FlowRecord, FlowTracker};
pub use logic::{NetLogic, NetWorld};
pub use packet::{Packet, PacketArena, PacketKind, PacketRef, Priority, HEADER_SIZE, MTU};
pub use pcapng::{PcapngFile, PcapngSink, PcapngWriter};
pub use policy::{DropTail, EcnMark, NdpTrim, Pfc, SwitchPolicy, SwitchPolicyKind};
pub use trace::{JsonlSink, MemorySink, MultiSink, PacketMeta, TraceEvent, TraceRecord, TraceSink};
