//! Flow registry and flow-completion-time accounting.
//!
//! Every experiment in the paper reports flow completion times (FCT) or
//! delivered throughput; both derive from the same bookkeeping: when a flow
//! started, how many payload bytes have reached the destination, and when
//! the last byte arrived.

use simkit::stats::TimeSeries;
use simkit::SimTime;

/// Identifies a flow.
pub type FlowId = u32;

/// Whether a flow is serviced as latency-sensitive or bulk (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowClass {
    /// Routed immediately over multi-hop expander paths (NDP).
    LowLatency,
    /// Buffered for direct circuits (RotorLB).
    Bulk,
}

/// Book-keeping for one flow.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// Sending host (node id).
    pub src: usize,
    /// Receiving host (node id).
    pub dst: usize,
    /// Payload size in bytes.
    pub size: u64,
    /// Service class.
    pub class: FlowClass,
    /// Arrival (start) time.
    pub start: SimTime,
    /// Payload bytes received at `dst` so far.
    pub received: u64,
    /// Completion time, set when `received ≥ size`.
    pub finish: Option<SimTime>,
}

impl FlowRecord {
    /// Flow completion time, if finished.
    pub fn fct(&self) -> Option<SimTime> {
        self.finish.map(|f| f - self.start)
    }
}

/// Registry of all flows in an experiment.
#[derive(Debug, Default)]
pub struct FlowTracker {
    flows: Vec<FlowRecord>,
    completed: usize,
    /// Payload bytes delivered over time (for throughput plots); enabled
    /// by [`FlowTracker::with_throughput_bins`].
    throughput: Option<TimeSeries>,
}

impl FlowTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable binned delivered-throughput recording.
    pub fn with_throughput_bins(mut self, bin: SimTime) -> Self {
        self.throughput = Some(TimeSeries::new(bin));
        self
    }

    /// Register a flow; returns its id.
    pub fn register(
        &mut self,
        src: usize,
        dst: usize,
        size: u64,
        class: FlowClass,
        start: SimTime,
    ) -> FlowId {
        let id = self.flows.len() as FlowId;
        self.flows.push(FlowRecord {
            src,
            dst,
            size,
            class,
            start,
            received: 0,
            finish: None,
        });
        id
    }

    /// Record `bytes` of payload arriving for `flow` at time `now`.
    /// Returns `true` if this completed the flow.
    pub fn deliver(&mut self, flow: FlowId, bytes: u64, now: SimTime) -> bool {
        if let Some(ts) = &mut self.throughput {
            ts.record(now, bytes as f64);
        }
        let f = &mut self.flows[flow as usize];
        debug_assert!(f.finish.is_none(), "delivery after completion");
        f.received += bytes;
        if f.received >= f.size && f.finish.is_none() {
            f.finish = Some(now);
            self.completed += 1;
            true
        } else {
            false
        }
    }

    /// The record of `flow`.
    pub fn get(&self, flow: FlowId) -> &FlowRecord {
        &self.flows[flow as usize]
    }

    /// All flows.
    pub fn flows(&self) -> &[FlowRecord] {
        &self.flows
    }

    /// Number registered.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows are registered.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Number completed.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// True when every registered flow has finished.
    pub fn all_done(&self) -> bool {
        self.completed == self.flows.len()
    }

    /// Delivered-throughput time series, if enabled.
    pub fn throughput(&self) -> Option<&TimeSeries> {
        self.throughput.as_ref()
    }

    /// FCTs (in microseconds) of completed flows whose payload size is in
    /// `[lo, hi)` — the unit used throughout the paper's figures.
    pub fn fcts_us(&self, lo: u64, hi: u64) -> Vec<f64> {
        self.flows
            .iter()
            .filter(|f| f.size >= lo && f.size < hi)
            .filter_map(|f| f.fct())
            .map(|t| t.as_us_f64())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut t = FlowTracker::new();
        let id = t.register(0, 1, 3000, FlowClass::LowLatency, SimTime::from_us(10));
        assert_eq!(t.len(), 1);
        assert!(!t.deliver(id, 1436, SimTime::from_us(20)));
        assert!(!t.all_done());
        assert!(t.deliver(id, 1564, SimTime::from_us(30)));
        assert!(t.all_done());
        let rec = t.get(id);
        assert_eq!(rec.fct(), Some(SimTime::from_us(20)));
    }

    #[test]
    fn fct_filter_by_size() {
        let mut t = FlowTracker::new();
        let a = t.register(0, 1, 100, FlowClass::LowLatency, SimTime::ZERO);
        let b = t.register(0, 1, 10_000, FlowClass::Bulk, SimTime::ZERO);
        t.deliver(a, 100, SimTime::from_us(5));
        t.deliver(b, 10_000, SimTime::from_us(50));
        assert_eq!(t.fcts_us(0, 1000), vec![5.0]);
        assert_eq!(t.fcts_us(1000, u64::MAX), vec![50.0]);
        assert_eq!(t.completed(), 2);
    }

    #[test]
    fn throughput_series() {
        let mut t = FlowTracker::new().with_throughput_bins(SimTime::from_ms(1));
        let id = t.register(0, 1, 5000, FlowClass::Bulk, SimTime::ZERO);
        t.deliver(id, 2000, SimTime::from_us(100));
        t.deliver(id, 3000, SimTime::from_us(1200));
        let ts = t.throughput().unwrap();
        assert_eq!(ts.total(), 5000.0);
        assert_eq!(ts.series()[0].1, 2000.0);
        assert_eq!(ts.series()[1].1, 3000.0);
    }

    #[test]
    fn unfinished_flow_has_no_fct() {
        let mut t = FlowTracker::new();
        let id = t.register(2, 3, 1000, FlowClass::Bulk, SimTime::ZERO);
        t.deliver(id, 999, SimTime::from_us(1));
        assert!(t.get(id).fct().is_none());
        assert_eq!(t.fcts_us(0, u64::MAX), Vec::<f64>::new());
    }
}
