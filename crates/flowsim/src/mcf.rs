//! Approximate max-concurrent-flow throughput (Garg–Könemann style).
//!
//! "Throughput of a topology" in the cost-comparison literature (Jyothi et
//! al. \[27\], Kassing et al. \[29\] — both cited by the paper) is the
//! largest `λ` such that every demand `d` can simultaneously route `λ·d`
//! without violating capacities, under *optimal* (fractional) routing.
//!
//! We use the classic multiplicative-weights scheme: repeatedly route each
//! demand along the currently-cheapest path where an edge's cost grows
//! exponentially with its accumulated load, then scale the resulting flow
//! to fit capacities. A few hundred phases get within a few percent of
//! optimal on the graphs used here, which is plenty for reproducing the
//! figures' shapes.
//!
//! The solver is the hot path of every cost-comparison sweep (one solve
//! per `(workload, α, replicate)` point, each running one Dijkstra per
//! demand per phase), so [`McfSolver`] keeps all per-solve state in
//! reusable buffers: CSR adjacency built once per graph, generation-
//! stamped distance scratch (no O(n) clears between Dijkstras), and
//! recycled heap storage. Three cuts shrink each search itself:
//! a *goal-directed* (A\*-style) key order steered by a hop-count
//! heuristic sharpened with adaptively refreshed per-target snapshots
//! of exact reverse distances (costs only grow inside a run, so a
//! snapshot keeps lower-bounding later queries — see
//! [`McfSolver::hsnap`](McfSolver)), with margin-padded filter/trust
//! thresholds that keep the
//! result exact under floating-point rounding (see [`FILTER_MARGIN`]);
//! a target-bound prune seeded from the *previous phase's* routed path
//! for the same demand, re-priced at current costs (the phase plan
//! repeats, so last phase's path is a valid upper bound from the first
//! relaxation on); and an early exit at the target's pop in the
//! non-uniform-degree fallback.
//! The priority queue is freed from replicating the reference
//! implementation's tie pop-order entirely: final Dijkstra distances are
//! order-independent (each is a min over root-to-node path sums, summed
//! in the same association order), and the reference's predecessor
//! choice is itself a pure function of those distances (see
//! [`McfSolver::walk_path`]), so the routed path is reconstructed
//! afterwards instead of recorded during the run. That admits a flat
//! struct-of-arrays indexed d-ary heap on bare `f64`-bit keys with
//! true decrease-key ([`HeapSoa`]).
//! These are *exact* optimizations — the λ bits match the original
//! implementation, which survives as the property-test oracle in
//! `tests/properties.rs`. On top of that, [`McfSolver::solve_warm`]
//! carries edge costs/loads across the repeated solves of a parameter
//! sweep: when the adjacent sweep point poses the identical problem
//! (verified by fingerprint) the prior state is continued instead of
//! re-solved from scratch, and any mismatch falls back to a cold solve.

use topo::graph::{Csr, Graph};

use crate::models::Demand;

/// Result of a max-concurrent-flow run.
#[derive(Debug, Clone, Copy)]
pub struct McfResult {
    /// Concurrent throughput: every demand simultaneously achieves
    /// `lambda × amount`.
    pub lambda: f64,
}

/// Multiplicative-weights growth rate per routed demand.
const EPS: f64 = 0.07;

/// Heap arity. Four children per node keeps the tree shallow for the
/// ~100-entry frontiers these Dijkstras carry while each sift level
/// still scans one contiguous run of keys; measured fastest among
/// arities 2/4/8 on the sweep shapes (and ahead of a flat vectorized
/// min-scan queue, which loses to the frontier size).
const HEAP_ARITY: usize = 4;

/// Heap slot marker for a node that has been popped (settled) this
/// generation; see [`HeapSoa::pos`].
const SETTLED: u32 = u32::MAX;

/// Relative margins that make the goal-directed search exact under
/// floating-point rounding. The heuristic `h(u)` (pointwise max of the
/// hop-count bound and the snapshot reverse-distance row; see
/// `hops_f` and `hsnap` on [`McfSolver`]) lower-bounds the remaining
/// cost and is consistent in *real* arithmetic; rounding can perturb
/// every comparison by only a few units in `2^-52`. Offers are kept
/// while `g + h < bound × FILTER_MARGIN`, and the path walk trusts a
/// node's stored distance as final only when
/// `g + h ≤ dist(t) × TRUST_MARGIN`. Because every reference achiever
/// has real `g + h ≤ dist(t)` (within ~1e-15 after rounding), it is
/// always trusted; and because `TRUST_MARGIN ≪ FILTER_MARGIN`, every
/// offer on a trusted node's shortest-path prefix chain passes the
/// filter at all times, so its stored distance is exactly the final
/// one. Nodes between the margins are skipped by the walk — provably
/// never achievers.
const FILTER_MARGIN: f64 = 1.0 + 1e-12;
const TRUST_MARGIN: f64 = 1.0 + 1e-13;

/// Pop-count threshold that marks a target's snapshot heuristic row
/// stale: when a goal-directed search settles more nodes than this, the
/// heuristic has decayed enough (costs have grown past what the row —
/// or the hop-count bound alone — accounts for) that one plain
/// reverse-Dijkstra refresh before the *next* query for that target
/// pays for itself in pops saved over the following phases. Kept well
/// above the shortest-path-DAG sizes a fresh (near-exact) row yields on
/// the sweep expanders so a refresh doesn't immediately re-mark itself.
const SNAP_STALE_POPS: u32 = 32;

/// `hsnap_phase` sentinel: this target's next query must refresh its
/// snapshot row before searching.
const SNAP_MARK: u64 = u64::MAX;

/// Running prune state of one goal-directed search: `b` is the current
/// tightest upper bound on `dist(t)` (path bound seed, then tentative
/// distances of `t`), `tf` the derived filter threshold.
#[derive(Debug, Clone, Copy)]
struct Prune {
    b: f64,
    tf: f64,
}

impl Prune {
    #[inline(always)]
    fn new(bound: f64) -> Self {
        Prune {
            b: bound,
            tf: if bound.is_finite() {
                bound * FILTER_MARGIN
            } else {
                f64::INFINITY
            },
        }
    }

    /// Fold in a fresh tentative distance of the target.
    #[inline(always)]
    fn tighten(&mut self, nd: f64) {
        if nd < self.b {
            self.b = nd;
            self.tf = nd * FILTER_MARGIN;
        }
    }
}

/// Indexed d-ary min-heap in struct-of-arrays layout: keys (`f64` bits
/// of the tentative distance — bit order equals value order for
/// non-negative floats) and node payloads live in separate flat
/// vectors, so sift compares touch only the dense `u64` key array and
/// tie order among equal keys is whatever falls out of the sift.
/// Arbitrary tie order is legal here because the routed path is
/// rebuilt from final distances after the run (see
/// [`McfSolver::walk_path`]) rather than from pop-order side effects.
/// `pos` tracks each queued node's heap slot, so an improved tentative
/// distance is a true decrease-key instead of a duplicate entry — the
/// heap holds each node at most once, every pop settles, and the pop
/// loop needs no stale check.
#[derive(Debug, Default)]
struct HeapSoa {
    keys: Vec<u64>,
    nodes: Vec<u32>,
    /// Heap slot of each queued node, `SETTLED` once popped; meaningful
    /// only for nodes stamped in the current Dijkstra generation.
    pos: Vec<u32>,
}

impl HeapSoa {
    fn with_nodes(n: usize) -> Self {
        HeapSoa {
            keys: Vec::new(),
            nodes: Vec::new(),
            pos: vec![0; n],
        }
    }

    #[inline(always)]
    fn clear(&mut self) {
        self.keys.clear();
        self.nodes.clear();
    }

    #[inline(always)]
    fn sift_up(&mut self, mut i: usize, key: u64, node: u32) {
        while i > 0 {
            let p = (i - 1) / HEAP_ARITY;
            let pk = self.keys[p];
            if pk <= key {
                break;
            }
            let pn = self.nodes[p];
            self.keys[i] = pk;
            self.nodes[i] = pn;
            self.pos[pn as usize] = i as u32;
            i = p;
        }
        self.keys[i] = key;
        self.nodes[i] = node;
        self.pos[node as usize] = i as u32;
    }

    #[inline(always)]
    fn push(&mut self, key: u64, node: u32) {
        let i = self.keys.len();
        self.keys.push(key);
        self.nodes.push(node);
        self.sift_up(i, key, node);
    }

    /// Lower `node`'s key in place (it must be queued with a larger
    /// key).
    #[inline(always)]
    fn decrease(&mut self, node: u32, key: u64) {
        let i = self.pos[node as usize];
        debug_assert!(i != SETTLED, "decrease-key on a settled node");
        self.sift_up(i as usize, key, node);
    }

    /// Decrease-key that also accepts a node popped earlier this
    /// generation: an improvement after settling (possible only under
    /// the goal-directed key order, where rounding can locally bend the
    /// heuristic's consistency) re-queues the node — label-correcting —
    /// so its out-edges are re-relaxed from the better distance.
    #[inline(always)]
    fn update(&mut self, node: u32, key: u64) {
        let i = self.pos[node as usize];
        if i == SETTLED {
            self.push(key, node);
        } else {
            self.sift_up(i as usize, key, node);
        }
    }

    #[inline(always)]
    fn pop(&mut self) -> Option<(u64, u32)> {
        let len = self.keys.len();
        if len == 0 {
            return None;
        }
        let out = (self.keys[0], self.nodes[0]);
        self.pos[out.1 as usize] = SETTLED;
        let lk = self.keys[len - 1];
        let lv = self.nodes[len - 1];
        self.keys.pop();
        self.nodes.pop();
        let n = len - 1;
        if n > 0 {
            let mut i = 0usize;
            loop {
                let c0 = HEAP_ARITY * i + 1;
                if c0 >= n {
                    break;
                }
                let cend = (c0 + HEAP_ARITY).min(n);
                let mut mc = c0;
                let mut mk = self.keys[c0];
                for (j, &k) in self.keys[c0 + 1..cend].iter().enumerate() {
                    if k < mk {
                        mk = k;
                        mc = c0 + 1 + j;
                    }
                }
                if mk >= lk {
                    break;
                }
                let mn = self.nodes[mc];
                self.keys[i] = mk;
                self.nodes[i] = mn;
                self.pos[mn as usize] = i as u32;
                i = mc;
            }
            self.keys[i] = lk;
            self.nodes[i] = lv;
            self.pos[lv as usize] = i as u32;
        }
        Some(out)
    }
}

/// Per-node Dijkstra scratch, consolidated so a relaxation touches one
/// cache line (and one bounds check) instead of parallel arrays.
/// `dist` is valid only where `stamp` equals the current generation —
/// bumping the generation invalidates every entry without an O(n)
/// clear.
#[derive(Debug, Clone, Copy)]
struct NodeScratch {
    dist: f64,
    stamp: u32,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_u64(mut h: u64, x: u64) -> u64 {
    for b in x.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Opaque multiplicative-weights state exported by
/// [`McfSolver::solve_warm`]: the per-edge costs and loads after some
/// number of phases, plus a fingerprint of the exact problem (graph
/// shape, ToR mapping, demand list, link rate) they were computed for.
/// Feeding it back into a `solve_warm` call for the *same* problem skips
/// the phases already run; any mismatch is detected and ignored.
#[derive(Debug, Clone)]
pub struct McfState {
    fingerprint: u64,
    phases: usize,
    cost: Vec<f64>,
    load: Vec<f64>,
}

/// One demand after ToR mapping, in original list order.
#[derive(Debug, Clone, Copy)]
struct PlannedDemand {
    s: u32,
    t: u32,
    amount: f64,
}

/// A reusable Garg–Könemann solver bound to one graph.
///
/// Construction flattens the adjacency into CSR form once; every
/// [`solve`](McfSolver::solve) after that runs allocation-free in steady
/// state (the scratch vectors, heap storage, and cost/load arrays are
/// recycled). The free function [`max_concurrent_flow`] remains as the
/// one-shot convenience wrapper.
#[derive(Debug)]
pub struct McfSolver {
    csr: Csr,
    graph_fp: u64,
    /// Out-degree shared by every node, or 0 when degrees differ. The
    /// regular expanders the sweeps solve are degree-uniform, which lets
    /// the relaxation loop run with a compile-time trip count.
    uniform_deg: usize,
    /// Reverse adjacency (`rev_off[v]..rev_off[v + 1]` indexes the
    /// in-edges of `v` as parallel `rev_src`/`rev_eid` entries, in
    /// ascending-eid order) — the path walk reads predecessors from
    /// here, so it works on asymmetric graphs too.
    rev_off: Vec<u32>,
    rev_src: Vec<u32>,
    rev_eid: Vec<u32>,
    scratch: Vec<NodeScratch>,
    gen: u32,
    heap: HeapSoa,
    /// Hop distance `u → t` for every `(t, u)` pair, row-major by `t`
    /// (`u16::MAX` = unreachable), built once per graph by BFS over the
    /// reverse adjacency. Feeds the goal-directed search's admissible
    /// heuristic `h(u) = hops(u, t) × cmin` where `cmin` lower-bounds
    /// every edge cost (see `hops_f`). Built only for degree-uniform
    /// graphs (the fallback search runs plain Dijkstra).
    hops: Vec<u16>,
    /// `hops` scaled to actual cost units (`h(u) = hops(u, t) × cmin`,
    /// `INFINITY` = unreachable), same row-major layout. `cmin` is the
    /// globally cheapest edge cost sampled at *phase start*: costs only
    /// grow within a phase, so it bounds every edge below for the whole
    /// phase and the heuristic stays admissible (any `u → t` walk takes
    /// ≥ `hops` edges each ≥ `cmin`) and consistent in real arithmetic
    /// (`hops(u) ≤ 1 + hops(v)` across an edge). Rescaling per phase —
    /// rather than fixing the `1/link_rate` floor of a fresh solve —
    /// keeps the heuristic strong late in a solve, when multiplicative
    /// weights has inflated all edges far above the floor and a
    /// floor-scaled heuristic would steer almost nothing.
    hops_f: Vec<f64>,
    /// The `cmin` that `hops_f` is currently scaled by (`NAN` until
    /// first scaled, which can never compare equal).
    hops_f_scale: f64,
    /// Per-target snapshot heuristic rows, same row-major layout as
    /// `hops`: row `t` holds the *exact* reverse shortest-path
    /// distances `u → t` (plain reverse-Dijkstra, `INFINITY` =
    /// unreachable) under the costs at the moment the row was last
    /// refreshed. Costs only ever grow inside a run (multiplicative
    /// updates with factor ≥ 1 round to ≥ the old cost), so a row keeps
    /// lower-bounding every later `u → t` distance — and stays
    /// consistent in real arithmetic — until the next cost reset. Rows
    /// refresh adaptively: a search that settles more than
    /// [`SNAP_STALE_POPS`] nodes marks its target, and the target's
    /// next query re-snapshots first (one ~n-pop plain Dijkstra buying
    /// near-exact guidance for the following phases). This is what
    /// keeps searches narrow *late* in a solve, where `hops_f` alone
    /// goes slack (`cmin` stays pinned at the cost floor by whatever
    /// edges no demand ever routes over).
    hsnap: Vec<f64>,
    /// Phase-counter stamp of each `hsnap` row's last refresh
    /// ([`SNAP_MARK`] = refresh before next use). A row is trusted only
    /// when its stamp is `> snap_floor`.
    hsnap_phase: Vec<u64>,
    /// Monotone phase counter (never reset over the solver's lifetime);
    /// stamps `hsnap` rows.
    phase_ctr: u64,
    /// `phase_ctr` at the entry to the current [`run_phases`] call.
    /// Each run raises the floor, invalidating every snapshot row at
    /// once: a new solve may have reset costs (or restored a prior
    /// state the rows never saw), which would break the rows'
    /// lower-bound guarantee.
    snap_floor: u64,
    /// The active query's combined heuristic row
    /// (`max(hops_f[t], hsnap[t])` per node, or just `hops_f[t]` while
    /// `t` has no trusted snapshot), filled by `dijkstra_deg` and
    /// read back by `walk_path` — the walk's trust test must use
    /// exactly the key function the search ran under.
    h_cur: Vec<f64>,
    cost: Vec<f64>,
    load: Vec<f64>,
    plan: Vec<PlannedDemand>,
    /// Per-plan-index routed path (edge ids) from the previous phase,
    /// double-buffered across phases: `span_prev[i]` windows
    /// `buf_prev`. Summing current costs over last phase's path bounds
    /// this phase's shortest distance for the same `(s, t)` from above
    /// — any path's cost is an upper bound — which arms the
    /// target-bound prune from the first relaxation (see
    /// [`dijkstra_to`](McfSolver::dijkstra_to)).
    buf_prev: Vec<u32>,
    buf_cur: Vec<u32>,
    span_prev: Vec<(u32, u32)>,
    span_cur: Vec<(u32, u32)>,
}

impl McfSolver {
    /// Build a solver for `g`, flattening its adjacency once.
    pub fn new(g: &Graph) -> Self {
        let csr = Csr::from_graph(g);
        let n = csr.nodes();
        let m = csr.edge_count();
        assert!(n < u32::MAX as usize, "node ids must fit u32");
        let mut fp = fnv_u64(FNV_OFFSET, n as u64);
        for v in 0..n {
            fp = fnv_u64(fp, csr.offset(v) as u64);
            for &t in csr.targets(v) {
                fp = fnv_u64(fp, u64::from(t));
            }
        }
        let deg0 = if n > 0 { csr.targets(0).len() } else { 0 };
        let uniform_deg = if deg0 > 0 && (1..n).all(|v| csr.targets(v).len() == deg0) {
            deg0
        } else {
            0
        };
        // Reverse adjacency by counting sort; iterating eids in
        // ascending order keeps each in-edge run eid-sorted, which the
        // path walk's tie-break relies on.
        let mut indeg = vec![0u32; n + 1];
        for eid in 0..m {
            indeg[csr.to(eid) + 1] += 1;
        }
        for v in 0..n {
            indeg[v + 1] += indeg[v];
        }
        let rev_off = indeg;
        let mut cursor = rev_off.clone();
        let mut rev_src = vec![0u32; m];
        let mut rev_eid = vec![0u32; m];
        for eid in 0..m {
            let v = csr.to(eid);
            let slot = cursor[v] as usize;
            cursor[v] += 1;
            rev_src[slot] = csr.from(eid) as u32;
            rev_eid[slot] = eid as u32;
        }
        // Hop distances to every target (BFS over reverse edges), for
        // the goal-directed search heuristic.
        let hops = if uniform_deg != 0 {
            let mut hops = vec![u16::MAX; n * n];
            let mut queue = std::collections::VecDeque::new();
            for t in 0..n {
                let row = &mut hops[t * n..(t + 1) * n];
                row[t] = 0;
                queue.clear();
                queue.push_back(t as u32);
                while let Some(v) = queue.pop_front() {
                    let v = v as usize;
                    let d = row[v] + 1;
                    for &src in &rev_src[rev_off[v] as usize..rev_off[v + 1] as usize] {
                        let u = src as usize;
                        if row[u] == u16::MAX {
                            row[u] = d;
                            queue.push_back(u as u32);
                        }
                    }
                }
            }
            hops
        } else {
            Vec::new()
        };
        McfSolver {
            csr,
            graph_fp: fp,
            uniform_deg,
            rev_off,
            rev_src,
            rev_eid,
            scratch: vec![
                NodeScratch {
                    dist: 0.0,
                    stamp: 0
                };
                n
            ],
            gen: 0,
            heap: HeapSoa::with_nodes(n),
            hops_f: vec![0.0; hops.len()],
            hops_f_scale: f64::NAN,
            hsnap: vec![0.0; hops.len()],
            hsnap_phase: vec![0; if hops.is_empty() { 0 } else { n }],
            phase_ctr: 0,
            snap_floor: 0,
            h_cur: vec![0.0; if hops.is_empty() { 0 } else { n }],
            hops,
            cost: vec![0.0; m],
            load: vec![0.0; m],
            plan: Vec::new(),
            buf_prev: Vec::new(),
            buf_cur: Vec::new(),
            span_prev: Vec::new(),
            span_cur: Vec::new(),
        }
    }

    /// Fingerprint of the full problem instance this solver would run:
    /// graph shape + ToR mapping + demand list + link rate. `host_cap`
    /// and `phases` are deliberately excluded — the host-capacity bound
    /// is applied analytically after the phases, and a prior state with
    /// fewer phases is exactly continuable to more.
    fn problem_fp(&self, tor_of_rack: &[usize], demands: &[Demand], link_rate: f64) -> u64 {
        let mut fp = fnv_u64(self.graph_fp, tor_of_rack.len() as u64);
        for &t in tor_of_rack {
            fp = fnv_u64(fp, t as u64);
        }
        fp = fnv_u64(fp, demands.len() as u64);
        for d in demands {
            fp = fnv_u64(fp, d.src as u64);
            fp = fnv_u64(fp, d.dst as u64);
            fp = fnv_u64(fp, d.amount.to_bits());
        }
        fnv_u64(fp, link_rate.to_bits())
    }

    /// Dijkstra from `s` under the current edge costs, stopping as soon
    /// as `t` pops (its distance is final then — costs are non-negative,
    /// so a popped node is never re-improved). Returns whether `t` is
    /// reachable; on `true`, every node with distance below `dist[t]`
    /// holds its final (bit-exact) distance in `scratch`, which is all
    /// [`walk_path`](McfSolver::walk_path) needs.
    ///
    /// Two goal-directed cuts keep this exact while skipping most of the
    /// frontier beyond the target:
    ///
    /// * early exit — pop order is non-decreasing, so everything still
    ///   queued when `t` pops would pop at or after `t` and can only
    ///   write `dist` entries at or above `dist[t]`, which the walk
    ///   never reads;
    /// * target-bound pruning — edge costs here are strictly positive
    ///   (`1/link_rate` grown multiplicatively), so every node on the
    ///   `s → t` path other than `t` has distance *strictly below*
    ///   `dist[t]`; a relaxation with `nd >=` the current tentative
    ///   `dist[t]` can neither improve `t` nor lie on the path, and a
    ///   node's *final* (minimal) offer always passes the filter —
    ///   dropping the rest changes nothing the walk reads.
    ///
    /// `bound` is an upper bound on `dist[t]` (`INFINITY` when none is
    /// known).
    fn dijkstra_to(&mut self, s: usize, t: usize, bound: f64) -> bool {
        // Dispatch on the graph's uniform out-degree so the common
        // sweep shapes run the whole pop loop with a compile-time trip
        // count (and `v * D` row offsets, skipping the offsets array);
        // every arm runs the identical search.
        match self.uniform_deg {
            3 => self.dijkstra_deg::<3>(s, t, bound),
            7 => self.dijkstra_deg::<7>(s, t, bound),
            12 => self.dijkstra_deg::<12>(s, t, bound),
            _ => self.dijkstra_any(s, t, bound),
        }
    }

    /// Start a new search generation and seed the heap with `s` under
    /// `key` (its goal-directed key `0 + h(s)`, or 0 for the fallback).
    #[inline(always)]
    fn begin_search(&mut self, s: usize, key: u64) -> u32 {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            for node in &mut self.scratch {
                node.stamp = 0;
            }
            self.gen = 1;
        }
        let gen = self.gen;
        self.heap.clear();
        self.scratch[s].dist = 0.0;
        self.scratch[s].stamp = gen;
        self.heap.push(key, s as u32);
        gen
    }

    /// Goal-directed pop loop monomorphized over the uniform
    /// out-degree `D`: heap keys are `g + h` (tentative distance plus
    /// hop-count heuristic), steering the search down the corridor
    /// toward `t` instead of flooding the whole cost ball. The search
    /// never early-exits on `t`'s pop — it drains until the heap's
    /// minimum key clears the margin-padded filter threshold, at which
    /// point no remaining entry can improve anything the walk reads
    /// (every surviving offer's true completion cost exceeds the bound
    /// by more than the worst-case rounding). Pop order is thereby
    /// irrelevant to the result; the heuristic only sets how little
    /// gets explored.
    fn dijkstra_deg<const D: usize>(&mut self, s: usize, t: usize, bound: f64) -> bool {
        let n = self.scratch.len();
        let base = t * n;
        if self.hops[base + s] == u16::MAX {
            return false; // t unreachable from s
        }
        debug_assert!(!self.hops_f_scale.is_nan(), "heuristic never scaled");
        if self.hsnap_phase[t] == SNAP_MARK {
            self.refresh_snapshot(t);
        }
        // Combined heuristic row for this query: both the hop-count
        // bound and (when trusted) the snapshot row lower-bound the
        // remaining cost, so their pointwise max does too — and the max
        // of two real-arithmetic-consistent heuristics is consistent.
        if self.hsnap_phase[t] > self.snap_floor {
            for ((h, &hf), &hs) in self
                .h_cur
                .iter_mut()
                .zip(&self.hops_f[base..base + n])
                .zip(&self.hsnap[base..base + n])
            {
                *h = hf.max(hs);
            }
        } else {
            self.h_cur.copy_from_slice(&self.hops_f[base..base + n]);
        }
        let gen = self.begin_search(s, self.h_cur[s].to_bits());
        let to_flat = self.csr.targets_flat();
        let mut pr = Prune::new(bound);
        let mut pops = 0u32;
        while let Some((kb, vn)) = self.heap.pop() {
            let fv = f64::from_bits(kb);
            if fv >= pr.tf {
                break; // heap min beyond the filter: nothing left matters
            }
            pops += 1;
            let v = vn as usize;
            let dv = self.scratch[v].dist;
            debug_assert_eq!(kb, (dv + self.h_cur[v]).to_bits());
            relax_deg::<D>(
                to_flat,
                &self.cost,
                &self.h_cur,
                &mut self.scratch,
                &mut self.heap,
                gen,
                v,
                dv,
                t,
                &mut pr,
            );
        }
        if pops > SNAP_STALE_POPS {
            self.hsnap_phase[t] = SNAP_MARK;
        }
        debug_assert!(self.scratch[t].stamp == gen);
        true
    }

    /// Refresh target `t`'s snapshot heuristic row: one plain reverse
    /// Dijkstra (full SSSP over the reverse adjacency, no heuristic, no
    /// prune) under the *current* costs, written into `hsnap` row `t`
    /// and stamped with the current phase. See the `hsnap` field docs
    /// for why the row keeps lower-bounding later queries.
    fn refresh_snapshot(&mut self, t: usize) {
        let gen = self.begin_search(t, 0);
        while let Some((kb, vn)) = self.heap.pop() {
            let v = vn as usize;
            let dv = f64::from_bits(kb);
            debug_assert_eq!(kb, self.scratch[v].dist.to_bits());
            let lo = self.rev_off[v] as usize;
            let hi = self.rev_off[v + 1] as usize;
            for i in lo..hi {
                let u = self.rev_src[i] as usize;
                let nd = dv + self.cost[self.rev_eid[i] as usize];
                let node = &mut self.scratch[u];
                if node.stamp != gen {
                    node.stamp = gen;
                    node.dist = nd;
                    self.heap.push(nd.to_bits(), u as u32);
                } else if nd < node.dist {
                    node.dist = nd;
                    self.heap.decrease(u as u32, nd.to_bits());
                }
            }
        }
        let n = self.scratch.len();
        let row = &mut self.hsnap[t * n..(t + 1) * n];
        for (u, slot) in row.iter_mut().enumerate() {
            let node = self.scratch[u];
            *slot = if node.stamp == gen {
                node.dist
            } else {
                f64::INFINITY
            };
        }
        self.hsnap_phase[t] = self.phase_ctr;
    }

    /// Fallback pop loop for graphs without a uniform out-degree: plain
    /// Dijkstra (zero heuristic) with the early exit at `t`'s pop and
    /// the target-bound prune.
    fn dijkstra_any(&mut self, s: usize, t: usize, bound: f64) -> bool {
        let gen = self.begin_search(s, 0);
        let mut best_t = if bound.is_finite() {
            // next_up: the bound is a positive finite sum of positive
            // costs, and `dist[t] <= bound` holds bit-exactly (the
            // bound is summed in this search's own accumulation
            // order), so pruning `nd >= next_up(bound)` — i.e.
            // `nd > bound` — never drops `t`'s final offer.
            f64::from_bits(bound.to_bits() + 1)
        } else {
            f64::INFINITY
        };
        while let Some((kb, vn)) = self.heap.pop() {
            let v = vn as usize;
            debug_assert_eq!(kb, self.scratch[v].dist.to_bits());
            if v == t {
                return true;
            }
            let dv = f64::from_bits(kb);
            let off = self.csr.offset(v);
            let tgts = self.csr.targets(v);
            relax_row(
                tgts,
                &self.cost[off..off + tgts.len()],
                &mut self.scratch,
                &mut self.heap,
                gen,
                dv,
                t,
                &mut best_t,
            );
        }
        false
    }

    /// Walk the routed `s → t` path from final distances alone, applying
    /// `load`/`cost` updates per traversed directed edge.
    ///
    /// The reference implementation records `prev[v]` during the run:
    /// the first relaxation that reaches `v`'s final distance wins
    /// (later equal offers fail its strict `<` test). All relaxations
    /// come from settled nodes, so that winner is the earliest-*popped*
    /// in-neighbor `u` with `dist[u] + cost[u→v] == dist[v]` (bit-exact
    /// f64, same rounding as the run) — under the reference pop order
    /// this is the achiever with minimal `(dist bits, then larger node
    /// index)`, parallel edges resolving to the lowest eid. That makes
    /// the recorded path a pure function of the final distances, which
    /// is what lets the queue drop tie discipline entirely.
    ///
    /// Every candidate read is settled: an achiever has
    /// `dist[u] < dist[v] <= dist[t]`, and when `t` pops, any node with
    /// a tentative distance below `dist[t]` has already popped with its
    /// final value; a still-queued node's tentative value is
    /// `>= dist[t]` and fails the `du >= dv` guard.
    /// Also appends the traversed edge ids to `buf_cur` (in t→s order;
    /// order is irrelevant to the cost-sum bound they feed).
    fn walk_path(&mut self, s: usize, t: usize, amount: f64, link_rate: f64) {
        let gen = self.gen;
        // Trust threshold of the goal-directed search: a candidate's
        // stored distance is provably final only when its key clears
        // `dist(t) × TRUST_MARGIN` (see [`FILTER_MARGIN`]); anything
        // beyond is provably not an achiever. Zero heuristic (fallback
        // search) reduces this to the `du >= dv` guard below.
        let trust = self.scratch[t].dist * TRUST_MARGIN;
        // The goal-directed search's own heuristic row — `h_cur` still
        // holds the combined row `dijkstra_deg` just searched `t`
        // under. (Empty slice = zero heuristic, for the fallback
        // search: the trust test degenerates to the plain-Dijkstra
        // `du >= dv` guard.)
        let h_row: &[f64] = if self.uniform_deg != 0 {
            &self.h_cur
        } else {
            &[]
        };
        let mut v = t;
        while v != s {
            let dv = self.scratch[v].dist;
            let lo = self.rev_off[v] as usize;
            let hi = self.rev_off[v + 1] as usize;
            let mut best = u128::MAX;
            let mut best_eid = usize::MAX;
            let mut best_u = usize::MAX;
            for i in lo..hi {
                let u = self.rev_src[i] as usize;
                let node = &self.scratch[u];
                if node.stamp != gen {
                    continue;
                }
                let du = node.dist;
                if du >= dv || du + h_row.get(u).copied().unwrap_or(0.0) > trust {
                    continue;
                }
                let eid = self.rev_eid[i] as usize;
                if du + self.cost[eid] == dv {
                    // Earliest reference pop = smallest distance bits,
                    // ties to the larger node; strict `<` keeps the
                    // first (lowest-eid) entry on full ties.
                    let key = (u128::from(du.to_bits()) << 32) | u128::from(u32::MAX - u as u32);
                    if key < best {
                        best = key;
                        best_eid = eid;
                        best_u = u;
                    }
                }
            }
            debug_assert!(best_eid != usize::MAX, "no shortest-path predecessor");
            self.load[best_eid] += amount;
            self.cost[best_eid] *= 1.0 + EPS * amount / link_rate;
            self.buf_cur.push(best_eid as u32);
            v = best_u;
        }
    }

    /// Run multiplicative-weights phases `start..phases` over the demand
    /// plan, iterating source buckets (consecutive runs of demands that
    /// share a mapped source ToR) in original demand order.
    fn run_phases(&mut self, link_rate: f64, start: usize, phases: usize) {
        let plan = std::mem::take(&mut self.plan);
        // No routed paths are known entering the first phase (warm
        // continuations included) — every span starts empty, meaning
        // "no bound".
        self.span_prev.clear();
        self.span_prev.resize(plan.len(), (0, 0));
        self.buf_prev.clear();
        // Raise the snapshot validity floor: rows taken in an earlier
        // run saw costs that may since have been reset or replaced (see
        // `snap_floor`), so every target re-earns its row inside this
        // run. Stray refresh marks from the previous run die with it.
        self.snap_floor = self.phase_ctr;
        for p in &mut self.hsnap_phase {
            if *p == SNAP_MARK {
                *p = 0;
            }
        }
        for _ in start..phases {
            self.phase_ctr += 1;
            // Rescale the heuristic to this phase's cheapest edge cost
            // (see the `hops_f` field docs — costs only grow inside a
            // phase, so this stays a lower bound throughout). In the
            // first phase of a cold solve every cost is exactly
            // `1.0 / link_rate`, so the initial scale is the cost
            // floor; `NAN` never compares equal, forcing the first
            // fill. O(m + n²) per phase, noise next to the searches.
            let cmin = self.cost.iter().fold(f64::INFINITY, |a, &c| a.min(c));
            if self.hops_f_scale != cmin {
                for (h, &hops) in self.hops_f.iter_mut().zip(&self.hops) {
                    *h = if hops == u16::MAX {
                        f64::INFINITY
                    } else {
                        f64::from(hops) * cmin
                    };
                }
                self.hops_f_scale = cmin;
            }
            self.buf_cur.clear();
            self.span_cur.clear();
            self.span_cur.resize(plan.len(), (0, 0));
            let mut b = 0;
            while b < plan.len() {
                let s = plan[b].s as usize;
                let mut e = b;
                while e < plan.len() && plan[e].s == plan[b].s {
                    e += 1;
                }
                for (di, d) in plan.iter().enumerate().take(e).skip(b) {
                    let t = d.t as usize;
                    // Same (s, t) as last phase's demand `di`: its
                    // routed path priced at current costs bounds this
                    // shortest-path distance from above. Summed in
                    // Dijkstra's own accumulation order (s → t left
                    // fold; the walk stored the path t → s, hence
                    // `rev`) so that if this path is still shortest,
                    // its Dijkstra distance equals the bound bit-exactly
                    // — a different association order could round the
                    // bound below it and prune the real path.
                    let (lo, len) = self.span_prev[di];
                    let bound = if len == 0 {
                        f64::INFINITY
                    } else {
                        self.buf_prev[lo as usize..(lo + len) as usize]
                            .iter()
                            .rev()
                            .fold(0.0f64, |acc, &eid| acc + self.cost[eid as usize])
                    };
                    if !self.dijkstra_to(s, t, bound) {
                        continue;
                    }
                    let span_start = self.buf_cur.len() as u32;
                    // Route the whole demand on the cheapest path this
                    // phase.
                    self.walk_path(s, t, d.amount, link_rate);
                    self.span_cur[di] = (span_start, self.buf_cur.len() as u32 - span_start);
                }
                b = e;
            }
            std::mem::swap(&mut self.buf_prev, &mut self.buf_cur);
            std::mem::swap(&mut self.span_prev, &mut self.span_cur);
        }
        self.plan = plan;
    }

    /// Compute the max-concurrent-flow fraction `λ` (see
    /// [`max_concurrent_flow`]) reusing this solver's buffers.
    pub fn solve(
        &mut self,
        tor_of_rack: &[usize],
        demands: &[Demand],
        link_rate: f64,
        host_cap: f64,
        phases: usize,
    ) -> McfResult {
        self.solve_inner(None, tor_of_rack, demands, link_rate, host_cap, phases)
            .0
    }

    /// Like [`solve`](McfSolver::solve), but seeded from `prior` state
    /// when it fingerprints as the identical problem with no more phases
    /// than requested: only the missing phases run, and the result is
    /// bit-identical to the cold solve (well within the 1e-6 contract
    /// the warm-vs-cold property test asserts). Any mismatch — different
    /// graph, demands, ToR mapping, link rate, or a prior that already
    /// ran *more* phases — falls back to a cold solve. Returns the
    /// result plus the state after `phases`, for chaining across a
    /// sweep.
    pub fn solve_warm(
        &mut self,
        prior: Option<&McfState>,
        tor_of_rack: &[usize],
        demands: &[Demand],
        link_rate: f64,
        host_cap: f64,
        phases: usize,
    ) -> (McfResult, McfState) {
        let (result, fingerprint) =
            self.solve_inner(prior, tor_of_rack, demands, link_rate, host_cap, phases);
        let state = if self.csr.edge_count() == 0 || demands.is_empty() {
            // Degenerate instance: nothing ran, so export a state no
            // later solve can mistake for progress.
            McfState {
                fingerprint,
                phases: usize::MAX,
                cost: Vec::new(),
                load: Vec::new(),
            }
        } else {
            McfState {
                fingerprint,
                phases,
                cost: self.cost.clone(),
                load: self.load.clone(),
            }
        };
        (result, state)
    }

    fn solve_inner(
        &mut self,
        prior: Option<&McfState>,
        tor_of_rack: &[usize],
        demands: &[Demand],
        link_rate: f64,
        host_cap: f64,
        phases: usize,
    ) -> (McfResult, u64) {
        let m = self.csr.edge_count();
        let fingerprint = self.problem_fp(tor_of_rack, demands, link_rate);
        if m == 0 || demands.is_empty() {
            return (McfResult { lambda: 0.0 }, fingerprint);
        }

        self.plan.clear();
        for d in demands {
            if d.amount <= 0.0 || d.src == d.dst {
                continue;
            }
            self.plan.push(PlannedDemand {
                s: tor_of_rack[d.src] as u32,
                t: tor_of_rack[d.dst] as u32,
                amount: d.amount,
            });
        }

        let start = match prior {
            Some(p) if p.fingerprint == fingerprint && p.phases <= phases => {
                self.cost.copy_from_slice(&p.cost);
                self.load.copy_from_slice(&p.load);
                p.phases
            }
            _ => {
                self.cost.fill(1.0 / link_rate);
                self.load.fill(0.0);
                0
            }
        };
        self.run_phases(link_rate, start, phases);

        // Scale to fit: each demand has routed `phases * amount` total.
        let worst = self
            .load
            .iter()
            .map(|&l| l / link_rate)
            .fold(0.0f64, f64::max);
        let mut lambda = if worst > 0.0 {
            phases as f64 / worst
        } else {
            f64::INFINITY
        };

        // Host aggregate capacity at each rack (egress and ingress).
        let racks = tor_of_rack.len();
        let mut out = vec![0.0; racks];
        let mut inn = vec![0.0; racks];
        for d in demands {
            out[d.src] += d.amount;
            inn[d.dst] += d.amount;
        }
        for r in 0..racks {
            if out[r] > 0.0 {
                lambda = lambda.min(host_cap / out[r]);
            }
            if inn[r] > 0.0 {
                lambda = lambda.min(host_cap / inn[r]);
            }
        }
        (
            McfResult {
                lambda: lambda.min(1.0),
            },
            fingerprint,
        )
    }
}

/// Relax `v`'s out-edges with a compile-time trip count `D` (the
/// graph's uniform out-degree): the fixed-size reborrows let the
/// candidate distances and the prune mask compute branchlessly with no
/// per-edge bounds checks, then only surviving lanes touch scratch and
/// heap. The mask is evaluated against `best_t` once up front; a
/// mid-row `best_t` tightening leaves a *superset* of the survivors,
/// which is equally exact — pruned entries never reach the walk.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn relax_deg<const D: usize>(
    to_flat: &[u32],
    cost: &[f64],
    h_row: &[f64],
    scratch: &mut [NodeScratch],
    heap: &mut HeapSoa,
    gen: u32,
    v: usize,
    dv: f64,
    t: usize,
    pr: &mut Prune,
) {
    // Degree-uniform CSR rows start at `v * D` — no offsets-array load.
    let off = v * D;
    let tgts: &[u32; D] = to_flat[off..off + D].try_into().expect("uniform degree");
    let costs: &[f64; D] = cost[off..off + D].try_into().expect("uniform degree");
    let mut nds = [0.0f64; D];
    let mut fs = [0.0f64; D];
    let mut mask = 0u32;
    for i in 0..D {
        nds[i] = dv + costs[i];
        fs[i] = nds[i] + h_row[tgts[i] as usize];
        // Strict `<`: an infinite key (target cut off from `t`) never
        // survives, even under an infinite threshold.
        mask |= u32::from(fs[i] < pr.tf) << i;
    }
    while mask != 0 {
        let i = mask.trailing_zeros() as usize;
        mask &= mask - 1;
        let to = tgts[i] as usize;
        let nd = nds[i];
        let node = &mut scratch[to];
        if node.stamp != gen {
            node.stamp = gen;
            node.dist = nd;
            heap.push(fs[i].to_bits(), to as u32);
        } else if nd < node.dist {
            node.dist = nd;
            heap.update(to as u32, fs[i].to_bits());
        } else {
            continue;
        }
        if to == t {
            pr.tighten(nd);
        }
    }
}

/// Dynamic-degree relaxation behind the fallback dispatch arm; same
/// goal-directed cuts as [`relax_deg`] (see
/// [`McfSolver::dijkstra_to`]): the `nd >= best_t` prune and the early
/// exit in the caller's pop loop.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn relax_row(
    tgts: &[u32],
    costs: &[f64],
    scratch: &mut [NodeScratch],
    heap: &mut HeapSoa,
    gen: u32,
    dv: f64,
    t: usize,
    best_t: &mut f64,
) {
    for i in 0..tgts.len() {
        let to = tgts[i] as usize;
        let nd = dv + costs[i];
        if nd >= *best_t {
            continue; // can't improve t nor sit on its path
        }
        let node = &mut scratch[to];
        if node.stamp != gen {
            node.stamp = gen;
            node.dist = nd;
            heap.push(nd.to_bits(), to as u32);
        } else if nd < node.dist {
            node.dist = nd;
            heap.decrease(to as u32, nd.to_bits());
        } else {
            continue;
        }
        if to == t {
            *best_t = nd;
        }
    }
}

/// Compute the max-concurrent-flow fraction `λ` for rack-level `demands`
/// on `g` with uniform edge capacity `link_rate` and per-rack aggregate
/// host capacity `host_cap` (applied analytically at the end).
///
/// `phases` trades accuracy for time; 100–300 is a good range. One-shot
/// wrapper over [`McfSolver`]; solving the same graph repeatedly is
/// cheaper through a kept solver instance.
pub fn max_concurrent_flow(
    g: &Graph,
    tor_of_rack: &[usize],
    demands: &[Demand],
    link_rate: f64,
    host_cap: f64,
    phases: usize,
) -> McfResult {
    McfSolver::new(g).solve(tor_of_rack, demands, link_rate, host_cap, phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo::expander::{ExpanderParams, ExpanderTopology};

    #[test]
    fn single_path_network() {
        // Line 0-1-2 with 10G links; demand 0->2 of 10 -> λ = 1.
        let mut g = Graph::new(3);
        g.add_link(0, 1, 0);
        g.add_link(1, 2, 0);
        let demands = vec![Demand {
            src: 0,
            dst: 2,
            amount: 10.0,
        }];
        let tor = vec![0, 1, 2];
        let r = max_concurrent_flow(&g, &tor, &demands, 10.0, 100.0, 50);
        assert!((r.lambda - 1.0).abs() < 0.05, "λ={}", r.lambda);
    }

    #[test]
    fn contention_halves() {
        // Two demands share one 10G edge; each offers 10 -> λ = 0.5.
        let mut g = Graph::new(2);
        g.add_link(0, 1, 0);
        let demands = vec![
            Demand {
                src: 0,
                dst: 1,
                amount: 10.0,
            },
            Demand {
                src: 0,
                dst: 1,
                amount: 10.0,
            },
        ];
        let tor = vec![0, 1];
        let r = max_concurrent_flow(&g, &tor, &demands, 10.0, 1000.0, 50);
        assert!((r.lambda - 0.5).abs() < 0.03, "λ={}", r.lambda);
    }

    #[test]
    fn parallel_paths_split() {
        // Diamond: 0->{1,2}->3, all 10G. Demand 20 from 0 to 3 -> λ = 1
        // (optimal splits across both).
        let mut g = Graph::new(4);
        g.add_link(0, 1, 0);
        g.add_link(0, 2, 1);
        g.add_link(1, 3, 0);
        g.add_link(2, 3, 0);
        let demands = vec![Demand {
            src: 0,
            dst: 3,
            amount: 20.0,
        }];
        let tor = vec![0, 1, 2, 3];
        let r = max_concurrent_flow(&g, &tor, &demands, 10.0, 1000.0, 200);
        assert!(r.lambda > 0.9, "λ={}", r.lambda);
    }

    #[test]
    fn host_cap_binds() {
        let mut g = Graph::new(2);
        g.add_link(0, 1, 0);
        let demands = vec![Demand {
            src: 0,
            dst: 1,
            amount: 10.0,
        }];
        let tor = vec![0, 1];
        let r = max_concurrent_flow(&g, &tor, &demands, 100.0, 5.0, 20);
        assert!((r.lambda - 0.5).abs() < 1e-9);
    }

    #[test]
    fn expander_permutation_reasonable() {
        let t = ExpanderTopology::generate(
            ExpanderParams {
                racks: 64,
                uplinks: 7,
                hosts_per_rack: 5,
            },
            5,
        );
        let n = 64;
        let demands: Vec<Demand> = (0..n)
            .map(|r| Demand {
                src: r,
                dst: (r + n / 2) % n,
                amount: 50.0,
            })
            .collect();
        let tor: Vec<usize> = (0..n).collect();
        let r = max_concurrent_flow(t.graph(), &tor, &demands, 10.0, 50.0, 150);
        // Capacity bound: 64*7*10 / (64*50*avg_len≈2.3) ≈ 0.6.
        assert!(r.lambda > 0.4 && r.lambda < 0.75, "λ={}", r.lambda);
    }

    fn expander_and_perm() -> (ExpanderTopology, Vec<Demand>, Vec<usize>) {
        let t = ExpanderTopology::generate(
            ExpanderParams {
                racks: 40,
                uplinks: 5,
                hosts_per_rack: 4,
            },
            9,
        );
        let n = 40;
        let demands: Vec<Demand> = (0..n)
            .map(|r| Demand {
                src: r,
                dst: (r + 17) % n,
                amount: 30.0,
            })
            .collect();
        (t, demands, (0..n).collect())
    }

    #[test]
    fn solver_reuse_is_bit_identical() {
        // The same solver instance run three times (interleaved with a
        // different demand set) reproduces the one-shot λ bits exactly:
        // the generation-stamped scratch carries no state across solves.
        let (t, demands, tor) = expander_and_perm();
        let one_shot = max_concurrent_flow(t.graph(), &tor, &demands, 10.0, 40.0, 30).lambda;
        let mut solver = McfSolver::new(t.graph());
        let other = ScenarioLike::hot(4, 10.0);
        for _ in 0..3 {
            let r = solver.solve(&tor, &demands, 10.0, 40.0, 30);
            assert_eq!(r.lambda.to_bits(), one_shot.to_bits());
            solver.solve(&tor, &other, 10.0, 40.0, 10);
        }
    }

    // Minimal stand-in for workloads::ScenarioGen (not a dependency here).
    struct ScenarioLike;
    impl ScenarioLike {
        fn hot(hosts_per_rack: usize, gbps: f64) -> Vec<Demand> {
            vec![Demand {
                src: 0,
                dst: 1,
                amount: hosts_per_rack as f64 * gbps,
            }]
        }
    }

    #[test]
    fn warm_continuation_matches_cold() {
        let (t, demands, tor) = expander_and_perm();
        let mut solver = McfSolver::new(t.graph());
        let cold = solver.solve(&tor, &demands, 10.0, 40.0, 30);
        // Split 30 phases as 12 + 18 via warm continuation.
        let (_, state) = solver.solve_warm(None, &tor, &demands, 10.0, 40.0, 12);
        let (warm, state30) = solver.solve_warm(Some(&state), &tor, &demands, 10.0, 40.0, 30);
        assert_eq!(warm.lambda.to_bits(), cold.lambda.to_bits());
        // Re-solving at the same phase count reuses the state outright.
        let (again, _) = solver.solve_warm(Some(&state30), &tor, &demands, 10.0, 40.0, 30);
        assert_eq!(again.lambda.to_bits(), cold.lambda.to_bits());
    }

    #[test]
    fn warm_mismatch_falls_back_to_cold() {
        let (t, demands, tor) = expander_and_perm();
        let mut solver = McfSolver::new(t.graph());
        let cold = solver.solve(&tor, &demands, 10.0, 40.0, 20);
        // Prior from a different demand set: fingerprint mismatch.
        let other = ScenarioLike::hot(4, 10.0);
        let (_, foreign) = solver.solve_warm(None, &tor, &other, 10.0, 40.0, 20);
        let (r, _) = solver.solve_warm(Some(&foreign), &tor, &demands, 10.0, 40.0, 20);
        assert_eq!(r.lambda.to_bits(), cold.lambda.to_bits());
        // Prior with MORE phases than requested: also a cold solve.
        let (_, deep) = solver.solve_warm(None, &tor, &demands, 10.0, 40.0, 25);
        let (r, _) = solver.solve_warm(Some(&deep), &tor, &demands, 10.0, 40.0, 20);
        assert_eq!(r.lambda.to_bits(), cold.lambda.to_bits());
    }

    #[test]
    fn degenerate_instances_are_lambda_zero() {
        let g = Graph::new(2); // no edges
        let mut solver = McfSolver::new(&g);
        let demands = ScenarioLike::hot(1, 10.0);
        let (r, state) = solver.solve_warm(None, &[0, 1], &demands, 10.0, 10.0, 5);
        assert_eq!(r.lambda, 0.0);
        // The degenerate state never seeds a later solve.
        let (r2, _) = solver.solve_warm(Some(&state), &[0, 1], &demands, 10.0, 10.0, 5);
        assert_eq!(r2.lambda, 0.0);
        let mut g = Graph::new(2);
        g.add_link(0, 1, 0);
        let r = max_concurrent_flow(&g, &[0, 1], &[], 10.0, 10.0, 5);
        assert_eq!(r.lambda, 0.0);
    }
}
