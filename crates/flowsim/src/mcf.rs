//! Approximate max-concurrent-flow throughput (Garg–Könemann style).
//!
//! "Throughput of a topology" in the cost-comparison literature (Jyothi et
//! al. \[27\], Kassing et al. \[29\] — both cited by the paper) is the
//! largest `λ` such that every demand `d` can simultaneously route `λ·d`
//! without violating capacities, under *optimal* (fractional) routing.
//!
//! We use the classic multiplicative-weights scheme: repeatedly route each
//! demand along the currently-cheapest path where an edge's cost grows
//! exponentially with its accumulated load, then scale the resulting flow
//! to fit capacities. A few hundred phases get within a few percent of
//! optimal on the graphs used here, which is plenty for reproducing the
//! figures' shapes.

use topo::graph::Graph;

use crate::models::Demand;

/// Result of a max-concurrent-flow run.
#[derive(Debug, Clone, Copy)]
pub struct McfResult {
    /// Concurrent throughput: every demand simultaneously achieves
    /// `lambda × amount`.
    pub lambda: f64,
}

/// Dijkstra under floating-point edge costs; returns predecessor edge
/// (`prev_node`, edge index) per node, or none if unreachable.
fn dijkstra(
    g: &Graph,
    costs: &[f64],
    edge_offset: &[usize],
    src: usize,
) -> (Vec<f64>, Vec<(usize, usize)>) {
    let n = g.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![(usize::MAX, usize::MAX); n];
    let mut heap = std::collections::BinaryHeap::new();
    dist[src] = 0.0;
    heap.push((std::cmp::Reverse(ordered(0.0)), src));
    while let Some((std::cmp::Reverse(dv), v)) = heap.pop() {
        if unordered(dv) > dist[v] {
            continue;
        }
        for (i, e) in g.edges(v).iter().enumerate() {
            let nd = dist[v] + costs[edge_offset[v] + i];
            if nd < dist[e.to] {
                dist[e.to] = nd;
                prev[e.to] = (v, i);
                heap.push((std::cmp::Reverse(ordered(nd)), e.to));
            }
        }
    }
    (dist, prev)
}

// f64 is not Ord; route through bit-ordered u64 (all costs non-negative).
fn ordered(x: f64) -> u64 {
    x.to_bits()
}
fn unordered(b: u64) -> f64 {
    f64::from_bits(b)
}

/// Compute the max-concurrent-flow fraction `λ` for rack-level `demands`
/// on `g` with uniform edge capacity `link_rate` and per-rack aggregate
/// host capacity `host_cap` (applied analytically at the end).
///
/// `phases` trades accuracy for time; 100–300 is a good range.
pub fn max_concurrent_flow(
    g: &Graph,
    tor_of_rack: &[usize],
    demands: &[Demand],
    link_rate: f64,
    host_cap: f64,
    phases: usize,
) -> McfResult {
    let n = g.len();
    let mut edge_offset = vec![0usize; n];
    let mut total_edges = 0;
    for (v, off) in edge_offset.iter_mut().enumerate() {
        *off = total_edges;
        total_edges += g.degree(v);
    }
    if total_edges == 0 || demands.is_empty() {
        return McfResult { lambda: 0.0 };
    }

    const EPS: f64 = 0.07;
    let mut cost = vec![1.0 / link_rate; total_edges];
    let mut load = vec![0.0f64; total_edges];

    for _ in 0..phases {
        for d in demands {
            if d.amount <= 0.0 || d.src == d.dst {
                continue;
            }
            let s = tor_of_rack[d.src];
            let t = tor_of_rack[d.dst];
            let (dist, prev) = dijkstra(g, &cost, &edge_offset, s);
            if !dist[t].is_finite() {
                continue;
            }
            // Route the whole demand on the cheapest path this phase.
            let mut v = t;
            while v != s {
                let (pv, i) = prev[v];
                let eid = edge_offset[pv] + i;
                load[eid] += d.amount;
                cost[eid] *= 1.0 + EPS * d.amount / link_rate;
                v = pv;
            }
        }
    }

    // Scale to fit: each demand has routed `phases * amount` total.
    let worst = load.iter().map(|&l| l / link_rate).fold(0.0f64, f64::max);
    let mut lambda = if worst > 0.0 {
        phases as f64 / worst
    } else {
        f64::INFINITY
    };

    // Host aggregate capacity at each rack (egress and ingress).
    let racks = tor_of_rack.len();
    let mut out = vec![0.0; racks];
    let mut inn = vec![0.0; racks];
    for d in demands {
        out[d.src] += d.amount;
        inn[d.dst] += d.amount;
    }
    for r in 0..racks {
        if out[r] > 0.0 {
            lambda = lambda.min(host_cap / out[r]);
        }
        if inn[r] > 0.0 {
            lambda = lambda.min(host_cap / inn[r]);
        }
    }
    McfResult {
        lambda: lambda.min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo::expander::{ExpanderParams, ExpanderTopology};

    #[test]
    fn single_path_network() {
        // Line 0-1-2 with 10G links; demand 0->2 of 10 -> λ = 1.
        let mut g = Graph::new(3);
        g.add_link(0, 1, 0);
        g.add_link(1, 2, 0);
        let demands = vec![Demand {
            src: 0,
            dst: 2,
            amount: 10.0,
        }];
        let tor = vec![0, 1, 2];
        let r = max_concurrent_flow(&g, &tor, &demands, 10.0, 100.0, 50);
        assert!((r.lambda - 1.0).abs() < 0.05, "λ={}", r.lambda);
    }

    #[test]
    fn contention_halves() {
        // Two demands share one 10G edge; each offers 10 -> λ = 0.5.
        let mut g = Graph::new(2);
        g.add_link(0, 1, 0);
        let demands = vec![
            Demand {
                src: 0,
                dst: 1,
                amount: 10.0,
            },
            Demand {
                src: 0,
                dst: 1,
                amount: 10.0,
            },
        ];
        let tor = vec![0, 1];
        let r = max_concurrent_flow(&g, &tor, &demands, 10.0, 1000.0, 50);
        assert!((r.lambda - 0.5).abs() < 0.03, "λ={}", r.lambda);
    }

    #[test]
    fn parallel_paths_split() {
        // Diamond: 0->{1,2}->3, all 10G. Demand 20 from 0 to 3 -> λ = 1
        // (optimal splits across both).
        let mut g = Graph::new(4);
        g.add_link(0, 1, 0);
        g.add_link(0, 2, 1);
        g.add_link(1, 3, 0);
        g.add_link(2, 3, 0);
        let demands = vec![Demand {
            src: 0,
            dst: 3,
            amount: 20.0,
        }];
        let tor = vec![0, 1, 2, 3];
        let r = max_concurrent_flow(&g, &tor, &demands, 10.0, 1000.0, 200);
        assert!(r.lambda > 0.9, "λ={}", r.lambda);
    }

    #[test]
    fn host_cap_binds() {
        let mut g = Graph::new(2);
        g.add_link(0, 1, 0);
        let demands = vec![Demand {
            src: 0,
            dst: 1,
            amount: 10.0,
        }];
        let tor = vec![0, 1];
        let r = max_concurrent_flow(&g, &tor, &demands, 100.0, 5.0, 20);
        assert!((r.lambda - 0.5).abs() < 1e-9);
    }

    #[test]
    fn expander_permutation_reasonable() {
        let t = ExpanderTopology::generate(
            ExpanderParams {
                racks: 64,
                uplinks: 7,
                hosts_per_rack: 5,
            },
            5,
        );
        let n = 64;
        let demands: Vec<Demand> = (0..n)
            .map(|r| Demand {
                src: r,
                dst: (r + n / 2) % n,
                amount: 50.0,
            })
            .collect();
        let tor: Vec<usize> = (0..n).collect();
        let r = max_concurrent_flow(t.graph(), &tor, &demands, 10.0, 50.0, 150);
        // Capacity bound: 64*7*10 / (64*50*avg_len≈2.3) ≈ 0.6.
        assert!(r.lambda > 0.4 && r.lambda < 0.75, "λ={}", r.lambda);
    }
}
