//! `flowsim` — flow-level max-min fair throughput computation.
//!
//! The paper's throughput-versus-cost sweeps (Figures 10, 12, 15) report
//! steady-state delivered throughput for fluid workloads. Packet simulation
//! at those scales is wasteful; the standard methodology (also used by the
//! "beyond fat-trees" cost study \[29\] the paper borrows α from) is a
//! fluid model: route each demand, then compute the max-min fair rate
//! allocation by progressive filling.
//!
//! * [`solver`] — capacities + fixed fractional routes → max-min rates,
//! * [`models`] — builders translating `topo` topologies and rack-level
//!   demand matrices into solver instances (ECMP splitting for Clos and
//!   expanders; time-shared mesh + two-hop Valiant overflow for
//!   Opera/RotorNet).
//!
//! # Example
//!
//! ```
//! use flowsim::{max_min_rates, Instance};
//!
//! // Two flows share a 10 Gb/s link; one also crosses a 4 Gb/s link.
//! let mut inst = Instance::new();
//! let fat = inst.add_link(10.0);
//! let thin = inst.add_link(4.0);
//! inst.add_flow(vec![(fat, 1.0)], f64::INFINITY);
//! inst.add_flow(vec![(fat, 1.0), (thin, 1.0)], f64::INFINITY);
//! let rates = max_min_rates(&inst);
//! assert!((rates[1] - 4.0).abs() < 1e-9); // bottlenecked on the thin link
//! assert!((rates[0] - 6.0).abs() < 1e-9); // takes the rest
//! ```

pub mod mcf;
pub mod models;
pub mod solver;

pub use mcf::{max_concurrent_flow, McfResult, McfSolver, McfState};
pub use models::{
    clos_throughput, expander_model, graph_model, opera_model, Demand, ModelResult, Routing,
};
pub use solver::{max_min_rates, Instance};
