//! Topology-specific flow-model builders.
//!
//! Translate a topology plus a rack-level demand matrix into a solver
//! [`Instance`]:
//!
//! * **Graph networks** (static expander, folded Clos): demands are routed
//!   over equal-split ECMP shortest paths on the switch graph; per-rack
//!   host aggregate links model the NIC capacity at both ends.
//! * **Opera / RotorNet**: over one cycle every ordered rack pair owns a
//!   direct circuit for `(u − g)/N` of the time, so the fluid view is a
//!   complete mesh of thin links; bulk demand rides the mesh directly, and
//!   any unsatisfied remainder is offered to two-hop Valiant paths on the
//!   residual mesh (RotorLB §4.2.2) at a 100% bandwidth tax.

use crate::solver::{max_min_rates, Instance, LinkId};
use topo::graph::Graph;
use topo::opera::OperaTopology;

/// A rack-level traffic demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Demand {
    /// Source rack.
    pub src: usize,
    /// Destination rack.
    pub dst: usize,
    /// Offered load (same units as link rates, e.g. Gb/s).
    pub amount: f64,
}

/// Result of a model evaluation.
#[derive(Debug, Clone)]
pub struct ModelResult {
    /// Achieved rate per demand (same order as the input).
    pub rates: Vec<f64>,
    /// Offered amount per demand.
    pub demands: Vec<f64>,
}

impl ModelResult {
    /// Aggregate delivered / aggregate offered, in `[0, 1]`.
    pub fn throughput_fraction(&self) -> f64 {
        let offered: f64 = self.demands.iter().sum();
        if offered == 0.0 {
            return 0.0;
        }
        self.rates.iter().sum::<f64>() / offered
    }

    /// Total delivered rate.
    pub fn delivered(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Minimum per-demand satisfaction fraction (worst-served demand).
    pub fn min_fraction(&self) -> f64 {
        self.rates
            .iter()
            .zip(&self.demands)
            .map(|(&r, &d)| if d > 0.0 { r / d } else { 1.0 })
            .fold(1.0, f64::min)
    }
}

/// Per-unit-rate ECMP load of a `src → dst` demand on the directed edges of
/// `g`. Edge ids are `edge_offset[node] + index_within_adjacency`.
fn ecmp_loads(g: &Graph, edge_offset: &[usize], src: usize, dst: usize) -> Vec<(LinkId, f64)> {
    if src == dst {
        return Vec::new();
    }
    let dist = g.bfs_distances(dst);
    if dist[src] == usize::MAX {
        return Vec::new();
    }
    // Process nodes by decreasing distance-to-dst so flow fractions are
    // final before splitting onward.
    let mut frac = vec![0.0; g.len()];
    frac[src] = 1.0;
    let mut order: Vec<usize> = (0..g.len())
        .filter(|&v| dist[v] != usize::MAX && dist[v] <= dist[src])
        .collect();
    order.sort_unstable_by_key(|&v| std::cmp::Reverse(dist[v]));
    let mut loads: Vec<(LinkId, f64)> = Vec::new();
    for v in order {
        if v == dst || frac[v] == 0.0 {
            continue;
        }
        let next: Vec<usize> = g
            .edges(v)
            .iter()
            .enumerate()
            .filter(|(_, e)| dist[e.to] + 1 == dist[v])
            .map(|(i, _)| i)
            .collect();
        debug_assert!(!next.is_empty(), "no downhill edge on a shortest path");
        let share = frac[v] / next.len() as f64;
        for i in next {
            loads.push((edge_offset[v] + i, share));
            frac[g.edges(v)[i].to] += share;
        }
    }
    loads
}

/// How demands are routed over a graph network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Equal-split over all shortest paths (classic ECMP; right for Clos
    /// fabrics, which have many equal-cost paths).
    EcmpShortest,
    /// Equal-split over up to `k` edge-disjoint short paths (greedy
    /// shortest-first), modeling NDP-style per-packet multipath spraying
    /// on expanders, where single-shortest-path ECMP would waste the
    /// fabric.
    DisjointPaths(usize),
}

/// Hop slack over the shortest path allowed for additional disjoint paths:
/// longer detours hurt more (bandwidth tax) than the extra path helps.
const DISJOINT_SLACK: usize = 2;

/// Up to `k` edge-disjoint paths `src → dst`, greedy shortest-first,
/// keeping only paths within [`DISJOINT_SLACK`] hops of the shortest.
/// Each path is a list of directed edge ids.
fn disjoint_paths(
    g: &Graph,
    edge_offset: &[usize],
    src: usize,
    dst: usize,
    k: usize,
) -> Vec<Vec<LinkId>> {
    let total_edges: usize = (0..g.len()).map(|v| g.degree(v)).sum();
    let mut used = vec![false; total_edges];
    let mut paths: Vec<Vec<LinkId>> = Vec::new();
    let mut max_len = usize::MAX;
    for _ in 0..k {
        // BFS over unused edges, remembering the incoming edge id.
        let mut prev_edge = vec![usize::MAX; g.len()];
        let mut prev_node = vec![usize::MAX; g.len()];
        let mut seen = vec![false; g.len()];
        seen[src] = true;
        let mut queue = std::collections::VecDeque::from([src]);
        while let Some(v) = queue.pop_front() {
            if v == dst {
                break;
            }
            for (i, e) in g.edges(v).iter().enumerate() {
                let eid = edge_offset[v] + i;
                if used[eid] || seen[e.to] {
                    continue;
                }
                seen[e.to] = true;
                prev_edge[e.to] = eid;
                prev_node[e.to] = v;
                queue.push_back(e.to);
            }
        }
        if !seen[dst] {
            break;
        }
        // Reconstruct the path.
        let mut path = Vec::new();
        let mut v = dst;
        while v != src {
            path.push(prev_edge[v]);
            v = prev_node[v];
        }
        path.reverse();
        if paths.is_empty() {
            max_len = path.len() + DISJOINT_SLACK;
        }
        if path.len() > max_len {
            break; // remaining disjoint paths only get longer
        }
        for &eid in &path {
            used[eid] = true;
        }
        paths.push(path);
    }
    paths
}

/// Evaluate a graph network (expander rack graph or Clos switch graph).
///
/// * `tor_of_rack[r]` maps rack `r` to its graph node (identity for rack
///   graphs; ToR node id for a Clos),
/// * `link_rate` is the capacity of every graph edge,
/// * `host_cap` is the per-rack aggregate NIC capacity (d × host rate),
///   applied at both the sending and receiving rack.
pub fn graph_model(
    g: &Graph,
    tor_of_rack: &[usize],
    demands: &[Demand],
    link_rate: f64,
    host_cap: f64,
    routing: Routing,
) -> ModelResult {
    let mut inst = Instance::new();
    // Directed graph edges.
    let mut edge_offset = vec![0usize; g.len()];
    let mut next = 0;
    for (v, off) in edge_offset.iter_mut().enumerate() {
        *off = next;
        next += g.degree(v);
    }
    for _ in 0..next {
        inst.add_link(link_rate);
    }
    // Host aggregate links per rack (egress at src, ingress at dst).
    let racks = tor_of_rack.len();
    let egress: Vec<LinkId> = (0..racks).map(|_| inst.add_link(host_cap)).collect();
    let ingress: Vec<LinkId> = (0..racks).map(|_| inst.add_link(host_cap)).collect();

    for d in demands {
        let s = tor_of_rack[d.src];
        let t = tor_of_rack[d.dst];
        let mut route = match routing {
            Routing::EcmpShortest => ecmp_loads(g, &edge_offset, s, t),
            Routing::DisjointPaths(k) => {
                let paths = disjoint_paths(g, &edge_offset, s, t, k);
                let mut loads = Vec::new();
                if !paths.is_empty() {
                    // Split inversely proportional to path length: longer
                    // paths carry less (NDP's per-path pull clocks achieve
                    // roughly this in steady state).
                    let norm: f64 = paths.iter().map(|p| 1.0 / p.len() as f64).sum();
                    for p in &paths {
                        let w = (1.0 / p.len() as f64) / norm;
                        for &eid in p {
                            loads.push((eid, w));
                        }
                    }
                }
                loads
            }
        };
        if route.is_empty() && d.src != d.dst {
            // Unreachable destination: demand gets zero rate by giving it
            // an impossible route on a zero-capacity link.
            let dead = inst.add_link(0.0);
            route.push((dead, 1.0));
        }
        route.push((egress[d.src], 1.0));
        route.push((ingress[d.dst], 1.0));
        inst.add_flow(route, d.amount);
    }
    let rates = max_min_rates(&inst);
    ModelResult {
        rates,
        demands: demands.iter().map(|d| d.amount).collect(),
    }
}

/// Expander evaluation with the NDP multipath default (`u`-way disjoint
/// paths, where `u` is the rack degree).
pub fn expander_model(
    g: &Graph,
    tor_of_rack: &[usize],
    demands: &[Demand],
    link_rate: f64,
    host_cap: f64,
) -> ModelResult {
    let u = if g.is_empty() { 1 } else { g.degree(0).max(1) };
    graph_model(
        g,
        tor_of_rack,
        demands,
        link_rate,
        host_cap,
        Routing::DisjointPaths(u),
    )
}

/// Analytic folded-Clos throughput per unit of offered per-host load: an
/// `F:1` over-subscribed Clos admits `min(1, 1/F)` of any all-cross-rack
/// workload, independent of pattern (§5.6). `alpha` per Appendix A,
/// `tiers = 3`.
pub fn clos_throughput(alpha: f64) -> f64 {
    let f = topo::cost::clos_oversubscription(alpha, 3);
    (1.0 / f).min(1.0)
}

/// Evaluate Opera (or a RotorNet rotor plane) on rack-level demands.
///
/// The cycle-averaged mesh gives every ordered pair `rate·(u−g)/N` of
/// direct capacity (`duty` additionally derates for guard bands). Demands
/// first fill direct circuits max-min fairly; the unsatisfied remainder is
/// then spread over two-hop Valiant paths on the residual mesh when
/// `allow_vlb` (RotorLB's skew handling).
pub fn opera_model(
    topo: &OperaTopology,
    demands: &[Demand],
    link_rate: f64,
    duty: f64,
    allow_vlb: bool,
) -> ModelResult {
    let n = topo.racks();
    let u = topo.switches();
    let g = topo.params().groups;
    let d = topo.params().hosts_per_rack;
    let pair_cap = link_rate * duty * (u - g) as f64 / n as f64;
    let host_cap = d as f64 * link_rate;

    let mut inst = Instance::new();
    // Mesh links, ordered pairs (a, b): id = a*n + b.
    for _ in 0..n * n {
        inst.add_link(pair_cap);
    }
    let egress: Vec<LinkId> = (0..n).map(|_| inst.add_link(host_cap)).collect();
    let ingress: Vec<LinkId> = (0..n).map(|_| inst.add_link(host_cap)).collect();

    // Phase 1: direct circuits only.
    for dem in demands {
        let route = vec![
            (dem.src * n + dem.dst, 1.0),
            (egress[dem.src], 1.0),
            (ingress[dem.dst], 1.0),
        ];
        inst.add_flow(route, dem.amount);
    }
    let direct_rates = max_min_rates(&inst);
    if !allow_vlb {
        return ModelResult {
            rates: direct_rates,
            demands: demands.iter().map(|d| d.amount).collect(),
        };
    }

    // Phase 2: leftover demand over two-hop paths on residual capacity.
    let residual = inst.residual(&direct_rates);
    let mut inst2 = Instance::new();
    for &cap in &residual {
        inst2.add_link(cap);
    }
    let mut vlb_flows = Vec::new();
    for (i, dem) in demands.iter().enumerate() {
        let leftover = (dem.amount - direct_rates[i]).max(0.0);
        if leftover <= 1e-12 || n <= 2 {
            continue;
        }
        // Spread uniformly over all intermediates m ∉ {src, dst}; each
        // unit of VLB rate loads both mesh hops and both host links.
        let mids: Vec<usize> = (0..n).filter(|&m| m != dem.src && m != dem.dst).collect();
        let w = 1.0 / mids.len() as f64;
        let mut route = Vec::with_capacity(2 * mids.len() + 2);
        for &m in &mids {
            route.push((dem.src * n + m, w));
            route.push((m * n + dem.dst, w));
        }
        route.push((egress[dem.src], 1.0));
        route.push((ingress[dem.dst], 1.0));
        let fid = inst2.add_flow(route, leftover);
        vlb_flows.push((i, fid));
    }
    let vlb_rates = max_min_rates(&inst2);
    let mut rates = direct_rates;
    for (i, fid) in vlb_flows {
        rates[i] += vlb_rates[fid];
    }
    ModelResult {
        rates,
        demands: demands.iter().map(|d| d.amount).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo::expander::{ExpanderParams, ExpanderTopology};
    use topo::opera::OperaParams;

    fn opera24() -> OperaTopology {
        OperaTopology::generate(
            OperaParams {
                racks: 24,
                uplinks: 4,
                hosts_per_rack: 4,
                groups: 1,
            },
            3,
        )
    }

    #[test]
    fn opera_all_to_all_uses_direct_paths() {
        let t = opera24();
        let n = t.racks();
        // Uniform all-to-all at total host capacity: each rack offers
        // d*rate spread over n-1 destinations.
        let per_pair = 4.0 * 10.0 / (n - 1) as f64;
        let demands: Vec<Demand> = (0..n)
            .flat_map(|a| {
                (0..n).filter(move |&b| b != a).map(move |b| Demand {
                    src: a,
                    dst: b,
                    amount: per_pair,
                })
            })
            .collect();
        let res = opera_model(&t, &demands, 10.0, 1.0, true);
        // Direct mesh capacity per pair: 10*(4-1)/24 = 1.25 > 1.74? No:
        // offered 40/23 = 1.74 > 1.25 -> direct-limited at 1.25, VLB can't
        // help (mesh fully busy). Fraction = 1.25/1.74 ≈ 0.72.
        let expect = 1.25 / per_pair;
        assert!(
            (res.throughput_fraction() - expect).abs() < 0.02,
            "got {} want {}",
            res.throughput_fraction(),
            expect
        );
    }

    #[test]
    fn opera_hotrack_vlb_multiplies_throughput() {
        let t = opera24();
        let demands = vec![Demand {
            src: 0,
            dst: 1,
            amount: 40.0, // full rack demand, d*rate
        }];
        let no_vlb = opera_model(&t, &demands, 10.0, 1.0, false);
        let vlb = opera_model(&t, &demands, 10.0, 1.0, true);
        // Direct-only: one pair link = 10*3/24 = 1.25.
        assert!((no_vlb.delivered() - 1.25).abs() < 1e-6);
        // With VLB the rack can spray across 22 intermediates, bounded by
        // its cycle-averaged uplink capacity (~(u-1)*rate = 30) and the
        // double-charging of relay hops.
        assert!(
            vlb.delivered() > 10.0,
            "VLB delivered only {}",
            vlb.delivered()
        );
        assert!(vlb.delivered() <= 40.0 + 1e-9);
    }

    #[test]
    fn expander_permutation_full_rate() {
        // u=7 expander, rack-level permutation demand d*rate=50 per rack;
        // plenty of capacity -> every demand served at a high fraction.
        let t = ExpanderTopology::generate(
            ExpanderParams {
                racks: 64,
                uplinks: 7,
                hosts_per_rack: 5,
            },
            5,
        );
        let n = t.racks();
        let demands: Vec<Demand> = (0..n)
            .map(|r| Demand {
                src: r,
                dst: (r + n / 2) % n,
                amount: 50.0,
            })
            .collect();
        let tor: Vec<usize> = (0..n).collect();
        let res = expander_model(t.graph(), &tor, &demands, 10.0, 50.0);
        // Average path length ~2.5 -> aggregate bandwidth tax ~150%; with
        // u=7 uplinks per rack serving d=5 hosts' demand, throughput should
        // be around 7*10 / (2.5 * 50) ≈ 0.56 — well above Clos' 1/3, well
        // below 1.
        let f = res.throughput_fraction();
        // The fixed-route disjoint-path model is pessimistic vs optimal
        // routing (see `mcf` for the optimal-routing bound); it should
        // still clearly beat a 3:1 Clos' 1/5.5... per-host admission and
        // stay below 1.
        assert!(f > 0.2 && f < 0.95, "throughput fraction {f}");
    }

    #[test]
    fn expander_single_demand_limited_by_host_cap() {
        let t = ExpanderTopology::generate(
            ExpanderParams {
                racks: 16,
                uplinks: 5,
                hosts_per_rack: 5,
            },
            6,
        );
        let tor: Vec<usize> = (0..16).collect();
        let demands = vec![Demand {
            src: 0,
            dst: 8,
            amount: 1e9,
        }];
        let res = expander_model(t.graph(), &tor, &demands, 10.0, 50.0);
        // Min cut is u*rate = 50 = host cap; either binds at 50.
        assert!(res.delivered() <= 50.0 + 1e-6);
        assert!(res.delivered() > 29.0, "delivered {}", res.delivered());
    }

    #[test]
    fn clos_analytic_values() {
        assert!((clos_throughput(4.0 / 3.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((clos_throughput(2.0) - 0.5).abs() < 1e-12);
        assert!((clos_throughput(4.0) - 1.0).abs() < 1e-12);
        assert!((clos_throughput(8.0) - 1.0).abs() < 1e-12); // capped
    }

    #[test]
    fn ecmp_loads_conserve_flow() {
        let t = ExpanderTopology::generate(
            ExpanderParams {
                racks: 20,
                uplinks: 4,
                hosts_per_rack: 4,
            },
            7,
        );
        let g = t.graph();
        let mut edge_offset = vec![0usize; g.len()];
        let mut next = 0;
        for (v, off) in edge_offset.iter_mut().enumerate() {
            *off = next;
            next += g.degree(v);
        }
        let loads = ecmp_loads(g, &edge_offset, 0, 13);
        // Loads out of the source sum to 1.
        let src_out: f64 = loads
            .iter()
            .filter(|&&(l, _)| l >= edge_offset[0] && l < edge_offset[0] + g.degree(0))
            .map(|&(_, w)| w)
            .sum();
        assert!((src_out - 1.0).abs() < 1e-9, "src out {src_out}");
        // All weights positive and ≤ 1.
        assert!(loads.iter().all(|&(_, w)| w > 0.0 && w <= 1.0));
    }

    #[test]
    fn duty_scales_opera_capacity() {
        let t = opera24();
        let demands = vec![Demand {
            src: 2,
            dst: 9,
            amount: 100.0,
        }];
        let full = opera_model(&t, &demands, 10.0, 1.0, false);
        let derated = opera_model(&t, &demands, 10.0, 0.9, false);
        assert!((derated.delivered() / full.delivered() - 0.9).abs() < 1e-9);
    }
}
