//! Max-min fair rate allocation by progressive filling.
//!
//! An [`Instance`] is a set of capacitated links and a set of flows, each
//! with a *fixed fractional route*: the load the flow places on each link
//! per unit of its rate (e.g. ECMP splits put fractional load on many
//! links). Progressive filling raises all unfrozen flow rates uniformly;
//! when a link saturates, the flows crossing it freeze. The result is the
//! unique max-min fair allocation for the fixed routing, optionally capped
//! per-flow by a demand ceiling.

/// Index of a link.
pub type LinkId = usize;

/// A flow-level problem instance.
#[derive(Debug, Clone, Default)]
pub struct Instance {
    caps: Vec<f64>,
    /// Per flow: sparse (link, load-per-unit-rate) pairs.
    routes: Vec<Vec<(LinkId, f64)>>,
    /// Per flow: maximum useful rate (demand), `f64::INFINITY` if elastic.
    ceilings: Vec<f64>,
}

impl Instance {
    /// Empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a link with capacity `cap`; returns its id.
    pub fn add_link(&mut self, cap: f64) -> LinkId {
        assert!(cap >= 0.0 && cap.is_finite());
        self.caps.push(cap);
        self.caps.len() - 1
    }

    /// Add a flow with the given route loads and demand ceiling; returns
    /// its index. Duplicate links in `route` are allowed (loads add).
    pub fn add_flow(&mut self, route: Vec<(LinkId, f64)>, ceiling: f64) -> usize {
        for &(l, w) in &route {
            assert!(l < self.caps.len(), "route uses unknown link {l}");
            assert!(w >= 0.0 && w.is_finite());
        }
        self.routes.push(route);
        self.ceilings.push(ceiling);
        self.routes.len() - 1
    }

    /// Number of links.
    pub fn links(&self) -> usize {
        self.caps.len()
    }

    /// Number of flows.
    pub fn flows(&self) -> usize {
        self.routes.len()
    }

    /// Remaining capacity per link after allocating `rates`.
    pub fn residual(&self, rates: &[f64]) -> Vec<f64> {
        let mut rem = self.caps.clone();
        for (f, route) in self.routes.iter().enumerate() {
            for &(l, w) in route {
                rem[l] -= rates[f] * w;
            }
        }
        for r in &mut rem {
            if *r < 0.0 && *r > -1e-6 {
                *r = 0.0;
            }
        }
        rem
    }
}

/// Compute the max-min fair rates of an instance.
pub fn max_min_rates(inst: &Instance) -> Vec<f64> {
    const EPS: f64 = 1e-12;
    let nf = inst.flows();
    let mut rates = vec![0.0; nf];
    let mut frozen = vec![false; nf];
    let mut rem = inst.caps.clone();

    // Freeze zero-route flows immediately (they are unconstrained; treat
    // their rate as their ceiling if finite, else 0).
    for f in 0..nf {
        if inst.routes[f].iter().all(|&(_, w)| w <= EPS) {
            frozen[f] = true;
            rates[f] = if inst.ceilings[f].is_finite() {
                inst.ceilings[f]
            } else {
                0.0
            };
        }
    }

    let mut load = vec![0.0; inst.links()];
    loop {
        // Load per link from unfrozen flows.
        load.fill(0.0);
        let mut any = false;
        for (f, &is_frozen) in frozen.iter().enumerate() {
            if is_frozen {
                continue;
            }
            any = true;
            for &(l, w) in &inst.routes[f] {
                load[l] += w;
            }
        }
        if !any {
            break;
        }
        // Largest uniform increment permitted by links and ceilings.
        let mut delta = f64::INFINITY;
        for l in 0..inst.links() {
            if load[l] > EPS {
                delta = delta.min(rem[l] / load[l]);
            }
        }
        for f in 0..nf {
            if !frozen[f] && inst.ceilings[f].is_finite() {
                delta = delta.min(inst.ceilings[f] - rates[f]);
            }
        }
        if !delta.is_finite() {
            // No binding constraint: elastic flows with no capacity limit.
            break;
        }
        let delta = delta.max(0.0);
        // Apply.
        for f in 0..nf {
            if frozen[f] {
                continue;
            }
            rates[f] += delta;
            for &(l, w) in &inst.routes[f] {
                rem[l] -= delta * w;
            }
        }
        // Freeze flows at saturated links or at their ceiling.
        let mut progress = false;
        for f in 0..nf {
            if frozen[f] {
                continue;
            }
            let at_ceiling = inst.ceilings[f].is_finite() && rates[f] + EPS >= inst.ceilings[f];
            let at_bottleneck = inst.routes[f]
                .iter()
                .any(|&(l, w)| w > EPS && rem[l] <= 1e-9);
            if at_ceiling || at_bottleneck {
                frozen[f] = true;
                progress = true;
            }
        }
        if !progress {
            debug_assert!(delta > 0.0, "stuck without progress");
            if delta <= 0.0 {
                break;
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn single_link_fair_share() {
        let mut inst = Instance::new();
        let l = inst.add_link(10.0);
        for _ in 0..4 {
            inst.add_flow(vec![(l, 1.0)], f64::INFINITY);
        }
        let r = max_min_rates(&inst);
        assert!(r.iter().all(|&x| close(x, 2.5)), "{r:?}");
    }

    #[test]
    fn classic_max_min_example() {
        // Two links: A (cap 10) shared by f0,f1; B (cap 4) used by f1,f2.
        // Max-min: f1,f2 get 2 (B bottleneck); f0 gets 8.
        let mut inst = Instance::new();
        let a = inst.add_link(10.0);
        let b = inst.add_link(4.0);
        inst.add_flow(vec![(a, 1.0)], f64::INFINITY);
        inst.add_flow(vec![(a, 1.0), (b, 1.0)], f64::INFINITY);
        inst.add_flow(vec![(b, 1.0)], f64::INFINITY);
        let r = max_min_rates(&inst);
        assert!(close(r[1], 2.0) && close(r[2], 2.0), "{r:?}");
        assert!(close(r[0], 8.0), "{r:?}");
    }

    #[test]
    fn ceiling_caps_rate() {
        let mut inst = Instance::new();
        let l = inst.add_link(10.0);
        inst.add_flow(vec![(l, 1.0)], 1.0);
        inst.add_flow(vec![(l, 1.0)], f64::INFINITY);
        let r = max_min_rates(&inst);
        assert!(close(r[0], 1.0), "{r:?}");
        assert!(close(r[1], 9.0), "{r:?}");
    }

    #[test]
    fn fractional_routes_weighted_load() {
        // One flow split over two parallel links (weight 0.5 each), one
        // flow pinned to the first link.
        let mut inst = Instance::new();
        let a = inst.add_link(10.0);
        let b = inst.add_link(10.0);
        inst.add_flow(vec![(a, 0.5), (b, 0.5)], f64::INFINITY);
        inst.add_flow(vec![(a, 1.0)], f64::INFINITY);
        let r = max_min_rates(&inst);
        // Progressive fill: both rise; link a saturates when
        // 0.5*x + x = 10 at x = 6.67 -> both freeze (split flow crosses a).
        assert!(close(r[0], 20.0 / 3.0), "{r:?}");
        assert!(close(r[1], 20.0 / 3.0), "{r:?}");
    }

    #[test]
    fn vlb_double_charge() {
        // A two-hop Valiant flow loads both hops: weight 1 on each of two
        // links. Against a direct flow on one of them, each gets 5.
        let mut inst = Instance::new();
        let a = inst.add_link(10.0);
        let b = inst.add_link(10.0);
        inst.add_flow(vec![(a, 1.0), (b, 1.0)], f64::INFINITY);
        inst.add_flow(vec![(b, 1.0)], f64::INFINITY);
        let r = max_min_rates(&inst);
        assert!(close(r[0], 5.0) && close(r[1], 5.0), "{r:?}");
    }

    #[test]
    fn residual_accounts_allocations() {
        let mut inst = Instance::new();
        let l = inst.add_link(10.0);
        inst.add_flow(vec![(l, 1.0)], 4.0);
        let r = max_min_rates(&inst);
        let rem = inst.residual(&r);
        assert!(close(rem[0], 6.0));
    }

    #[test]
    fn zero_route_flow_takes_ceiling() {
        let mut inst = Instance::new();
        inst.add_link(1.0);
        inst.add_flow(vec![], 3.0);
        let r = max_min_rates(&inst);
        assert!(close(r[0], 3.0));
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new();
        assert!(max_min_rates(&inst).is_empty());
    }
}
