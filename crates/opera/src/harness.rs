//! Experiment drivers: run a network on a workload, collect the statistics
//! the paper's figures report.

use netsim::{FlowClass, FlowTracker};
use simkit::stats::Samples;
use simkit::SimTime;

/// FCT statistics within one flow-size bin.
#[derive(Debug, Clone)]
pub struct FctBin {
    /// Inclusive lower size bound (bytes).
    pub lo: u64,
    /// Exclusive upper size bound (bytes).
    pub hi: u64,
    /// Completed flows in the bin.
    pub count: usize,
    /// Flows in the bin that did not finish.
    pub unfinished: usize,
    /// Mean FCT, µs.
    pub avg_us: f64,
    /// 99th-percentile FCT, µs.
    pub p99_us: f64,
    /// Median FCT, µs.
    pub p50_us: f64,
}

/// FCT statistics across logarithmic flow-size bins (the x-axis of
/// Figures 7 and 9).
#[derive(Debug, Clone)]
pub struct FctStats {
    /// Per-bin statistics.
    pub bins: Vec<FctBin>,
}

impl FctStats {
    /// Bin completed flows by size with the given edges (must be
    /// ascending; bins are `[e[i], e[i+1])`).
    pub fn from_tracker(tracker: &FlowTracker, edges: &[u64]) -> Self {
        let mut bins = Vec::new();
        for w in edges.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let mut samples = Samples::new();
            let mut unfinished = 0;
            for f in tracker.flows() {
                if f.size >= lo && f.size < hi {
                    match f.fct() {
                        Some(t) => samples.push(t.as_us_f64()),
                        None => unfinished += 1,
                    }
                }
            }
            bins.push(FctBin {
                lo,
                hi,
                count: samples.len(),
                unfinished,
                avg_us: samples.mean().unwrap_or(f64::NAN),
                p99_us: samples.quantile(0.99).unwrap_or(f64::NAN),
                p50_us: samples.quantile(0.5).unwrap_or(f64::NAN),
            });
        }
        FctStats { bins }
    }

    /// Standard logarithmic edges 1 KB … 1 GB (one bin per decade phase).
    pub fn default_edges() -> Vec<u64> {
        let mut edges = Vec::new();
        let mut e = 1_000u64;
        while e < 1_000_000_000 {
            edges.push(e);
            edges.push(e * 3); // two bins per decade: 1-3, 3-10
            e *= 10;
        }
        edges.push(1_000_000_000);
        edges.push(2_000_000_000);
        edges
    }
}

/// Summary of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// FCT statistics over size bins.
    pub fct: FctStats,
    /// Fraction of registered flows that completed.
    pub completion: f64,
    /// Total payload bytes delivered.
    pub delivered_bytes: u64,
    /// Wall-clock of the simulation's end (max of completion times).
    pub end_time: SimTime,
    /// Aggregate delivered throughput over the run, Gb/s.
    pub goodput_gbps: f64,
    /// Mean FCT of low-latency flows, µs.
    pub low_latency_avg_us: f64,
    /// Mean FCT of bulk flows, µs.
    pub bulk_avg_us: f64,
}

impl ExperimentResult {
    /// Summarize a tracker after a run that ended at `end`.
    pub fn from_tracker(tracker: &FlowTracker, end: SimTime) -> Self {
        let fct = FctStats::from_tracker(tracker, &FctStats::default_edges());
        let total = tracker.len().max(1);
        let delivered: u64 = tracker.flows().iter().map(|f| f.received).sum();
        let mut ll = Samples::new();
        let mut bulk = Samples::new();
        let mut last = SimTime::ZERO;
        for f in tracker.flows() {
            if let Some(t) = f.fct() {
                match f.class {
                    FlowClass::LowLatency => ll.push(t.as_us_f64()),
                    FlowClass::Bulk => bulk.push(t.as_us_f64()),
                }
            }
            if let Some(fin) = f.finish {
                last = last.max(fin);
            }
        }
        let span = if last > SimTime::ZERO { last } else { end };
        ExperimentResult {
            fct,
            completion: tracker.completed() as f64 / total as f64,
            delivered_bytes: delivered,
            end_time: span,
            goodput_gbps: delivered as f64 * 8.0 / span.as_secs_f64().max(1e-12) / 1e9,
            low_latency_avg_us: ll.mean().unwrap_or(f64::NAN),
            bulk_avg_us: bulk.mean().unwrap_or(f64::NAN),
        }
    }
}

/// Print an FCT table in the layout of Figures 7/9 (one row per size bin).
pub fn print_fct_table(label: &str, stats: &FctStats) {
    println!("# {label}");
    println!(
        "{:>12} {:>12} {:>8} {:>12} {:>12} {:>12}",
        "size_lo", "size_hi", "flows", "avg_us", "p50_us", "p99_us"
    );
    for b in &stats.bins {
        if b.count == 0 && b.unfinished == 0 {
            continue;
        }
        println!(
            "{:>12} {:>12} {:>8} {:>12.1} {:>12.1} {:>12.1}",
            b.lo, b.hi, b.count, b.avg_us, b.p50_us, b.p99_us
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker_with(flows: &[(u64, Option<u64>)]) -> FlowTracker {
        // (size, Some(fct_us)) pairs.
        let mut t = FlowTracker::new();
        for &(size, fct) in flows {
            let id = t.register(0, 1, size, FlowClass::LowLatency, SimTime::ZERO);
            if let Some(us) = fct {
                t.deliver(id, size, SimTime::from_us(us));
            }
        }
        t
    }

    #[test]
    fn bins_partition_flows() {
        let t = tracker_with(&[
            (500, Some(10)),
            (5_000, Some(20)),
            (5_500, Some(40)),
            (2_000_000, Some(1000)),
            (900, None),
        ]);
        let stats = FctStats::from_tracker(&t, &[0, 1_000, 10_000, 10_000_000]);
        assert_eq!(stats.bins.len(), 3);
        assert_eq!(stats.bins[0].count, 1);
        assert_eq!(stats.bins[0].unfinished, 1);
        assert_eq!(stats.bins[1].count, 2);
        assert_eq!(stats.bins[1].avg_us, 30.0);
        assert_eq!(stats.bins[2].count, 1);
    }

    #[test]
    fn experiment_result_aggregates() {
        let t = tracker_with(&[(1_000, Some(10)), (1_000, Some(30)), (1_000, None)]);
        let r = ExperimentResult::from_tracker(&t, SimTime::from_us(100));
        assert!((r.completion - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.delivered_bytes, 2_000);
        assert_eq!(r.end_time, SimTime::from_us(30));
        assert!((r.low_latency_avg_us - 20.0).abs() < 1e-9);
        assert!(r.bulk_avg_us.is_nan());
    }

    #[test]
    fn default_edges_ascending() {
        let e = FctStats::default_edges();
        assert!(e.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(e[0], 1_000);
    }
}
