//! Per-slice forwarding tables (§4.3).
//!
//! A ToR holds two tables per slice: a *low-latency* table giving the
//! ECMP set of uplinks on shortest expander paths toward every destination
//! rack, and a *bulk* table giving the uplink — if any — whose circuit
//! reaches the destination rack directly this slice.
//!
//! Tables are precomputed at build time (Opera fixes its schedule at
//! design time; §3.3) and stored flat: up to [`MAX_ECMP`] uplink choices
//! per `(slice, dst rack, current rack)` entry.

use topo::opera::OperaTopology;

/// Maximum ECMP fanout stored per entry.
pub const MAX_ECMP: usize = 8;

/// Sentinel: no uplink.
pub const NO_PORT: u8 = u8::MAX;

/// Flat low-latency next-hop table for every slice of a cycle.
#[derive(Debug, Clone)]
pub struct LowLatencyTables {
    racks: usize,
    slices: usize,
    /// `[(slice * racks + dst) * racks + cur]` → up to MAX_ECMP uplinks.
    entries: Vec<[u8; MAX_ECMP]>,
    /// Number of valid choices per entry (parallel to `entries`).
    counts: Vec<u8>,
}

/// Remove circuits using the failed `(rack, uplink)` transceivers from a
/// slice graph (§3.6.2: route around components marked bad).
fn prune_failed(g: &topo::graph::Graph, bad: &[(usize, usize)]) -> topo::graph::Graph {
    if bad.is_empty() {
        return g.clone();
    }
    let mut out = topo::graph::Graph::new(g.len());
    for v in 0..g.len() {
        for e in g.edges(v) {
            if bad.contains(&(v, e.port)) || bad.contains(&(e.to, e.port)) {
                continue;
            }
            out.add_edge(v, e.to, e.port);
        }
    }
    out
}

impl LowLatencyTables {
    /// Build tables for all slices of `topo` from per-slice BFS.
    pub fn build(topo: &OperaTopology) -> Self {
        Self::build_with_failures(topo, &[])
    }

    /// Build tables routing around failed `(rack, uplink)` transceivers.
    pub fn build_with_failures(topo: &OperaTopology, bad: &[(usize, usize)]) -> Self {
        let racks = topo.racks();
        let slices = topo.slices_per_cycle();
        let mut entries = vec![[NO_PORT; MAX_ECMP]; slices * racks * racks];
        let mut counts = vec![0u8; slices * racks * racks];
        for s in 0..slices {
            let g = prune_failed(&topo.slice(s).graph(), bad);
            for dst in 0..racks {
                let table = g.next_hops_to(dst);
                for (cur, hops) in table.iter().enumerate() {
                    if cur == dst {
                        continue;
                    }
                    let idx = (s * racks + dst) * racks + cur;
                    let mut n = 0;
                    for e in hops {
                        if n == MAX_ECMP {
                            break;
                        }
                        entries[idx][n] = e.port as u8;
                        n += 1;
                    }
                    counts[idx] = n as u8;
                }
            }
        }
        LowLatencyTables {
            racks,
            slices,
            entries,
            counts,
        }
    }

    /// ECMP uplink choices at `cur` toward `dst` during `slice`.
    /// Empty when `cur == dst` or `dst` is unreachable this slice.
    pub fn next_hops(&self, slice: usize, cur: usize, dst: usize) -> &[u8] {
        let idx = ((slice % self.slices) * self.racks + dst) * self.racks + cur;
        &self.entries[idx][..self.counts[idx] as usize]
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.racks
    }

    /// Slices covered.
    pub fn slices(&self) -> usize {
        self.slices
    }

    /// Total number of installed rules (Table 1 accounting: one rule per
    /// (slice, dst, cur) entry with at least one hop, counted at one ToR).
    pub fn rules_per_tor(&self) -> u64 {
        // Each ToR `cur` stores one rule per (slice, dst); count entries
        // with at least one choice for rack 0 as the representative.
        let mut rules = 0;
        for s in 0..self.slices {
            for dst in 0..self.racks {
                if !self.next_hops(s, 0, dst).is_empty() {
                    rules += 1;
                }
            }
        }
        rules
    }
}

/// Bulk (direct-circuit) table: `uplink[(slice * racks + cur) * racks +
/// dst]`, `NO_PORT` when no direct circuit exists in that slice.
#[derive(Debug, Clone)]
pub struct BulkTables {
    racks: usize,
    slices: usize,
    uplink: Vec<u8>,
}

impl BulkTables {
    /// Build from the slice views.
    pub fn build(topo: &OperaTopology) -> Self {
        Self::build_with_failures(topo, &[])
    }

    /// Build, excluding circuits using failed `(rack, uplink)` ports.
    pub fn build_with_failures(topo: &OperaTopology, bad: &[(usize, usize)]) -> Self {
        let racks = topo.racks();
        let slices = topo.slices_per_cycle();
        let mut uplink = vec![NO_PORT; slices * racks * racks];
        for s in 0..slices {
            let view = topo.slice(s);
            for cur in 0..racks {
                for (dst, sw) in view.direct_destinations(cur) {
                    if bad.contains(&(cur, sw)) || bad.contains(&(dst, sw)) {
                        continue;
                    }
                    uplink[(s * racks + cur) * racks + dst] = sw as u8;
                }
            }
        }
        BulkTables {
            racks,
            slices,
            uplink,
        }
    }

    /// Uplink with a direct circuit `cur → dst` during `slice`, if any.
    pub fn direct_uplink(&self, slice: usize, cur: usize, dst: usize) -> Option<usize> {
        let v = self.uplink[((slice % self.slices) * self.racks + cur) * self.racks + dst];
        if v == NO_PORT {
            None
        } else {
            Some(v as usize)
        }
    }

    /// All `(dst, uplink)` direct circuits of `cur` during `slice`.
    pub fn circuits_of(&self, slice: usize, cur: usize) -> Vec<(usize, usize)> {
        (0..self.racks)
            .filter_map(|dst| self.direct_uplink(slice, cur, dst).map(|u| (dst, u)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo::opera::OperaParams;

    fn topo() -> OperaTopology {
        OperaTopology::generate(
            OperaParams {
                racks: 24,
                uplinks: 4,
                hosts_per_rack: 4,
                groups: 1,
            },
            11,
        )
    }

    #[test]
    fn low_latency_tables_cover_all_pairs() {
        let t = topo();
        let tables = LowLatencyTables::build(&t);
        for s in 0..t.slices_per_cycle() {
            for cur in 0..t.racks() {
                for dst in 0..t.racks() {
                    if cur == dst {
                        assert!(tables.next_hops(s, cur, dst).is_empty());
                    } else {
                        assert!(
                            !tables.next_hops(s, cur, dst).is_empty(),
                            "slice {s}: {cur}->{dst} has no next hop"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn next_hops_avoid_reconfiguring_switch() {
        let t = topo();
        let tables = LowLatencyTables::build(&t);
        for s in 0..t.slices_per_cycle() {
            let bad = t.reconfiguring(s);
            for cur in 0..t.racks() {
                for dst in 0..t.racks() {
                    for &p in tables.next_hops(s, cur, dst) {
                        assert!(
                            !bad.contains(&(p as usize)),
                            "slice {s} routes via reconfiguring switch {p}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn next_hops_make_progress() {
        // Following any table choice must strictly reduce BFS distance.
        let t = topo();
        let tables = LowLatencyTables::build(&t);
        let s = 3;
        let g = t.slice(s).graph();
        for dst in 0..t.racks() {
            let dist = g.bfs_distances(dst);
            for cur in 0..t.racks() {
                if cur == dst {
                    continue;
                }
                for &p in tables.next_hops(s, cur, dst) {
                    let m = t.slice(s).matching_of(p as usize);
                    let nxt = m.partner(cur);
                    assert_eq!(dist[nxt] + 1, dist[cur], "not a shortest-path hop");
                }
            }
        }
    }

    #[test]
    fn bulk_tables_match_direct_slices() {
        let t = topo();
        let tables = BulkTables::build(&t);
        for a in 0..t.racks() {
            for b in 0..t.racks() {
                if a == b {
                    continue;
                }
                let slices_with_direct: Vec<usize> = (0..t.slices_per_cycle())
                    .filter(|&s| tables.direct_uplink(s, a, b).is_some())
                    .collect();
                assert_eq!(slices_with_direct, t.direct_slices(a, b), "pair ({a},{b})");
            }
        }
    }

    #[test]
    fn circuits_count_per_slice() {
        let t = topo();
        let tables = BulkTables::build(&t);
        // With u=4 switches and 1 reconfiguring, each rack has at most 3
        // direct circuits (self-pairings reduce the count).
        for s in 0..t.slices_per_cycle() {
            for cur in 0..t.racks() {
                let c = tables.circuits_of(s, cur);
                assert!(c.len() <= 3, "slice {s} rack {cur}: {} circuits", c.len());
            }
        }
    }

    #[test]
    fn rules_per_tor_scale() {
        let t = topo();
        let tables = LowLatencyTables::build(&t);
        // 24 slices × 23 destinations = 552 low-latency rules.
        assert_eq!(tables.rules_per_tor(), 24 * 23);
    }
}
