//! Routing-state scalability model (Table 1, §6.2).
//!
//! An Opera ToR holds, for each of the `N` topology slices, one
//! low-latency rule per non-rack-local destination (`N − 1`) plus one bulk
//! rule per direct circuit active in that slice (`u − 1` with one switch
//! reconfiguring), so:
//!
//! ```text
//! entries(N, u) = N · (N − 1 + u − 1) = N · (N + u − 2)
//! ```
//!
//! Table 1 reports this count and its utilization of the Barefoot Tofino
//! 65x100GE's rule capacity as measured with the Capilano compiler; the
//! utilization column implies a capacity of ≈1.70 M entries, which we use
//! to reproduce the percentages.

/// Tofino 65x100GE rule capacity implied by Table 1 (entries at 100%).
pub const TOFINO_RULE_CAPACITY: f64 = 1_701_000.0;

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RulesetReport {
    /// Number of racks `N`.
    pub racks: usize,
    /// ToR uplinks `u` (circuit switches).
    pub uplinks: usize,
    /// Total table entries required.
    pub entries: u64,
    /// Percent of switch rule memory used.
    pub utilization_pct: f64,
}

/// Compute the ruleset size for `racks` racks with `uplinks` uplinks.
pub fn ruleset_for(racks: usize, uplinks: usize) -> RulesetReport {
    let entries = racks as u64 * (racks as u64 + uplinks as u64 - 2);
    RulesetReport {
        racks,
        uplinks,
        entries,
        utilization_pct: entries as f64 / TOFINO_RULE_CAPACITY * 100.0,
    }
}

/// The datacenter sizes of Table 1 as `(racks, uplinks)` pairs (uplinks
/// follow `u = k/2` for the radix serving that rack count).
pub fn table1_rows() -> Vec<(usize, usize)> {
    vec![
        (108, 6),
        (252, 9),
        (520, 13),
        (768, 16),
        (1008, 18),
        (1200, 20),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_entries() {
        // Table 1's #Entries column.
        let expect = [12_096u64, 65_268, 276_120, 600_576, 1_032_192, 1_461_600];
        for ((racks, uplinks), want) in table1_rows().into_iter().zip(expect) {
            let got = ruleset_for(racks, uplinks).entries;
            assert_eq!(got, want, "racks={racks}");
        }
    }

    #[test]
    fn matches_published_utilization() {
        let expect = [0.7, 3.8, 16.2, 35.3, 60.7, 85.9];
        for ((racks, uplinks), want) in table1_rows().into_iter().zip(expect) {
            let got = ruleset_for(racks, uplinks).utilization_pct;
            assert!(
                (got - want).abs() < 0.15,
                "racks={racks}: {got:.2}% vs {want}%"
            );
        }
    }

    #[test]
    fn quadratic_growth() {
        let small = ruleset_for(100, 6).entries;
        let big = ruleset_for(200, 6).entries;
        assert!(big > 3 * small && big < 5 * small);
    }
}
