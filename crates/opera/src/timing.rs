//! Topology-slice time constants (§4.1, Figure 6, Appendix B).
//!
//! Consecutive reconfigurations must be spaced by at least `ε + r`, where
//! `ε` is the worst-case end-to-end delay of a low-latency packet (drain a
//! full queue at every hop) and `r` is the circuit-switch reconfiguration
//! delay. The paper's `k = 12` configuration: 24 KB of queue per hop, 5
//! worst-case ToR-to-ToR hops, 500 ns propagation and 10 Gb/s links give
//! `ε = 90 µs`; with `r = 10 µs` a slice is ~100 µs, the per-switch
//! inter-reconfiguration period is `u` slices (≈ 6ε), the duty cycle is
//! ~98%, and a full cycle of a 108-rack network is ~10.8 ms.

use simkit::time::serialization_ns;
use simkit::SimTime;

/// Time constants of an Opera deployment.
#[derive(Debug, Clone, Copy)]
pub struct SliceTiming {
    /// Worst-case end-to-end delay ε.
    pub epsilon: SimTime,
    /// Circuit reconfiguration delay r.
    pub reconfig: SimTime,
}

impl SliceTiming {
    /// Derive ε from first principles: at each of `worst_hops` hops a
    /// packet may wait behind `queue_bytes` of traffic, serialize an MTU,
    /// and cross `prop` of fiber.
    pub fn derive(
        worst_hops: usize,
        queue_bytes: u64,
        mtu: u32,
        gbps: f64,
        prop: SimTime,
        reconfig: SimTime,
    ) -> Self {
        let per_hop =
            serialization_ns(queue_bytes, gbps) + serialization_ns(mtu as u64, gbps) + prop.as_ns();
        SliceTiming {
            epsilon: SimTime::from_ns(per_hop * worst_hops as u64),
            reconfig,
        }
    }

    /// The paper's configuration: ε = 90 µs, r = 10 µs.
    pub fn paper_default() -> Self {
        SliceTiming {
            epsilon: SimTime::from_us(90),
            reconfig: SimTime::from_us(10),
        }
    }

    /// A scaled-down configuration for fast simulations and tests: same
    /// structure, 10× shorter slices (ε = 9 µs, r = 1 µs).
    pub fn fast_sim() -> Self {
        SliceTiming {
            epsilon: SimTime::from_us(9),
            reconfig: SimTime::from_us(1),
        }
    }

    /// Duration of one topology slice (`ε + r`).
    pub fn slice(&self) -> SimTime {
        self.epsilon + self.reconfig
    }

    /// Inter-reconfiguration period of a single switch: `stride` slices
    /// (`stride = u / groups`).
    pub fn switch_period(&self, stride: usize) -> SimTime {
        SimTime::from_ns(self.slice().as_ns() * stride as u64)
    }

    /// Duty cycle: fraction of a switch's period its circuits carry
    /// traffic (`1 − r / period`).
    pub fn duty_cycle(&self, stride: usize) -> f64 {
        let period = self.switch_period(stride).as_ns() as f64;
        1.0 - self.reconfig.as_ns() as f64 / period
    }

    /// Full cycle time for `slices_per_cycle` slices.
    pub fn cycle(&self, slices_per_cycle: usize) -> SimTime {
        SimTime::from_ns(self.slice().as_ns() * slices_per_cycle as u64)
    }

    /// Flow length that amortizes a one-cycle wait to within a factor of
    /// two of its ideal FCT: `cycle × linkrate` bytes (§4.1's 15 MB for
    /// the 10.7 ms cycle at 10 Gb/s).
    pub fn bulk_threshold_bytes(&self, slices_per_cycle: usize, gbps: f64) -> u64 {
        (self.cycle(slices_per_cycle).as_secs_f64() * gbps * 1e9 / 8.0) as u64
    }
}

/// Figure 14 baseline: relative cycle (in slices) without grouping.
pub fn cycle_slices_ungrouped(k: usize) -> usize {
    3 * k * k / 4
}

/// Figure 14 grouped: cycle slices when the `u = k/2` switches are divided
/// into groups of `group_size`, each group cycling in parallel (one switch
/// per group reconfigures at a time ⇒ `u / group_size` simultaneous
/// reconfigurations; Appendix B).
pub fn cycle_slices_grouped(k: usize, group_size: usize) -> usize {
    let n = 3 * k * k / 4;
    let u = k / 2;
    let simultaneous = (u / group_size).max(1);
    n / simultaneous
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let t = SliceTiming::paper_default();
        assert_eq!(t.slice(), SimTime::from_us(100));
        // k=12: u=6, stride 6 -> 600us period, 98.3% duty.
        assert_eq!(t.switch_period(6), SimTime::from_us(600));
        assert!((t.duty_cycle(6) - 0.9833).abs() < 1e-3);
        // 108-slice cycle = 10.8ms (paper: 10.7ms with ε a hair under 90).
        let cycle = t.cycle(108);
        assert!((cycle.as_ms_f64() - 10.8).abs() < 0.2);
        // Bulk threshold ≈ 13.5 MB ~ paper's 15 MB ballpark.
        let thr = t.bulk_threshold_bytes(108, 10.0);
        assert!((10e6..20e6).contains(&(thr as f64)), "threshold {thr}");
    }

    #[test]
    fn derived_epsilon_close_to_paper() {
        let t = SliceTiming::derive(
            5,
            24_000,
            1500,
            10.0,
            SimTime::from_ns(500),
            SimTime::from_us(10),
        );
        // 5 * (19.2us + 1.2us + 0.5us) = 104.5us; the paper rounds down to
        // 90us (their queues drain concurrently with serialization).
        let eps_us = t.epsilon.as_us_f64();
        assert!((80.0..120.0).contains(&eps_us), "ε = {eps_us}µs");
    }

    #[test]
    fn grouping_scales_linearly() {
        // Figure 14: with groups of 6, k=12 -> 108 slices... and cycle
        // slices grow linearly in k (9k per the 3k²/4 / (k/12) algebra).
        assert_eq!(cycle_slices_ungrouped(12), 108);
        // One group at k=12.
        assert_eq!(cycle_slices_grouped(12, 6), 108);
        // "doubling the ToR radix ... cut the cycle time in half by
        // reconfiguring two circuit switches at a time": k=24 grouped is
        // 2x k=12, not 4x.
        assert_eq!(cycle_slices_grouped(24, 6), 216);
        // 9k: linear.
        assert_eq!(cycle_slices_grouped(48, 6), 432);
        // Ungrouped grows quadratically.
        assert_eq!(cycle_slices_ungrouped(24), 432);
        assert_eq!(cycle_slices_ungrouped(48), 1728);
        // Ratio ungrouped/grouped at k=48 is 4 (= u/6 = 24/6).
        assert_eq!(cycle_slices_ungrouped(48) / cycle_slices_grouped(48, 6), 4);
    }

    #[test]
    fn fast_sim_structurally_similar() {
        let f = SliceTiming::fast_sim();
        let p = SliceTiming::paper_default();
        let fr = f.reconfig.as_ns() as f64 / f.slice().as_ns() as f64;
        let pr = p.reconfig.as_ns() as f64 / p.slice().as_ns() as f64;
        assert!((fr - pr).abs() < 1e-9, "same r/slice ratio");
    }
}
