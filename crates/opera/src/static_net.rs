//! Packet-level static baselines: folded Clos and static expander, both
//! running NDP with per-packet multipath spraying and (optionally ideal)
//! priority queuing — the comparison networks of §5.
//!
//! Node layout: hosts `0..H`, then one node per switch-graph vertex
//! (expander: one per rack; Clos: ToRs, aggs, cores). Fabric port `p` of a
//! switch node with `d` attached hosts maps to adjacency-list entry
//! `p − d` of its graph vertex, so routing tables store adjacency indices.

use crate::tokens::{decode, encode, schedule_actions, Token};
use netsim::fabric::{Fabric, LinkSpec, NetEvent, QueueConfig};
use netsim::{FlowClass, FlowTracker, NetLogic, NetWorld, Packet, PacketKind};
use simkit::engine::EventContext;
use simkit::{SimRng, Simulator};
use topo::clos::{ClosParams, ClosTopology};
use topo::expander::{ExpanderParams, ExpanderTopology};
use topo::graph::Graph;
use transport::{Transport, TransportKind};
use workloads::FlowSpec;

/// Which static topology to build.
#[derive(Debug, Clone)]
pub enum StaticTopologyKind {
    /// A static expander over racks.
    Expander(ExpanderParams),
    /// A three-tier folded Clos.
    FoldedClos(ClosParams),
}

/// Configuration of a static-network simulation.
#[derive(Debug, Clone)]
pub struct StaticNetConfig {
    /// Topology.
    pub kind: StaticTopologyKind,
    /// Link rate / propagation delay.
    pub link: LinkSpec,
    /// Queue configuration (trimming on).
    pub queues: QueueConfig,
    /// Low-latency transport (sender kind + parameters).
    pub transport: TransportKind,
    /// Seed for topology + routing randomness.
    pub seed: u64,
}

impl StaticNetConfig {
    /// Small expander for tests: 8 racks × 4 hosts, u = 4.
    pub fn small_expander() -> Self {
        StaticNetConfig {
            kind: StaticTopologyKind::Expander(ExpanderParams {
                racks: 8,
                uplinks: 4,
                hosts_per_rack: 4,
            }),
            link: LinkSpec::paper_default(),
            queues: QueueConfig::builder().build(),
            transport: TransportKind::paper_default(),
            seed: 1,
        }
    }

    /// The paper's 650-host u=7 expander.
    pub fn paper_expander_650() -> Self {
        StaticNetConfig {
            kind: StaticTopologyKind::Expander(ExpanderParams::example_650()),
            link: LinkSpec::paper_default(),
            queues: QueueConfig::builder().build(),
            transport: TransportKind::paper_default(),
            seed: 1,
        }
    }

    /// The paper's 648-host 3:1 folded Clos.
    pub fn paper_clos_648() -> Self {
        StaticNetConfig {
            kind: StaticTopologyKind::FoldedClos(ClosParams::example_648()),
            link: LinkSpec::paper_default(),
            queues: QueueConfig::builder().build(),
            transport: TransportKind::paper_default(),
            seed: 1,
        }
    }
}

/// Static-network logic: NDP hosts + per-packet random shortest-path
/// forwarding on the switch graph.
pub struct StaticLogic {
    /// Configuration (kept for introspection by harnesses).
    pub cfg: StaticNetConfig,
    /// Switch graph.
    graph: Graph,
    /// Hosts per ToR and ToR count (ToRs are graph nodes `0..tors`).
    hosts_per_tor: usize,
    tors: usize,
    hosts: Vec<Box<dyn Transport>>,
    tracker: FlowTracker,
    rng: SimRng,
    /// `next_hop[dst_tor * graph.len() + node]` → adjacency indices on
    /// shortest paths.
    next_hops: Vec<Vec<u8>>,
    pending: Vec<FlowSpec>,
    next_flow: usize,
    /// Packets dropped with no route (should stay zero).
    pub routing_drops: u64,
}

/// Complete simulated static network.
pub type StaticNet = Simulator<NetWorld<StaticLogic>>;

impl StaticLogic {
    fn hosts_total(&self) -> usize {
        self.tors * self.hosts_per_tor
    }
    fn tor_of_host(&self, host: usize) -> usize {
        host / self.hosts_per_tor
    }
    /// Fabric node id of graph vertex `vertex`.
    pub fn switch_node(&self, vertex: usize) -> usize {
        self.hosts_total() + vertex
    }
    /// Fabric port at a switch for adjacency entry `i`: ToRs reserve the
    /// first `hosts_per_tor` ports for hosts.
    fn adj_port(&self, vertex: usize, i: usize) -> usize {
        if vertex < self.tors {
            self.hosts_per_tor + i
        } else {
            i
        }
    }

    /// Results.
    pub fn tracker(&self) -> &FlowTracker {
        &self.tracker
    }

    /// Mutable tracker access (throughput bins).
    pub fn tracker_mut(&mut self) -> &mut FlowTracker {
        &mut self.tracker
    }

    fn inject_due_flows(&mut self, fabric: &mut Fabric, ctx: &mut EventContext<'_, NetEvent>) {
        while self.next_flow < self.pending.len() && self.pending[self.next_flow].start <= ctx.now()
        {
            let spec = self.pending[self.next_flow];
            self.next_flow += 1;
            let id = self.tracker.register(
                spec.src,
                spec.dst,
                spec.size,
                FlowClass::LowLatency,
                ctx.now(),
            );
            let actions = self.hosts[spec.src].start_flow(fabric, ctx, id, spec.dst, spec.size);
            schedule_actions(ctx, spec.src, actions);
        }
        if self.next_flow < self.pending.len() {
            ctx.schedule_at(
                self.pending[self.next_flow].start,
                NetEvent::Timer {
                    token: encode(Token::FlowArrival),
                },
            );
        }
    }
}

impl NetLogic for StaticLogic {
    fn on_arrive(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        node: usize,
        _port: usize,
        packet: Packet,
    ) {
        if node < self.hosts_total() {
            // Host: hand to the transport (bulk data never exists here).
            debug_assert!(!matches!(packet.kind, PacketKind::BulkData { .. }));
            let actions = self.hosts[node].on_packet(fabric, ctx, &mut self.tracker, packet);
            schedule_actions(ctx, node, actions);
            return;
        }
        let vertex = node - self.hosts_total();
        let dst_tor = self.tor_of_host(packet.dst);
        if vertex == dst_tor {
            let down = packet.dst % self.hosts_per_tor;
            fabric.send(ctx, node, down, packet);
            return;
        }
        let hops = &self.next_hops[dst_tor * self.graph.len() + vertex];
        if hops.is_empty() {
            self.routing_drops += 1;
            return;
        }
        let i = hops[self.rng.index(hops.len())] as usize;
        let port = self.adj_port(vertex, i);
        fabric.send(ctx, node, port, packet);
    }

    fn on_timer(&mut self, fabric: &mut Fabric, ctx: &mut EventContext<'_, NetEvent>, token: u64) {
        if token == 0 {
            self.inject_due_flows(fabric, ctx);
            return;
        }
        match decode(token) {
            Token::FlowArrival => self.inject_due_flows(fabric, ctx),
            Token::Transport(host, which) => {
                let actions = self.hosts[host].on_timer(fabric, ctx, which);
                schedule_actions(ctx, host, actions);
            }
            other => panic!("unexpected timer {other:?} in static network"),
        }
    }
}

/// Build a static network simulation with `flows` to inject.
pub fn build(cfg: StaticNetConfig, mut flows: Vec<FlowSpec>) -> StaticNet {
    flows.sort_by_key(|f| f.start);
    let (graph, tors, hosts_per_tor) = match &cfg.kind {
        StaticTopologyKind::Expander(p) => {
            let t = ExpanderTopology::generate(*p, cfg.seed);
            (t.graph().clone(), p.racks, p.hosts_per_rack)
        }
        StaticTopologyKind::FoldedClos(p) => {
            let t = ClosTopology::generate(*p);
            (t.graph().clone(), t.tors(), p.hosts_per_tor())
        }
    };
    let hosts_total = tors * hosts_per_tor;

    // Routing tables: adjacency indices on shortest paths toward each ToR.
    let n = graph.len();
    let mut next_hops = vec![Vec::new(); tors * n];
    for dst_tor in 0..tors {
        let dist = graph.bfs_distances(dst_tor);
        for v in 0..n {
            if v == dst_tor || dist[v] == usize::MAX {
                continue;
            }
            let mut choices = Vec::new();
            for (i, e) in graph.edges(v).iter().enumerate() {
                if dist[e.to] + 1 == dist[v] {
                    choices.push(i as u8);
                }
            }
            next_hops[dst_tor * n + v] = choices;
        }
    }

    let mut fabric = Fabric::new();
    for _ in 0..hosts_total {
        fabric.add_node(1, cfg.queues, cfg.link);
    }
    for v in 0..n {
        let host_ports = if v < tors { hosts_per_tor } else { 0 };
        fabric.add_node(host_ports + graph.degree(v), cfg.queues, cfg.link);
    }
    // Hosts ↔ ToRs.
    for h in 0..hosts_total {
        fabric.connect(h, 0, hosts_total + h / hosts_per_tor, h % hosts_per_tor);
    }
    // Switch graph edges: connect each undirected pair once, using the
    // adjacency index on each side as the port.
    for v in 0..n {
        for (i, e) in graph.edges(v).iter().enumerate() {
            if v < e.to {
                // Find the reverse adjacency index.
                let j = graph
                    .edges(e.to)
                    .iter()
                    .enumerate()
                    .position(|(jj, back)| {
                        back.to == v && {
                            // Match multiplicity: count how many (v->to)
                            // edges precede index i, pick the matching
                            // reverse occurrence.
                            let occ = graph.edges(v)[..i].iter().filter(|x| x.to == e.to).count();
                            let rocc = graph.edges(e.to)[..jj].iter().filter(|x| x.to == v).count();
                            occ == rocc
                        }
                    })
                    .expect("symmetric graph");
                let pa = if v < tors { hosts_per_tor + i } else { i };
                let pb = if e.to < tors { hosts_per_tor + j } else { j };
                fabric.connect(hosts_total + v, pa, hosts_total + e.to, pb);
            }
        }
    }

    let logic = StaticLogic {
        hosts: (0..hosts_total).map(|h| cfg.transport.make(h, 0)).collect(),
        tracker: FlowTracker::new(),
        rng: SimRng::new(cfg.seed.wrapping_add(77)),
        graph,
        hosts_per_tor,
        tors,
        next_hops,
        pending: flows,
        next_flow: 0,
        routing_drops: 0,
        cfg,
    };
    NetWorld::new(fabric, logic).into_sim()
}

/// Like [`build`], but with a binned throughput time-series attached to
/// the flow tracker (Figure 8's delivered-throughput-vs-time runs).
pub fn build_with_throughput(
    cfg: StaticNetConfig,
    flows: Vec<FlowSpec>,
    bin: simkit::SimTime,
) -> StaticNet {
    let mut sim = build(cfg, flows);
    let t = std::mem::take(sim.world.logic.tracker_mut());
    *sim.world.logic.tracker_mut() = t.with_throughput_bins(bin);
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;

    #[test]
    fn expander_flow_completes() {
        let mut sim = build(
            StaticNetConfig::small_expander(),
            vec![FlowSpec {
                src: 0,
                dst: 30,
                size: 50_000,
                start: SimTime::ZERO,
            }],
        );
        sim.run_until(SimTime::from_ms(10));
        let t = sim.world.logic.tracker();
        assert!(t.all_done());
        assert!(t.get(0).fct().unwrap() < SimTime::from_us(200));
        assert_eq!(sim.world.logic.routing_drops, 0);
        assert_eq!(sim.world.fabric.counters.dark_drops, 0);
    }

    #[test]
    fn clos_cross_pod_flow_completes() {
        let mut sim = build(
            StaticNetConfig::paper_clos_648(),
            vec![FlowSpec {
                src: 0,
                dst: 647,
                size: 100_000,
                start: SimTime::ZERO,
            }],
        );
        sim.run_until(SimTime::from_ms(10));
        let t = sim.world.logic.tracker();
        assert!(t.all_done());
        // 100KB across 6 store-and-forward hops at 10G: ~120us.
        assert!(t.get(0).fct().unwrap() < SimTime::from_us(300));
        assert_eq!(sim.world.logic.routing_drops, 0);
    }

    #[test]
    fn rack_local_stays_local() {
        let mut sim = build(
            StaticNetConfig::small_expander(),
            vec![FlowSpec {
                src: 0,
                dst: 1,
                size: 10_000,
                start: SimTime::ZERO,
            }],
        );
        sim.run_until(SimTime::from_ms(5));
        assert!(sim.world.logic.tracker().all_done());
        // Only host links and the ToR are involved: 2 hops.
        let fct = sim.world.logic.tracker().get(0).fct().unwrap();
        assert!(fct < SimTime::from_us(30), "fct {fct}");
    }

    #[test]
    fn many_random_flows_complete_on_clos() {
        let mut rng = SimRng::new(4);
        let mut flows = Vec::new();
        for _ in 0..50 {
            let src = rng.index(648);
            let mut dst = rng.index(647);
            if dst >= src {
                dst += 1;
            }
            flows.push(FlowSpec {
                src,
                dst,
                size: 30_000,
                start: SimTime::from_us(rng.below(200)),
            });
        }
        let mut sim = build(StaticNetConfig::paper_clos_648(), flows);
        sim.run_until(SimTime::from_ms(20));
        let t = sim.world.logic.tracker();
        assert_eq!(t.completed(), 50);
    }
}
