//! `opera` — the core library of the Opera reproduction.
//!
//! Opera (Mellette et al., NSDI 2020) is a datacenter network whose rotor
//! circuit switches reconfigure *offset in time* so that
//!
//! * at every instant the active circuits form an expander graph carrying
//!   latency-sensitive traffic over multi-hop paths (NDP), and
//! * integrated over a cycle, every rack pair receives a direct circuit
//!   carrying bulk traffic with zero bandwidth tax (RotorLB).
//!
//! This crate assembles the substrates (`simkit`, `netsim`, `topo`,
//! `transport`, `workloads`, `flowsim`) into runnable network models:
//!
//! * [`timing`] — topology-slice time constants (§4.1, Figure 6/14),
//! * [`tables`] — per-slice low-latency and bulk forwarding tables (§4.3),
//! * [`opera_net`] — the packet-level Opera network (and, by
//!   configuration, non-hybrid/hybrid RotorNet),
//! * [`static_net`] — cost-equivalent folded-Clos and static-expander
//!   baselines running NDP,
//! * [`harness`] — experiment drivers: flow injection, FCT collection,
//!   throughput accounting,
//! * [`ruleset`] — the routing-state model behind Table 1,
//! * [`prototype`] — the queueing model of the Tofino prototype (Figure
//!   13, §6.1).
//!
//! # Example
//!
//! ```
//! use opera::{opera_net, OperaNetConfig};
//! use simkit::SimTime;
//! use workloads::FlowSpec;
//!
//! // A 32-host Opera network; one cross-rack low-latency flow.
//! let cfg = OperaNetConfig::small_test();
//! let flows = vec![FlowSpec { src: 1, dst: 30, size: 20_000, start: SimTime::ZERO }];
//! let mut sim = opera_net::build(cfg, flows);
//! sim.run_until(SimTime::from_ms(5));
//! let fct = sim.world.logic.tracker().get(0).fct().expect("flow completed");
//! assert!(fct < SimTime::from_us(100));
//! ```

pub mod harness;
pub mod opera_net;
pub mod prototype;
pub mod ruleset;
pub mod static_net;
pub mod tables;
pub mod timing;
mod tokens;

pub use harness::{ExperimentResult, FctStats};
pub use opera_net::{OperaNet, OperaNetConfig, RotorMode};
pub use ruleset::{ruleset_for, RulesetReport};
pub use static_net::{StaticNet, StaticNetConfig, StaticTopologyKind};
pub use timing::SliceTiming;
