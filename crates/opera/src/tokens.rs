//! Timer-token encoding shared by the network models.
//!
//! `netsim` timers carry a single opaque `u64`; the network models
//! multiplex many logical timers onto it. Layout: kind in the top byte,
//! kind-specific payload below.

use netsim::fabric::NetEvent;
use simkit::engine::EventContext;
use transport::{Actions, TransportTimer};

/// Decoded timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// Inject flows that have reached their arrival time.
    FlowArrival,
    /// A [`TransportTimer`] for the host with this index.
    Transport(usize, TransportTimer),
    /// A topology-slice boundary (Opera/RotorNet).
    SliceBoundary,
    /// Take the reconfiguring switch group dark (fires ε after the slice
    /// start, r before the boundary — Figure 6's slice layout).
    Dark,
    /// Bulk feeder tick for `(rack, uplink)`.
    Feeder(usize, usize),
    /// Close the bulk transmission window of `(rack, uplink)` ahead of its
    /// reconfiguration.
    WindowClose(usize, usize),
    /// Periodic statistics / progress hook.
    Stats,
    /// Hello timeout check for `(rack, uplink)` (§3.6.2 fault detection).
    HelloCheck(usize, usize),
}

const K_ARRIVAL: u64 = 1;
const K_PACER: u64 = 2;
const K_RTO: u64 = 3;
const K_SLICE: u64 = 4;
const K_RECONNECT: u64 = 5;
const K_FEEDER: u64 = 6;
const K_WINDOW: u64 = 7;
const K_STATS: u64 = 8;
const K_HELLO: u64 = 9;

/// Encode a token.
pub fn encode(t: Token) -> u64 {
    match t {
        Token::FlowArrival => K_ARRIVAL << 56,
        Token::Transport(host, TransportTimer::PullPacer) => (K_PACER << 56) | (host as u64),
        Token::Transport(host, TransportTimer::Rto(flow)) => {
            (K_RTO << 56) | ((host as u64) << 32) | flow as u64
        }
        Token::SliceBoundary => K_SLICE << 56,
        Token::Dark => K_RECONNECT << 56,
        Token::Feeder(rack, uplink) => (K_FEEDER << 56) | ((rack as u64) << 16) | uplink as u64,
        Token::WindowClose(rack, uplink) => {
            (K_WINDOW << 56) | ((rack as u64) << 16) | uplink as u64
        }
        Token::Stats => K_STATS << 56,
        Token::HelloCheck(rack, uplink) => (K_HELLO << 56) | ((rack as u64) << 16) | uplink as u64,
    }
}

/// Decode a token. Unknown kinds panic: they indicate corruption.
pub fn decode(raw: u64) -> Token {
    let kind = raw >> 56;
    let low = raw & ((1 << 56) - 1);
    match kind {
        K_ARRIVAL => Token::FlowArrival,
        K_PACER => Token::Transport(low as usize, TransportTimer::PullPacer),
        K_RTO => Token::Transport(
            (low >> 32) as usize,
            TransportTimer::Rto((low & 0xFFFF_FFFF) as u32),
        ),
        K_SLICE => Token::SliceBoundary,
        K_RECONNECT => Token::Dark,
        K_FEEDER => Token::Feeder((low >> 16) as usize, (low & 0xFFFF) as usize),
        K_WINDOW => Token::WindowClose((low >> 16) as usize, (low & 0xFFFF) as usize),
        K_STATS => Token::Stats,
        K_HELLO => Token::HelloCheck((low >> 16) as usize, (low & 0xFFFF) as usize),
        other => panic!("unknown timer token kind {other}"),
    }
}

/// Schedule every timer a transport host asked for, encoded for `host`.
/// The single dispatch point between [`transport::Transport`] hosts and
/// the timer wheel — all network models route through here.
pub fn schedule_actions(ctx: &mut EventContext<'_, NetEvent>, host: usize, actions: Actions) {
    for (at, which) in actions.timers {
        ctx.schedule_at(
            at,
            NetEvent::Timer {
                token: encode(Token::Transport(host, which)),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        let tokens = [
            Token::FlowArrival,
            Token::Transport(12345, TransportTimer::PullPacer),
            Token::Transport(7, TransportTimer::Rto(99_000)),
            Token::SliceBoundary,
            Token::Dark,
            Token::Feeder(1023, 11),
            Token::WindowClose(0, 0),
            Token::Stats,
            Token::HelloCheck(44, 3),
        ];
        for t in tokens {
            assert_eq!(decode(encode(t)), t, "{t:?}");
        }
    }

    #[test]
    fn distinct_encodings() {
        let a = encode(Token::Feeder(1, 2));
        let b = encode(Token::WindowClose(1, 2));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "unknown timer token")]
    fn garbage_rejected() {
        decode(0xFF << 56);
    }
}
