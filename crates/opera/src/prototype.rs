//! Model of the hardware prototype's end-to-end latency (§6.1, Figure 13).
//!
//! The prototype runs eight virtual ToRs and four emulated circuit
//! switches inside one Tofino; a ping-pong application measures
//! application-level RTT with and without bulk background traffic. Two
//! effects dominate:
//!
//! * each ToR hop costs ≈3 µs of P4 pipeline forwarding, with path
//!   lengths of 1–3 ToR hops in the 8-rack topology (up to 9 µs one-way);
//! * with bulk running, a low-latency packet can buffer behind one MTU
//!   currently serializing at every serialization point — up to 8 points
//!   source→destination (16 per RTT), each uniform in `[0, 1.2 µs]` at
//!   10 Gb/s — which smooths the CDF exactly as Figure 13 shows.
//!
//! We reproduce the distribution by Monte-Carlo over the real 8-ToR Opera
//! topology: sample a random source/destination/slice, take the actual
//! expander path length, add per-hop pipeline latency, RoCE/MPI host
//! variance, and (optionally) per-serialization-point residual MTU delays.

use simkit::stats::Samples;
use simkit::SimRng;
use topo::opera::{OperaParams, OperaTopology};

/// Prototype model parameters.
#[derive(Debug, Clone, Copy)]
pub struct PrototypeParams {
    /// P4 pipeline forwarding latency per ToR hop, µs.
    pub per_hop_us: f64,
    /// Fixed host (NIC + RoCE + MPI) overhead per RTT, µs.
    pub host_base_us: f64,
    /// Host-side variance: uniform extra in `[0, host_jitter_us]`.
    pub host_jitter_us: f64,
    /// MTU serialization time, µs (1.2 at 10 Gb/s).
    pub mtu_us: f64,
    /// Serialization points per one-way transit of `h` ToR hops when the
    /// emulated circuit switches are counted: `2h` (ToR + circuit emu).
    pub points_per_hop: usize,
}

impl PrototypeParams {
    /// Values measured in §6.1.
    pub fn paper_default() -> Self {
        PrototypeParams {
            per_hop_us: 3.0,
            host_base_us: 3.0,
            host_jitter_us: 4.0,
            mtu_us: 1.2,
            points_per_hop: 2,
        }
    }
}

/// Sampled RTT distributions with and without bulk background traffic.
#[derive(Debug)]
pub struct PrototypeRtt {
    /// RTTs (µs) without bulk traffic.
    pub quiet: Samples,
    /// RTTs (µs) with bulk background traffic.
    pub with_bulk: Samples,
}

/// Run the Monte-Carlo model: `n` ping-pong exchanges over the 8-ToR,
/// 4-switch prototype topology (Figure 5). One seed drives both the
/// topology and the traffic; see [`simulate_prototype_seeded`] to vary
/// them independently (replicate sweeps keep the validated topology
/// seed and re-seed only the traffic).
pub fn simulate_prototype(params: PrototypeParams, n: usize, seed: u64) -> PrototypeRtt {
    simulate_prototype_seeded(params, n, seed, seed ^ 0xD1CE)
}

/// [`simulate_prototype`] with separate topology and traffic seeds.
pub fn simulate_prototype_seeded(
    params: PrototypeParams,
    n: usize,
    topo_seed: u64,
    traffic_seed: u64,
) -> PrototypeRtt {
    let (topo, _) = OperaTopology::generate_validated(
        OperaParams {
            racks: 8,
            uplinks: 4,
            hosts_per_rack: 1,
            groups: 1,
        },
        topo_seed,
        64,
    );
    let mut rng = SimRng::new(traffic_seed);
    let mut quiet = Samples::new();
    let mut with_bulk = Samples::new();
    let slices = topo.slices_per_cycle();

    for _ in 0..n {
        let src = rng.index(8);
        let mut dst = rng.index(7);
        if dst >= src {
            dst += 1;
        }
        // Path lengths there and back (slices may differ mid-exchange; we
        // sample each direction's slice independently).
        let mut rtt_hops = 0usize;
        for endpoints in [(src, dst), (dst, src)] {
            let s = rng.index(slices);
            let g = topo.slice(s).graph();
            let d = g.bfs_distances(endpoints.0)[endpoints.1];
            debug_assert!(d != usize::MAX && d <= 4, "8-rack slice diameter");
            rtt_hops += d;
        }
        let base = rtt_hops as f64 * params.per_hop_us
            + params.host_base_us
            + rng.f64() * params.host_jitter_us;
        quiet.push(base);

        // Bulk adds a uniform residual at every serialization point.
        let points = rtt_hops * params.points_per_hop;
        let extra: f64 = (0..points).map(|_| rng.f64() * params.mtu_us).sum();
        with_bulk.push(base + extra);
    }
    PrototypeRtt { quiet, with_bulk }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> PrototypeRtt {
        simulate_prototype(PrototypeParams::paper_default(), 20_000, 7)
    }

    #[test]
    fn quiet_rtt_range_matches_figure() {
        let mut r = run();
        // Figure 13, no-bulk curve: ~4–20 µs.
        assert!(r.quiet.min().unwrap() >= 3.0);
        assert!(r.quiet.max().unwrap() <= 35.0, "max {:?}", r.quiet.max());
        let med = r.quiet.quantile(0.5).unwrap();
        assert!((5.0..20.0).contains(&med), "median {med}");
    }

    #[test]
    fn bulk_shifts_distribution_up() {
        let mut r = run();
        let q50 = r.quiet.quantile(0.5).unwrap();
        let b50 = r.with_bulk.quantile(0.5).unwrap();
        assert!(b50 > q50 + 1.0, "bulk median {b50} vs quiet {q50}");
        // Figure 13: with-bulk tail reaches ~40 µs but not far beyond.
        assert!(r.with_bulk.max().unwrap() <= 45.0);
        assert!(r.with_bulk.quantile(0.99).unwrap() > 15.0);
    }

    #[test]
    fn deterministic() {
        let mut a = run();
        let mut b = run();
        assert_eq!(a.quiet.quantile(0.9), b.quiet.quantile(0.9));
        assert_eq!(a.with_bulk.quantile(0.9), b.with_bulk.quantile(0.9));
    }
}
