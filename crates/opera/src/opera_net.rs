//! The packet-level Opera network (and RotorNet variants).
//!
//! Node layout: hosts `0..H`, then one ToR node per rack; in hybrid
//! RotorNet mode, one additional ideal packet-core node. Rotor circuit
//! switches are *not* nodes: a circuit is a direct wire between two ToR
//! uplink ports, rewired at reconfiguration times (see
//! [`netsim::Fabric::rewire`]).
//!
//! Per slice (§3, §4):
//! * low-latency packets are routed hop-by-hop over the current expander
//!   using precomputed per-slice ECMP tables, choosing uniformly among
//!   shortest-path uplinks per packet;
//! * bulk packets are admitted by per-`(rack, uplink)` *feeders* that poll
//!   source hosts at line rate while a direct circuit to the destination
//!   rack is up (§3.5), stop at a guard time before the circuit's switch
//!   reconfigures, and requeue anything left in the ToR's bulk queue
//!   (the NACK path of §4.2.2);
//! * at each boundary the reconfiguring switch group's circuits go dark
//!   for the reconfiguration delay `r`, then reconnect in the next
//!   matching.
//!
//! Modes (§5): [`RotorMode::Opera`] classifies flows by size threshold;
//! [`RotorMode::RotorNonHybrid`] sends *everything* through RotorLB
//! (short flows wait for circuits — Figure 7c's three-orders-worse
//! latency); [`RotorMode::RotorHybrid`] sends low-latency flows through a
//! separate ideal packet core attached to one uplink per ToR (+33% cost).

use crate::tables::{BulkTables, LowLatencyTables};
use crate::timing::SliceTiming;
use crate::tokens::{decode, encode, schedule_actions, Token};
use netsim::fabric::{Fabric, LinkSpec, NetEvent, QueueConfig, SendOutcome};
use netsim::{FlowClass, FlowTracker, NetLogic, NetWorld, Packet, PacketKind, Priority, MTU};
use simkit::engine::EventContext;
use simkit::{SimRng, SimTime, Simulator};
use topo::opera::{OperaParams, OperaTopology};
use transport::{RackBulk, RotorLbParams, Transport, TransportKind};
use workloads::FlowSpec;

/// Which system the rotor fabric emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotorMode {
    /// Opera: expander paths for low-latency, circuits for bulk.
    Opera,
    /// RotorNet without a packet network: everything over RotorLB.
    RotorNonHybrid,
    /// RotorNet with one uplink per ToR facing an ideal packet core for
    /// low-latency traffic (1.33× cost).
    RotorHybrid,
}

/// Configuration of an Opera/RotorNet simulation.
#[derive(Debug, Clone, Copy)]
pub struct OperaNetConfig {
    /// Topology parameters (racks, uplinks, hosts/rack, groups).
    pub params: OperaParams,
    /// Slice timing.
    pub timing: SliceTiming,
    /// Link rate and propagation delay used everywhere.
    pub link: LinkSpec,
    /// Queue configuration for every port.
    pub queues: QueueConfig,
    /// Low-latency transport (sender kind + parameters).
    pub transport: TransportKind,
    /// RotorLB parameters.
    pub rotorlb: RotorLbParams,
    /// Flows of at least this many bytes are bulk (§4.1; ignored by the
    /// RotorNet modes, which classify everything as bulk for transport).
    pub bulk_threshold: u64,
    /// System variant.
    pub mode: RotorMode,
    /// Allow RotorLB two-hop Valiant indirection.
    pub allow_vlb: bool,
    /// RNG seed (topology generation uses `seed`, routing choice
    /// `seed + 1`).
    pub seed: u64,
}

impl OperaNetConfig {
    /// A small fast configuration for tests: 8 racks × 4 hosts, 4 rotor
    /// switches, 10 µs slices.
    pub fn small_test() -> Self {
        OperaNetConfig {
            params: OperaParams {
                racks: 8,
                uplinks: 4,
                hosts_per_rack: 4,
                groups: 1,
            },
            timing: SliceTiming::fast_sim(),
            link: LinkSpec::paper_default(),
            queues: QueueConfig::builder().build(),
            transport: TransportKind::paper_default(),
            rotorlb: RotorLbParams::paper_default(),
            bulk_threshold: 500_000,
            mode: RotorMode::Opera,
            allow_vlb: true,
            seed: 1,
        }
    }

    /// The paper's 648-host configuration (slow to simulate at high load).
    pub fn paper_648() -> Self {
        OperaNetConfig {
            params: OperaParams::example_648(),
            timing: SliceTiming::paper_default(),
            link: LinkSpec::paper_default(),
            queues: QueueConfig::builder().build(),
            transport: TransportKind::paper_default(),
            rotorlb: RotorLbParams::paper_default(),
            bulk_threshold: 15_000_000,
            mode: RotorMode::Opera,
            allow_vlb: true,
            seed: 1,
        }
    }

    /// Total hosts.
    pub fn hosts(&self) -> usize {
        self.params.hosts()
    }
}

/// Loss/diagnostic counters specific to the Opera logic.
#[derive(Debug, Clone, Copy, Default)]
pub struct OperaCounters {
    /// Low-latency packets dropped for exceeding the hop limit.
    pub hop_limit_drops: u64,
    /// Bulk packets requeued after missing a transmission window.
    pub bulk_requeued: u64,
    /// Valiant packets that found the relay store full.
    pub relay_overflow: u64,
    /// Bulk packets that arrived at a ToR with no usable circuit and were
    /// locally requeued.
    pub bulk_stragglers: u64,
    /// Transceivers marked bad by the hello protocol.
    pub links_marked_bad: u64,
    /// Feeder ticks skipped because the source host NIC was full
    /// (backpressure, not loss).
    pub nic_backpressure: u64,
}

/// Per-`(rack, uplink)` feeder state.
#[derive(Debug, Clone, Copy, Default)]
struct Feeder {
    running: bool,
    /// Stop polling at this time (window close).
    deadline: SimTime,
    /// Destination rack of the circuit currently fed.
    circuit_dst: usize,
}

/// The Opera network logic (see module docs).
pub struct OperaLogic {
    cfg: OperaNetConfig,
    topo: OperaTopology,
    ll_tables: LowLatencyTables,
    bulk_tables: BulkTables,
    hosts: Vec<Box<dyn Transport>>,
    bulk: Vec<RackBulk>,
    tracker: FlowTracker,
    rng: SimRng,
    /// Current slice (monotone; take mod slices_per_cycle for tables).
    slice: usize,
    feeders: Vec<Feeder>,
    /// Flows sorted by start time, next index to inject.
    pending: Vec<FlowSpec>,
    next_flow: usize,
    /// Counters.
    pub counters: OperaCounters,
    /// Maximum ToR-to-ToR hops before a packet is declared looping.
    hop_limit: u8,
    /// Stop injecting/rescheduling after this time (0 = no limit).
    horizon: SimTime,
    /// `(rack, uplink)` transceivers marked bad by the hello protocol
    /// (§3.6.2); routing tables exclude their circuits.
    bad_links: Vec<(usize, usize)>,
    /// Hello awaited on `(rack, uplink)` this slice (flat index).
    hello_pending: Vec<bool>,
    /// Run the hello protocol (small per-slice control overhead).
    hello_enabled: bool,
}

/// Hello messages sent per circuit end at each reconfiguration (§3.6.2's
/// "short sequence"; the link is marked bad only when all are lost).
pub const HELLO_BURST: usize = 3;

/// Complete simulated network: fabric + logic in a simulator.
pub type OperaNet = Simulator<NetWorld<OperaLogic>>;

impl OperaLogic {
    fn hosts_total(&self) -> usize {
        self.cfg.hosts()
    }
    fn rack_of(&self, host: usize) -> usize {
        host / self.cfg.params.hosts_per_rack
    }
    fn tor_node(&self, rack: usize) -> usize {
        self.hosts_total() + rack
    }
    fn core_node(&self) -> usize {
        self.hosts_total() + self.cfg.params.racks
    }
    fn is_tor(&self, node: usize) -> bool {
        node >= self.hosts_total() && node < self.hosts_total() + self.cfg.params.racks
    }
    fn is_core(&self, node: usize) -> bool {
        self.cfg.mode == RotorMode::RotorHybrid && node == self.core_node()
    }
    fn down_ports(&self) -> usize {
        self.cfg.params.hosts_per_rack
    }
    /// Rotor uplinks (excludes the hybrid packet-core uplink).
    fn rotor_uplinks(&self) -> usize {
        self.topo.switches()
    }
    /// Fabric port of rotor uplink `j` at a ToR.
    fn up_port(&self, j: usize) -> usize {
        self.down_ports() + j
    }
    /// Fabric port of the hybrid packet-core uplink.
    fn core_port(&self) -> usize {
        self.down_ports() + self.rotor_uplinks()
    }
    fn feeder_idx(&self, rack: usize, uplink: usize) -> usize {
        rack * self.rotor_uplinks() + uplink
    }

    /// Window-close guard before a reconfiguration: long enough to drain
    /// the bulk queue and the host→ToR leg.
    fn window_guard(&self) -> SimTime {
        let drain = self.cfg.link.serialize(MTU).as_ns() * 4;
        SimTime::from_ns(drain + 2 * self.cfg.link.delay.as_ns())
    }

    /// Classify a flow by mode and size.
    fn classify(&self, size: u64) -> FlowClass {
        match self.cfg.mode {
            RotorMode::Opera => {
                if size >= self.cfg.bulk_threshold {
                    FlowClass::Bulk
                } else {
                    FlowClass::LowLatency
                }
            }
            // RotorNet: every flow is bulk from the transport's point of
            // view (non-hybrid), or split like Opera but with low-latency
            // riding the packet core (hybrid).
            RotorMode::RotorNonHybrid => FlowClass::Bulk,
            RotorMode::RotorHybrid => {
                if size >= self.cfg.bulk_threshold {
                    FlowClass::Bulk
                } else {
                    FlowClass::LowLatency
                }
            }
        }
    }

    /// Access the flow tracker (results).
    pub fn tracker(&self) -> &FlowTracker {
        &self.tracker
    }

    /// Mutable access (used by harnesses to attach throughput bins).
    pub fn tracker_mut(&mut self) -> &mut FlowTracker {
        &mut self.tracker
    }

    /// The generated topology (for analysis alongside the simulation).
    pub fn topology(&self) -> &OperaTopology {
        &self.topo
    }

    // ------------------------------------------------------------------
    // Wiring
    // ------------------------------------------------------------------

    /// Wire the circuits of switch `j` for the matching at `position`.
    fn wire_switch(&self, fabric: &mut Fabric, j: usize, position: usize) {
        let m = self.topo.matching(j, position);
        for (a, b) in m.pairs() {
            fabric.rewire(
                self.tor_node(a),
                self.up_port(j),
                self.tor_node(b),
                self.up_port(j),
            );
        }
        // Self-paired racks' ports stay dark (disconnect happened earlier).
    }

    /// Disconnect all circuits of switch `j`.
    fn dark_switch(&self, fabric: &mut Fabric, j: usize) {
        for rack in 0..self.cfg.params.racks {
            fabric.disconnect(self.tor_node(rack), self.up_port(j));
        }
    }

    // ------------------------------------------------------------------
    // Slice machinery
    // ------------------------------------------------------------------

    /// A slice boundary (Figure 6): the switches that spent the last `r`
    /// of the ending slice dark reconfiguring come up in their next
    /// matching, and the new slice begins with every circuit live.
    fn on_slice_boundary(&mut self, fabric: &mut Fabric, ctx: &mut EventContext<'_, NetEvent>) {
        let ending = self.slice;
        self.slice += 1;
        for &j in &self.topo.reconfiguring(ending) {
            self.wire_switch(fabric, j, self.topo.position_at(j, self.slice));
            if self.hello_enabled {
                self.send_hellos(fabric, ctx, j);
            }
        }
        // This slice's reconfiguring group goes dark ε from now (r before
        // the next boundary).
        ctx.schedule_in(
            self.cfg.timing.epsilon,
            NetEvent::Timer {
                token: encode(Token::Dark),
            },
        );
        self.start_feeders(fabric, ctx);
        if self.horizon == SimTime::ZERO || ctx.now() < self.horizon {
            ctx.schedule_in(
                self.cfg.timing.slice(),
                NetEvent::Timer {
                    token: encode(Token::SliceBoundary),
                },
            );
        }
    }

    /// ε into the slice: the impending switches stop carrying traffic and
    /// begin reconfiguring. Bulk still staged at their uplinks missed the
    /// window — the §4.2.2 NACK path returns it to the RotorLB queues.
    fn on_dark(&mut self, fabric: &mut Fabric, _ctx: &mut EventContext<'_, NetEvent>) {
        for &j in &self.topo.reconfiguring(self.slice) {
            for rack in 0..self.cfg.params.racks {
                let drained = fabric.drain_bulk(self.tor_node(rack), self.up_port(j));
                for pkt in &drained {
                    let dst_rack = self.rack_of(pkt.dst);
                    self.bulk[rack].requeue_with_rack(pkt, dst_rack);
                    self.counters.bulk_requeued += 1;
                }
            }
            self.dark_switch(fabric, j);
        }
    }

    // ------------------------------------------------------------------
    // Fault detection (§3.6.2): hello exchange on every new circuit
    // ------------------------------------------------------------------

    /// When switch `j` comes up in a new matching, both ends of every
    /// circuit send a hello; each end expects its partner's hello within
    /// the hello timeout, else marks the partner's transceiver bad and
    /// recomputes routes around it.
    fn send_hellos(&mut self, fabric: &mut Fabric, ctx: &mut EventContext<'_, NetEvent>, j: usize) {
        let m = self.topo.matching(j, self.topo.position_at(j, self.slice));
        let pairs: Vec<(usize, usize)> = m.pairs().collect();
        for (a, b) in pairs {
            for (me, peer) in [(a, b), (b, a)] {
                // "A short sequence of hello messages" (§3.6.2): several
                // copies so one corrupted frame cannot condemn a healthy
                // link. The circuit is marked bad only if all are lost.
                for _ in 0..HELLO_BURST {
                    let pkt = Packet::control(
                        netsim::FlowId::MAX,
                        self.tor_node(me),
                        self.tor_node(peer),
                        PacketKind::Hello,
                    );
                    fabric.send(ctx, self.tor_node(me), self.up_port(j), pkt);
                }
                let fi = self.feeder_idx(peer, j);
                self.hello_pending[fi] = true;
                ctx.schedule_at(
                    ctx.now() + self.hello_timeout(),
                    NetEvent::Timer {
                        token: encode(Token::HelloCheck(peer, j)),
                    },
                );
            }
        }
    }

    /// Hello timeout: a few circuit RTTs, far below ε.
    fn hello_timeout(&self) -> SimTime {
        SimTime::from_ns(self.cfg.timing.epsilon.as_ns() / 4)
    }

    /// A hello arrived at `rack` via `uplink`: the circuit (and the
    /// partner's transceiver) are alive.
    fn on_hello(&mut self, rack: usize, uplink: usize) {
        let fi = self.feeder_idx(rack, uplink);
        self.hello_pending[fi] = false;
        // A hello from a link previously marked bad proves it healthy
        // again (e.g. a false positive from corrupted hello frames, or a
        // repaired transceiver): restore it.
        let m = self
            .topo
            .matching(uplink, self.topo.position_at(uplink, self.slice));
        let partner = m.partner(rack);
        if let Some(pos) = self.bad_links.iter().position(|&b| b == (partner, uplink)) {
            self.bad_links.swap_remove(pos);
            self.recompute_tables();
        }
    }

    /// Hello timeout fired: if still pending, the partner this slice never
    /// reached us — mark its `(rack, uplink)` transceiver bad and route
    /// around it (the paper shares this via subsequent hellos; we model
    /// converged knowledge, which §3.6.2 bounds at two cycles).
    fn on_hello_check(&mut self, rack: usize, uplink: usize) {
        let fi = self.feeder_idx(rack, uplink);
        if !self.hello_pending[fi] {
            return;
        }
        self.hello_pending[fi] = false;
        // Identify the partner whose hello went missing.
        let m = self
            .topo
            .matching(uplink, self.topo.position_at(uplink, self.slice));
        let partner = m.partner(rack);
        let bad = (partner, uplink);
        if partner == rack || self.bad_links.contains(&bad) {
            return;
        }
        self.bad_links.push(bad);
        self.counters.links_marked_bad += 1;
        self.recompute_tables();
    }

    /// Rebuild both forwarding tables around the known-bad transceivers.
    fn recompute_tables(&mut self) {
        self.ll_tables = LowLatencyTables::build_with_failures(&self.topo, &self.bad_links);
        self.bulk_tables = BulkTables::build_with_failures(&self.topo, &self.bad_links);
    }

    /// Links currently marked bad.
    pub fn bad_links(&self) -> &[(usize, usize)] {
        &self.bad_links
    }

    /// Enable or disable the hello protocol (on by default). Disabling
    /// removes its per-slice control packets — useful for experiments
    /// that meter exact data-plane packet counts.
    pub fn set_hello_enabled(&mut self, enabled: bool) {
        self.hello_enabled = enabled;
    }

    /// Fabric address `(node, port)` of a rack's rotor uplink — the handle
    /// experiments use to inject transceiver failures
    /// (`fabric.set_failed(node, port, true)`).
    pub fn uplink_addr(&self, rack: usize, uplink: usize) -> (usize, usize) {
        (self.tor_node(rack), self.up_port(uplink))
    }

    /// Does rack `r` have anything useful to put on a circuit to `dst`?
    fn has_bulk_work(&self, rack: usize, dst: usize) -> bool {
        if self.bulk[rack].pending_to(dst) > 0 {
            return true;
        }
        self.cfg.allow_vlb
            && self.bulk[rack].total_direct_backlog() > self.cfg.rotorlb.vlb_threshold
    }

    /// (Re)arm feeders for every active circuit of the current slice.
    fn start_feeders(&mut self, fabric: &mut Fabric, ctx: &mut EventContext<'_, NetEvent>) {
        let slice = self.slice;
        let stride = self.rotor_uplinks() / self.cfg.params.groups;
        let boundary_in = self.cfg.timing.slice();
        for rack in 0..self.cfg.params.racks {
            for (dst, uplink) in self.bulk_tables.circuits_of(slice, rack) {
                let fi = self.feeder_idx(rack, uplink);
                // Window: circuits of switch j close early only in the
                // slice right before j reconfigures.
                let reconfigures_now = uplink % stride == slice % stride;
                let deadline = if reconfigures_now {
                    // Stop early enough that staged bulk drains before the
                    // circuit goes dark at ε.
                    ctx.now() + self.cfg.timing.epsilon.saturating_sub(self.window_guard())
                } else {
                    ctx.now() + boundary_in
                };
                self.feeders[fi].deadline = deadline;
                self.feeders[fi].circuit_dst = dst;
                if !self.feeders[fi].running && self.has_bulk_work(rack, dst) {
                    self.feeders[fi].running = true;
                    ctx.schedule_in(
                        SimTime::ZERO,
                        NetEvent::Timer {
                            token: encode(Token::Feeder(rack, uplink)),
                        },
                    );
                }
            }
        }
        let _ = fabric;
    }

    fn on_feeder(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        rack: usize,
        uplink: usize,
    ) {
        let fi = self.feeder_idx(rack, uplink);
        let f = self.feeders[fi];
        if ctx.now() >= f.deadline {
            self.feeders[fi].running = false;
            return;
        }
        let tor = self.tor_node(rack);
        let tick = self.cfg.link.serialize(MTU);
        // Flow control: keep at most ~2 MTUs staged in the uplink's bulk
        // queue and don't overrun the host NIC.
        let uplink_space = fabric.queued_bytes_at(tor, self.up_port(uplink), Priority::Bulk)
            + 2 * MTU as u64
            <= self.cfg.queues.cap_bytes[Priority::Bulk as usize];
        if uplink_space {
            if let Some(pkt) = self.bulk[rack].next_packet(f.circuit_dst, self.cfg.allow_vlb) {
                if self.rack_of(pkt.src) == rack {
                    // Poll the source host: it emits the packet now. If
                    // its NIC staging queue is full (several feeders
                    // polling one host), put the bytes back and retry.
                    let nic_full = fabric.queued_bytes_at(pkt.src, 0, Priority::Bulk) + MTU as u64
                        > self.cfg.queues.cap_bytes[Priority::Bulk as usize];
                    if nic_full || fabric.send(ctx, pkt.src, 0, pkt) == SendOutcome::Dropped {
                        let dst_rack = self.rack_of(pkt.dst);
                        self.bulk[rack].requeue_with_rack(&pkt, dst_rack);
                        if nic_full {
                            self.counters.nic_backpressure += 1;
                        }
                    }
                } else {
                    // Relay bytes stored at this ToR: emit directly.
                    self.forward_bulk_at_tor(fabric, ctx, rack, pkt);
                }
            } else {
                // Nothing to send this tick; stop — arrivals re-kick.
                self.feeders[fi].running = false;
                return;
            }
        }
        ctx.schedule_in(
            tick,
            NetEvent::Timer {
                token: encode(Token::Feeder(rack, uplink)),
            },
        );
    }

    /// Kick the feeder serving `dst_rack` from `rack`, if a circuit is up.
    fn kick_feeder(&mut self, ctx: &mut EventContext<'_, NetEvent>, rack: usize, dst_rack: usize) {
        // Direct circuit.
        if let Some(uplink) = self.bulk_tables.direct_uplink(self.slice, rack, dst_rack) {
            let fi = self.feeder_idx(rack, uplink);
            if !self.feeders[fi].running {
                self.feeders[fi].running = true;
                ctx.schedule_in(
                    SimTime::ZERO,
                    NetEvent::Timer {
                        token: encode(Token::Feeder(rack, uplink)),
                    },
                );
            }
        } else if self.cfg.allow_vlb {
            // No direct circuit this slice: VLB can still move the bytes
            // over any active circuit once the backlog is large enough.
            for (dst, uplink) in self.bulk_tables.circuits_of(self.slice, rack) {
                let fi = self.feeder_idx(rack, uplink);
                if !self.feeders[fi].running && self.has_bulk_work(rack, dst) {
                    self.feeders[fi].running = true;
                    ctx.schedule_in(
                        SimTime::ZERO,
                        NetEvent::Timer {
                            token: encode(Token::Feeder(rack, uplink)),
                        },
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Packet handling
    // ------------------------------------------------------------------

    fn route_arrival(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        node: usize,
        packet: Packet,
    ) {
        if node < self.hosts_total() {
            self.on_host_arrive(fabric, ctx, node, packet);
        } else if self.is_tor(node) {
            let rack = node - self.hosts_total();
            self.on_tor_arrive(fabric, ctx, rack, packet);
        } else if self.is_core(node) {
            // Ideal packet core: one port per rack.
            let dst_rack = self.rack_of(packet.dst);
            fabric.send(ctx, node, dst_rack, packet);
        } else {
            unreachable!("packet at unknown node {node}");
        }
    }

    fn on_host_arrive(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        host: usize,
        packet: Packet,
    ) {
        match packet.kind {
            PacketKind::BulkData { .. } => {
                debug_assert_eq!(packet.dst, host);
                self.tracker
                    .deliver(packet.flow, packet.payload() as u64, ctx.now());
            }
            _ => {
                let actions = self.hosts[host].on_packet(fabric, ctx, &mut self.tracker, packet);
                schedule_actions(ctx, host, actions);
            }
        }
    }

    fn on_tor_arrive(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        rack: usize,
        mut packet: Packet,
    ) {
        if let PacketKind::Hello = packet.kind {
            // Addressed ToR-to-ToR over one circuit; recover the uplink
            // from the sender's matching home.
            let peer_rack = packet.src - self.hosts_total();
            if let Some((sw, _)) = self.topo.locate_pair(rack, peer_rack) {
                self.on_hello(rack, sw);
            }
            return;
        }
        let dst_rack = self.rack_of(packet.dst);
        match packet.kind {
            PacketKind::BulkData { relay, .. } => {
                if dst_rack == rack {
                    // Deliver down.
                    let down = packet.dst % self.cfg.params.hosts_per_rack;
                    fabric.send(ctx, self.tor_node(rack), down, packet);
                } else if let Some(final_rack) = relay.map(|r| r as usize) {
                    if self.rack_of(packet.src) == rack {
                        // First hop of a VLB packet originating here: put
                        // it on the wire toward its intermediate.
                        self.forward_bulk_at_tor(fabric, ctx, rack, packet);
                    } else {
                        // We are the intermediate: store for later relay.
                        let stripped = Packet {
                            kind: PacketKind::BulkData {
                                seq: 0,
                                relay: None,
                            },
                            ..packet
                        };
                        if !self.bulk[rack].store_relay(&stripped, final_rack) {
                            self.counters.relay_overflow += 1;
                        }
                    }
                } else {
                    // Direct bulk packet transiting its source ToR.
                    self.forward_bulk_at_tor(fabric, ctx, rack, packet);
                }
            }
            _ => {
                // Low-latency / control.
                if dst_rack == rack {
                    let down = packet.dst % self.cfg.params.hosts_per_rack;
                    fabric.send(ctx, self.tor_node(rack), down, packet);
                    return;
                }
                if self.cfg.mode == RotorMode::RotorHybrid {
                    fabric.send(ctx, self.tor_node(rack), self.core_port(), packet);
                    return;
                }
                packet.hops += 1;
                if packet.hops > self.hop_limit {
                    self.counters.hop_limit_drops += 1;
                    return;
                }
                let hops = self.ll_tables.next_hops(self.slice, rack, dst_rack);
                if hops.is_empty() {
                    self.counters.hop_limit_drops += 1;
                    return;
                }
                let choice = hops[self.rng.index(hops.len())] as usize;
                fabric.send(ctx, self.tor_node(rack), self.up_port(choice), packet);
            }
        }
    }

    /// Send a bulk packet out the ToR uplink with a direct circuit to its
    /// next rack (the VLB intermediate for first-hop relay packets, the
    /// destination rack otherwise). If no circuit is currently up, the
    /// packet missed its window: requeue locally.
    fn forward_bulk_at_tor(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        rack: usize,
        packet: Packet,
    ) {
        let next_rack = match packet.kind {
            PacketKind::BulkData { relay: Some(r), .. } if self.rack_of(packet.src) == rack => {
                r as usize
            }
            _ => self.rack_of(packet.dst),
        };
        // VLB first-hop packets ride whichever circuit the feeder chose;
        // recover it from the bulk table: the circuit to `next_rack`...
        // For relay first-hops the "next rack" is the intermediate the
        // feeder selected, which is the circuit destination. We find the
        // uplink via the bulk table; when the slice advanced underneath
        // the packet, there may be none.
        let uplink = match packet.kind {
            PacketKind::BulkData { relay: Some(_), .. } if self.rack_of(packet.src) == rack => {
                // The feeder emitted this packet for the circuit that was
                // up; if the intermediate's circuit is gone, fall through
                // to straggler handling. The intermediate *is* the circuit
                // dst, so look it up like a direct packet to `next_rack`.
                self.bulk_tables.direct_uplink(self.slice, rack, next_rack)
            }
            _ => self.bulk_tables.direct_uplink(self.slice, rack, next_rack),
        };
        match uplink {
            Some(u) => {
                let out = fabric.send(ctx, self.tor_node(rack), self.up_port(u), packet);
                if out == SendOutcome::Dropped {
                    let dst_rack = self.rack_of(packet.dst);
                    self.bulk[rack].requeue_with_rack(&packet, dst_rack);
                    self.counters.bulk_stragglers += 1;
                }
            }
            None => {
                let dst_rack = self.rack_of(packet.dst);
                self.bulk[rack].requeue_with_rack(&packet, dst_rack);
                self.counters.bulk_stragglers += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Flow injection
    // ------------------------------------------------------------------

    fn inject_due_flows(&mut self, fabric: &mut Fabric, ctx: &mut EventContext<'_, NetEvent>) {
        while self.next_flow < self.pending.len() && self.pending[self.next_flow].start <= ctx.now()
        {
            let spec = self.pending[self.next_flow];
            self.next_flow += 1;
            let class = self.classify(spec.size);
            let id = self
                .tracker
                .register(spec.src, spec.dst, spec.size, class, ctx.now());
            match class {
                FlowClass::LowLatency => {
                    let actions =
                        self.hosts[spec.src].start_flow(fabric, ctx, id, spec.dst, spec.size);
                    schedule_actions(ctx, spec.src, actions);
                }
                FlowClass::Bulk => {
                    let rack = self.rack_of(spec.src);
                    let dst_rack = self.rack_of(spec.dst);
                    if dst_rack == rack {
                        // Rack-local bulk: hand straight to the low-latency
                        // transport (one hop through the ToR, no circuits
                        // involved).
                        let actions =
                            self.hosts[spec.src].start_flow(fabric, ctx, id, spec.dst, spec.size);
                        schedule_actions(ctx, spec.src, actions);
                    } else {
                        self.bulk[rack].enqueue(transport::BulkChunk {
                            flow: id,
                            src_host: spec.src,
                            dst_host: spec.dst,
                            dst_rack,
                            bytes: spec.size,
                            next_seq: 0,
                        });
                        self.kick_feeder(ctx, rack, dst_rack);
                    }
                }
            }
        }
        if self.next_flow < self.pending.len() {
            ctx.schedule_at(
                self.pending[self.next_flow].start,
                NetEvent::Timer {
                    token: encode(Token::FlowArrival),
                },
            );
        }
    }
}

impl NetLogic for OperaLogic {
    fn on_arrive(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        node: usize,
        _port: usize,
        packet: Packet,
    ) {
        self.route_arrival(fabric, ctx, node, packet);
    }

    fn on_timer(&mut self, fabric: &mut Fabric, ctx: &mut EventContext<'_, NetEvent>, token: u64) {
        if token == 0 {
            // Bootstrap: initial wiring happened in build; start clocks.
            ctx.schedule_in(
                self.cfg.timing.slice(),
                NetEvent::Timer {
                    token: encode(Token::SliceBoundary),
                },
            );
            self.start_feeders(fabric, ctx);
            self.inject_due_flows(fabric, ctx);
            return;
        }
        match decode(token) {
            Token::FlowArrival => self.inject_due_flows(fabric, ctx),
            Token::Transport(host, which) => {
                let actions = self.hosts[host].on_timer(fabric, ctx, which);
                schedule_actions(ctx, host, actions);
            }
            Token::SliceBoundary => self.on_slice_boundary(fabric, ctx),
            Token::Dark => self.on_dark(fabric, ctx),
            Token::Feeder(rack, uplink) => self.on_feeder(fabric, ctx, rack, uplink),
            Token::HelloCheck(rack, uplink) => self.on_hello_check(rack, uplink),
            Token::WindowClose(..) | Token::Stats => {}
        }
    }
}

/// Build a ready-to-run Opera/RotorNet simulation with `flows` to inject.
pub fn build(cfg: OperaNetConfig, mut flows: Vec<FlowSpec>) -> OperaNet {
    flows.sort_by_key(|f| f.start);
    let topo_params = match cfg.mode {
        RotorMode::RotorHybrid => OperaParams {
            uplinks: cfg.params.uplinks - 1,
            ..cfg.params
        },
        _ => cfg.params,
    };
    // Opera needs every slice to be a connected expander (§3.3's
    // generate-and-test); RotorNet modes never route over slice graphs.
    let topo = match cfg.mode {
        RotorMode::Opera => OperaTopology::generate_validated(topo_params, cfg.seed, 64).0,
        _ => OperaTopology::generate(topo_params, cfg.seed),
    };
    let ll_tables = LowLatencyTables::build(&topo);
    let bulk_tables = BulkTables::build(&topo);

    let mut fabric = Fabric::new();
    let hosts_total = cfg.hosts();
    // Hosts.
    for _ in 0..hosts_total {
        fabric.add_node(1, cfg.queues, cfg.link);
    }
    // ToRs: d down + u rotor ports (+ 1 core port in hybrid mode).
    let tor_ports = cfg.params.hosts_per_rack
        + topo.switches()
        + usize::from(cfg.mode == RotorMode::RotorHybrid);
    for _ in 0..cfg.params.racks {
        fabric.add_node(tor_ports, cfg.queues, cfg.link);
    }
    // Hybrid packet core.
    if cfg.mode == RotorMode::RotorHybrid {
        let core = fabric.add_node(cfg.params.racks, cfg.queues, cfg.link);
        for rack in 0..cfg.params.racks {
            fabric.connect(
                hosts_total + rack,
                cfg.params.hosts_per_rack + topo.switches(),
                core,
                rack,
            );
        }
    }
    // Host ↔ ToR wiring.
    for h in 0..hosts_total {
        let rack = h / cfg.params.hosts_per_rack;
        fabric.connect(h, 0, hosts_total + rack, h % cfg.params.hosts_per_rack);
    }

    let logic = OperaLogic {
        hosts: (0..hosts_total).map(|h| cfg.transport.make(h, 0)).collect(),
        bulk: (0..cfg.params.racks)
            .map(|r| RackBulk::new(r, cfg.params.racks, cfg.rotorlb))
            .collect(),
        tracker: FlowTracker::new(),
        rng: SimRng::new(cfg.seed + 1),
        slice: 0,
        feeders: vec![Feeder::default(); cfg.params.racks * topo.switches()],
        pending: flows,
        next_flow: 0,
        counters: OperaCounters::default(),
        hop_limit: 32,
        horizon: SimTime::ZERO,
        bad_links: Vec::new(),
        hello_pending: vec![false; cfg.params.racks * topo.switches()],
        hello_enabled: true,
        cfg,
        topo,
        ll_tables,
        bulk_tables,
    };
    // Initial wiring: every switch in its slice-0 matching.
    for j in 0..logic.topo.switches() {
        logic.wire_switch(&mut fabric, j, logic.topo.position_at(j, 0));
    }
    NetWorld::new(fabric, logic).into_sim()
}

/// Like [`build`], but with a binned throughput time-series attached to
/// the flow tracker (Figure 8's delivered-throughput-vs-time runs).
pub fn build_with_throughput(cfg: OperaNetConfig, flows: Vec<FlowSpec>, bin: SimTime) -> OperaNet {
    let mut sim = build(cfg, flows);
    let t = std::mem::take(sim.world.logic.tracker_mut());
    *sim.world.logic.tracker_mut() = t.with_throughput_bins(bin);
    sim
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flows_one(src: usize, dst: usize, size: u64) -> Vec<FlowSpec> {
        vec![FlowSpec {
            src,
            dst,
            size,
            start: SimTime::ZERO,
        }]
    }

    #[test]
    fn low_latency_flow_completes_quickly() {
        let cfg = OperaNetConfig::small_test();
        // hosts 0..32; host 1 (rack 0) -> host 30 (rack 7): cross-rack.
        let mut sim = build(cfg, flows_one(1, 30, 20_000));
        sim.run_until(SimTime::from_ms(5));
        let t = sim.world.logic.tracker();
        assert!(t.all_done(), "flow incomplete");
        let fct = t.get(0).fct().unwrap();
        // Multi-hop expander path at 10G: well under 100us for 20KB.
        assert!(fct < SimTime::from_us(100), "fct {fct}");
    }

    #[test]
    fn bulk_flow_waits_for_circuit_and_completes() {
        let cfg = OperaNetConfig::small_test();
        let mut sim = build(cfg, flows_one(0, 31, 2_000_000));
        sim.run_until(SimTime::from_ms(50));
        let t = sim.world.logic.tracker();
        assert!(
            t.all_done(),
            "bulk incomplete: {:?}, counters {:?}",
            t.get(0),
            sim.world.logic.counters
        );
        let fct = t.get(0).fct().unwrap();
        // 2MB at 10G ideal ≈ 1.6ms, but the pair's circuit is up ~3/32 of
        // the time... with VLB the flow finishes within a few cycles
        // (cycle = 8 slices × 10us = 80us).
        assert!(fct < SimTime::from_ms(40), "fct {fct}");
        assert!(fct > SimTime::from_ms(1), "suspiciously fast: {fct}");
    }

    #[test]
    fn rotornet_nonhybrid_short_flow_is_slow() {
        let mut cfg = OperaNetConfig::small_test();
        cfg.mode = RotorMode::RotorNonHybrid;
        let mut sim = build(cfg, flows_one(1, 30, 2_000));
        sim.run_until(SimTime::from_ms(50));
        let t = sim.world.logic.tracker();
        assert!(t.all_done());
        let slow = t.get(0).fct().unwrap();

        // The same flow on Opera goes over the expander immediately.
        let mut sim2 = build(OperaNetConfig::small_test(), flows_one(1, 30, 2_000));
        sim2.run_until(SimTime::from_ms(50));
        let fast = sim2.world.logic.tracker().get(0).fct().unwrap();
        // At test scale (80us cycle) waiting for a circuit costs tens of
        // µs vs single-digit µs over the expander; at paper scale (10.7ms
        // cycle) the same ratio is three orders of magnitude (Fig. 7c).
        assert!(
            slow.as_ns() > 5 * fast.as_ns(),
            "rotor {slow} vs opera {fast}"
        );
        assert!(
            slow > SimTime::from_us(20),
            "rotor flow beat the cycle: {slow}"
        );
    }

    #[test]
    fn hybrid_rotornet_short_flow_uses_packet_core() {
        let mut cfg = OperaNetConfig::small_test();
        // Hybrid diverts one uplink: 3 rotor switches must divide racks.
        cfg.params.racks = 24;
        cfg.mode = RotorMode::RotorHybrid;
        let mut sim = build(cfg, flows_one(1, 30, 2_000));
        sim.run_until(SimTime::from_ms(20));
        let t = sim.world.logic.tracker();
        assert!(t.all_done());
        // 3 store-and-forward hops through the core: ~10us scale.
        let fct = t.get(0).fct().unwrap();
        assert!(fct < SimTime::from_us(50), "fct {fct}");
    }

    #[test]
    fn no_packets_lost_in_quiet_network() {
        let cfg = OperaNetConfig::small_test();
        let mut sim = build(cfg, flows_one(2, 17, 100_000));
        sim.run_until(SimTime::from_ms(30));
        assert!(sim.world.logic.tracker().all_done());
        let c = &sim.world.fabric.counters;
        assert_eq!(c.dark_drops, 0, "packets fell into dark ports");
        assert_eq!(sim.world.logic.counters.hop_limit_drops, 0);
    }

    #[test]
    fn many_flows_mixed_classes_all_complete() {
        let cfg = OperaNetConfig::small_test();
        let mut rng = SimRng::new(9);
        let hosts = cfg.hosts();
        let mut flows = Vec::new();
        for i in 0..60 {
            let src = rng.index(hosts);
            let mut dst = rng.index(hosts - 1);
            if dst >= src {
                dst += 1;
            }
            let size = if i % 3 == 0 { 900_000 } else { 9_000 };
            flows.push(FlowSpec {
                src,
                dst,
                size,
                start: SimTime::from_us(rng.below(500)),
            });
        }
        let mut sim = build(cfg, flows);
        sim.run_until(SimTime::from_ms(200));
        let t = sim.world.logic.tracker();
        assert_eq!(
            t.completed(),
            t.len(),
            "{} of {} done; counters {:?}",
            t.completed(),
            t.len(),
            sim.world.logic.counters
        );
    }

    #[test]
    fn hello_protocol_detects_and_routes_around_failure() {
        let cfg = OperaNetConfig::small_test();
        let mut sim = build(cfg, vec![]);
        // Kill rack 2's transceiver on uplink 1 (both data and hellos it
        // transmits are lost; its partners' hello checks will trip).
        let (node, port) = sim.world.logic.uplink_addr(2, 1);
        sim.world.fabric.set_failed(node, port, true);
        // Within two cycles (2 x 8 slices x 10 us) detection completes.
        sim.run_until(SimTime::from_us(200));
        assert!(
            sim.world.logic.bad_links().contains(&(2, 1)),
            "failure undetected: {:?}",
            sim.world.logic.bad_links()
        );
        // The network still delivers traffic from/to rack 2.
        drop(sim);
        let mut sim = build(
            OperaNetConfig::small_test(),
            vec![FlowSpec {
                src: 8, // host in rack 2
                dst: 30,
                size: 50_000,
                start: SimTime::from_us(200),
            }],
        );
        let (node, port) = sim.world.logic.uplink_addr(2, 1);
        sim.world.fabric.set_failed(node, port, true);
        sim.run_until(SimTime::from_ms(10));
        assert!(
            sim.world.logic.tracker().all_done(),
            "flow stuck after failure: {:?}",
            sim.world.logic.tracker().get(0)
        );
    }

    #[test]
    fn no_false_positives_without_failures() {
        let cfg = OperaNetConfig::small_test();
        let mut sim = build(cfg, vec![]);
        sim.run_until(SimTime::from_ms(2));
        assert!(sim.world.logic.bad_links().is_empty());
        assert_eq!(sim.world.logic.counters.links_marked_bad, 0);
    }

    #[test]
    fn slice_clock_advances() {
        let cfg = OperaNetConfig::small_test();
        let mut sim = build(cfg, vec![]);
        sim.run_until(SimTime::from_us(105));
        // 10us slices: after 105us we should be in slice 10.
        assert_eq!(sim.world.logic.slice, 10);
    }
}
