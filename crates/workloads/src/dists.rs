//! Empirical flow-size distributions (Figure 1).
//!
//! The paper evaluates three published distributions:
//!
//! * **Datamining** — Greenberg et al., VL2 \[21\]: extremely skewed; most
//!   flows are mice under 10 KB but nearly all *bytes* ride flows larger
//!   than the 15 MB bulk threshold.
//! * **Websearch** — Alizadeh et al., DCTCP \[4\]: flows between ~10 KB
//!   and 30 MB; effectively all bytes *below* the 15 MB threshold (the
//!   paper's worst case for Opera, §5.3).
//! * **Hadoop** — Roy et al., Facebook \[39\]: rack-heavy RPC traffic,
//!   median inter-rack flow ≈ 100 KB (the basis for the shuffle flow size
//!   in §5.2).
//!
//! Control points are digitized from the published CDFs; between points we
//! interpolate linearly in `log₁₀(size)`, the standard reconstruction for
//! these long-tailed distributions. Exact byte-weighted tails differ from
//! the originals by a few percent, which shifts no conclusion: what the
//! evaluation needs is that Datamining is byte-dominated by >15 MB flows,
//! Websearch byte-dominated by <15 MB flows, and Hadoop by ~100 KB flows.

use rand::distributions::{Distribution, Uniform};
use simkit::SimRng;

/// One of the paper's named workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// VL2 datamining (bulk-dominated).
    Datamining,
    /// DCTCP websearch (all below the bulk threshold).
    Websearch,
    /// Facebook Hadoop (shuffle-style).
    Hadoop,
}

/// A piecewise log-linear flow-size CDF.
#[derive(Debug, Clone)]
pub struct FlowSizeDist {
    /// `(size_bytes, cumulative_fraction)`, strictly increasing in both.
    points: Vec<(f64, f64)>,
}

impl FlowSizeDist {
    /// Construct from explicit control points. First fraction must be 0,
    /// last must be 1, sizes and fractions strictly increasing.
    pub fn from_points(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2);
        assert_eq!(points[0].1, 0.0, "CDF must start at 0");
        assert_eq!(points.last().unwrap().1, 1.0, "CDF must end at 1");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must increase");
            assert!(w[0].1 <= w[1].1, "CDF must be monotone");
        }
        FlowSizeDist { points }
    }

    /// The named distribution.
    pub fn of(w: Workload) -> Self {
        match w {
            // VL2 Figure: mice dominate flow count; elephants (100MB-1GB)
            // dominate bytes.
            Workload::Datamining => FlowSizeDist::from_points(vec![
                (100.0, 0.0),
                (300.0, 0.25),
                (1e3, 0.50),
                (10e3, 0.80),
                (100e3, 0.90),
                (1e6, 0.95),
                (10e6, 0.96),
                (100e6, 0.98),
                (1e9, 1.0),
            ]),
            // DCTCP Figure 2: query + background mix.
            Workload::Websearch => FlowSizeDist::from_points(vec![
                (6e3, 0.0),
                (10e3, 0.15),
                (20e3, 0.20),
                (30e3, 0.30),
                (50e3, 0.40),
                (80e3, 0.53),
                (200e3, 0.60),
                (1e6, 0.70),
                (2e6, 0.80),
                (5e6, 0.90),
                (10e6, 0.98),
                (15e6, 1.0),
            ]),
            // Facebook Hadoop cluster (inter-rack): median ≈ 100KB.
            Workload::Hadoop => FlowSizeDist::from_points(vec![
                (150.0, 0.0),
                (300.0, 0.1),
                (1e3, 0.20),
                (10e3, 0.40),
                (100e3, 0.55),
                (300e3, 0.75),
                (1e6, 0.90),
                (10e6, 0.99),
                (100e6, 1.0),
            ]),
        }
    }

    /// Sample one flow size (bytes).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = Uniform::new(0.0, 1.0).sample(rng);
        self.quantile(u).round().max(1.0) as u64
    }

    /// Inverse CDF at `u ∈ [0,1]`, interpolating linearly in log-size.
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let pts = &self.points;
        if u <= pts[0].1 {
            return pts[0].0;
        }
        for w in pts.windows(2) {
            let (s0, f0) = w[0];
            let (s1, f1) = w[1];
            if u <= f1 {
                if f1 == f0 {
                    return s1;
                }
                let t = (u - f0) / (f1 - f0);
                let ls = s0.log10() + t * (s1.log10() - s0.log10());
                return 10f64.powf(ls);
            }
        }
        pts.last().unwrap().0
    }

    /// CDF of flow *count* at `size`.
    pub fn cdf(&self, size: f64) -> f64 {
        let pts = &self.points;
        if size <= pts[0].0 {
            return 0.0;
        }
        for w in pts.windows(2) {
            let (s0, f0) = w[0];
            let (s1, f1) = w[1];
            if size <= s1 {
                let t = (size.log10() - s0.log10()) / (s1.log10() - s0.log10());
                return f0 + t * (f1 - f0);
            }
        }
        1.0
    }

    /// Mean flow size (bytes), by numeric integration of the quantile.
    pub fn mean(&self) -> f64 {
        let n = 20_000;
        (0..n)
            .map(|i| self.quantile((i as f64 + 0.5) / n as f64))
            .sum::<f64>()
            / n as f64
    }

    /// Fraction of *bytes* carried by flows of size ≥ `threshold` — the
    /// quantity that determines Opera's effective bandwidth tax (§5.1).
    pub fn byte_fraction_above(&self, threshold: f64) -> f64 {
        let n = 20_000;
        let mut total = 0.0;
        let mut above = 0.0;
        for i in 0..n {
            let s = self.quantile((i as f64 + 0.5) / n as f64);
            total += s;
            if s >= threshold {
                above += s;
            }
        }
        above / total
    }

    /// The control points (for plotting Figure 1).
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_monotone_and_bounded() {
        for w in [Workload::Datamining, Workload::Websearch, Workload::Hadoop] {
            let d = FlowSizeDist::of(w);
            let mut last = 0.0;
            for i in 0..=100 {
                let q = d.quantile(i as f64 / 100.0);
                assert!(q >= last, "{w:?} non-monotone at {i}");
                last = q;
            }
            assert!(d.quantile(0.0) >= 100.0 - 1.0);
            assert!(d.quantile(1.0) <= 1.0000001e9);
        }
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        let d = FlowSizeDist::of(Workload::Websearch);
        for u in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let s = d.quantile(u);
            let back = d.cdf(s);
            assert!((back - u).abs() < 1e-6, "u={u} s={s} back={back}");
        }
    }

    #[test]
    fn datamining_is_bulk_dominated() {
        let d = FlowSizeDist::of(Workload::Datamining);
        let f = d.byte_fraction_above(15e6);
        // The paper: ~96% of Datamining bytes ride bulk (≥15MB) flows
        // (4% low-latency). Digitization tolerance: 85–99%.
        assert!(f > 0.85 && f < 0.995, "bulk byte fraction {f}");
    }

    #[test]
    fn websearch_is_all_low_latency() {
        let d = FlowSizeDist::of(Workload::Websearch);
        let f = d.byte_fraction_above(15e6);
        // §5.3: Websearch has essentially no bytes above 15MB.
        assert!(f < 0.15, "bulk byte fraction {f}");
    }

    #[test]
    fn hadoop_median_near_100kb() {
        let d = FlowSizeDist::of(Workload::Hadoop);
        let med = d.quantile(0.5);
        assert!((20e3..300e3).contains(&med), "median {med} not ~100KB");
    }

    #[test]
    fn sampling_follows_cdf() {
        let d = FlowSizeDist::of(Workload::Datamining);
        let mut rng = SimRng::new(42);
        let n = 100_000;
        let small = (0..n)
            .filter(|_| (d.sample(&mut rng) as f64) <= 1e3 * 1.01)
            .count();
        let expect = d.cdf(1e3);
        let got = small as f64 / n as f64;
        assert!((got - expect).abs() < 0.01, "got {got} expect {expect}");
    }

    #[test]
    fn mean_sizes_sane() {
        // Datamining's mean is pulled up by the 1GB tail; Websearch sits
        // in the ~1-2MB range; Hadoop under 1MB.
        let dm = FlowSizeDist::of(Workload::Datamining).mean();
        let ws = FlowSizeDist::of(Workload::Websearch).mean();
        let hd = FlowSizeDist::of(Workload::Hadoop).mean();
        assert!(dm > 5e6, "datamining mean {dm}");
        assert!((2e5..6e6).contains(&ws), "websearch mean {ws}");
        assert!((5e4..2e6).contains(&hd), "hadoop mean {hd}");
    }

    #[test]
    #[should_panic(expected = "CDF must start at 0")]
    fn bad_points_rejected() {
        FlowSizeDist::from_points(vec![(10.0, 0.5), (20.0, 1.0)]);
    }
}
