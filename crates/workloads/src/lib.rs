//! `workloads` — traffic generators for the Opera evaluation.
//!
//! * [`dists`] — the three published empirical flow-size distributions of
//!   Figure 1 (Datamining \[21\], Websearch \[4\], Hadoop \[39\]),
//!   digitized as piecewise log-linear CDFs, with inverse-CDF sampling and
//!   byte-weighted statistics,
//! * [`gen`] — flow generators: Poisson arrivals at a target load, the
//!   100 KB all-to-all shuffle (§5.2), host permutations, hot-rack, and
//!   skew\[p,1\] rack subsets (§5.6), and the mixed Websearch+Shuffle
//!   workload (§5.4).

pub mod dists;
pub mod gen;

pub use dists::{FlowSizeDist, Workload};
pub use gen::{FlowSpec, PoissonGen, ScenarioGen};
