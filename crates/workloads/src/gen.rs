//! Flow generators for the evaluation scenarios.
//!
//! All generators are deterministic given a seed and produce [`FlowSpec`]
//! lists that the network harnesses replay.

use crate::dists::FlowSizeDist;
use flowsim::Demand;
use rand::distributions::{Distribution, Uniform};
use simkit::{SimRng, SimTime};

/// One flow to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Sending host (global host index).
    pub src: usize,
    /// Receiving host (global host index).
    pub dst: usize,
    /// Payload size, bytes.
    pub size: u64,
    /// Arrival time.
    pub start: SimTime,
}

/// Poisson open-loop flow arrivals at a target load.
///
/// Load is defined as in §5.1: the fraction of the aggregate host link
/// bandwidth (`hosts × gbps`) consumed by offered flow bytes.
#[derive(Debug)]
pub struct PoissonGen {
    dist: FlowSizeDist,
    hosts: usize,
    /// Mean flow interarrival time across the whole cluster.
    mean_gap_ns: f64,
    rng: SimRng,
    now_ns: f64,
}

impl PoissonGen {
    /// Build a generator for `hosts` hosts with `gbps` links at fractional
    /// `load` using flow sizes from `dist`.
    pub fn new(dist: FlowSizeDist, hosts: usize, gbps: f64, load: f64, seed: u64) -> Self {
        assert!(load > 0.0 && load <= 1.0, "load must be in (0,1]");
        let bytes_per_sec = load * hosts as f64 * gbps * 1e9 / 8.0;
        let flows_per_sec = bytes_per_sec / dist.mean();
        PoissonGen {
            dist,
            hosts,
            mean_gap_ns: 1e9 / flows_per_sec,
            rng: SimRng::new(seed),
            now_ns: 0.0,
        }
    }

    /// Mean cluster-wide flow interarrival gap, ns.
    pub fn mean_gap_ns(&self) -> f64 {
        self.mean_gap_ns
    }

    /// Next flow (advances internal time).
    pub fn next_flow(&mut self) -> FlowSpec {
        self.now_ns += self.rng.exp(self.mean_gap_ns);
        let src = self.rng.index(self.hosts);
        let mut dst = self.rng.index(self.hosts - 1);
        if dst >= src {
            dst += 1;
        }
        FlowSpec {
            src,
            dst,
            size: self.dist.sample(&mut self.rng),
            start: SimTime::from_ns(self.now_ns as u64),
        }
    }

    /// All flows arriving before `horizon`.
    pub fn flows_until(&mut self, horizon: SimTime) -> Vec<FlowSpec> {
        let mut out = Vec::new();
        loop {
            let f = self.next_flow();
            if f.start >= horizon {
                break;
            }
            out.push(f);
        }
        out
    }
}

/// Closed-form scenario generators (§5.2, §5.6).
#[derive(Debug)]
pub struct ScenarioGen;

impl ScenarioGen {
    /// All-to-all shuffle: every host sends `size` bytes to every other
    /// host (§5.2 uses 100 KB), all starting at `start`.
    pub fn shuffle(hosts: usize, size: u64, start: SimTime) -> Vec<FlowSpec> {
        let mut out = Vec::with_capacity(hosts * (hosts - 1));
        for s in 0..hosts {
            for d in 0..hosts {
                if s != d {
                    out.push(FlowSpec {
                        src: s,
                        dst: d,
                        size,
                        start,
                    });
                }
            }
        }
        out
    }

    /// All-to-all shuffle with arrivals staggered uniformly over `window`
    /// (the paper staggers static-network runs over 10 ms to avoid
    /// startup effects).
    pub fn shuffle_staggered(
        hosts: usize,
        size: u64,
        window: SimTime,
        rng: &mut SimRng,
    ) -> Vec<FlowSpec> {
        let stagger = Uniform::new(0u64, window.as_ns().max(1));
        Self::shuffle(hosts, size, SimTime::ZERO)
            .into_iter()
            .map(|mut f| {
                f.start = SimTime::from_ns(stagger.sample(rng));
                f
            })
            .collect()
    }

    /// Host permutation: every host sends to one non-rack-local host,
    /// derangement-style (§5.6).
    pub fn permutation(
        hosts: usize,
        hosts_per_rack: usize,
        size: u64,
        rng: &mut SimRng,
    ) -> Vec<FlowSpec> {
        // Rack-rotation permutation with random rack relabeling: host i of
        // rack r sends to host i of rack π(r)+1, guaranteeing non-local.
        let racks = hosts / hosts_per_rack;
        let mut perm: Vec<usize> = (0..racks).collect();
        rng.shuffle(&mut perm);
        let mut out = Vec::with_capacity(hosts);
        for r in 0..racks {
            let dst_rack = perm[(perm.iter().position(|&x| x == r).unwrap() + 1) % racks];
            for i in 0..hosts_per_rack {
                out.push(FlowSpec {
                    src: r * hosts_per_rack + i,
                    dst: dst_rack * hosts_per_rack + i,
                    size,
                    start: SimTime::ZERO,
                });
            }
        }
        out
    }

    /// Rack-level demand matrices for the flow-model sweeps (Fig. 12/15).
    /// `hot rack`: all hosts of rack 0 send to rack 1 at full rate.
    pub fn hotrack_demands(hosts_per_rack: usize, gbps: f64) -> Vec<Demand> {
        vec![Demand {
            src: 0,
            dst: 1,
            amount: hosts_per_rack as f64 * gbps,
        }]
    }

    /// `skew[p,1]`: fraction `p` of racks are active; active racks send a
    /// rack-level permutation among themselves at full rate (following
    /// \[29\]).
    pub fn skew_demands(
        racks: usize,
        p: f64,
        hosts_per_rack: usize,
        gbps: f64,
        rng: &mut SimRng,
    ) -> Vec<Demand> {
        let active = ((racks as f64 * p).round() as usize).clamp(2, racks);
        let mut ids: Vec<usize> = (0..racks).collect();
        rng.shuffle(&mut ids);
        ids.truncate(active);
        (0..active)
            .map(|i| Demand {
                src: ids[i],
                dst: ids[(i + 1) % active],
                amount: hosts_per_rack as f64 * gbps,
            })
            .collect()
    }

    /// Rack-level permutation demands at full rate.
    pub fn permutation_demands(
        racks: usize,
        hosts_per_rack: usize,
        gbps: f64,
        rng: &mut SimRng,
    ) -> Vec<Demand> {
        let mut ids: Vec<usize> = (0..racks).collect();
        rng.shuffle(&mut ids);
        (0..racks)
            .map(|i| Demand {
                src: ids[i],
                dst: ids[(i + 1) % racks],
                amount: hosts_per_rack as f64 * gbps,
            })
            .collect()
    }

    /// Uniform all-to-all rack demands totaling `frac` of each rack's host
    /// capacity.
    pub fn all_to_all_demands(
        racks: usize,
        hosts_per_rack: usize,
        gbps: f64,
        frac: f64,
    ) -> Vec<Demand> {
        let per_pair = frac * hosts_per_rack as f64 * gbps / (racks - 1) as f64;
        (0..racks)
            .flat_map(|a| {
                (0..racks).filter(move |&b| b != a).map(move |b| Demand {
                    src: a,
                    dst: b,
                    amount: per_pair,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dists::Workload;

    #[test]
    fn poisson_load_calibrated() {
        let dist = FlowSizeDist::of(Workload::Websearch);
        let mean = dist.mean();
        let hosts = 64;
        let load = 0.25;
        let mut g = PoissonGen::new(dist, hosts, 10.0, load, 7);
        let horizon = SimTime::from_ms(200);
        let flows = g.flows_until(horizon);
        let bytes: u64 = flows.iter().map(|f| f.size).sum();
        let offered = bytes as f64 * 8.0 / horizon.as_secs_f64();
        let target = load * hosts as f64 * 10e9;
        assert!(
            (offered / target - 1.0).abs() < 0.15,
            "offered {offered:.3e} vs target {target:.3e} (mean size {mean:.0})"
        );
    }

    #[test]
    fn poisson_src_dst_distinct() {
        let mut g = PoissonGen::new(FlowSizeDist::of(Workload::Hadoop), 8, 10.0, 0.1, 3);
        for _ in 0..1000 {
            let f = g.next_flow();
            assert_ne!(f.src, f.dst);
            assert!(f.src < 8 && f.dst < 8);
        }
    }

    #[test]
    fn poisson_deterministic() {
        let mk = || {
            let mut g = PoissonGen::new(FlowSizeDist::of(Workload::Hadoop), 8, 10.0, 0.1, 9);
            (0..100).map(|_| g.next_flow()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn shuffle_counts() {
        let f = ScenarioGen::shuffle(10, 100_000, SimTime::ZERO);
        assert_eq!(f.len(), 90);
        assert!(f.iter().all(|x| x.size == 100_000));
    }

    #[test]
    fn staggered_shuffle_within_window() {
        let mut rng = SimRng::new(4);
        let w = SimTime::from_ms(10);
        let f = ScenarioGen::shuffle_staggered(6, 1000, w, &mut rng);
        assert_eq!(f.len(), 30);
        assert!(f.iter().all(|x| x.start < w));
        assert!(f.iter().any(|x| x.start.as_ns() > 0));
    }

    #[test]
    fn permutation_non_rack_local() {
        let mut rng = SimRng::new(5);
        let f = ScenarioGen::permutation(24, 4, 500_000, &mut rng);
        assert_eq!(f.len(), 24);
        for x in &f {
            assert_ne!(x.src / 4, x.dst / 4, "rack-local pair {x:?}");
        }
        // every host sends exactly once, receives exactly once
        let mut sends = [0; 24];
        let mut recvs = [0; 24];
        for x in &f {
            sends[x.src] += 1;
            recvs[x.dst] += 1;
        }
        assert!(sends.iter().all(|&c| c == 1));
        assert!(recvs.iter().all(|&c| c == 1));
    }

    #[test]
    fn skew_demands_active_fraction() {
        let mut rng = SimRng::new(6);
        let d = ScenarioGen::skew_demands(100, 0.2, 4, 10.0, &mut rng);
        assert_eq!(d.len(), 20);
        for x in &d {
            assert_ne!(x.src, x.dst);
            assert_eq!(x.amount, 40.0);
        }
    }

    #[test]
    fn all_to_all_totals() {
        let d = ScenarioGen::all_to_all_demands(10, 4, 10.0, 0.5);
        assert_eq!(d.len(), 90);
        let per_rack: f64 = d.iter().filter(|x| x.src == 0).map(|x| x.amount).sum();
        assert!((per_rack - 20.0).abs() < 1e-9);
    }
}
