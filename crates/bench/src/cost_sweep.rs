//! Shared α-sweep driver for Figures 12 and 15.

use crate::f;
use flowsim::models::Demand;
use flowsim::{clos_throughput, max_concurrent_flow, opera_model};
use simkit::SimRng;
use topo::cost::{expander_racks, expander_uplinks};
use topo::expander::{ExpanderParams, ExpanderTopology};
use topo::opera::{OperaParams, OperaTopology};
use workloads::gen::ScenarioGen;

/// Run the three-workload sweep for ToR radix `k`.
pub fn run(k: usize) {
    let rate = 10.0;
    let d_opera = k / 2;
    let racks_opera = 3 * k * k / 4;
    let hosts = racks_opera * d_opera;
    let opera = OperaTopology::generate(OperaParams::from_radix(k, racks_opera), 5);
    let duty = 0.98;

    let alphas = [1.0, 1.25, 1.5, 1.75, 2.0];
    let mut rng = SimRng::new(21);

    // Demands per workload at Opera's rack granularity.
    let wl_opera: Vec<(&str, Vec<Demand>)> = vec![
        ("hotrack", ScenarioGen::hotrack_demands(d_opera, rate)),
        (
            "skew02",
            ScenarioGen::skew_demands(racks_opera, 0.2, d_opera, rate, &mut rng),
        ),
        (
            "permutation",
            ScenarioGen::permutation_demands(racks_opera, d_opera, rate, &mut rng),
        ),
    ];

    println!("# Figure 12-style sweep, k={k}, {hosts} hosts");
    println!("workload,alpha,opera,expander,clos");
    for (name, demands_o) in &wl_opera {
        // Opera is α-independent: compute once.
        let o = opera_model(&opera, demands_o, rate, duty, true).throughput_fraction();
        for &alpha in &alphas {
            // Cost-equivalent expander.
            let u = expander_uplinks(alpha, k).clamp(3, k - 1);
            let de = k - u;
            let racks_e = expander_racks(hosts, k, u);
            let exp = ExpanderTopology::generate(
                ExpanderParams {
                    racks: racks_e,
                    uplinks: u,
                    hosts_per_rack: de,
                },
                7,
            );
            // Map the workload onto the expander's rack count.
            let mut rng_e = SimRng::new(31);
            let demands_e: Vec<Demand> = match *name {
                "hotrack" => ScenarioGen::hotrack_demands(de, rate),
                "skew02" => ScenarioGen::skew_demands(racks_e, 0.2, de, rate, &mut rng_e),
                _ => ScenarioGen::permutation_demands(racks_e, de, rate, &mut rng_e),
            };
            let tor: Vec<usize> = (0..racks_e).collect();
            let e = max_concurrent_flow(exp.graph(), &tor, &demands_e, rate, de as f64 * rate, 60)
                .lambda;
            let c = clos_throughput(alpha);
            println!("{name},{alpha},{},{},{}", f(o), f(e), f(c));
        }
    }
    println!();
    println!("# all-to-all shuffle reference (Opera's direct-path advantage)");
    let a2a = ScenarioGen::all_to_all_demands(racks_opera, d_opera, rate, 1.0);
    let o = opera_model(&opera, &a2a, rate, duty, true).throughput_fraction();
    println!("all_to_all,opera,{}", f(o));
}
