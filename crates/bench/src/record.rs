//! The committed performance trajectory: `bench_record`.
//!
//! The ROADMAP asks for engine speed "proven with a committed perf
//! trajectory". This module is that proof: a fixed scenario set — a raw
//! engine-churn microbenchmark plus bounded fig08 (shuffle) and fig09
//! (Websearch) slices — measured through the same core as the criterion
//! benches ([`criterion::sample_batched`] / [`criterion::Summary`]) and
//! appended to the **append-only** `BENCH_hot_paths.json` at the
//! workspace root. Each entry records, per scenario:
//!
//! * `events` — deterministic simulator event count of one run,
//! * `wall_ms_median` / `wall_ms_stddev` — wall time over the samples,
//! * `events_per_sec` — `events / median wall`, the headline number,
//! * `peak_pending` — high-water mark of the pending-event queue,
//!
//! plus which engine produced it ([`simkit::engine::ENGINE_NAME`]), the
//! scale mode, the git revision, and a timestamp. Because entries are
//! never rewritten, the file reads as a performance time series over the
//! PR history, and CI's `bench-record` job can gate regressions by
//! comparing a fresh run against the latest committed entry (see
//! [`check`]; the threshold is generous — shared runners are noisy — so
//! only real cliffs fail the build).

use crate::{MiniTrio, QuickTrio};
use criterion::{sample_batched, Summary};
use expt::json::Json;
use simkit::engine::{EventContext, EventHandler, Simulator};
use simkit::{SimRng, SimTime};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use topo::cost::{expander_racks, expander_uplinks};
use topo::expander::{ExpanderParams, ExpanderTopology};
use workloads::dists::{FlowSizeDist, Workload};
use workloads::gen::{PoissonGen, ScenarioGen};
use workloads::FlowSpec;

/// Default trajectory file, at the workspace root next to `goldens/`.
pub const DEFAULT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hot_paths.json");

/// Default regression-gate threshold: fail when a scenario's fresh
/// `events_per_sec` drops more than 30% below the committed baseline.
/// Generous on purpose — CI runners share cores and wall time jitters —
/// so the gate catches algorithmic cliffs, not scheduler noise.
pub const DEFAULT_THRESHOLD: f64 = 0.30;

/// One measured scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name (JSON key).
    pub name: &'static str,
    /// Simulator events processed by one run (deterministic).
    pub events: u64,
    /// Wall-time statistics over the samples.
    pub wall: Summary,
    /// `events / median wall`, in events per wall-clock second.
    pub events_per_sec: f64,
    /// High-water mark of pending events in the engine queue.
    pub peak_pending: usize,
}

/// Run the fixed scenario set. `full` selects the nightly configuration
/// (larger networks, longer horizons, more samples); quick is the
/// per-push CI configuration.
pub fn run_all(full: bool) -> Vec<ScenarioResult> {
    vec![
        engine_churn(full),
        fig08_shuffle_slice(full),
        fig09_websearch_slice(full),
        mcf_solve(full),
        mcf_sweep_warm(full),
    ]
}

/// World for the raw engine microbenchmark: a constant population of
/// events, every one rescheduling itself onto a future slot boundary.
/// This is the rotor-network shape the scheduler must be fast for —
/// nearly all events land on a small set of known slot-aligned times.
struct Churn {
    slot_ns: u64,
    remaining: u64,
}

impl EventHandler for Churn {
    type Event = u32;
    fn handle_event(&mut self, ev: u32, ctx: &mut EventContext<'_, u32>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            // Hop 1–4 slots ahead, deterministically per event id, so
            // pending events spread over a handful of future boundaries.
            let hop = 1 + (ev as u64 & 3);
            ctx.schedule_in(SimTime::from_ns(self.slot_ns * hop), ev);
        }
    }
}

/// Raw engine churn: `pending` concurrent events over 90 µs-style slot
/// boundaries, `total` pops. No fabric, no packets — pure scheduler.
fn engine_churn(full: bool) -> ScenarioResult {
    let (pending, total, samples) = if full {
        (262_144u32, 15_000_000u64, 7)
    } else {
        (65_536u32, 1_500_000u64, 5)
    };
    let slot_ns = 1_000;
    let mut peak = 0usize;
    let wall = sample_batched(
        samples,
        || {
            let mut sim = Simulator::new(Churn {
                slot_ns,
                remaining: total,
            });
            for i in 0..pending {
                sim.schedule_at(SimTime::from_ns(slot_ns * (1 + (i as u64 & 3))), i);
            }
            sim
        },
        |mut sim| {
            sim.run_events(total);
            peak = sim.peak_pending();
            sim.events_processed()
        },
    );
    finish("engine_churn", total, wall, peak)
}

/// A bounded slice of fig08: bulk shuffle on the Opera network, every
/// flow over direct circuits (RotorLB + circuit scheduling hot paths).
fn fig08_shuffle_slice(full: bool) -> ScenarioResult {
    let (mut cfg, peers, horizon, samples) = if full {
        (MiniTrio::opera(), 8, SimTime::from_ms(40), 5)
    } else {
        (QuickTrio::opera(), 4, SimTime::from_ms(20), 3)
    };
    cfg.bulk_threshold = 0; // application tags everything bulk (§3.4)
    let hosts = cfg.hosts();
    let mut flows = Vec::with_capacity(hosts * peers);
    for src in 0..hosts {
        for k in 1..=peers {
            flows.push(FlowSpec {
                src,
                dst: (src + k * (hosts / peers + 1)) % hosts,
                size: 100_000,
                start: SimTime::ZERO,
            });
        }
    }
    measure_net("fig08_shuffle_slice", samples, horizon, move || {
        opera::opera_net::build(cfg, flows.clone())
    })
}

/// A bounded slice of fig09: a short Websearch Poisson window at 10%
/// load, all flows low-latency (NDP + indirect expander paths).
fn fig09_websearch_slice(full: bool) -> ScenarioResult {
    let (mut cfg, window, horizon, samples) = if full {
        (
            MiniTrio::opera(),
            SimTime::from_ms(10),
            SimTime::from_ms(40),
            5,
        )
    } else {
        (
            QuickTrio::opera(),
            SimTime::from_ms(2),
            SimTime::from_ms(10),
            3,
        )
    };
    cfg.bulk_threshold = 20_000_000; // fig09's premise: all low-latency
    let hosts = cfg.hosts();
    let flows = PoissonGen::new(FlowSizeDist::of(Workload::Websearch), hosts, 10.0, 0.10, 0)
        .flows_until(window);
    measure_net("fig09_websearch_slice", samples, horizon, move || {
        opera::opera_net::build(cfg, flows.clone())
    })
}

/// Fixed-topology Garg–Könemann solves: the cost-equivalent expander of
/// fig12/fig15 under the hot-rack and permutation demand matrices. For
/// the solver scenarios `events` counts **MCF solves**, so
/// `events_per_sec` reads as solves per second, and `peak_pending` is 0
/// (no engine queue is involved).
fn mcf_solve(full: bool) -> ScenarioResult {
    // Quick: the paper's k = 12 cost-equivalent expander (130 × 5 hosts)
    // at fig12's quick-scale phase count (`mcf_iters` = 25), i.e. the
    // solver exactly as the quick driver runs it. Full: the k = 24
    // α = 1.0 point of the nightly fig12_k24 spot check at the full-scale
    // phase count.
    let (params, phases, samples) = if full {
        (
            ExpanderParams {
                racks: 432,
                uplinks: 12,
                hosts_per_rack: 12,
            },
            60usize,
            5,
        )
    } else {
        (ExpanderParams::example_650(), 25, 5)
    };
    let rate = 10.0;
    let exp = ExpanderTopology::generate(params, 7);
    let tor: Vec<usize> = (0..params.racks).collect();
    let hot = ScenarioGen::hotrack_demands(params.hosts_per_rack, rate);
    let mut rng = SimRng::new(11);
    let perm =
        ScenarioGen::permutation_demands(params.racks, params.hosts_per_rack, rate, &mut rng);
    let host_cap = params.hosts_per_rack as f64 * rate;
    let mut solver = flowsim::McfSolver::new(exp.graph());
    let wall = sample_batched(
        samples,
        || (),
        |()| {
            let h = solver.solve(&tor, &hot, rate, host_cap, phases);
            let p = solver.solve(&tor, &perm, rate, host_cap, phases);
            (h.lambda, p.lambda)
        },
    );
    finish("mcf_solve", 2, wall, 0)
}

/// The fig12-shaped α-sweep: one cost-equivalent expander per α, solved
/// in ascending-α order under hot-rack + permutation demands. Adjacent α
/// points with the same uplink count pose the *identical* problem (same
/// seed-7 topology, demands keyed on the uplink count), which is the
/// warm-start reuse opportunity. `events` counts α points solved.
fn mcf_sweep_warm(full: bool) -> ScenarioResult {
    let (k, phases, samples) = if full {
        (24usize, 60usize, 3)
    } else {
        (12, 25, 5)
    };
    let rate = 10.0;
    let hosts = (3 * k * k / 4) * (k / 2);
    let alphas: Vec<f64> = (0..=10).map(|i| 1.0 + 0.1 * i as f64).collect();
    let points: Vec<(usize, usize, ExpanderTopology)> = alphas
        .iter()
        .map(|&alpha| {
            let u = expander_uplinks(alpha, k).clamp(3, k - 1);
            let de = k - u;
            let racks_e = expander_racks(hosts, k, u);
            let exp = ExpanderTopology::generate(
                ExpanderParams {
                    racks: racks_e,
                    uplinks: u,
                    hosts_per_rack: de,
                },
                7,
            );
            (u, de, exp)
        })
        .collect();
    let demand_sets: Vec<(Vec<flowsim::models::Demand>, Vec<usize>, f64)> = points
        .iter()
        .map(|(u, de, exp)| {
            let racks_e = exp.racks();
            let mut demands = ScenarioGen::hotrack_demands(*de, rate);
            // Keyed on the uplink count, not the α index, so equal-u
            // points stay byte-identical problems.
            let mut rng = SimRng::new(1000 + *u as u64);
            demands.extend(ScenarioGen::permutation_demands(
                racks_e, *de, rate, &mut rng,
            ));
            let tor: Vec<usize> = (0..racks_e).collect();
            (demands, tor, *de as f64 * rate)
        })
        .collect();
    let wall = sample_batched(
        samples,
        || (),
        |()| {
            let mut lambdas = Vec::with_capacity(points.len());
            let mut prior: Option<flowsim::McfState> = None;
            for ((_, _, exp), (demands, tor, host_cap)) in points.iter().zip(&demand_sets) {
                let mut solver = flowsim::McfSolver::new(exp.graph());
                let (r, state) =
                    solver.solve_warm(prior.as_ref(), tor, demands, rate, *host_cap, phases);
                prior = Some(state);
                lambdas.push(r.lambda);
            }
            lambdas
        },
    );
    finish("mcf_sweep_warm", alphas.len() as u64, wall, 0)
}

/// Measure a packet-level scenario: build the simulation per sample
/// (setup excluded from timing), run to `horizon`, count engine events.
fn measure_net<W, F>(
    name: &'static str,
    samples: usize,
    horizon: SimTime,
    mut build: F,
) -> ScenarioResult
where
    W: EventHandler,
    F: FnMut() -> Simulator<W>,
{
    let mut events = 0u64;
    let mut peak = 0usize;
    let wall = sample_batched(samples, &mut build, |mut sim| {
        sim.run_until(horizon);
        events = sim.events_processed();
        peak = sim.peak_pending();
    });
    finish(name, events, wall, peak)
}

fn finish(
    name: &'static str,
    events: u64,
    wall_samples: Vec<std::time::Duration>,
    peak_pending: usize,
) -> ScenarioResult {
    let wall = Summary::from_samples(&wall_samples).expect("sampled at least once");
    let events_per_sec = events as f64 / wall.median.as_secs_f64();
    ScenarioResult {
        name,
        events,
        wall,
        events_per_sec,
        peak_pending,
    }
}

fn num(text: String) -> Json {
    Json::Num(text)
}

/// Build the JSON object for one trajectory entry.
pub fn entry(results: &[ScenarioResult], mode: &str, recorded_at_unix: u64, git_rev: &str) -> Json {
    let mut scenarios = BTreeMap::new();
    for r in results {
        let mut s = BTreeMap::new();
        s.insert("events".into(), num(r.events.to_string()));
        s.insert(
            "events_per_sec".into(),
            num(format!("{:.1}", r.events_per_sec)),
        );
        s.insert("peak_pending".into(), num(r.peak_pending.to_string()));
        s.insert(
            "wall_ms_median".into(),
            num(format!("{:.3}", r.wall.median.as_secs_f64() * 1e3)),
        );
        s.insert(
            "wall_ms_stddev".into(),
            num(format!("{:.3}", r.wall.stddev.as_secs_f64() * 1e3)),
        );
        scenarios.insert(r.name.to_string(), Json::Obj(s));
    }
    let mut e = BTreeMap::new();
    e.insert(
        "engine".into(),
        Json::Str(simkit::engine::ENGINE_NAME.into()),
    );
    e.insert("git_rev".into(), Json::Str(git_rev.into()));
    e.insert(
        "host".into(),
        Json::Str(format!(
            "{}-{}",
            std::env::consts::OS,
            std::env::consts::ARCH
        )),
    );
    e.insert("mode".into(), Json::Str(mode.into()));
    e.insert("recorded_at_unix".into(), num(recorded_at_unix.to_string()));
    e.insert("scenarios".into(), Json::Obj(scenarios));
    Json::Obj(e)
}

/// Load a trajectory document, or the empty skeleton if `path` does not
/// exist yet.
pub fn load(path: &Path) -> io::Result<Json> {
    if !path.exists() {
        let mut doc = BTreeMap::new();
        doc.insert("entries".into(), Json::Arr(vec![]));
        doc.insert("schema".into(), Json::Num("1".into()));
        doc.insert(
            "unit".into(),
            Json::Str(
                "events_per_sec = simulator events per wall-clock second, \
                 median over samples; see README \"Performance trajectory\""
                    .into(),
            ),
        );
        return Ok(Json::Obj(doc));
    }
    let text = std::fs::read_to_string(path)?;
    Json::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Append `new_entry` to the trajectory at `path` (append-only: existing
/// entries are re-rendered byte-losslessly, never modified).
pub fn append(path: &Path, new_entry: Json) -> io::Result<()> {
    let mut doc = load(path)?;
    let Json::Obj(members) = &mut doc else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: root is not an object", path.display()),
        ));
    };
    match members
        .entry("entries".to_string())
        .or_insert_with(|| Json::Arr(vec![]))
    {
        Json::Arr(entries) => entries.push(new_entry),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: \"entries\" is not an array", path.display()),
            ))
        }
    }
    std::fs::write(path, doc.render() + "\n")
}

/// The latest committed baseline for `(scenario, mode)`: scans entries
/// newest-last, returning that scenario's `events_per_sec`.
pub fn latest_baseline(doc: &Json, scenario: &str, mode: &str) -> Option<f64> {
    doc.get("entries")?
        .as_arr()?
        .iter()
        .rev()
        .filter(|e| e.get("mode").and_then(Json::as_str) == Some(mode))
        .find_map(|e| {
            e.get("scenarios")?
                .get(scenario)?
                .get("events_per_sec")?
                .as_f64()
        })
}

/// The CI regression gate: compare fresh results against the latest
/// committed entry of the same mode. Returns human-readable failures —
/// empty means the gate passes. A scenario with no committed baseline
/// passes (first recording), and improvements always pass.
pub fn check(doc: &Json, fresh: &[ScenarioResult], mode: &str, threshold: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for r in fresh {
        let Some(base) = latest_baseline(doc, r.name, mode) else {
            continue;
        };
        let floor = base * (1.0 - threshold);
        if r.events_per_sec < floor {
            failures.push(format!(
                "{}: {:.0} events/sec is {:.0}% below the committed baseline \
                 {:.0} (floor {:.0} at threshold {:.0}%)",
                r.name,
                r.events_per_sec,
                (1.0 - r.events_per_sec / base) * 100.0,
                base,
                floor,
                threshold * 100.0
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn result(name: &'static str, eps: f64) -> ScenarioResult {
        ScenarioResult {
            name,
            events: 1000,
            wall: Summary::from_samples(&[Duration::from_millis(5)]).unwrap(),
            events_per_sec: eps,
            peak_pending: 7,
        }
    }

    fn doc_with(eps: f64) -> Json {
        let e = entry(&[result("engine_churn", eps)], "quick", 123, "abc");
        let mut doc = BTreeMap::new();
        doc.insert("entries".into(), Json::Arr(vec![e]));
        Json::Obj(doc)
    }

    #[test]
    fn entry_round_trips_through_render() {
        let results = [result("engine_churn", 1_000_000.0)];
        let e = entry(&results, "quick", 1_700_000_000, "deadbeef");
        let text = e.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("mode").unwrap().as_str(), Some("quick"));
        assert_eq!(
            back.get("scenarios")
                .unwrap()
                .get("engine_churn")
                .unwrap()
                .get("events_per_sec")
                .unwrap()
                .as_f64(),
            Some(1_000_000.0)
        );
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_below() {
        let doc = doc_with(1_000_000.0);
        // 25% down: inside the 30% budget.
        assert!(check(&doc, &[result("engine_churn", 750_000.0)], "quick", 0.30).is_empty());
        // Improvement passes.
        assert!(check(&doc, &[result("engine_churn", 2_000_000.0)], "quick", 0.30).is_empty());
        // 40% down: fails, message names scenario and numbers.
        let fails = check(&doc, &[result("engine_churn", 600_000.0)], "quick", 0.30);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("engine_churn"), "{}", fails[0]);
        // Unknown scenario or mismatched mode has no baseline: passes.
        assert!(check(&doc, &[result("other", 1.0)], "quick", 0.30).is_empty());
        assert!(check(&doc, &[result("engine_churn", 1.0)], "full", 0.30).is_empty());
    }

    #[test]
    fn append_is_append_only() {
        let dir = std::env::temp_dir().join(format!("bench-record-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let _ = std::fs::remove_file(&path);
        append(
            &path,
            entry(&[result("engine_churn", 10.0)], "quick", 1, "a"),
        )
        .unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        append(
            &path,
            entry(&[result("engine_churn", 20.0)], "quick", 2, "b"),
        )
        .unwrap();
        let doc = load(&path).unwrap();
        let entries = doc.get("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries.len(), 2);
        // The first entry survives byte-identically inside the new doc.
        assert!(std::fs::read_to_string(&path)
            .unwrap()
            .contains(first.lines().nth(3).unwrap()));
        // Latest baseline is the newest matching entry.
        assert_eq!(latest_baseline(&doc, "engine_churn", "quick"), Some(20.0));
        std::fs::remove_file(&path).unwrap();
    }
}
