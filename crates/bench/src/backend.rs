//! The in-process orchestrator backend: runs one driver shard on a
//! local thread and returns its table documents.
//!
//! This is the `local threads` half of the [`expt::orchestrate`] design
//! — the [`Backend`] trait is the seam where a multi-machine runner
//! (ssh, jobs queue, ...) slots in later; anything that can run
//! `"<driver> --shard i/n"` somewhere and ship back the JSON table
//! documents is a valid implementation.

use crate::figures;
use expt::orchestrate::{Backend, ShardJob};
use expt::output::{table_json, RunMeta};
use expt::{Ctx, ExptArgs};

/// Runs shard jobs in-process through the [`crate::figures`] registry.
///
/// Each job gets a fresh [`Ctx`] restricted to its shard and pinned to
/// **one worker thread** — parallelism comes from the orchestrator's
/// job pool, not from nesting thread pools (and the harness guarantees
/// thread count cannot change output anyway). Panics inside a driver
/// are caught and reported as job errors so the orchestrator's retry
/// and error paths see them like any remote failure.
#[derive(Debug, Clone)]
pub struct LocalBackend {
    /// Run configuration shared by every job (scale / seed /
    /// replicates; shard and threads are set per job).
    pub args: ExptArgs,
}

impl LocalBackend {
    /// Backend running every job under `args`.
    pub fn new(args: ExptArgs) -> Self {
        LocalBackend { args }
    }
}

impl Backend for LocalBackend {
    fn run_shard(&self, job: &ShardJob) -> Result<Vec<String>, String> {
        let (exp, build) = figures::all()
            .into_iter()
            .find(|(e, _)| e.name == job.driver)
            .ok_or_else(|| format!("unknown driver {:?}", job.driver))?;
        let mut args = self.args.clone();
        args.shard = Some(job.shard);
        args.threads = 1;
        args.no_write = true;
        let ctx = Ctx::new(args);
        let tables = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| build(&ctx)))
            .map_err(|payload| {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("driver panicked");
                format!("{} panicked: {msg}", exp.name)
            })?;
        let meta = RunMeta::new(exp.name, &ctx.args);
        Ok(tables.iter().map(|t| table_json(t, &meta)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expt::orchestrate::{merge_driver_docs, Orchestrator, Plan};
    use expt::{Scale, TableDoc};

    fn quick_args() -> ExptArgs {
        ExptArgs {
            scale: Scale::Quick,
            no_write: true,
            ..ExptArgs::default()
        }
    }

    #[test]
    fn unknown_driver_is_an_error() {
        let b = LocalBackend::new(quick_args());
        let err = b
            .run_shard(&ShardJob {
                driver: "fig99_missing".into(),
                shard: (0, 1),
            })
            .unwrap_err();
        assert!(err.contains("unknown driver"));
    }

    #[test]
    fn sharded_fig14_merges_to_the_unsharded_tables() {
        // fig14 is cheap and has both a sweep table and a constant
        // table — a one-driver end-to-end of backend + merge.
        let b = LocalBackend::new(quick_args());
        let unsharded: Vec<TableDoc> = b
            .run_shard(&ShardJob {
                driver: "fig14_cycle_time_scaling".into(),
                shard: (0, 1),
            })
            .unwrap()
            .iter()
            .map(|d| TableDoc::parse(d).unwrap())
            .collect();

        let orch = Orchestrator::new(b, 2);
        let report = orch
            .run(&Plan {
                drivers: vec!["fig14_cycle_time_scaling".into()],
                shards: 3,
                retries: 0,
            })
            .unwrap();
        let merged = &report.drivers[0].merged;
        assert_eq!(merged.len(), unsharded.len());
        for (m, u) in merged.iter().zip(&unsharded) {
            assert_eq!(m.to_csv(), u.to_csv());
        }
        // The grouped merge helper agrees with the orchestrator.
        let regrouped =
            merge_driver_docs("fig14_cycle_time_scaling", &report.drivers[0].shard_docs).unwrap();
        assert_eq!(regrouped.len(), merged.len());
    }
}
