//! Orchestrator backends: in-process threads ([`LocalBackend`]) and
//! child processes ([`SubprocessBackend`]).
//!
//! The [`Backend`] trait is the seam where execution substrates slot
//! in: anything that can run `"<driver> --shard i/n"` somewhere and
//! ship back the JSON table documents is a valid implementation.
//! `LocalBackend` calls the driver registry directly on the worker
//! thread — cheapest, but a crashing driver shares the orchestrator's
//! address space. `SubprocessBackend` spawns the driver *binary* per
//! job, so a segfaulting or aborting driver is just a non-zero exit
//! status consuming retry budget — the process-isolation robustness win
//! — and the same spawn recipe extends to a remote (ssh / job queue)
//! runner later. Both backends pin drivers to `--threads 1` and pass
//! identical flags, so their merged output is byte-identical.

use crate::figures;
use expt::orchestrate::{Backend, ShardJob};
use expt::output::{table_json, RunMeta};
use expt::{Ctx, ExptArgs, Scale};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// Runs shard jobs in-process through the [`crate::figures`] registry.
///
/// Each job gets a fresh [`Ctx`] restricted to its shard and pinned to
/// **one worker thread** — parallelism comes from the orchestrator's
/// job pool, not from nesting thread pools (and the harness guarantees
/// thread count cannot change output anyway). Panics inside a driver
/// are caught and reported as job errors so the orchestrator's retry
/// and error paths see them like any remote failure.
#[derive(Debug, Clone)]
pub struct LocalBackend {
    /// Run configuration shared by every job (scale / seed /
    /// replicates; shard and threads are set per job).
    pub args: ExptArgs,
}

impl LocalBackend {
    /// Backend running every job under `args`.
    pub fn new(args: ExptArgs) -> Self {
        LocalBackend { args }
    }
}

impl Backend for LocalBackend {
    fn run_shard(&self, job: &ShardJob) -> Result<Vec<String>, String> {
        let (exp, build) = figures::all()
            .into_iter()
            .find(|(e, _)| e.name == job.driver)
            .ok_or_else(|| format!("unknown driver {:?}", job.driver))?;
        let mut args = self.args.clone();
        args.shard = Some(job.shard);
        args.threads = 1;
        args.no_write = true;
        let ctx = Ctx::new(args);
        let tables = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| build(&ctx)))
            .map_err(|payload| {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("driver panicked");
                format!("{} panicked: {msg}", exp.name)
            })?;
        let meta = RunMeta::new(exp.name, &ctx.args);
        Ok(tables.iter().map(|t| table_json(t, &meta)).collect())
    }
}

/// Runs each shard job as a child process: spawns
/// `<bin_dir>/<driver> --quick/--full --threads 1 --seed S --shard i/n
/// --out <scratch>` and collects the shard documents the child wrote.
///
/// Failure mapping — all per-job `Err`s, so the orchestrator's retry
/// budget applies and a dying child never takes the sweep down:
/// * spawn failure (missing binary) → named error,
/// * non-zero exit → exit status plus the child's stderr tail,
/// * signal death (segfault, abort, OOM kill) → the signal number,
/// * a child that exits 0 without writing documents → named error
///   (the orchestrator separately validates that documents parse and
///   match the job).
///
/// The child's environment is pinned: `OPERA_SCALE` is removed and the
/// scale passed explicitly, so a subprocess run reproduces the local
/// run bit-for-bit regardless of the orchestrator's own environment.
#[derive(Debug, Clone)]
pub struct SubprocessBackend {
    /// Run configuration (scale / seed / replicates / k); shard and
    /// threads are set per job.
    pub args: ExptArgs,
    /// Directory holding the driver binaries (normally
    /// `target/release`).
    pub bin_dir: PathBuf,
    /// Scratch root for per-job `--out` directories; each job cleans
    /// its own subdirectory up after collecting the documents.
    scratch: PathBuf,
}

impl SubprocessBackend {
    /// Backend spawning `<bin_dir>/<driver>` per job under `args`.
    pub fn new(args: ExptArgs, bin_dir: PathBuf) -> Self {
        let scratch = std::env::temp_dir().join(format!("opera-orch-{}", std::process::id()));
        SubprocessBackend {
            args,
            bin_dir,
            scratch,
        }
    }

    /// Override the scratch root (tests isolate theirs).
    pub fn with_scratch(mut self, scratch: PathBuf) -> Self {
        self.scratch = scratch;
        self
    }
}

impl Backend for SubprocessBackend {
    fn run_shard(&self, job: &ShardJob) -> Result<Vec<String>, String> {
        let exe = self
            .bin_dir
            .join(format!("{}{}", job.driver, std::env::consts::EXE_SUFFIX));
        let jobdir = self.scratch.join(format!(
            "{}.shard{}of{}",
            job.driver, job.shard.0, job.shard.1
        ));
        // A leftover dir from a killed earlier attempt must not leak
        // stale documents into this one.
        let _ = fs::remove_dir_all(&jobdir);
        fs::create_dir_all(&jobdir).map_err(|e| format!("{}: {e}", jobdir.display()))?;

        let mut cmd = Command::new(&exe);
        match self.args.scale {
            Scale::Quick => {
                cmd.arg("--quick");
            }
            Scale::Full => {
                cmd.arg("--full");
            }
            Scale::Default => {}
        }
        cmd.arg("--threads")
            .arg("1")
            .arg("--seed")
            .arg(self.args.seed.to_string())
            .arg("--replicates")
            .arg(self.args.replicates.to_string())
            .arg("--shard")
            .arg(format!("{}/{}", job.shard.0, job.shard.1))
            .arg("--out")
            .arg(&jobdir);
        if let Some(k) = self.args.k {
            cmd.arg("--k").arg(k.to_string());
        }
        cmd.env_remove("OPERA_SCALE")
            .stdin(Stdio::null())
            // The child prints its whole CSV to stdout; discard it —
            // the shard documents on disk are the channel.
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        let output = cmd
            .output()
            .map_err(|e| format!("failed to spawn {}: {e}", exe.display()))?;
        if !output.status.success() {
            return Err(exit_error(&job.driver, &output.status, &output.stderr));
        }

        let sdir = jobdir.join(&job.driver).join(expt::output::SHARD_DIR);
        let mut files: Vec<PathBuf> = fs::read_dir(&sdir)
            .map_err(|e| {
                format!(
                    "{} wrote no shard documents ({}: {e})",
                    job.driver,
                    sdir.display()
                )
            })?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        files.sort();
        let mut docs = Vec::with_capacity(files.len());
        for f in &files {
            docs.push(fs::read_to_string(f).map_err(|e| format!("{}: {e}", f.display()))?);
        }
        if docs.is_empty() {
            return Err(format!(
                "{} exited successfully but wrote no shard documents under {}",
                job.driver,
                sdir.display()
            ));
        }
        let _ = fs::remove_dir_all(&jobdir);
        Ok(docs)
    }
}

/// Describe a failed child exit: the signal that killed it on Unix,
/// the exit status otherwise, plus a tail of its stderr.
fn exit_error(driver: &str, status: &std::process::ExitStatus, stderr: &[u8]) -> String {
    let stderr = String::from_utf8_lossy(stderr);
    let lines: Vec<&str> = stderr.lines().collect();
    let tail = if lines.is_empty() {
        String::new()
    } else {
        let keep = &lines[lines.len().saturating_sub(5)..];
        format!(": {}", keep.join(" | "))
    };
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig) = status.signal() {
            return format!("{driver} killed by signal {sig}{tail}");
        }
    }
    format!("{driver} {status}{tail}")
}

/// The backend registry behind the orchestrate CLI's `--backend` flag
/// and a manifest's recorded backend name: one enum so callers avoid
/// generics at the binary boundary.
#[derive(Debug, Clone)]
pub enum AnyBackend {
    /// In-process thread execution ([`LocalBackend`]).
    Local(LocalBackend),
    /// Child-process execution ([`SubprocessBackend`]).
    Subprocess(SubprocessBackend),
}

impl AnyBackend {
    /// Build a backend by name (`local` / `subprocess`). `bin_dir`
    /// overrides where the subprocess backend looks for driver
    /// binaries; by default it is the running binary's own directory
    /// (the driver binaries are its siblings under `target/release`).
    pub fn from_name(
        name: &str,
        args: ExptArgs,
        bin_dir: Option<PathBuf>,
    ) -> Result<AnyBackend, String> {
        match name {
            "local" => Ok(AnyBackend::Local(LocalBackend::new(args))),
            "subprocess" => {
                let bin_dir = match bin_dir {
                    Some(d) => d,
                    None => default_bin_dir()?,
                };
                Ok(AnyBackend::Subprocess(SubprocessBackend::new(
                    args, bin_dir,
                )))
            }
            other => Err(format!(
                "unknown backend {other:?} (want local or subprocess)"
            )),
        }
    }

    /// The name [`AnyBackend::from_name`] resolves — what the run
    /// manifest records so `resume` re-runs with the same substrate.
    pub fn name(&self) -> &'static str {
        match self {
            AnyBackend::Local(_) => "local",
            AnyBackend::Subprocess(_) => "subprocess",
        }
    }
}

impl Backend for AnyBackend {
    fn run_shard(&self, job: &ShardJob) -> Result<Vec<String>, String> {
        match self {
            AnyBackend::Local(b) => b.run_shard(job),
            AnyBackend::Subprocess(b) => b.run_shard(job),
        }
    }
}

/// The directory of the currently running binary.
fn default_bin_dir() -> Result<PathBuf, String> {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(Path::to_path_buf))
        .ok_or_else(|| "cannot determine the running binary's directory; pass --bin-dir".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use expt::orchestrate::{merge_driver_docs, Orchestrator, Plan};
    use expt::{Scale, TableDoc};

    fn quick_args() -> ExptArgs {
        ExptArgs {
            scale: Scale::Quick,
            no_write: true,
            ..ExptArgs::default()
        }
    }

    #[test]
    fn backend_registry_resolves_names() {
        let b = AnyBackend::from_name("local", quick_args(), None).unwrap();
        assert_eq!(b.name(), "local");
        let b = AnyBackend::from_name(
            "subprocess",
            quick_args(),
            Some(PathBuf::from("/nonexistent")),
        )
        .unwrap();
        assert_eq!(b.name(), "subprocess");
        assert!(AnyBackend::from_name("ssh", quick_args(), None)
            .unwrap_err()
            .contains("unknown backend"));
    }

    #[test]
    fn missing_binary_is_a_spawn_error() {
        let b = SubprocessBackend::new(quick_args(), PathBuf::from("/nonexistent-bin-dir"))
            .with_scratch(
                std::env::temp_dir().join(format!("orch-missing-{}", std::process::id())),
            );
        let err = b
            .run_shard(&ShardJob {
                driver: "fig14_cycle_time_scaling".into(),
                shard: (0, 1),
            })
            .unwrap_err();
        assert!(err.contains("failed to spawn"), "{err}");
    }

    #[test]
    fn unknown_driver_is_an_error() {
        let b = LocalBackend::new(quick_args());
        let err = b
            .run_shard(&ShardJob {
                driver: "fig99_missing".into(),
                shard: (0, 1),
            })
            .unwrap_err();
        assert!(err.contains("unknown driver"));
    }

    #[test]
    fn sharded_fig14_merges_to_the_unsharded_tables() {
        // fig14 is cheap and has both a sweep table and a constant
        // table — a one-driver end-to-end of backend + merge.
        let b = LocalBackend::new(quick_args());
        let unsharded: Vec<TableDoc> = b
            .run_shard(&ShardJob {
                driver: "fig14_cycle_time_scaling".into(),
                shard: (0, 1),
            })
            .unwrap()
            .iter()
            .map(|d| TableDoc::parse(d).unwrap())
            .collect();

        let orch = Orchestrator::new(b, 2);
        let report = orch
            .run(&Plan {
                drivers: vec!["fig14_cycle_time_scaling".into()],
                shards: 3,
                retries: 0,
            })
            .unwrap();
        let merged = &report.drivers[0].merged;
        assert_eq!(merged.len(), unsharded.len());
        // Merged tables are in canonical sorted-by-name order; the raw
        // run_shard docs are in driver emission order. Match by name.
        for m in merged {
            let u = unsharded.iter().find(|u| u.table == m.table).unwrap();
            assert_eq!(m.to_csv(), u.to_csv());
        }
        // The grouped merge helper agrees with the orchestrator.
        let regrouped =
            merge_driver_docs("fig14_cycle_time_scaling", &report.drivers[0].shard_docs).unwrap();
        assert_eq!(regrouped.len(), merged.len());
    }
}
