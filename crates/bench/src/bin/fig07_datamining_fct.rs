//! Figure 7: FCTs for the Datamining workload on the cost-equivalent
//! trio (Opera / u-expander / 3:1 Clos) plus non-hybrid RotorNet, across
//! offered loads.
//!
//! Mini scale (default): 192-host trio, flows arriving over a short
//! window; `OPERA_SCALE=full` uses the 648-host networks (slow).

use bench::{scale, MiniTrio, PaperTrio, Scale};
use opera::harness::{print_fct_table, FctStats};
use opera::{opera_net, static_net, RotorMode};
use simkit::SimTime;
use workloads::dists::{FlowSizeDist, Workload};
use workloads::gen::PoissonGen;
use workloads::FlowSpec;

fn gen_flows(hosts: usize, load: f64, window: SimTime, seed: u64) -> Vec<FlowSpec> {
    let mut g = PoissonGen::new(
        FlowSizeDist::of(Workload::Datamining),
        hosts,
        10.0,
        load,
        seed,
    );
    g.flows_until(window)
}

fn main() {
    let full = scale() == Scale::Full;
    let (window, run_until) = if full {
        (SimTime::from_ms(50), SimTime::from_ms(800))
    } else {
        (SimTime::from_ms(40), SimTime::from_ms(600))
    };
    let loads = [0.01, 0.10, 0.25];

    println!("# Figure 7: Datamining FCTs (arrival window {window}, horizon {run_until})");
    for &load in &loads {
        // --- Opera ---
        let cfg = if full {
            PaperTrio::opera()
        } else {
            MiniTrio::opera()
        };
        let flows = gen_flows(cfg.hosts(), load, window, 42);
        let nflows = flows.len();
        let mut sim = opera_net::build(cfg, flows);
        sim.run_until(run_until);
        let t = sim.world.logic.tracker();
        print_fct_table(
            &format!(
                "opera load={load} ({}/{} done, counters {:?})",
                t.completed(),
                nflows,
                sim.world.logic.counters
            ),
            &FctStats::from_tracker(t, &FctStats::default_edges()),
        );

        // --- RotorNet (non-hybrid) ---
        let mut cfg = if full {
            PaperTrio::opera()
        } else {
            MiniTrio::opera()
        };
        cfg.mode = RotorMode::RotorNonHybrid;
        let flows = gen_flows(cfg.hosts(), load, window, 42);
        let mut sim = opera_net::build(cfg, flows);
        sim.run_until(run_until);
        let t = sim.world.logic.tracker();
        print_fct_table(
            &format!("rotornet-nonhybrid load={load} ({} done)", t.completed()),
            &FctStats::from_tracker(t, &FctStats::default_edges()),
        );

        // --- RotorNet (hybrid, +33% cost) ---
        let mut cfg = if full {
            PaperTrio::opera()
        } else {
            MiniTrio::opera()
        };
        cfg.mode = RotorMode::RotorHybrid;
        let flows = gen_flows(cfg.hosts(), load, window, 42);
        let mut sim = opera_net::build(cfg, flows);
        sim.run_until(run_until);
        let t = sim.world.logic.tracker();
        print_fct_table(
            &format!(
                "rotornet-hybrid(+33%cost) load={load} ({} done)",
                t.completed()
            ),
            &FctStats::from_tracker(t, &FctStats::default_edges()),
        );

        // --- static expander & Clos ---
        for (name, cfg) in [
            (
                "expander",
                if full {
                    PaperTrio::expander()
                } else {
                    MiniTrio::expander()
                },
            ),
            (
                "folded-clos",
                if full {
                    PaperTrio::clos()
                } else {
                    MiniTrio::clos()
                },
            ),
        ] {
            let hosts = match &cfg.kind {
                opera::StaticTopologyKind::Expander(p) => p.racks * p.hosts_per_rack,
                opera::StaticTopologyKind::FoldedClos(p) => p.hosts(),
            };
            let flows = gen_flows(hosts, load, window, 42);
            let mut sim = static_net::build(cfg, flows);
            sim.run_until(run_until);
            let t = sim.world.logic.tracker();
            print_fct_table(
                &format!("{name} load={load} ({} done)", t.completed()),
                &FctStats::from_tracker(t, &FctStats::default_edges()),
            );
        }
        println!();
    }
}
