//! Figure 7: FCTs for the Datamining workload on the trio plus RotorNet, across loads.
//!
//! Thin wrapper over [`bench::figures::fig07`]; all sweep/output logic
//! lives in the shared `expt` harness.

fn main() {
    expt::run_main(
        bench::figures::fig07::EXPERIMENT,
        bench::figures::fig07::tables,
    );
}
