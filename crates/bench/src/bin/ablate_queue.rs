//! Ablation: low-latency queue depth vs trimming and end-to-end delay (§4.1).
//!
//! Thin wrapper over [`bench::figures::ablate_queue`]; all sweep/output logic
//! lives in the shared `expt` harness.

fn main() {
    expt::run_main(
        bench::figures::ablate_queue::EXPERIMENT,
        bench::figures::ablate_queue::tables,
    );
}
