//! Ablation: queue depth vs end-to-end delay (§4.1's key sizing choice).
//!
//! ε — and with it the slice length, the cycle time, and the bulk
//! threshold — is driven by the switch queue depth. Deeper queues trim
//! less but inflate worst-case delay; the paper picks 24 KB (8 full
//! packets + headers) to keep ε at 90 µs. This ablation sweeps the
//! low-latency queue depth on a fixed incast-heavy workload and reports
//! trimming rates, FCTs, and the ε each depth would force.

use netsim::fabric::QueueConfig;
use opera::timing::SliceTiming;
use opera::{opera_net, OperaNetConfig};
use simkit::{SimRng, SimTime};
use workloads::FlowSpec;

fn main() {
    println!("# Ablation: low-latency queue depth (incast of 24 x 30KB flows)");
    println!("queue_kb,forced_epsilon_us,trimmed_pkts,avg_fct_us,p99_fct_us,done");
    for kb in [3u64, 6, 12, 24, 48] {
        let mut cfg = OperaNetConfig::small_test();
        cfg.params.racks = 16;
        cfg.bulk_threshold = u64::MAX;
        cfg.queues = QueueConfig {
            cap_bytes: [12_000, kb * 1000, 24_000],
            trim: true,
        };
        // Incast: many senders to hosts of one rack.
        let mut rng = SimRng::new(3);
        let mut flows = Vec::new();
        for i in 0..24 {
            flows.push(FlowSpec {
                src: 8 + rng.index(48), // racks 2..15
                dst: i % 4,             // rack 0
                size: 30_000,
                start: SimTime::from_us(rng.below(20)),
            });
        }
        let mut sim = opera_net::build(cfg, flows);
        sim.world.logic.set_hello_enabled(false);
        sim.run_until(SimTime::from_ms(60));
        let t = sim.world.logic.tracker();
        let mut fcts: Vec<f64> = t
            .flows()
            .iter()
            .filter_map(|f| f.fct())
            .map(|x| x.as_us_f64())
            .collect();
        fcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let avg = fcts.iter().sum::<f64>() / fcts.len().max(1) as f64;
        let p99 = fcts.last().copied().unwrap_or(f64::NAN);
        // The ε this queue depth forces at paper parameters (5 hops,
        // 10G, 500ns propagation), per §4.1's derivation.
        let eps = SliceTiming::derive(
            5,
            kb * 1000 + 12_000,
            1500,
            10.0,
            SimTime::from_ns(500),
            SimTime::from_us(10),
        )
        .epsilon
        .as_us_f64();
        println!(
            "{kb},{eps:.0},{},{avg:.1},{p99:.1},{}/{}",
            sim.world.fabric.counters.trimmed,
            t.completed(),
            t.len()
        );
    }
    println!("# shape: deeper queues trim less but force a longer ε (and thus a");
    println!("# longer cycle and a higher bulk threshold); 12-24KB balances both,");
    println!("# which is exactly the paper's choice (§4.1).");
}
