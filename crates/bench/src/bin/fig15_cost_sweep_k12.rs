//! Figure 15: the k = 12 (648-host) version of the cost sweep — the
//! paper's Appendix C shows it matches Figure 12's k = 24 scaling.

fn main() {
    bench::cost_sweep::run(12);
}
