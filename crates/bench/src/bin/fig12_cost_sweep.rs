//! Figures 12 and 15 (folded): throughput vs relative cost α at ToR radix k (--k to override).
//!
//! Thin wrapper over [`bench::figures::fig12`]; all sweep/output logic
//! lives in the shared `expt` harness.

fn main() {
    expt::run_main(
        bench::figures::fig12::EXPERIMENT,
        bench::figures::fig12::tables,
    );
}
