//! Figure 8: delivered throughput over time for a 100 KB all-to-all
//! shuffle. Opera carries every flow over direct circuits (application
//! bulk tagging, §3.4); the static networks run NDP with staggered starts.

use bench::{scale, MiniTrio, PaperTrio, Scale};
use opera::{opera_net, static_net, OperaNet, OperaNetConfig, StaticNet, StaticNetConfig};
use simkit::{SimRng, SimTime};
use workloads::gen::ScenarioGen;
use workloads::FlowSpec;

/// Build an Opera sim with a throughput time-series attached.
fn build_opera(cfg: OperaNetConfig, flows: Vec<FlowSpec>, bin: SimTime) -> OperaNet {
    let mut sim = opera_net::build(cfg, flows);
    let t = std::mem::take(sim.world.logic.tracker_mut());
    *sim.world.logic.tracker_mut() = t.with_throughput_bins(bin);
    sim
}

/// Build a static sim with a throughput time-series attached.
fn build_static(cfg: StaticNetConfig, flows: Vec<FlowSpec>, bin: SimTime) -> StaticNet {
    let mut sim = static_net::build(cfg, flows);
    let t = std::mem::take(sim.world.logic.tracker_mut());
    *sim.world.logic.tracker_mut() = t.with_throughput_bins(bin);
    sim
}

fn p99_ms(tracker: &netsim::FlowTracker) -> f64 {
    let mut fcts: Vec<f64> = tracker
        .flows()
        .iter()
        .filter_map(|f| f.fct())
        .map(|x| x.as_ms_f64())
        .collect();
    if fcts.is_empty() {
        return f64::NAN;
    }
    fcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    fcts[(fcts.len() * 99 / 100)
        .saturating_sub(1)
        .min(fcts.len() - 1)]
}

fn print_series(label: &str, series: &[(SimTime, f64)], hosts: usize) {
    // Normalize to aggregate host capacity (hosts × 10G).
    let cap = hosts as f64 * 10e9;
    println!("network,{label}");
    println!("time_ms,normalized_throughput");
    for (t, bytes_per_sec) in series {
        println!("{:.1},{:.4}", t.as_ms_f64(), bytes_per_sec * 8.0 / cap);
    }
    println!();
}

fn main() {
    let full = scale() == Scale::Full;
    let flow_size = 100_000u64;
    let bin = SimTime::from_ms(1);
    let horizon = SimTime::from_ms(if full { 300 } else { 150 });

    println!("# Figure 8: 100KB all-to-all shuffle, throughput vs time");

    // --- Opera: all flows tagged bulk, all start together ---
    let mut cfg = if full {
        PaperTrio::opera()
    } else {
        MiniTrio::opera()
    };
    cfg.bulk_threshold = 0; // application tags everything bulk
    let hosts = cfg.hosts();
    let flows = ScenarioGen::shuffle(hosts, flow_size, SimTime::ZERO);
    let total = flows.len();
    let mut sim = build_opera(cfg, flows, bin);
    sim.run_until(horizon);
    let t = sim.world.logic.tracker();
    println!(
        "# opera: {}/{} flows done, 99%-tile FCT {:.1} ms",
        t.completed(),
        total,
        p99_ms(t)
    );
    print_series("opera", &t.throughput().unwrap().rate_per_sec(), hosts);

    // --- static networks: staggered starts over 10 ms ---
    for (name, cfg) in [
        (
            "expander",
            if full {
                PaperTrio::expander()
            } else {
                MiniTrio::expander()
            },
        ),
        (
            "folded-clos",
            if full {
                PaperTrio::clos()
            } else {
                MiniTrio::clos()
            },
        ),
    ] {
        let hosts = match &cfg.kind {
            opera::StaticTopologyKind::Expander(p) => p.racks * p.hosts_per_rack,
            opera::StaticTopologyKind::FoldedClos(p) => p.hosts(),
        };
        let mut rng = SimRng::new(8);
        let flows =
            ScenarioGen::shuffle_staggered(hosts, flow_size, SimTime::from_ms(10), &mut rng);
        let total = flows.len();
        let mut sim = build_static(cfg, flows, bin);
        sim.run_until(horizon);
        let t = sim.world.logic.tracker();
        println!(
            "# {name}: {}/{} flows done, 99%-tile FCT {:.1} ms",
            t.completed(),
            total,
            p99_ms(t)
        );
        print_series(name, &t.throughput().unwrap().rate_per_sec(), hosts);
    }
}
