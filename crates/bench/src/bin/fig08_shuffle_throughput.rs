//! Figure 8: delivered throughput over time for an all-to-all shuffle.
//!
//! Thin wrapper over [`bench::figures::fig08`]; all sweep/output logic
//! lives in the shared `expt` harness.

fn main() {
    expt::run_main(
        bench::figures::fig08::EXPERIMENT,
        bench::figures::fig08::tables,
    );
}
