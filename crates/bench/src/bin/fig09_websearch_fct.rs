//! Figure 9: FCTs for the Websearch workload — Opera's worst case, since
//! every flow is under the bulk threshold and rides indirect expander
//! paths paying the bandwidth tax.

use bench::{scale, MiniTrio, PaperTrio, Scale};
use opera::harness::{print_fct_table, FctStats};
use opera::{opera_net, static_net};
use simkit::SimTime;
use workloads::dists::{FlowSizeDist, Workload};
use workloads::gen::PoissonGen;
use workloads::FlowSpec;

fn gen_flows(hosts: usize, load: f64, window: SimTime, seed: u64) -> Vec<FlowSpec> {
    let mut g = PoissonGen::new(
        FlowSizeDist::of(Workload::Websearch),
        hosts,
        10.0,
        load,
        seed,
    );
    g.flows_until(window)
}

fn main() {
    let full = scale() == Scale::Full;
    let (window, run_until) = if full {
        (SimTime::from_ms(40), SimTime::from_ms(500))
    } else {
        (SimTime::from_ms(6), SimTime::from_ms(200))
    };
    let loads = [0.01, 0.05, 0.10];

    println!("# Figure 9: Websearch FCTs (all flows low-latency in Opera)");
    for &load in &loads {
        let mut cfg = if full {
            PaperTrio::opera()
        } else {
            MiniTrio::opera()
        };
        // Figure 9's premise: every Websearch flow sits below the bulk
        // threshold (15 MB at paper scale) and rides indirect paths.
        cfg.bulk_threshold = 20_000_000;
        let flows = gen_flows(cfg.hosts(), load, window, 17);
        let n = flows.len();
        let mut sim = opera_net::build(cfg, flows);
        sim.run_until(run_until);
        let t = sim.world.logic.tracker();
        print_fct_table(
            &format!("opera load={load} ({}/{} done)", t.completed(), n),
            &FctStats::from_tracker(t, &FctStats::default_edges()),
        );

        for (name, cfg) in [
            (
                "expander",
                if full {
                    PaperTrio::expander()
                } else {
                    MiniTrio::expander()
                },
            ),
            (
                "folded-clos",
                if full {
                    PaperTrio::clos()
                } else {
                    MiniTrio::clos()
                },
            ),
        ] {
            let hosts = match &cfg.kind {
                opera::StaticTopologyKind::Expander(p) => p.racks * p.hosts_per_rack,
                opera::StaticTopologyKind::FoldedClos(p) => p.hosts(),
            };
            let flows = gen_flows(hosts, load, window, 17);
            let n = flows.len();
            let mut sim = static_net::build(cfg, flows);
            sim.run_until(run_until);
            let t = sim.world.logic.tracker();
            print_fct_table(
                &format!("{name} load={load} ({}/{} done)", t.completed(), n),
                &FctStats::from_tracker(t, &FctStats::default_edges()),
            );
        }
        println!();
    }
}
