//! Figure 9: FCTs for the Websearch workload (Opera's worst case).
//!
//! Thin wrapper over [`bench::figures::fig09`]; all sweep/output logic
//! lives in the shared `expt` harness.

fn main() {
    expt::run_main(
        bench::figures::fig09::EXPERIMENT,
        bench::figures::fig09::tables,
    );
}
