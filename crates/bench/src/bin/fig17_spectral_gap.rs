//! Figure 17: spectral gap vs path length (Appendix D).
//!
//! Thin wrapper over [`bench::figures::fig17`]; all sweep/output logic
//! lives in the shared `expt` harness.

fn main() {
    expt::run_main(
        bench::figures::fig17::EXPERIMENT,
        bench::figures::fig17::tables,
    );
}
