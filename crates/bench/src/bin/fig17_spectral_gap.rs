//! Figure 17 / Appendix D: spectral gap vs path length for Opera's
//! topology slices compared to static expanders of varying degree, all on
//! k = 12 ToRs with ~650 hosts.

use topo::expander::{ExpanderParams, ExpanderTopology};
use topo::opera::{OperaParams, OperaTopology};
use topo::spectral::adjacency_spectrum;

fn main() {
    println!("# Figure 17: spectral gap vs path length (k=12, ~648 hosts)");
    println!("series,gap,avg_path,max_path,lambda2,ramanujan_bound");

    // Opera: every slice of the 108-rack cycle (sampled to keep it fast).
    let (topo, _) = OperaTopology::generate_validated(OperaParams::example_648(), 1, 64);
    let step = 6;
    for s in (0..topo.slices_per_cycle()).step_by(step) {
        let g = topo.slice(s).graph();
        let sp = adjacency_spectrum(&g, 300, 40 + s as u64);
        let st = g.path_length_stats();
        println!(
            "opera_slice,{:.3},{:.3},{},{:.3},{:.3}",
            sp.gap(),
            st.avg,
            st.max,
            sp.lambda2,
            sp.ramanujan_bound()
        );
    }

    // Static expanders with u = 5..8 (more uplinks -> fewer hosts/rack ->
    // more racks for the same host count).
    for u in 5..=8usize {
        let d = 12 - u;
        let racks = {
            let r = 650usize.div_ceil(d);
            r + r % 2
        };
        let e = ExpanderTopology::generate(
            ExpanderParams {
                racks,
                uplinks: u,
                hosts_per_rack: d,
            },
            9,
        );
        let sp = adjacency_spectrum(e.graph(), 300, 70 + u as u64);
        let st = e.graph().path_length_stats();
        println!(
            "static_u{u},{:.3},{:.3},{},{:.3},{:.3}",
            sp.gap(),
            st.avg,
            st.max,
            sp.lambda2,
            sp.ramanujan_bound()
        );
    }
}
