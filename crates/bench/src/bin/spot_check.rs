//! Full-scale spot-baseline regression check (the nightly CI job).
//!
//! Runs the [`bench::spot`] suite — paper-scale networks, bounded spot
//! workloads — and diffs the headline tables against the committed CSVs
//! under `goldens/full/` with the same tolerance-aware engine as the
//! quick goldens. `--bless` re-records them.
//!
//! ```text
//! spot_check [--bless] [--point NAME]...
//! ```

use bench::spot;
use expt::golden::{bless_driver, compare_driver, GoldenSpec};
use expt::RunMeta;

fn main() {
    let mut bless = false;
    let mut only: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--bless" => bless = true,
            "--point" => only.push(
                args.next()
                    .unwrap_or_else(|| usage("--point requires a name")),
            ),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    let known: Vec<&str> = spot::all().iter().map(|&(n, _)| n).collect();
    for name in &only {
        if !known.contains(&name.as_str()) {
            eprintln!("error: no spot point named {name:?}; known: {known:?}");
            std::process::exit(2);
        }
    }

    // The spot provenance: full scale, seed 0, one observation per
    // point (the spot tables are raw measurements, not replicate
    // means).
    let meta = RunMeta {
        driver: spot::DRIVER.to_string(),
        scale: "full".to_string(),
        seed: 0,
        replicates: 1,
        k: None,
        shard: None,
    };
    let root = bench::figures::golden_root();
    let mut tables = Vec::new();
    for (name, build) in spot::all() {
        if !only.is_empty() && !only.iter().any(|n| n == name) {
            continue;
        }
        eprintln!("# running spot point {name} (paper scale; minutes, not seconds)");
        let t = build();
        println!("table,{}", t.name);
        print!("{}", t.to_csv());
        tables.push(t);
    }

    if bless {
        if !only.is_empty() {
            // A partial bless would delete the other points' goldens.
            eprintln!("error: --bless records the whole suite; drop --point");
            std::process::exit(2);
        }
        let written = bless_driver(spot::DRIVER, &tables, &root, &meta)
            .unwrap_or_else(|e| fatal(&format!("bless: {e}")));
        for p in written {
            println!("# blessed {}", p.display());
        }
        return;
    }

    // Partial runs still compare cell-for-cell; skip the whole-suite
    // manifest/stale checks only when --point restricted the run.
    let drifts = compare_driver(spot::DRIVER, &tables, &root, &GoldenSpec::strict(), &meta)
        .unwrap_or_else(|e| fatal(&format!("compare: {e}")));
    let drifts: Vec<_> = drifts
        .into_iter()
        .filter(|d| only.is_empty() || tables.iter().any(|t| t.name == d.table) || d.table == "*")
        .collect();
    if drifts.is_empty() {
        println!("# ok: spot baselines match goldens/{}/", spot::DRIVER);
        return;
    }
    for d in &drifts {
        eprintln!("DRIFT {d}");
    }
    eprintln!(
        "{} drift(s) from goldens/{}/; if intended, re-record with \
         `cargo run --release -p bench --bin spot_check -- --bless`",
        drifts.len(),
        spot::DRIVER
    );
    std::process::exit(1);
}

fn fatal(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: spot_check [--bless] [--point NAME]...");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
