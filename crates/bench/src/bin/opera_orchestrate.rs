//! Driver-level sweep orchestrator: schedule `driver × shard` jobs over
//! a worker pool, retry failures, and merge the per-shard JSON table
//! documents with full point-index validation.
//!
//! ```text
//! opera_orchestrate [--drivers all|A,B,...] [--shards N] [--workers W]
//!                   [--retries K] [--quick|--full] [--seed S]
//!                   [--replicates R] [--out DIR] [--plan FILE] [--no-write]
//! opera_orchestrate validate [--out DIR]
//! ```
//!
//! The run mode writes, per driver, the shard documents under
//! `<out>/<driver>/shards/` and the validated merged tables as
//! `<out>/<driver>/<table>.{csv,json}` — the merged CSV is
//! byte-identical to an unsharded `--threads 1` run of the same driver
//! (asserted by `tests/orchestrate.rs`). `validate` re-merges the shard
//! documents on disk and fails, naming the exact invariant, on any
//! missing or duplicated point index, mismatched schema/flags, or a
//! merged CSV that no longer matches its shards (the CI
//! merge-validation step).
//!
//! A `--plan` file is JSON overriding the defaults; explicit CLI flags
//! win over the plan:
//!
//! ```json
//! {"drivers": ["fig08_shuffle_throughput"], "shards": 4, "retries": 1,
//!  "workers": 2, "scale": "quick", "seed": 0, "replicates": 3}
//! ```

use bench::backend::LocalBackend;
use bench::figures;
use expt::orchestrate::{validate_dir, Orchestrator, Plan, PlanFile};
use expt::{ExptArgs, Scale};
use std::path::PathBuf;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("validate") {
        return validate(&argv[1..]);
    }

    let mut drivers_arg: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut retries: Option<usize> = None;
    let mut scale: Option<Scale> = None;
    let mut seed: Option<u64> = None;
    let mut replicates: Option<usize> = None;
    let mut out = PathBuf::from("results");
    let mut no_write = false;
    let mut plan_file = PlanFile::default();

    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        let mut value_for = |flag: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} requires a value")))
        };
        match a.as_str() {
            "--drivers" => drivers_arg = Some(value_for("--drivers")),
            "--shards" => shards = Some(parse(&value_for("--shards"), "--shards")),
            "--workers" => workers = Some(parse(&value_for("--workers"), "--workers")),
            "--retries" => retries = Some(parse(&value_for("--retries"), "--retries")),
            "--quick" => scale = Some(Scale::Quick),
            "--full" => scale = Some(Scale::Full),
            "--seed" => seed = Some(parse(&value_for("--seed"), "--seed")),
            "--replicates" => replicates = Some(parse(&value_for("--replicates"), "--replicates")),
            "--out" => out = PathBuf::from(value_for("--out")),
            "--no-write" => no_write = true,
            "--plan" => {
                let path = value_for("--plan");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| usage(&format!("--plan {path}: {e}")));
                plan_file = PlanFile::parse(&text).unwrap_or_else(|e| usage(&e));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument: {other}")),
        }
    }

    // Resolution order: defaults < plan file < explicit CLI flags.
    let known: Vec<&str> = figures::all().iter().map(|(e, _)| e.name).collect();
    let drivers: Vec<String> = match (&drivers_arg, &plan_file.drivers) {
        (Some(s), _) if s == "all" => known.iter().map(|s| s.to_string()).collect(),
        (Some(s), _) => s.split(',').map(|d| d.trim().to_string()).collect(),
        (None, Some(list)) => list.clone(),
        (None, None) => known.iter().map(|s| s.to_string()).collect(),
    };
    for d in &drivers {
        if !known.contains(&d.as_str()) {
            eprintln!("error: no experiment named {d:?}; known drivers: {known:?}");
            std::process::exit(2);
        }
    }
    let shards = shards.or(plan_file.shards).unwrap_or(2).max(1);
    let workers = workers.or(plan_file.workers).unwrap_or(0);
    let retries = retries.or(plan_file.retries).unwrap_or(1);
    let args = ExptArgs {
        scale: scale.or(plan_file.scale).unwrap_or(Scale::Default),
        seed: seed.or(plan_file.seed).unwrap_or(0),
        replicates: replicates.or(plan_file.replicates).unwrap_or(3),
        ..ExptArgs::default()
    };

    println!(
        "# orchestrating {} driver(s) x {shards} shard(s), scale={}, seed={}, replicates={}, \
         retries={retries}",
        drivers.len(),
        args.scale,
        args.seed,
        args.replicates
    );
    let orch = Orchestrator::new(LocalBackend::new(args), workers);
    let plan = Plan {
        drivers,
        shards,
        retries,
    };
    let report = match orch.run(&plan) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    for run in &report.drivers {
        let retried = if run.retried > 0 {
            format!(" ({} retried attempt(s))", run.retried)
        } else {
            String::new()
        };
        println!(
            "ok  {} [{} shard(s), {} table(s)]{retried}",
            run.driver,
            report.shards,
            run.merged.len()
        );
    }
    println!(
        "# {} job attempt(s) across {} driver(s); every merge validated",
        report.attempts,
        report.drivers.len()
    );
    if !no_write {
        match expt::orchestrate::write_run(&out, &report) {
            Ok(csvs) => {
                for p in csvs {
                    println!("# wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn validate(rest: &[String]) {
    let mut out = PathBuf::from("results");
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out = PathBuf::from(it.next().unwrap_or_else(|| usage("--out requires a value")))
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    match validate_dir(&out) {
        Ok(tables) if tables.is_empty() => {
            eprintln!(
                "error: no shard documents under {} (nothing to validate)",
                out.display()
            );
            std::process::exit(1);
        }
        Ok(tables) => {
            for t in &tables {
                println!(
                    "ok  {}/{} [{} shard(s), {} row(s)]",
                    t.driver, t.table, t.shards, t.rows
                );
            }
            println!("# {} merged table(s) validated", tables.len());
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| usage(&format!("{flag}: invalid value {s:?}")))
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: opera_orchestrate [--drivers all|A,B,...] [--shards N] [--workers W]\n\
         \x20                        [--retries K] [--quick|--full] [--seed S]\n\
         \x20                        [--replicates R] [--out DIR] [--plan FILE] [--no-write]\n\
         \x20      opera_orchestrate validate [--out DIR]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
