//! Driver-level sweep orchestrator: schedule `driver × shard` jobs over
//! a worker pool (in-process threads or child processes), retry
//! failures, persist every shard as it completes, and merge with full
//! point-index validation.
//!
//! ```text
//! opera_orchestrate [--drivers all|A,B,...] [--shards N] [--workers W]
//!                   [--retries K] [--quick|--full] [--seed S]
//!                   [--replicates R] [--backend local|subprocess]
//!                   [--bin-dir DIR] [--out DIR] [--plan FILE] [--no-write]
//! opera_orchestrate resume [DIR] [--backend local|subprocess]
//!                   [--bin-dir DIR] [--workers W]
//! opera_orchestrate validate [--out DIR]
//! opera_orchestrate run-scenario FILE [--out DIR]
//! ```
//!
//! The run mode writes a `run.json` manifest up front, then persists
//! each job's shard documents under `<out>/<driver>/shards/` *the
//! moment the job completes* (atomic tmp-file + rename, manifest
//! updated per job), and finally the validated merged tables as
//! `<out>/<driver>/<table>.{csv,json}` — byte-identical to an unsharded
//! `--threads 1` run of the same driver (asserted by
//! `tests/orchestrate.rs`). A killed or failed run therefore keeps
//! everything that finished: `resume` re-reads the manifest, reuses
//! every surviving valid shard document, and re-runs only the missing,
//! corrupt, or failed jobs before re-merging.
//!
//! `--backend subprocess` spawns `target/release/<driver> --shard i/n`
//! per job instead of calling the driver in-process: a segfaulting
//! driver becomes a retryable per-job failure instead of taking the
//! orchestrator down. `validate` re-merges the shard documents on disk
//! and fails, naming the exact invariant, on any missing or duplicated
//! point index, mismatched schema/flags, or a merged CSV that no longer
//! matches its shards (the CI merge-validation step).
//!
//! A `--plan` file is JSON overriding the defaults; explicit CLI flags
//! win over the plan:
//!
//! ```json
//! {"drivers": ["fig08_shuffle_throughput"], "shards": 4, "retries": 1,
//!  "workers": 2, "scale": "quick", "seed": 0, "replicates": 3,
//!  "backend": "subprocess"}
//! ```

use bench::backend::AnyBackend;
use bench::figures;
use expt::orchestrate::{validate_dir, Orchestrator, Plan, PlanFile, RunReport};
use expt::runfile::{resume_run, RunManifest, RunWriter, RUN_FILE};
use expt::{ExptArgs, Scale, TableDoc};
use std::path::PathBuf;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("validate") => return validate(&argv[1..]),
        Some("resume") => return resume(&argv[1..]),
        Some("run-scenario") => return run_scenario(&argv[1..]),
        _ => {}
    }

    let mut drivers_arg: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut retries: Option<usize> = None;
    let mut scale: Option<Scale> = None;
    let mut seed: Option<u64> = None;
    let mut replicates: Option<usize> = None;
    let mut backend_arg: Option<String> = None;
    let mut bin_dir: Option<PathBuf> = None;
    let mut out = PathBuf::from("results");
    let mut no_write = false;
    let mut plan_file = PlanFile::default();

    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        let mut value_for = |flag: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} requires a value")))
        };
        match a.as_str() {
            "--drivers" => drivers_arg = Some(value_for("--drivers")),
            "--shards" => shards = Some(parse(&value_for("--shards"), "--shards")),
            "--workers" => workers = Some(parse(&value_for("--workers"), "--workers")),
            "--retries" => retries = Some(parse(&value_for("--retries"), "--retries")),
            "--quick" => scale = Some(Scale::Quick),
            "--full" => scale = Some(Scale::Full),
            "--seed" => seed = Some(parse(&value_for("--seed"), "--seed")),
            "--replicates" => replicates = Some(parse(&value_for("--replicates"), "--replicates")),
            "--backend" => backend_arg = Some(value_for("--backend")),
            "--bin-dir" => bin_dir = Some(PathBuf::from(value_for("--bin-dir"))),
            "--out" => out = PathBuf::from(value_for("--out")),
            "--no-write" => no_write = true,
            "--plan" => {
                let path = value_for("--plan");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| usage(&format!("--plan {path}: {e}")));
                plan_file = PlanFile::parse(&text).unwrap_or_else(|e| usage(&e));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument: {other}")),
        }
    }

    // Resolution order: defaults < plan file < explicit CLI flags.
    let known: Vec<&str> = figures::all().iter().map(|(e, _)| e.name).collect();
    let drivers: Vec<String> = match (&drivers_arg, &plan_file.drivers) {
        (Some(s), _) if s == "all" => known.iter().map(|s| s.to_string()).collect(),
        (Some(s), _) => s.split(',').map(|d| d.trim().to_string()).collect(),
        (None, Some(list)) => list.clone(),
        (None, None) => known.iter().map(|s| s.to_string()).collect(),
    };
    // Name errors are hard failures *before* any job is scheduled: an
    // empty or misspelled driver list must never exit 0 having run
    // nothing (a silently green CI job with zero work behind it).
    if drivers.is_empty() {
        eprintln!("error: empty driver list (from --drivers or the plan file); nothing to run");
        std::process::exit(2);
    }
    for d in &drivers {
        if !known.contains(&d.as_str()) {
            eprintln!("error: no experiment named {d:?}; known drivers: {known:?}");
            std::process::exit(2);
        }
    }
    let shards = shards.or(plan_file.shards).unwrap_or(2).max(1);
    let workers = workers.or(plan_file.workers).unwrap_or(0);
    let retries = retries.or(plan_file.retries).unwrap_or(1);
    let args = ExptArgs {
        scale: scale.or(plan_file.scale).unwrap_or(Scale::Default),
        seed: seed.or(plan_file.seed).unwrap_or(0),
        replicates: replicates.or(plan_file.replicates).unwrap_or(3),
        ..ExptArgs::default()
    };
    let backend_name = backend_arg
        .or(plan_file.backend.clone())
        .unwrap_or_else(|| "local".to_string());
    let backend =
        AnyBackend::from_name(&backend_name, args.clone(), bin_dir).unwrap_or_else(|e| usage(&e));

    println!(
        "# orchestrating {} driver(s) x {shards} shard(s), backend={}, scale={}, seed={}, \
         replicates={}, retries={retries}",
        drivers.len(),
        backend.name(),
        args.scale,
        args.seed,
        args.replicates
    );
    let plan = Plan {
        drivers,
        shards,
        retries,
    };
    let orch = Orchestrator::new(backend, workers);

    if no_write {
        // No persistence requested: plain run, report only.
        match orch.run(&plan) {
            Ok(report) => print_report(&report),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    // Durable run: manifest first, every shard persisted as its job
    // completes, merged CSVs at the end.
    let manifest = RunManifest::new(&plan, backend_name.as_str(), &args);
    let writer = match RunWriter::create(&out, manifest) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    match orch.run_observed(&plan, &writer) {
        Ok(report) => {
            print_report(&report);
            let merged: Vec<(String, Vec<TableDoc>)> = report
                .drivers
                .iter()
                .map(|r| (r.driver.clone(), r.merged.clone()))
                .collect();
            match writer.finish(&merged) {
                Ok(csvs) => {
                    for p in csvs {
                        println!("# wrote {}", p.display());
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "# completed shards are persisted under {}; after fixing the cause, \
                 re-run only the rest with: opera_orchestrate resume {}",
                out.display(),
                out.display()
            );
            std::process::exit(1);
        }
    }
}

fn print_report(report: &RunReport) {
    for run in &report.drivers {
        let retried = if run.retried > 0 {
            format!(" ({} retried attempt(s))", run.retried)
        } else {
            String::new()
        };
        println!(
            "ok  {} [{} shard(s), {} table(s)]{retried}",
            run.driver,
            report.shards,
            run.merged.len()
        );
    }
    println!(
        "# {} job attempt(s) across {} driver(s); every merge validated",
        report.attempts,
        report.drivers.len()
    );
}

/// `opera_orchestrate resume [DIR]`: re-read the run manifest, reuse
/// every valid persisted shard document, re-run the rest.
fn resume(rest: &[String]) {
    let mut dir: Option<PathBuf> = None;
    let mut backend_arg: Option<String> = None;
    let mut bin_dir: Option<PathBuf> = None;
    let mut workers: usize = 0;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut value_for = |flag: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} requires a value")))
        };
        match a.as_str() {
            "--backend" => backend_arg = Some(value_for("--backend").clone()),
            "--bin-dir" => bin_dir = Some(PathBuf::from(value_for("--bin-dir"))),
            "--workers" => workers = parse(value_for("--workers"), "--workers"),
            "--help" | "-h" => usage(""),
            flag if flag.starts_with("--") => usage(&format!("unknown argument: {flag}")),
            path if dir.is_none() => dir = Some(PathBuf::from(path)),
            other => usage(&format!("unexpected argument: {other}")),
        }
    }
    let dir = dir.unwrap_or_else(|| PathBuf::from("results"));
    let manifest = match RunManifest::read(&dir.join(RUN_FILE)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    // A manifest naming unknown drivers (hand-edited, or written by a
    // newer binary) must fail by name here, not schedule jobs that all
    // error out — or worse, "resume" to a green zero-job run.
    let known: Vec<&str> = figures::all().iter().map(|(e, _)| e.name).collect();
    if manifest.drivers.is_empty() {
        eprintln!(
            "error: manifest {} lists no drivers; nothing to resume",
            dir.join(RUN_FILE).display()
        );
        std::process::exit(2);
    }
    for d in &manifest.drivers {
        if !known.contains(&d.as_str()) {
            eprintln!(
                "error: manifest {} names unknown driver {d:?}; known drivers: {known:?}",
                dir.join(RUN_FILE).display()
            );
            std::process::exit(2);
        }
    }
    // Default to the backend the original run used.
    let backend_name = backend_arg.unwrap_or_else(|| manifest.backend.clone());
    let backend = AnyBackend::from_name(&backend_name, manifest.expt_args(), bin_dir)
        .unwrap_or_else(|e| usage(&e));
    println!(
        "# resuming {} ({} driver(s) x {} shard(s), backend={}, scale={}, seed={})",
        dir.display(),
        manifest.drivers.len(),
        manifest.shards,
        backend.name(),
        manifest.scale,
        manifest.seed
    );
    match resume_run(&dir, backend, workers) {
        Ok(report) => {
            for r in &report.rerun {
                println!(
                    "rerun  {} shard {}/{}: {}",
                    r.job.driver, r.job.shard.0, r.job.shard.1, r.reason
                );
            }
            println!(
                "# {} job(s) reused, {} re-run ({} attempt(s)); every merge validated",
                report.reused,
                report.rerun.len(),
                report.attempts
            );
            for p in &report.csvs {
                println!("# wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "# run state under {} is preserved; resume again once the cause is fixed",
                dir.display()
            );
            std::process::exit(1);
        }
    }
}

/// `opera_orchestrate run-scenario FILE [--out DIR]`: run one
/// declarative scenario file ([`expt::scenario`]) through
/// [`bench::scenario::run_scenario`], with trace capture and jsonl ↔
/// pcapng reconciliation when the scenario requests traces. Unknown
/// topology / policy / transport names are hard errors (exit 2) before
/// any simulation starts.
fn run_scenario(rest: &[String]) {
    let mut file: Option<PathBuf> = None;
    let mut out = PathBuf::from("results/scenarios");
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out = PathBuf::from(it.next().unwrap_or_else(|| usage("--out requires a value")))
            }
            "--help" | "-h" => usage(""),
            flag if flag.starts_with("--") => usage(&format!("unknown argument: {flag}")),
            path if file.is_none() => file = Some(PathBuf::from(path)),
            other => usage(&format!("unexpected argument: {other}")),
        }
    }
    let Some(file) = file else {
        usage("run-scenario requires a scenario file");
    };
    let sc = match expt::scenario::Scenario::load(&file) {
        Ok(sc) => sc,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = bench::scenario::check_names(&sc) {
        eprintln!("error: {}: {e}", file.display());
        std::process::exit(2);
    }
    match bench::scenario::run_scenario(&sc, &out.join(&sc.name)) {
        Ok(report) => {
            println!(
                "# scenario {} ({} point(s))",
                report.name,
                report.rows.len()
            );
            println!("# wrote {}", report.csv.display());
            if let Some(p) = &report.trace_jsonl {
                println!("# wrote {}", p.display());
            }
            if let Some(p) = &report.trace_pcapng {
                println!("# wrote {}", p.display());
            }
            if let Some(v) = &report.validation {
                println!(
                    "# traces reconciled: {} packet(s) on {} link(s), {} jsonl record(s)",
                    v.pcapng_packets, v.links, v.jsonl_records
                );
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn validate(rest: &[String]) {
    let mut out = PathBuf::from("results");
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out = PathBuf::from(it.next().unwrap_or_else(|| usage("--out requires a value")))
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    match validate_dir(&out) {
        Ok(tables) if tables.is_empty() => {
            eprintln!(
                "error: no shard documents under {} (nothing to validate)",
                out.display()
            );
            std::process::exit(1);
        }
        Ok(tables) => {
            for t in &tables {
                println!(
                    "ok  {}/{} [{} shard(s), {} row(s)]",
                    t.driver, t.table, t.shards, t.rows
                );
            }
            println!("# {} merged table(s) validated", tables.len());
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| usage(&format!("{flag}: invalid value {s:?}")))
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: opera_orchestrate [--drivers all|A,B,...] [--shards N] [--workers W]\n\
         \x20                        [--retries K] [--quick|--full] [--seed S]\n\
         \x20                        [--replicates R] [--backend local|subprocess]\n\
         \x20                        [--bin-dir DIR] [--out DIR] [--plan FILE] [--no-write]\n\
         \x20      opera_orchestrate resume [DIR] [--backend local|subprocess]\n\
         \x20                        [--bin-dir DIR] [--workers W]\n\
         \x20      opera_orchestrate validate [--out DIR]\n\
         \x20      opera_orchestrate run-scenario FILE [--out DIR]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
