//! Figure 19 / Appendix E: connectivity loss and path stretch of the 3:1
//! folded Clos under link and switch failures.

use simkit::SimRng;
use topo::clos::{ClosParams, ClosTopology};
use topo::failures::{analyze_static, clos_link_domain, FailureSet};

fn main() {
    let clos = ClosTopology::generate(ClosParams::example_648());
    let tors: Vec<usize> = (0..clos.tors()).collect();
    let domain = clos_link_domain(&clos);
    let switches = clos.graph().len(); // all switch nodes can fail
    let mut rng = SimRng::new(19);

    println!("# Figure 19: 3:1 folded Clos under failures (648 hosts)");
    for (label, kind) in [("links", 0usize), ("switches", 1)] {
        println!("failure_kind,{label}");
        println!("fraction,connectivity_loss,avg_path,worst_path");
        for &frac in &[0.01f64, 0.025, 0.05, 0.10, 0.20, 0.40] {
            let fails = match kind {
                0 => {
                    let n = (frac * domain.len() as f64).round() as usize;
                    let mut all: Vec<usize> = (0..domain.len()).collect();
                    rng.shuffle(&mut all);
                    FailureSet {
                        links: all[..n].iter().map(|&i| domain[i]).collect(),
                        ..Default::default()
                    }
                }
                _ => {
                    // Switch failures: sample among non-ToR switches (aggs
                    // + cores), as the paper's ToR failures are separate.
                    let aggs_cores: Vec<usize> = (clos.tors()..switches).collect();
                    let n = (frac * aggs_cores.len() as f64).round() as usize;
                    let mut pool = aggs_cores.clone();
                    rng.shuffle(&mut pool);
                    FailureSet {
                        switches: pool[..n].to_vec(),
                        ..Default::default()
                    }
                }
            };
            let r = analyze_static(clos.graph(), &tors, &fails);
            println!(
                "{frac},{:.4},{:.3},{}",
                r.worst_slice_loss, r.avg_path_len, r.max_path_len
            );
        }
        println!();
    }
}
