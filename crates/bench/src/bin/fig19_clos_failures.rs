//! Figure 19: folded Clos under failures (Appendix E).
//!
//! Thin wrapper over [`bench::figures::fig19`]; all sweep/output logic
//! lives in the shared `expt` harness.

fn main() {
    expt::run_main(
        bench::figures::fig19::EXPERIMENT,
        bench::figures::fig19::tables,
    );
}
