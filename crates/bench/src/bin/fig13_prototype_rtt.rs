//! Figure 13: RTT CDF of the prototype's ping-pong traffic (§6.1).
//!
//! Thin wrapper over [`bench::figures::fig13`]; all sweep/output logic
//! lives in the shared `expt` harness.

fn main() {
    expt::run_main(
        bench::figures::fig13::EXPERIMENT,
        bench::figures::fig13::tables,
    );
}
