//! Figure 13: RTT CDF of the hardware prototype's ping-pong traffic, with
//! and without bulk background traffic (model of §6.1).

use opera::prototype::{simulate_prototype, PrototypeParams};

fn main() {
    let r = simulate_prototype(PrototypeParams::paper_default(), 100_000, 7);
    println!("# Figure 13: prototype ping-pong RTT CDFs (µs)");
    for (label, mut s) in [("no_bulk", r.quiet), ("with_bulk", r.with_bulk)] {
        println!("series,{label}");
        println!("rtt_us,cdf");
        for q in 1..=100 {
            let v = s.quantile(q as f64 / 100.0).unwrap();
            println!("{v:.2},{:.2}", q as f64 / 100.0);
        }
        println!();
    }
}
