//! Figure 18 / Appendix E: average and worst-case Opera path length under
//! link, ToR, and circuit-switch failures.

use simkit::SimRng;
use topo::failures::{analyze_opera, opera_link_domain, FailureSet};
use topo::opera::{OperaParams, OperaTopology};

fn main() {
    let mini = !matches!(
        std::env::var("OPERA_SCALE").as_deref(),
        Ok("full") | Ok("FULL")
    );
    let params = if mini {
        OperaParams {
            racks: 48,
            uplinks: 6,
            hosts_per_rack: 6,
            groups: 1,
        }
    } else {
        OperaParams::example_648()
    };
    let (topo, _) = OperaTopology::generate_validated(params, 3, 64);
    let domain = opera_link_domain(&topo);
    let mut rng = SimRng::new(18);

    println!(
        "# Figure 18: Opera path stretch under failures ({} racks)",
        params.racks
    );
    for (label, kind) in [("links", 0usize), ("tors", 1), ("switches", 2)] {
        println!("failure_kind,{label}");
        println!("fraction,avg_path,worst_path");
        for &frac in &[0.01f64, 0.025, 0.05, 0.10, 0.20, 0.40] {
            let fails = match kind {
                0 => FailureSet::sample(
                    &mut rng,
                    0,
                    topo.racks(),
                    0,
                    topo.switches(),
                    (frac * domain.len() as f64).round() as usize,
                    &domain,
                ),
                1 => FailureSet::sample(
                    &mut rng,
                    (frac * topo.racks() as f64).round() as usize,
                    topo.racks(),
                    0,
                    topo.switches(),
                    0,
                    &domain,
                ),
                _ => FailureSet::sample(
                    &mut rng,
                    0,
                    topo.racks(),
                    (frac * topo.switches() as f64).round() as usize,
                    topo.switches(),
                    0,
                    &domain,
                ),
            };
            let r = analyze_opera(&topo, &fails);
            println!("{frac},{:.3},{}", r.avg_path_len, r.max_path_len);
        }
        println!();
    }
}
