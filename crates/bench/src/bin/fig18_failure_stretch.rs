//! Figure 18: Opera path stretch under failures (Appendix E).
//!
//! Thin wrapper over [`bench::figures::fig18`]; all sweep/output logic
//! lives in the shared `expt` harness.

fn main() {
    expt::run_main(
        bench::figures::fig18::EXPERIMENT,
        bench::figures::fig18::tables,
    );
}
