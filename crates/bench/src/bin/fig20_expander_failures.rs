//! Figure 20 / Appendix E: connectivity loss and path stretch of the u=7
//! static expander under link and ToR failures.

use simkit::SimRng;
use topo::expander::{ExpanderParams, ExpanderTopology};
use topo::failures::{analyze_static, FailureSet};

fn main() {
    let exp = ExpanderTopology::generate(ExpanderParams::example_650(), 20);
    let g = exp.graph();
    let tors: Vec<usize> = (0..exp.racks()).collect();
    // Undirected link domain.
    let mut domain = Vec::new();
    for a in 0..g.len() {
        for e in g.edges(a) {
            if a < e.to {
                domain.push((a, e.to));
            }
        }
    }
    let mut rng = SimRng::new(20);

    println!("# Figure 20: u=7 expander under failures (650 hosts)");
    for (label, kind) in [("links", 0usize), ("tors", 1)] {
        println!("failure_kind,{label}");
        println!("fraction,connectivity_loss,avg_path,worst_path");
        for &frac in &[0.01f64, 0.025, 0.05, 0.10, 0.20, 0.40] {
            let fails = match kind {
                0 => {
                    let n = (frac * domain.len() as f64).round() as usize;
                    let mut all: Vec<usize> = (0..domain.len()).collect();
                    rng.shuffle(&mut all);
                    FailureSet {
                        links: all[..n].iter().map(|&i| domain[i]).collect(),
                        ..Default::default()
                    }
                }
                _ => {
                    let n = (frac * exp.racks() as f64).round() as usize;
                    let mut pool = tors.clone();
                    rng.shuffle(&mut pool);
                    FailureSet {
                        tors: pool[..n].to_vec(),
                        ..Default::default()
                    }
                }
            };
            let r = analyze_static(g, &tors, &fails);
            println!(
                "{frac},{:.4},{:.3},{}",
                r.worst_slice_loss, r.avg_path_len, r.max_path_len
            );
        }
        println!();
    }
}
