//! Figure 20: static expander under failures (Appendix E).
//!
//! Thin wrapper over [`bench::figures::fig20`]; all sweep/output logic
//! lives in the shared `expt` harness.

fn main() {
    expt::run_main(
        bench::figures::fig20::EXPERIMENT,
        bench::figures::fig20::tables,
    );
}
