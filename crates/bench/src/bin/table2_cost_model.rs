//! Table 2 / Appendix A: cost per "port" for a static network vs Opera,
//! and the derived cost-normalization quantities.

use topo::cost::{clos_hosts, clos_oversubscription, expander_uplinks, table2_alpha, PortCost};

fn main() {
    let s = PortCost::static_port();
    let o = PortCost::opera_port();
    println!("# Table 2: per-port cost breakdown (USD)");
    println!("{:<24} {:>8} {:>8}", "component", "static", "opera");
    println!(
        "{:<24} {:>8.0} {:>8.0}",
        "SR transceiver", s.transceiver, o.transceiver
    );
    println!("{:<24} {:>8.0} {:>8.0}", "optical fiber", s.fiber, o.fiber);
    println!("{:<24} {:>8.0} {:>8.0}", "ToR port", s.tor_port, o.tor_port);
    println!(
        "{:<24} {:>8.0} {:>8.0}",
        "rotor components", s.rotor_components, o.rotor_components
    );
    println!("{:<24} {:>8.0} {:>8.0}", "total", s.total(), o.total());
    println!();
    println!("alpha = {:.3} (paper: 1.3)", table2_alpha());
    println!();
    println!("# Appendix A derived quantities at alpha:");
    let a = table2_alpha();
    println!(
        "cost-equivalent Clos oversubscription F = {:.2}",
        clos_oversubscription(a, 3)
    );
    println!(
        "cost-equivalent Clos hosts (k=12): {:.0}",
        clos_hosts(4.0 / 3.0, 12)
    );
    println!(
        "cost-equivalent expander uplinks (k=12): u = {}",
        expander_uplinks(1.4, 12)
    );
}
