//! Table 2 / Appendix A: per-port cost model and derived quantities.
//!
//! Thin wrapper over [`bench::figures::table2`]; all sweep/output logic
//! lives in the shared `expt` harness.

fn main() {
    expt::run_main(
        bench::figures::table2::EXPERIMENT,
        bench::figures::table2::tables,
    );
}
