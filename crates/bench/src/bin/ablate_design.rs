//! Ablations of Opera's key design choices (offset reconfig, uplink count, bulk threshold, VLB).
//!
//! Thin wrapper over [`bench::figures::ablate_design`]; all sweep/output logic
//! lives in the shared `expt` harness.

fn main() {
    expt::run_main(
        bench::figures::ablate_design::EXPERIMENT,
        bench::figures::ablate_design::tables,
    );
}
