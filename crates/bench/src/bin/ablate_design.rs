//! Ablations of Opera's key design choices (DESIGN.md §"Key design
//! decisions"):
//!
//! 1. **Offset vs simultaneous reconfiguration** (§3.1.1, Figure 3):
//!    fraction of time with full rack-to-rack reachability.
//! 2. **Expansion needs u−1 ≥ 3 matchings** (§3.1.2): slice connectivity
//!    and diameter as the switch count shrinks.
//! 3. **Bulk threshold** (§4.1): FCT of a mid-size flow when classified
//!    bulk vs low-latency.
//! 4. **VLB for skew** (§4.2.2): hot-rack drain time with and without
//!    two-hop Valiant.

use opera::{opera_net, OperaNetConfig, SliceTiming};
use simkit::{SimRng, SimTime};
use topo::opera::{OperaParams, OperaTopology};
use workloads::FlowSpec;

fn main() {
    ablate_offset();
    ablate_uplink_count();
    ablate_threshold();
    ablate_vlb();
}

/// 1. With offset reconfiguration at most one switch is down and the
///    remaining u−1 matchings keep the network connected; simultaneous
///    reconfiguration leaves *zero* circuits during every reconfiguration
///    window — connectivity drops to nothing r/slice of the time.
fn ablate_offset() {
    let t = SliceTiming::paper_default();
    let params = OperaParams::example_648();
    let (topo, _) = OperaTopology::generate_validated(params, 1, 64);
    let connected_slices = (0..topo.slices_per_cycle())
        .filter(|&s| topo.slice(s).graph().is_connected())
        .count();
    let offset_up = connected_slices as f64 / topo.slices_per_cycle() as f64;
    // Simultaneous: all switches reconfigure together; the network is
    // fully dark for r out of every matching period.
    let simultaneous_up = 1.0 - t.reconfig.as_ns() as f64 / t.slice().as_ns() as f64;
    println!("# Ablation 1: offset vs simultaneous reconfiguration");
    println!("strategy,fraction_of_time_fully_connected,disruption");
    println!("offset,{offset_up:.4},none (expander always available)");
    println!(
        "simultaneous,{simultaneous_up:.4},whole-network outage every slice ({} of {})",
        t.reconfig,
        t.slice()
    );
    println!();
}

/// 2. Slice expansion vs number of circuit switches.
fn ablate_uplink_count() {
    println!("# Ablation 2: slice connectivity vs uplink count (96 racks)");
    println!("uplinks,active_matchings,connected_slices,avg_path,max_path");
    for u in [3usize, 4, 6, 8] {
        let params = OperaParams {
            racks: 96,
            uplinks: u,
            hosts_per_rack: 4,
            groups: 1,
        };
        let topo = OperaTopology::generate(params, 7);
        let mut connected = 0;
        let mut avg = 0.0;
        let mut max = 0;
        let samples = 12.min(topo.slices_per_cycle());
        for i in 0..samples {
            let s = i * topo.slices_per_cycle() / samples;
            let g = topo.slice(s).graph();
            if g.is_connected() {
                connected += 1;
            }
            let st = g.path_length_stats();
            avg += st.avg / samples as f64;
            max = max.max(st.max);
        }
        println!("{u},{},{}/{},{avg:.2},{max}", u - 1, connected, samples);
    }
    println!();
}

/// 3. The same 2 MB flow serviced as bulk vs low-latency.
fn ablate_threshold() {
    println!("# Ablation 3: bulk threshold — one 2MB flow, bulk vs low-latency service");
    println!("class,fct_ms,note");
    for (label, threshold) in [("bulk", 1_000u64), ("low_latency", u64::MAX)] {
        let mut cfg = OperaNetConfig::small_test();
        cfg.params.racks = 16;
        cfg.bulk_threshold = threshold;
        let flows = vec![FlowSpec {
            src: 1,
            dst: 62,
            size: 2_000_000,
            start: SimTime::ZERO,
        }];
        let mut sim = opera_net::build(cfg, flows);
        sim.run_until(SimTime::from_ms(100));
        let t = sim.world.logic.tracker();
        let fct = t.get(0).fct().map(|x| x.as_ms_f64()).unwrap_or(f64::NAN);
        let note = match label {
            "bulk" => "waits for circuits, zero tax",
            _ => "immediate, pays expander tax",
        };
        println!("{label},{fct:.3},{note}");
    }
    println!("# shape: at this size the two are comparable; the threshold is the");
    println!("# size where a cycle's wait amortizes (15MB at paper scale, §4.1).");
    println!();
}

/// 4. Hot-rack drain with and without Valiant load balancing.
fn ablate_vlb() {
    println!("# Ablation 4: VLB under skew — rack 0 sends 1MB to each host of rack 1");
    println!("vlb,completion_fraction_at_40ms,avg_bulk_fct_ms");
    for allow in [true, false] {
        let mut cfg = OperaNetConfig::small_test();
        cfg.params.racks = 16;
        cfg.allow_vlb = allow;
        cfg.bulk_threshold = 0;
        let mut rng = SimRng::new(4);
        let mut flows = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                flows.push(FlowSpec {
                    src: i,
                    dst: 4 + j,
                    size: 1_000_000,
                    start: SimTime::from_us(rng.below(100)),
                });
            }
        }
        let mut sim = opera_net::build(cfg, flows);
        sim.run_until(SimTime::from_ms(40));
        let t = sim.world.logic.tracker();
        let done = t.completed() as f64 / t.len() as f64;
        let mut fcts: Vec<f64> = t
            .flows()
            .iter()
            .filter_map(|f| f.fct())
            .map(|x| x.as_ms_f64())
            .collect();
        fcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let avg = if fcts.is_empty() {
            f64::NAN
        } else {
            fcts.iter().sum::<f64>() / fcts.len() as f64
        };
        println!("{allow},{done:.2},{avg:.2}");
    }
    println!("# shape: VLB sprays the hot pair over idle circuits (RotorLB), cutting");
    println!("# drain time roughly (u-1)x for a single hot destination.");
}
