//! Figure 11: connectivity loss of a 648-host, 108-rack Opera network
//! under random link, ToR, and circuit-switch failures (worst slice and
//! integrated across all slices).

use simkit::SimRng;
use topo::failures::{analyze_opera, opera_link_domain, FailureSet};
use topo::opera::{OperaParams, OperaTopology};

fn main() {
    let mini = !matches!(
        std::env::var("OPERA_SCALE").as_deref(),
        Ok("full") | Ok("FULL")
    );
    let params = if mini {
        // Same structure, fewer racks so the slice sweep stays fast.
        OperaParams {
            racks: 48,
            uplinks: 6,
            hosts_per_rack: 6,
            groups: 1,
        }
    } else {
        OperaParams::example_648()
    };
    let (topo, _) = OperaTopology::generate_validated(params, 3, 64);
    let domain = opera_link_domain(&topo);
    let mut rng = SimRng::new(11);
    let fractions = [0.01, 0.025, 0.05, 0.10, 0.20, 0.40];

    println!(
        "# Figure 11: Opera connectivity loss under failures ({} racks)",
        params.racks
    );
    for (label, kind) in [("links", 0usize), ("tors", 1), ("switches", 2)] {
        println!("failure_kind,{label}");
        println!("fraction,worst_slice_loss,all_slices_loss");
        for &frac in &fractions {
            let fails = match kind {
                0 => FailureSet::sample(
                    &mut rng,
                    0,
                    topo.racks(),
                    0,
                    topo.switches(),
                    (frac * domain.len() as f64).round() as usize,
                    &domain,
                ),
                1 => FailureSet::sample(
                    &mut rng,
                    (frac * topo.racks() as f64).round() as usize,
                    topo.racks(),
                    0,
                    topo.switches(),
                    0,
                    &domain,
                ),
                _ => FailureSet::sample(
                    &mut rng,
                    0,
                    topo.racks(),
                    (frac * topo.switches() as f64).round() as usize,
                    topo.switches(),
                    0,
                    &domain,
                ),
            };
            let r = analyze_opera(&topo, &fails);
            println!("{frac},{:.4},{:.4}", r.worst_slice_loss, r.all_slices_loss);
        }
        println!();
    }
}
