//! Figure 11: Opera connectivity loss under link/ToR/switch failures.
//!
//! Thin wrapper over [`bench::figures::fig11`]; all sweep/output logic
//! lives in the shared `expt` harness.

fn main() {
    expt::run_main(
        bench::figures::fig11::EXPERIMENT,
        bench::figures::fig11::tables,
    );
}
