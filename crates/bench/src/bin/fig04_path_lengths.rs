//! Figure 4: CDF of ToR-to-ToR path lengths for the cost-equivalent trio.
//!
//! Thin wrapper over [`bench::figures::fig04`]; all sweep/output logic
//! lives in the shared `expt` harness.

fn main() {
    expt::run_main(
        bench::figures::fig04::EXPERIMENT,
        bench::figures::fig04::tables,
    );
}
