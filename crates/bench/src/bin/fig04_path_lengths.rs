//! Figure 4: CDF of ToR-to-ToR path lengths for the cost-equivalent
//! 648-host Opera, 650-host u=7 expander, and 648-host 3:1 folded Clos.

use topo::clos::{ClosParams, ClosTopology};
use topo::expander::{ExpanderParams, ExpanderTopology};
use topo::opera::{OperaParams, OperaTopology};

fn print_cdf(label: &str, hist: &[u64]) {
    let total: u64 = hist.iter().sum();
    println!("network,{label}");
    println!("hops,pdf,cdf");
    let mut cum = 0u64;
    for (len, &c) in hist.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        println!(
            "{len},{:.4},{:.4}",
            c as f64 / total as f64,
            cum as f64 / total as f64
        );
    }
    println!();
}

fn main() {
    println!("# Figure 4: path-length CDFs (cost-equivalent 648-host networks)");

    // Opera: aggregate over all 108 slices of the cycle.
    let (opera, seed) = OperaTopology::generate_validated(OperaParams::example_648(), 1, 64);
    let mut hist = vec![0u64; 12];
    for s in 0..opera.slices_per_cycle() {
        for (l, &c) in opera
            .slice(s)
            .graph()
            .path_length_histogram()
            .iter()
            .enumerate()
        {
            hist[l] += c;
        }
    }
    println!("# opera seed {seed}");
    print_cdf("Opera-648", &hist);

    // u = 7 static expander (650 hosts).
    let exp = ExpanderTopology::generate(ExpanderParams::example_650(), 1);
    print_cdf("Expander-u7-650", &exp.graph().path_length_histogram());

    // 3:1 folded Clos: ToR-to-ToR distances only.
    let clos = ClosTopology::generate(ClosParams::example_648());
    let mut chist = vec![0u64; 8];
    for tor in 0..clos.tors() {
        let d = clos.graph().bfs_distances(tor);
        for other in 0..clos.tors() {
            if other != tor {
                chist[d[other]] += 1;
            }
        }
    }
    print_cdf("FoldedClos-3to1-648", &chist);
}
