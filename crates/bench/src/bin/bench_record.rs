//! `bench_record` — measure the hot-path scenario set and maintain the
//! committed performance trajectory (`BENCH_hot_paths.json`).
//!
//! ```text
//! bench_record                   # quick scenarios, append an entry
//! bench_record --full            # nightly configuration, append an entry
//! bench_record --check           # CI gate: no append; fail on >30% drop
//! bench_record --check --fresh-out fresh.json   # also write the fresh
//!                                # record (uploaded as a CI artifact)
//! bench_record --out PATH        # trajectory file (default: workspace root)
//! bench_record --threshold 0.5   # override the gate's drop fraction
//! ```
//!
//! The trajectory file is **append-only**: `--check` never writes it, a
//! record run only adds an entry. See the README's "Performance
//! trajectory" section for the schema.

use bench::record;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    full: bool,
    check: bool,
    out: PathBuf,
    fresh_out: Option<PathBuf>,
    threshold: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        full: false,
        check: false,
        out: PathBuf::from(record::DEFAULT_PATH),
        fresh_out: None,
        threshold: record::DEFAULT_THRESHOLD,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--full" => args.full = true,
            "--quick" => args.full = false,
            "--check" => args.check = true,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--fresh-out" => args.fresh_out = Some(PathBuf::from(value("--fresh-out")?)),
            "--threshold" => {
                args.threshold = value("--threshold")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_record [--quick|--full] [--check] [--out PATH] \
                     [--fresh-out PATH] [--threshold FRACTION]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_record: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mode = if args.full { "full" } else { "quick" };
    eprintln!(
        "bench_record: engine={} mode={mode}",
        simkit::engine::ENGINE_NAME
    );
    let results = record::run_all(args.full);
    for r in &results {
        println!(
            "{:<24} {:>12.0} events/sec  ({} events, wall median {:.3} ms, σ {:.3} ms, \
             peak pending {})",
            r.name,
            r.events_per_sec,
            r.events,
            r.wall.median.as_secs_f64() * 1e3,
            r.wall.stddev.as_secs_f64() * 1e3,
            r.peak_pending,
        );
    }

    let entry = record::entry(&results, mode, unix_now(), &git_rev());
    if let Some(fresh) = &args.fresh_out {
        if let Err(e) = std::fs::write(fresh, entry.render() + "\n") {
            eprintln!("bench_record: writing {}: {e}", fresh.display());
            return ExitCode::FAILURE;
        }
    }

    if args.check {
        let doc = match record::load(&args.out) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("bench_record: loading {}: {e}", args.out.display());
                return ExitCode::FAILURE;
            }
        };
        let failures = record::check(&doc, &results, mode, args.threshold);
        if failures.is_empty() {
            println!(
                "bench_record: gate PASSED against {} (threshold {:.0}%)",
                args.out.display(),
                args.threshold * 100.0
            );
            return ExitCode::SUCCESS;
        }
        eprintln!("bench_record: gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        return ExitCode::FAILURE;
    }

    match record::append(&args.out, entry) {
        Ok(()) => {
            println!(
                "bench_record: appended {mode} entry to {}",
                args.out.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_record: appending to {}: {e}", args.out.display());
            ExitCode::FAILURE
        }
    }
}
