//! Figure 12: throughput vs relative cost α for hot-rack, skew[0.2,1],
//! and permutation workloads at k = 24 (5184 hosts), flow-level.
//! `OPERA_SCALE=full` runs k = 24; the default runs k = 12, which the
//! paper shows has nearly identical performance-cost scaling (Appendix C).

fn main() {
    let k = if matches!(
        std::env::var("OPERA_SCALE").as_deref(),
        Ok("full") | Ok("FULL")
    ) {
        24
    } else {
        12
    };
    bench::cost_sweep::run(k);
}
