//! Figure 10: aggregate throughput vs Websearch load for a mixed workload.
//!
//! Thin wrapper over [`bench::figures::fig10`]; all sweep/output logic
//! lives in the shared `expt` harness.

fn main() {
    expt::run_main(
        bench::figures::fig10::EXPERIMENT,
        bench::figures::fig10::tables,
    );
}
