//! Figure 10: aggregate network throughput vs Websearch (low-latency)
//! load for a combined Websearch + Shuffle workload.
//!
//! The bulk component is a saturating all-to-all demand; the low-latency
//! component is Websearch at the given fraction of host capacity. We
//! report delivered throughput normalized to aggregate host capacity, per
//! network, using the flow-level models for the bulk plane (steady state)
//! and charging the static networks their measured bandwidth tax.

use bench::f;
use flowsim::models::Demand;
use flowsim::{clos_throughput, max_concurrent_flow, opera_model};
use simkit::SimRng;
use topo::expander::{ExpanderParams, ExpanderTopology};
use topo::opera::{OperaParams, OperaTopology};
use workloads::gen::ScenarioGen;

fn main() {
    let rate = 10.0;
    // Cost-equivalent trio at k = 12 (the paper's 648-host setting).
    let opera = OperaTopology::generate(OperaParams::example_648(), 5);
    let exp = ExpanderTopology::generate(ExpanderParams::example_650(), 5);
    let d_o = 6.0; // Opera hosts/rack
    let d_e = 5.0; // expander hosts/rack

    println!("# Figure 10: throughput vs Websearch load (Websearch+Shuffle mix)");
    println!("websearch_load,opera,expander,clos");
    for &ws in &[0.01f64, 0.025, 0.05, 0.10, 0.20, 0.40] {
        // Opera: low-latency traffic takes ws of each host's capacity and
        // pays the expander tax on the slice fabric (avg path ~3.2 hops);
        // the remaining host capacity feeds tax-free direct circuits.
        // Opera admits at most ~10% low-latency load (§5.3).
        let ll_tax = 3.2; // average slice path length (Fig. 4)
        let admitted_ws_o = ws.min(0.10);
        let fabric_frac = admitted_ws_o * ll_tax * d_o / (opera.switches() as f64 - 1.0);
        let bulk_budget = (1.0 - fabric_frac).max(0.0);
        let a2a = ScenarioGen::all_to_all_demands(opera.racks(), 6, rate, 1.0 - admitted_ws_o);
        let bulk_tp = opera_model(&opera, &a2a, rate * bulk_budget, 0.98, true)
            .throughput_fraction()
            * (1.0 - admitted_ws_o);
        let opera_total = admitted_ws_o + bulk_tp;

        // Expander: everything shares the fabric; bulk gets what's left
        // after Websearch, both paying the multipath tax.
        let mut rng = SimRng::new(3);
        let racks_e = exp.racks();
        let a2a_e: Vec<Demand> = ScenarioGen::all_to_all_demands(racks_e, 5, rate, 1.0);
        let tor: Vec<usize> = (0..racks_e).collect();
        let lam = max_concurrent_flow(exp.graph(), &tor, &a2a_e, rate, d_e * rate, 40).lambda;
        // Websearch load is served first (it is admissible while ws <= lam);
        // bulk gets the residual concurrent capacity.
        let ws_e = ws.min(lam);
        let bulk_e = (lam - ws_e).max(0.0);
        let exp_total = ws_e + bulk_e * (1.0 - ws_e).min(1.0);
        let _ = &mut rng;

        // Clos: admission bound 1/3 independent of mix.
        let clos_cap = clos_throughput(4.0 / 3.0);
        let ws_c = ws.min(clos_cap);
        let clos_total = ws_c + (clos_cap - ws_c);

        println!(
            "{ws},{},{},{}",
            f(opera_total.min(1.0)),
            f(exp_total.min(1.0)),
            f(clos_total.min(1.0))
        );
    }
    println!();
    println!("# expected shape: Opera ≈2-4x the static nets at low websearch load,");
    println!("# converging toward them as low-latency load approaches Opera's ~10% cap.");
}
