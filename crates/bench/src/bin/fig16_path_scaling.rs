//! Figure 16: average path length vs ToR radix (Appendix C).
//!
//! Thin wrapper over [`bench::figures::fig16`]; all sweep/output logic
//! lives in the shared `expt` harness.

fn main() {
    expt::run_main(
        bench::figures::fig16::EXPERIMENT,
        bench::figures::fig16::tables,
    );
}
