//! Figure 16: average path length vs ToR radix for Opera and for static
//! expanders at several cost points α (Appendix C).

use topo::cost::{expander_racks, expander_uplinks};
use topo::expander::{ExpanderParams, ExpanderTopology};
use topo::opera::{OperaParams, OperaTopology};

fn main() {
    let full = matches!(
        std::env::var("OPERA_SCALE").as_deref(),
        Ok("full") | Ok("FULL")
    );
    let ks: Vec<usize> = if full {
        vec![12, 24, 36, 48]
    } else {
        vec![12, 24]
    };
    let alphas = [1.0, 1.4, 2.0, 3.0];

    println!("# Figure 16: average path length vs ToR radix");
    println!(
        "k,hosts,opera_avg,opera_max,{}",
        alphas.map(|a| format!("exp_a{a}")).join(",")
    );
    for &k in &ks {
        let racks = 3 * k * k / 4;
        let hosts = racks * k / 2;
        let topo = OperaTopology::generate(OperaParams::from_radix(k, racks), 2);
        // Sample a few slices (all slices are statistically identical).
        let mut avg = 0.0;
        let mut max = 0usize;
        let samples = 4.min(topo.slices_per_cycle());
        for i in 0..samples {
            let s = i * topo.slices_per_cycle() / samples;
            let st = topo.slice(s).graph().path_length_stats();
            avg += st.avg / samples as f64;
            max = max.max(st.max);
        }
        let mut cols = Vec::new();
        for &alpha in &alphas {
            let u = expander_uplinks(alpha, k).clamp(3, k - 1);
            let r = expander_racks(hosts, k, u);
            let e = ExpanderTopology::generate(
                ExpanderParams {
                    racks: r,
                    uplinks: u,
                    hosts_per_rack: k - u,
                },
                3,
            );
            cols.push(format!("{:.3}", e.graph().path_length_stats().avg));
        }
        println!("{k},{hosts},{avg:.3},{max},{}", cols.join(","));
    }
}
