//! Golden-baseline regression check over every figure driver.
//!
//! Runs each `bench::figures` experiment in the canonical quick mode and
//! diffs its tables against the committed CSVs under `goldens/<driver>/`
//! ([`bench::figures::golden_run`]). Exits non-zero naming every driver,
//! table, row, and column that drifted; `--bless` re-records the goldens
//! instead (byte-idempotent on an unmodified tree).
//!
//! ```text
//! golden_check [--bless] [--threads N] [--driver NAME]...
//! ```

use bench::figures;

fn main() {
    let mut bless = false;
    let mut threads = 0usize;
    let mut only: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--bless" => bless = true,
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads requires a number"));
            }
            "--driver" => {
                only.push(
                    args.next()
                        .unwrap_or_else(|| usage("--driver requires a name")),
                );
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument: {other}")),
        }
    }

    let root = figures::golden_root();
    let ctx = figures::golden_ctx(threads);
    let known: Vec<&str> = figures::all().iter().map(|(e, _)| e.name).collect();
    for name in &only {
        // A typo'd --driver must not let the check pass vacuously.
        if !known.contains(&name.as_str()) {
            eprintln!("error: no experiment named {name:?}; known drivers: {known:?}");
            std::process::exit(2);
        }
    }
    let mut total = 0usize;
    for (exp, build) in figures::all() {
        if !only.is_empty() && !only.iter().any(|n| n == exp.name) {
            continue;
        }
        let drifts = match figures::golden_run(&exp, build, &ctx, &root, bless) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: {}: {e}", exp.name);
                std::process::exit(1);
            }
        };
        if bless {
            println!("blessed {}", exp.name);
        } else if drifts.is_empty() {
            println!("ok      {}", exp.name);
        } else {
            println!("DRIFT   {} ({} difference(s))", exp.name, drifts.len());
            for d in &drifts {
                println!("  {d}");
            }
            total += drifts.len();
        }
    }
    if total > 0 {
        eprintln!(
            "{total} drift(s) from committed goldens; if intended, re-record with \
             `cargo run -p bench --bin golden_check -- --bless`"
        );
        std::process::exit(1);
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: golden_check [--bless] [--threads N] [--driver NAME]...");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
