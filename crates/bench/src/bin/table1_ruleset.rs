//! Table 1: Opera ruleset sizes and switch-memory utilization (§6.2).
//!
//! Thin wrapper over [`bench::figures::table1`]; all sweep/output logic
//! lives in the shared `expt` harness.

fn main() {
    expt::run_main(
        bench::figures::table1::EXPERIMENT,
        bench::figures::table1::tables,
    );
}
