//! Table 1: routing-state entries and switch-memory utilization for Opera
//! rulesets at various datacenter sizes (§6.2).

use opera::ruleset::{ruleset_for, table1_rows};

fn main() {
    println!("# Table 1: Opera ruleset sizes");
    println!(
        "{:>8} {:>8} {:>12} {:>12}",
        "racks", "uplinks", "entries", "util_%"
    );
    for (racks, uplinks) in table1_rows() {
        let r = ruleset_for(racks, uplinks);
        println!(
            "{:>8} {:>8} {:>12} {:>12.1}",
            r.racks, r.uplinks, r.entries, r.utilization_pct
        );
    }
    println!();
    println!("# paper: 12096/0.7, 65268/3.8, 276120/16.2, 600576/35.3, 1032192/60.7, 1461600/85.9");
}
