//! Ablation: switch-policy × transport matrix under incast and victim
//! workloads.
//!
//! Thin wrapper over [`bench::figures::ablate_transport`]; all sweep/output
//! logic lives in the shared `expt` harness.

fn main() {
    expt::run_main(
        bench::figures::ablate_transport::EXPERIMENT,
        bench::figures::ablate_transport::tables,
    );
}
