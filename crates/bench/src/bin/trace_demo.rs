//! Run a declarative scenario file with trace capture.
//!
//! Standalone front-end to [`bench::scenario`] for interactive use:
//!
//! ```text
//! trace_demo scenarios/tiny_incast.toml --out results/traces
//! ```
//!
//! Parses the scenario, validates every referenced name against the
//! registries, runs each sweep point, writes the metrics CSV (plus the
//! JSON-lines / pcapng traces when the scenario asks for them), and —
//! when both sinks are enabled — reconciles the two trace files. CI
//! drives the same code path through `opera_orchestrate run-scenario`.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: trace_demo <scenario.toml|scenario.json> [--out DIR]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut scenario: Option<PathBuf> = None;
    let mut out = PathBuf::from("results/traces");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => match args.next() {
                Some(d) => out = PathBuf::from(d),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ if scenario.is_none() && !a.starts_with('-') => scenario = Some(PathBuf::from(a)),
            _ => usage(),
        }
    }
    let Some(path) = scenario else { usage() };

    let sc = match expt::scenario::Scenario::load(&path) {
        Ok(sc) => sc,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match bench::scenario::run_scenario(&sc, &out.join(&sc.name)) {
        Ok(report) => {
            println!(
                "# scenario {} ({} point(s))",
                report.name,
                report.rows.len()
            );
            for (pt, m) in &report.rows {
                println!(
                    "{}/{} senders={}: {}/{} flows, avg_fct={:.1}us p99={:.1}us \
                     dropped={} trimmed={} marked={}",
                    pt.policy,
                    pt.transport,
                    pt.senders,
                    m.completed,
                    m.offered,
                    m.avg_fct_us,
                    m.p99_fct_us,
                    m.dropped,
                    m.trimmed,
                    m.marked
                );
            }
            println!("# wrote {}", report.csv.display());
            if let Some(p) = &report.trace_jsonl {
                println!("# wrote {}", p.display());
            }
            if let Some(p) = &report.trace_pcapng {
                println!("# wrote {}", p.display());
            }
            if let Some(v) = &report.validation {
                println!(
                    "# traces reconciled: {} packets on {} link(s), {} jsonl record(s)",
                    v.pcapng_packets, v.links, v.jsonl_records
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
