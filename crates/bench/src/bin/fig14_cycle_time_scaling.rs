//! Figure 14: relative cycle time vs ToR radix, grouped vs ungrouped (Appendix B).
//!
//! Thin wrapper over [`bench::figures::fig14`]; all sweep/output logic
//! lives in the shared `expt` harness.

fn main() {
    expt::run_main(
        bench::figures::fig14::EXPERIMENT,
        bench::figures::fig14::tables,
    );
}
