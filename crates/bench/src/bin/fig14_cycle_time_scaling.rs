//! Figure 14: relative cycle time vs ToR radix, with and without circuit-
//! switch grouping (Appendix B).

use opera::timing::{cycle_slices_grouped, cycle_slices_ungrouped, SliceTiming};

fn main() {
    let base = cycle_slices_ungrouped(12) as f64;
    let t = SliceTiming::paper_default();
    println!("# Figure 14: relative cycle time vs ToR radix (normalized to k=12)");
    println!("k,racks,no_groups,groups_of_6,cycle_ms_grouped");
    for k in (12..=60).step_by(4) {
        let ungrouped = cycle_slices_ungrouped(k);
        let grouped = cycle_slices_grouped(k, 6.min(k / 2));
        println!(
            "{k},{},{:.2},{:.2},{:.2}",
            3 * k * k / 4,
            ungrouped as f64 / base,
            grouped as f64 / base,
            t.cycle(grouped).as_ms_f64()
        );
    }
    println!();
    println!("# k=64-class network: grouped cycle grows ~6x from k=12 (paper: 'factor of 6'),");
    println!(
        "# bulk threshold scales accordingly: {:.0} MB at k=60 grouped vs {:.0} MB at k=12",
        t.bulk_threshold_bytes(cycle_slices_grouped(60, 6), 10.0) as f64 / 1e6,
        t.bulk_threshold_bytes(cycle_slices_ungrouped(12), 10.0) as f64 / 1e6,
    );
}
