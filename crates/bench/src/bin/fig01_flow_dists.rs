//! Figure 1: flow-count and byte CDFs of the three published workloads.

use workloads::dists::{FlowSizeDist, Workload};

fn main() {
    println!("# Figure 1: flow-size distributions (CDF of flows, CDF of bytes)");
    let sizes: Vec<f64> = (4..=36).map(|i| 10f64.powf(i as f64 / 4.0)).collect();
    for w in [Workload::Datamining, Workload::Websearch, Workload::Hadoop] {
        let d = FlowSizeDist::of(w);
        println!("workload,{w:?}");
        println!("size_bytes,cdf_flows,cdf_bytes");
        // Byte CDF at x = fraction of bytes in flows of size <= x.
        let n = 4000;
        let total: f64 = (0..n)
            .map(|i| d.quantile((i as f64 + 0.5) / n as f64))
            .sum();
        for &s in &sizes {
            let flows = d.cdf(s);
            let bytes: f64 = (0..n)
                .map(|i| d.quantile((i as f64 + 0.5) / n as f64))
                .filter(|&q| q <= s)
                .sum::<f64>()
                / total;
            println!("{s:.0},{flows:.4},{bytes:.4}");
        }
        println!(
            "# mean={:.0} bytes, byte share >=15MB: {:.3}",
            d.mean(),
            d.byte_fraction_above(15e6)
        );
        println!();
    }
}
