//! Figure 1: flow-count and byte CDFs of the three published workloads.
//!
//! Thin wrapper over [`bench::figures::fig01`]; all sweep/output logic
//! lives in the shared `expt` harness.

fn main() {
    expt::run_main(
        bench::figures::fig01::EXPERIMENT,
        bench::figures::fig01::tables,
    );
}
