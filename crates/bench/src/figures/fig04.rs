//! Figure 4: CDF of ToR-to-ToR path lengths for the cost-equivalent
//! 648-host Opera, 650-host u=7 expander, and 648-host 3:1 folded Clos.

use expt::{Cell, Ctx, Experiment, MetricFmt, RepTableBuilder, Sweep, Table};
use topo::clos::{ClosParams, ClosTopology};
use topo::expander::{ExpanderParams, ExpanderTopology};
use topo::opera::{OperaParams, OperaTopology};

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "fig04_path_lengths",
    title: "Figure 4: path-length CDFs (cost-equivalent 648-host networks)",
};

#[derive(Clone, Copy)]
enum Net {
    Opera,
    Expander,
    Clos,
}

fn cdf_rows(label: &str, hist: &[u64]) -> Vec<(Vec<Cell>, Vec<f64>)> {
    let total: u64 = hist.iter().sum();
    let mut cum = 0u64;
    let mut rows = Vec::new();
    for (len, &c) in hist.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        rows.push((
            vec![Cell::from(label), Cell::from(len)],
            vec![c as f64 / total as f64, cum as f64 / total as f64],
        ));
    }
    rows
}

/// Build the figure's tables. Topology seeds are fixed, so each network
/// is computed once and recorded once per replicate (push_constant):
/// CIs are exactly zero, columns kept for schema uniformity.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let quick = ctx.quick();
    let sweep = Sweep::grid1(&[Net::Opera, Net::Expander, Net::Clos], |n| n);
    let sref = ctx.sweep_ref(&sweep);
    let per_net = ctx.run(&sweep, |&net, _| match net {
        Net::Opera => {
            // Aggregate over all slices of the cycle.
            let params = if quick {
                OperaParams {
                    racks: 24,
                    uplinks: 4,
                    hosts_per_rack: 4,
                    groups: 1,
                }
            } else {
                OperaParams::example_648()
            };
            let (opera, _seed) = OperaTopology::generate_validated(params, 1, 64);
            let mut hist = vec![0u64; 12];
            for s in 0..opera.slices_per_cycle() {
                for (l, &c) in opera
                    .slice(s)
                    .graph()
                    .path_length_histogram()
                    .iter()
                    .enumerate()
                {
                    hist[l] += c;
                }
            }
            let label = if quick { "Opera-quick" } else { "Opera-648" };
            cdf_rows(label, &hist)
        }
        Net::Expander => {
            let params = if quick {
                ExpanderParams {
                    racks: 16,
                    uplinks: 4,
                    hosts_per_rack: 3,
                }
            } else {
                ExpanderParams::example_650()
            };
            let exp = ExpanderTopology::generate(params, 1);
            let label = if quick {
                "Expander-u4-quick"
            } else {
                "Expander-u7-650"
            };
            cdf_rows(label, &exp.graph().path_length_histogram())
        }
        Net::Clos => {
            let params = if quick {
                ClosParams {
                    radix: 8,
                    oversubscription: 3,
                }
            } else {
                ClosParams::example_648()
            };
            let clos = ClosTopology::generate(params);
            // ToR-to-ToR distances only.
            let mut chist = vec![0u64; 8];
            for tor in 0..clos.tors() {
                let d = clos.graph().bfs_distances(tor);
                for other in 0..clos.tors() {
                    if other != tor {
                        chist[d[other]] += 1;
                    }
                }
            }
            cdf_rows("FoldedClos-3to1", &chist)
        }
    });

    let mut t = RepTableBuilder::new(
        "path_length_cdfs",
        &["network", "hops"],
        &[("pdf", expt::f as MetricFmt), ("cdf", expt::f)],
    )
    .for_sweep(&sref);
    for (rows, &p) in per_net.into_iter().zip(&sref.owned) {
        for (key, metrics) in rows {
            t.push_constant_at(p, key, &metrics, ctx.replicates());
        }
    }
    vec![t.build()]
}
