//! Figure 10: aggregate network throughput vs Websearch (low-latency)
//! load for a combined Websearch + Shuffle workload.
//!
//! The bulk component is a saturating all-to-all demand; the low-latency
//! component is Websearch at the given fraction of host capacity. We
//! report delivered throughput normalized to aggregate host capacity, per
//! network, using the flow-level models for the bulk plane (steady state)
//! and charging the static networks their measured bandwidth tax.

use expt::{Cell, Ctx, Experiment, MetricFmt, RepTableBuilder, Sweep, Table};
use flowsim::models::Demand;
use flowsim::{clos_throughput, opera_model, McfSolver};
use topo::expander::{ExpanderParams, ExpanderTopology};
use topo::opera::{OperaParams, OperaTopology};
use workloads::gen::ScenarioGen;

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "fig10_mixed_throughput",
    title: "Figure 10: throughput vs Websearch load (Websearch+Shuffle mix)",
};

/// Build the figure's tables.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let rate = 10.0;
    // Cost-equivalent trio at k = 12 (the paper's 648-host setting);
    // quick mode shrinks the networks and the solver iterations.
    let (opera_params, exp_params, mcf_iters) = if ctx.quick() {
        (
            OperaParams {
                racks: 27,
                uplinks: 3,
                hosts_per_rack: 3,
                groups: 1,
            },
            ExpanderParams {
                racks: 28,
                uplinks: 3,
                hosts_per_rack: 3,
            },
            15usize,
        )
    } else {
        (
            OperaParams::example_648(),
            ExpanderParams::example_650(),
            40,
        )
    };
    let opera = OperaTopology::generate(opera_params, 5);
    let exp = ExpanderTopology::generate(exp_params, 5);
    let d_o = opera_params.hosts_per_rack as f64;
    let d_e = exp_params.hosts_per_rack as f64;

    let ws_loads: &[f64] = ctx.by_scale(
        &[0.01, 0.05, 0.20],
        &[0.01, 0.025, 0.05, 0.10, 0.20, 0.40],
        &[0.01, 0.025, 0.05, 0.10, 0.20, 0.40],
    );

    // The expander's saturating all-to-all λ does not depend on the
    // Websearch load at all — the same solve used to run inside the
    // sweep closure for every point. Solve it exactly once up front.
    let racks_e = exp.racks();
    let a2a_e: Vec<Demand> =
        ScenarioGen::all_to_all_demands(racks_e, exp_params.hosts_per_rack, rate, 1.0);
    let tor_e: Vec<usize> = (0..racks_e).collect();
    let lam = McfSolver::new(exp.graph())
        .solve(&tor_e, &a2a_e, rate, d_e * rate, mcf_iters)
        .lambda;

    // The flow-level solves are deterministic (fixed topology seeds, no
    // RNG): each load is solved once and recorded once per replicate
    // (push_constant, zero CI).
    let sweep = Sweep::grid1(ws_loads, |w| w);
    let sref = ctx.sweep_ref(&sweep);
    let rows = ctx.run(&sweep, |&ws, _| {
        // Opera: low-latency traffic takes `ws` of each host's capacity
        // and pays the expander tax on the slice fabric (avg path ~3.2
        // hops); the remaining host capacity feeds tax-free direct
        // circuits. Opera admits at most ~10% low-latency load (§5.3).
        let ll_tax = 3.2; // average slice path length (Fig. 4)
        let admitted_ws_o = ws.min(0.10);
        let fabric_frac = admitted_ws_o * ll_tax * d_o / (opera.switches() as f64 - 1.0);
        let bulk_budget = (1.0 - fabric_frac).max(0.0);
        let a2a = ScenarioGen::all_to_all_demands(
            opera.racks(),
            opera_params.hosts_per_rack,
            rate,
            1.0 - admitted_ws_o,
        );
        let bulk_tp = opera_model(&opera, &a2a, rate * bulk_budget, 0.98, true)
            .throughput_fraction()
            * (1.0 - admitted_ws_o);
        let opera_total = admitted_ws_o + bulk_tp;

        // Expander: everything shares the fabric; bulk gets what's left
        // after Websearch, both paying the multipath tax (λ hoisted
        // above — it is load-independent).
        // Websearch load is served first (it is admissible while
        // ws <= lam); bulk gets the residual concurrent capacity.
        let ws_e = ws.min(lam);
        let bulk_e = (lam - ws_e).max(0.0);
        let exp_total = ws_e + bulk_e * (1.0 - ws_e).min(1.0);

        // Clos: admission bound 1/3 independent of mix.
        let clos_cap = clos_throughput(4.0 / 3.0);
        let ws_c = ws.min(clos_cap);
        let clos_total = ws_c + (clos_cap - ws_c);

        (
            vec![Cell::F64(ws)],
            vec![
                opera_total.min(1.0),
                exp_total.min(1.0),
                clos_total.min(1.0),
            ],
        )
    });

    let mut t = RepTableBuilder::new(
        "throughput_vs_websearch_load",
        &["websearch_load"],
        &[
            ("opera", expt::f as MetricFmt),
            ("expander", expt::f),
            ("clos", expt::f),
        ],
    )
    .for_sweep(&sref);
    for ((key, metrics), &p) in rows.into_iter().zip(&sref.owned) {
        t.push_constant_at(p, key, &metrics, ctx.replicates());
    }
    vec![t.build()]
}
