//! Figure 7: FCTs for the Datamining workload on the cost-equivalent
//! trio (Opera / u-expander / 3:1 Clos) plus non-hybrid and hybrid
//! RotorNet, across offered loads.

use crate::figures::{completion_row, fct_rows, COMPLETION_METRICS, FCT_KEY_COLUMNS, FCT_METRICS};
use crate::{clos_cfg, expander_cfg, opera_cfg, static_hosts};
use expt::{Ctx, Experiment, RepTableBuilder, Sweep, Table};
use opera::{opera_net, static_net, RotorMode};
use simkit::SimTime;
use workloads::dists::{FlowSizeDist, Workload};
use workloads::gen::PoissonGen;
use workloads::FlowSpec;

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "fig07_datamining_fct",
    title: "Figure 7: Datamining FCTs across offered loads",
};

/// The five systems of the figure.
const SYSTEMS: [&str; 5] = [
    "opera",
    "rotornet-nonhybrid",
    "rotornet-hybrid",
    "expander",
    "folded-clos",
];

fn gen_flows(hosts: usize, load: f64, window: SimTime, seed: u64) -> Vec<FlowSpec> {
    let mut g = PoissonGen::new(
        FlowSizeDist::of(Workload::Datamining),
        hosts,
        10.0,
        load,
        seed,
    );
    g.flows_until(window)
}

/// Build the figure's tables.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let scale = ctx.args.scale;
    let (window, run_until) = ctx.by_scale(
        (SimTime::from_ms(4), SimTime::from_ms(120)),
        (SimTime::from_ms(40), SimTime::from_ms(600)),
        (SimTime::from_ms(50), SimTime::from_ms(800)),
    );
    let loads: &[f64] = ctx.by_scale(&[0.10], &[0.01, 0.10, 0.25], &[0.01, 0.10, 0.25]);

    // Every system at a given load sees the same flow arrivals, so the
    // workload seed depends on the (load index, replicate) pair only.
    let sweep = Sweep::grid2(&SYSTEMS, loads, |s, l| (s, l));
    let sref = ctx.sweep_ref(&sweep);
    let results = ctx.run_replicated(&sweep, |&(system, load), rc| {
        let load_idx = rc.point.index % loads.len();
        let seed = expt::replicate_seed(
            expt::derive_seed(ctx.runner.base_seed() ^ 42, load_idx as u64),
            rc.rep,
        );
        match system {
            "opera" | "rotornet-nonhybrid" | "rotornet-hybrid" => {
                let mut cfg = opera_cfg(scale);
                cfg.mode = match system {
                    "rotornet-nonhybrid" => RotorMode::RotorNonHybrid,
                    "rotornet-hybrid" => RotorMode::RotorHybrid,
                    _ => RotorMode::Opera,
                };
                let flows = gen_flows(cfg.hosts(), load, window, seed);
                let n = flows.len();
                let mut sim = opera_net::build(cfg, flows);
                sim.run_until(run_until);
                let t = sim.world.logic.tracker();
                (
                    fct_rows(system, load, t),
                    completion_row(system, load, t, n),
                )
            }
            _ => {
                let cfg = if system == "expander" {
                    expander_cfg(scale)
                } else {
                    clos_cfg(scale)
                };
                let flows = gen_flows(static_hosts(&cfg), load, window, seed);
                let n = flows.len();
                let mut sim = static_net::build(cfg, flows);
                sim.run_until(run_until);
                let t = sim.world.logic.tracker();
                (
                    fct_rows(system, load, t),
                    completion_row(system, load, t, n),
                )
            }
        }
    });

    let mut fct =
        RepTableBuilder::new("fct_by_size", &FCT_KEY_COLUMNS, &FCT_METRICS).for_sweep(&sref);
    let mut completion =
        RepTableBuilder::new("completion", &["system", "load"], &COMPLETION_METRICS)
            .for_sweep(&sref);
    for (point, &p) in results.into_iter().zip(&sref.owned) {
        for (rows, (ckey, cmetrics)) in point {
            fct.extend_at(p, rows);
            completion.push_at(p, ckey, &cmetrics);
        }
    }
    vec![fct.build(), completion.build()]
}
