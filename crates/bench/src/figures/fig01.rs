//! Figure 1: flow-count and byte CDFs of the three published workloads.

use expt::{Cell, Ctx, Experiment, MetricFmt, RepTableBuilder, Sweep, Table};
use workloads::dists::{FlowSizeDist, Workload};

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "fig01_flow_dists",
    title: "Figure 1: flow-size distributions (CDF of flows, CDF of bytes)",
};

/// Build the figure's tables. The CDFs are closed-form (no seed
/// dependence), so each workload is integrated once and recorded once
/// per replicate (push_constant): CIs are exactly zero, columns kept
/// for schema uniformity across figures.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    // Quantile-integration resolution for the byte CDF.
    let n: usize = ctx.by_scale(400, 4000, 4000);
    let size_step: usize = ctx.by_scale(2, 1, 1);
    let sizes: Vec<f64> = (4..=36)
        .step_by(size_step)
        .map(|i| 10f64.powf(i as f64 / 4.0))
        .collect();

    let sweep = Sweep::grid1(
        &[Workload::Datamining, Workload::Websearch, Workload::Hadoop],
        |w| w,
    );
    let sref = ctx.sweep_ref(&sweep);
    let per_workload = ctx.run(&sweep, |&w, _| {
        let d = FlowSizeDist::of(w);
        let total: f64 = (0..n)
            .map(|i| d.quantile((i as f64 + 0.5) / n as f64))
            .sum();
        let rows: Vec<(Vec<Cell>, Vec<f64>)> = sizes
            .iter()
            .map(|&s| {
                let flows = d.cdf(s);
                let bytes: f64 = (0..n)
                    .map(|i| d.quantile((i as f64 + 0.5) / n as f64))
                    .filter(|&q| q <= s)
                    .sum::<f64>()
                    / total;
                (
                    vec![Cell::from(format!("{w:?}")), Cell::from(format!("{s:.0}"))],
                    vec![flows, bytes],
                )
            })
            .collect();
        let summary = (
            vec![Cell::from(format!("{w:?}"))],
            vec![d.mean(), d.byte_fraction_above(15e6)],
        );
        (rows, summary)
    });

    let mut cdfs = RepTableBuilder::new(
        "flow_size_cdfs",
        &["workload", "size_bytes"],
        &[("cdf_flows", expt::f as MetricFmt), ("cdf_bytes", expt::f)],
    )
    .for_sweep(&sref);
    let mut summary = RepTableBuilder::new(
        "byte_summary",
        &["workload"],
        &[
            ("mean_bytes", expt::f0 as MetricFmt),
            ("byte_share_above_15mb", expt::f3),
        ],
    )
    .for_sweep(&sref);
    for ((rows, (skey, smetrics)), &p) in per_workload.into_iter().zip(&sref.owned) {
        for (key, metrics) in rows {
            cdfs.push_constant_at(p, key, &metrics, ctx.replicates());
        }
        summary.push_constant_at(p, skey, &smetrics, ctx.replicates());
    }
    vec![cdfs.build(), summary.build()]
}
