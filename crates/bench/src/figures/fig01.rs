//! Figure 1: flow-count and byte CDFs of the three published workloads.

use expt::{Cell, Ctx, Experiment, Sweep, Table};
use workloads::dists::{FlowSizeDist, Workload};

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "fig01_flow_dists",
    title: "Figure 1: flow-size distributions (CDF of flows, CDF of bytes)",
};

/// Build the figure's tables.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    // Quantile-integration resolution for the byte CDF.
    let n: usize = ctx.by_scale(400, 4000, 4000);
    let size_step: usize = ctx.by_scale(2, 1, 1);
    let sizes: Vec<f64> = (4..=36)
        .step_by(size_step)
        .map(|i| 10f64.powf(i as f64 / 4.0))
        .collect();

    let sweep = Sweep::grid1(
        &[Workload::Datamining, Workload::Websearch, Workload::Hadoop],
        |w| w,
    );
    let per_workload = ctx.run(&sweep, |&w, _| {
        let d = FlowSizeDist::of(w);
        let total: f64 = (0..n)
            .map(|i| d.quantile((i as f64 + 0.5) / n as f64))
            .sum();
        let rows: Vec<Vec<Cell>> = sizes
            .iter()
            .map(|&s| {
                let flows = d.cdf(s);
                let bytes: f64 = (0..n)
                    .map(|i| d.quantile((i as f64 + 0.5) / n as f64))
                    .filter(|&q| q <= s)
                    .sum::<f64>()
                    / total;
                vec![
                    Cell::from(format!("{w:?}")),
                    Cell::from(format!("{s:.0}")),
                    expt::f(flows),
                    expt::f(bytes),
                ]
            })
            .collect();
        let summary = vec![
            Cell::from(format!("{w:?}")),
            Cell::from(format!("{:.0}", d.mean())),
            expt::f3(d.byte_fraction_above(15e6)),
        ];
        (rows, summary)
    });

    let mut cdfs = Table::new(
        "flow_size_cdfs",
        &["workload", "size_bytes", "cdf_flows", "cdf_bytes"],
    );
    let mut summary = Table::new(
        "byte_summary",
        &["workload", "mean_bytes", "byte_share_above_15mb"],
    );
    for (rows, srow) in per_workload {
        cdfs.extend(rows);
        summary.push(srow);
    }
    vec![cdfs, summary]
}
