//! Figure 16: average path length vs ToR radix for Opera and for static
//! expanders at several cost points α (Appendix C).

use expt::{Cell, Ctx, Experiment, MetricFmt, RepTableBuilder, Sweep, Table};
use topo::cost::{expander_racks, expander_uplinks};
use topo::expander::{ExpanderParams, ExpanderTopology};
use topo::opera::{OperaParams, OperaTopology};

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "fig16_path_scaling",
    title: "Figure 16: average path length vs ToR radix",
};

const ALPHAS: [f64; 4] = [1.0, 1.4, 2.0, 3.0];

#[derive(Clone, Copy)]
enum Point {
    Opera { k: usize },
    Expander { k: usize, alpha: f64 },
}

/// Build the figure's tables.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let ks: &[usize] = ctx.by_scale(&[12], &[12, 24], &[12, 24, 36, 48]);

    let mut points = Vec::new();
    for &k in ks {
        points.push(Point::Opera { k });
        for &alpha in &ALPHAS {
            points.push(Point::Expander { k, alpha });
        }
    }
    // Topology seeds are fixed, so each point is computed once and
    // recorded once per replicate (push_constant, zero CI).
    let sweep = Sweep::from_points(points);
    let sref = ctx.sweep_ref(&sweep);
    let rows = ctx.run(&sweep, |&p, _| match p {
        Point::Opera { k } => {
            let racks = 3 * k * k / 4;
            let hosts = racks * k / 2;
            let topo = OperaTopology::generate(OperaParams::from_radix(k, racks), 2);
            // Sample a few slices (all slices are statistically
            // identical).
            let mut avg = 0.0;
            let mut max = 0usize;
            let samples = 4.min(topo.slices_per_cycle());
            for i in 0..samples {
                let s = i * topo.slices_per_cycle() / samples;
                let st = topo.slice(s).graph().path_length_stats();
                avg += st.avg / samples as f64;
                max = max.max(st.max);
            }
            (
                vec![Cell::from(k), Cell::from(hosts), Cell::from("opera")],
                vec![avg, max as f64],
            )
        }
        Point::Expander { k, alpha } => {
            let racks = 3 * k * k / 4;
            let hosts = racks * k / 2;
            let u = expander_uplinks(alpha, k).clamp(3, k - 1);
            let r = expander_racks(hosts, k, u);
            let e = ExpanderTopology::generate(
                ExpanderParams {
                    racks: r,
                    uplinks: u,
                    hosts_per_rack: k - u,
                },
                3,
            );
            let st = e.graph().path_length_stats();
            (
                vec![
                    Cell::from(k),
                    Cell::from(hosts),
                    Cell::from(format!("expander_a{alpha}")),
                ],
                vec![st.avg, st.max as f64],
            )
        }
    });

    let mut t = RepTableBuilder::new(
        "path_length_vs_radix",
        &["k", "hosts", "series"],
        &[("avg_path", expt::f3 as MetricFmt), ("max_path", expt::f0)],
    )
    .for_sweep(&sref);
    for ((key, metrics), &pi) in rows.into_iter().zip(&sref.owned) {
        t.push_constant_at(pi, key, &metrics, ctx.replicates());
    }
    vec![t.build()]
}
