//! Figure 11: connectivity loss of an Opera network under random link,
//! ToR, and circuit-switch failures (worst slice and integrated across
//! all slices).

use expt::{Cell, Ctx, Experiment, MetricFmt, RepTableBuilder, Sweep, Table};
use simkit::SimRng;
use topo::failures::{analyze_opera, opera_link_domain, FailureSet};
use topo::opera::{OperaParams, OperaTopology};

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "fig11_fault_tolerance",
    title: "Figure 11: Opera connectivity loss under failures",
};

/// Failure-injection kinds shared with Figure 18.
pub(crate) const KINDS: [&str; 3] = ["links", "tors", "switches"];

/// Opera topology parameters for a failure sweep at the given scale.
pub(crate) fn failure_params(ctx: &Ctx) -> OperaParams {
    ctx.by_scale(
        OperaParams {
            racks: 24,
            uplinks: 4,
            hosts_per_rack: 4,
            groups: 1,
        },
        // Same structure as the paper's network, fewer racks so the
        // slice sweep stays fast.
        OperaParams {
            racks: 48,
            uplinks: 6,
            hosts_per_rack: 6,
            groups: 1,
        },
        OperaParams::example_648(),
    )
}

/// Failure fractions for the given scale.
pub(crate) fn fractions(ctx: &Ctx) -> &'static [f64] {
    ctx.by_scale(
        &[0.05, 0.20],
        &[0.01, 0.025, 0.05, 0.10, 0.20, 0.40],
        &[0.01, 0.025, 0.05, 0.10, 0.20, 0.40],
    )
}

/// Sample a failure set of the given kind and fraction.
pub(crate) fn sample_failures(
    topo: &OperaTopology,
    domain: &[(usize, usize)],
    kind: &str,
    frac: f64,
    rng: &mut SimRng,
) -> FailureSet {
    match kind {
        "links" => FailureSet::sample(
            rng,
            0,
            topo.racks(),
            0,
            topo.switches(),
            (frac * domain.len() as f64).round() as usize,
            domain,
        ),
        "tors" => FailureSet::sample(
            rng,
            (frac * topo.racks() as f64).round() as usize,
            topo.racks(),
            0,
            topo.switches(),
            0,
            domain,
        ),
        _ => FailureSet::sample(
            rng,
            0,
            topo.racks(),
            (frac * topo.switches() as f64).round() as usize,
            topo.switches(),
            0,
            domain,
        ),
    }
}

/// Build the figure's tables.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let params = failure_params(ctx);
    let (topo, _) = OperaTopology::generate_validated(params, 3, 64);
    let domain = opera_link_domain(&topo);
    let fracs = fractions(ctx);

    let sweep = Sweep::grid2(&KINDS, fracs, |k, f| (k, f));
    let sref = ctx.sweep_ref(&sweep);
    let rows = ctx.run_replicated(&sweep, |&(kind, frac), rc| {
        let mut rng = rc.rng();
        let fails = sample_failures(&topo, &domain, kind, frac, &mut rng);
        let r = analyze_opera(&topo, &fails);
        (
            vec![Cell::from(kind), Cell::F64(frac)],
            vec![r.worst_slice_loss, r.all_slices_loss],
        )
    });

    let mut t = RepTableBuilder::new(
        "connectivity_loss",
        &["failure_kind", "fraction"],
        &[
            ("worst_slice_loss", expt::f as MetricFmt),
            ("all_slices_loss", expt::f),
        ],
    )
    .for_sweep(&sref);
    for (point, &p) in rows.into_iter().zip(&sref.owned) {
        t.extend_at(p, point);
    }
    vec![t.build()]
}
