//! Ablation: queue depth vs end-to-end delay (§4.1's key sizing choice).
//!
//! ε — and with it the slice length, the cycle time, and the bulk
//! threshold — is driven by the switch queue depth. Deeper queues trim
//! less but inflate worst-case delay; the paper picks 24 KB (8 full
//! packets + headers) to keep ε at 90 µs. This ablation sweeps the
//! low-latency queue depth on a fixed incast-heavy workload and reports
//! trimming rates, FCTs, and the ε each depth would force.

use expt::{Cell, Ctx, Experiment, MetricFmt, RepTableBuilder, Sweep, Table};
use netsim::fabric::QueueConfig;
use opera::timing::SliceTiming;
use opera::{opera_net, OperaNetConfig};
use simkit::SimTime;
use workloads::FlowSpec;

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "ablate_queue",
    title: "Ablation: low-latency queue depth (incast of 24 x 30KB flows)",
};

/// Build the ablation's table. The incast senders and start jitter are
/// drawn per replicate seed, so the CI columns reflect genuine spread.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let depths_kb: &[u64] = ctx.by_scale(&[6, 24], &[3, 6, 12, 24, 48], &[3, 6, 12, 24, 48]);
    let racks: usize = ctx.by_scale(8, 16, 16);

    let sweep = Sweep::grid1(depths_kb, |kb| kb);
    let sref = ctx.sweep_ref(&sweep);
    let per_point = ctx.run_replicated(&sweep, |&kb, rc| {
        let mut cfg = OperaNetConfig::small_test();
        cfg.params.racks = racks;
        cfg.bulk_threshold = u64::MAX;
        cfg.queues = QueueConfig::builder()
            .caps([12_000, kb * 1000, 24_000])
            .build();
        // Incast: many senders to hosts of one rack.
        let mut rng = rc.rng_stream(3);
        let hosts = cfg.hosts();
        let mut flows = Vec::new();
        for i in 0..24 {
            flows.push(FlowSpec {
                src: 8 + rng.index(hosts - 8), // racks 2..
                dst: i % 4,                    // rack 0
                size: 30_000,
                start: SimTime::from_us(rng.below(20)),
            });
        }
        let mut sim = opera_net::build(cfg, flows);
        sim.world.logic.set_hello_enabled(false);
        sim.run_until(SimTime::from_ms(60));
        let t = sim.world.logic.tracker();
        let s = expt::summarize(
            t.flows()
                .iter()
                .filter_map(|f| f.fct())
                .map(|x| x.as_us_f64()),
        );
        // The ε this queue depth forces at paper parameters (5 hops,
        // 10G, 500ns propagation), per §4.1's derivation.
        let eps = SliceTiming::derive(
            5,
            kb * 1000 + 12_000,
            1500,
            10.0,
            SimTime::from_ns(500),
            SimTime::from_us(10),
        )
        .epsilon
        .as_us_f64();
        (
            vec![Cell::from(kb), Cell::from(format!("{eps:.0}"))],
            vec![
                sim.world.fabric.counters.trimmed as f64,
                s.mean,
                s.max,
                t.completed() as f64,
                t.len() as f64,
            ],
        )
    });

    // Shape: deeper queues trim less but force a longer ε (and thus a
    // longer cycle and a higher bulk threshold); 12-24 KB balances both,
    // which is exactly the paper's choice (§4.1).
    let mut out = RepTableBuilder::new(
        "queue_depth",
        &["queue_kb", "forced_epsilon_us"],
        &[
            ("trimmed_pkts", expt::f2 as MetricFmt),
            ("avg_fct_us", expt::f2),
            ("max_fct_us", expt::f2),
            ("completed", expt::f2),
            ("offered", expt::f2),
        ],
    )
    .for_sweep(&sref);
    for (point, &p) in per_point.into_iter().zip(&sref.owned) {
        for (key, metrics) in point {
            out.push_at(p, key, &metrics);
        }
    }
    vec![out.build()]
}
