//! Figure 8: delivered throughput over time for an all-to-all shuffle.
//! Opera carries every flow over direct circuits (application bulk
//! tagging, §3.4); the static networks run NDP with staggered starts.

use crate::{clos_cfg, expander_cfg, opera_cfg, static_hosts};
use expt::{Cell, Ctx, Experiment, Sweep, Table};
use netsim::FlowTracker;
use opera::{opera_net, static_net};
use simkit::SimTime;
use workloads::gen::ScenarioGen;

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "fig08_shuffle_throughput",
    title: "Figure 8: 100KB all-to-all shuffle, throughput vs time",
};

const SYSTEMS: [&str; 3] = ["opera", "expander", "folded-clos"];

fn series_rows(label: &str, series: &[(SimTime, f64)], hosts: usize) -> Vec<Vec<Cell>> {
    // Normalize to aggregate host capacity (hosts × 10G).
    let cap = hosts as f64 * 10e9;
    series
        .iter()
        .map(|(t, bytes_per_sec)| {
            vec![
                Cell::from(label),
                Cell::from(format!("{:.1}", t.as_ms_f64())),
                expt::f(bytes_per_sec * 8.0 / cap),
            ]
        })
        .collect()
}

fn summary_row(label: &str, tracker: &FlowTracker, offered: usize) -> Vec<Cell> {
    let fcts = tracker
        .flows()
        .iter()
        .filter_map(|f| f.fct())
        .map(|x| x.as_ms_f64());
    let s = expt::summarize(fcts);
    vec![
        Cell::from(label),
        Cell::from(tracker.completed()),
        Cell::from(offered),
        expt::f2(s.p99),
        expt::f2(s.mean),
    ]
}

/// Build the figure's tables.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let scale = ctx.args.scale;
    let flow_size: u64 = ctx.by_scale(30_000, 100_000, 100_000);
    let bin = SimTime::from_ms(1);
    let horizon = SimTime::from_ms(ctx.by_scale(60, 150, 300));

    let sweep = Sweep::grid1(&SYSTEMS, |s| s);
    let results = ctx.run(&sweep, |&system, pt| {
        if system == "opera" {
            // All flows tagged bulk, all start together.
            let mut cfg = opera_cfg(scale);
            cfg.bulk_threshold = 0; // application tags everything bulk
            let hosts = cfg.hosts();
            let flows = ScenarioGen::shuffle(hosts, flow_size, SimTime::ZERO);
            let total = flows.len();
            let mut sim = opera_net::build_with_throughput(cfg, flows, bin);
            sim.run_until(horizon);
            let t = sim.world.logic.tracker();
            (
                series_rows(system, &t.throughput().unwrap().rate_per_sec(), hosts),
                summary_row(system, t, total),
            )
        } else {
            // Static networks: staggered starts over 10 ms.
            let cfg = if system == "expander" {
                expander_cfg(scale)
            } else {
                clos_cfg(scale)
            };
            let hosts = static_hosts(&cfg);
            let mut rng = pt.rng();
            let flows =
                ScenarioGen::shuffle_staggered(hosts, flow_size, SimTime::from_ms(10), &mut rng);
            let total = flows.len();
            let mut sim = static_net::build_with_throughput(cfg, flows, bin);
            sim.run_until(horizon);
            let t = sim.world.logic.tracker();
            (
                series_rows(system, &t.throughput().unwrap().rate_per_sec(), hosts),
                summary_row(system, t, total),
            )
        }
    });

    let mut series = Table::new(
        "throughput_timeseries",
        &["network", "time_ms", "normalized_throughput"],
    );
    let mut summary = Table::new(
        "completion_summary",
        &[
            "network",
            "completed",
            "offered",
            "p99_fct_ms",
            "mean_fct_ms",
        ],
    );
    for (rows, srow) in results {
        series.extend(rows);
        summary.push(srow);
    }
    vec![series, summary]
}
