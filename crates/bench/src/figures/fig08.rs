//! Figure 8: delivered throughput over time for an all-to-all shuffle.
//! Opera carries every flow over direct circuits (application bulk
//! tagging, §3.4); the static networks run NDP with staggered starts.

use crate::{clos_cfg, expander_cfg, opera_cfg, static_hosts};
use expt::{Cell, Ctx, Experiment, MetricFmt, RepTableBuilder, Sweep, Table};
use netsim::FlowTracker;
use opera::{opera_net, static_net};
use simkit::SimTime;
use workloads::gen::ScenarioGen;

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "fig08_shuffle_throughput",
    title: "Figure 8: 100KB all-to-all shuffle, throughput vs time",
};

const STATIC_SYSTEMS: [&str; 2] = ["expander", "folded-clos"];

fn series_rows(label: &str, series: &[(SimTime, f64)], hosts: usize) -> Vec<(Vec<Cell>, Vec<f64>)> {
    // Normalize to aggregate host capacity (hosts × 10G).
    let cap = hosts as f64 * 10e9;
    series
        .iter()
        .map(|(t, bytes_per_sec)| {
            (
                vec![
                    Cell::from(label),
                    Cell::from(format!("{:.1}", t.as_ms_f64())),
                ],
                vec![bytes_per_sec * 8.0 / cap],
            )
        })
        .collect()
}

fn summary_row(label: &str, tracker: &FlowTracker, offered: usize) -> (Vec<Cell>, Vec<f64>) {
    let fcts = tracker
        .flows()
        .iter()
        .filter_map(|f| f.fct())
        .map(|x| x.as_ms_f64());
    let s = expt::summarize(fcts);
    (
        vec![Cell::from(label)],
        vec![tracker.completed() as f64, offered as f64, s.p99, s.mean],
    )
}

/// Build the figure's tables.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let scale = ctx.args.scale;
    let flow_size: u64 = ctx.by_scale(30_000, 100_000, 100_000);
    let bin = SimTime::from_ms(1);
    let horizon = SimTime::from_ms(ctx.by_scale(60, 150, 300));
    let reps = ctx.replicates();

    let sweep = Sweep::grid1(&STATIC_SYSTEMS, |s| s);
    let sref = ctx.sweep_ref(&sweep);
    let mut series = RepTableBuilder::new(
        "throughput_timeseries",
        &["network", "time_ms"],
        &[("normalized_throughput", expt::f as MetricFmt)],
    )
    .for_sweep(&sref);
    let mut summary = RepTableBuilder::new(
        "completion_summary",
        &["network"],
        &[
            ("completed", expt::f2 as MetricFmt),
            ("offered", expt::f2),
            ("p99_fct_ms", expt::f2),
            ("mean_fct_ms", expt::f2),
        ],
    )
    .for_sweep(&sref);

    // Opera is seed-independent here (application tags every flow bulk,
    // all start together): one simulation, recorded once per replicate.
    {
        let mut cfg = opera_cfg(scale);
        cfg.bulk_threshold = 0;
        let hosts = cfg.hosts();
        let flows = ScenarioGen::shuffle(hosts, flow_size, SimTime::ZERO);
        let total = flows.len();
        let mut sim = opera_net::build_with_throughput(cfg, flows, bin);
        sim.run_until(horizon);
        let t = sim.world.logic.tracker();
        for (key, metrics) in series_rows("opera", &t.throughput().unwrap().rate_per_sec(), hosts) {
            series.push_constant(key, &metrics, reps);
        }
        let (skey, smetrics) = summary_row("opera", t, total);
        summary.push_constant(skey, &smetrics, reps);
    }

    // Static networks: staggered random starts, re-drawn per replicate.
    let results = ctx.run_replicated(&sweep, |&system, rc| {
        let cfg = if system == "expander" {
            expander_cfg(scale)
        } else {
            clos_cfg(scale)
        };
        let hosts = static_hosts(&cfg);
        let mut rng = rc.rng();
        let flows =
            ScenarioGen::shuffle_staggered(hosts, flow_size, SimTime::from_ms(10), &mut rng);
        let total = flows.len();
        let mut sim = static_net::build_with_throughput(cfg, flows, bin);
        sim.run_until(horizon);
        let t = sim.world.logic.tracker();
        (
            t.throughput().unwrap().rate_per_sec(),
            hosts,
            summary_row(system, t, total),
        )
    });

    // Zip owned results with their *global* point index — under
    // sharding this run sees a subset of STATIC_SYSTEMS, so indexing
    // the axis by global point (not by result position) is what keeps
    // each shard's rows labeled with the system it actually simulated.
    for (point, &p) in results.into_iter().zip(&sref.owned) {
        let system = STATIC_SYSTEMS[p];
        // Replicates stop emitting bins after their last delivery; a
        // replicate that finished early genuinely delivered zero in the
        // later bins, so pad its tail with zeros — otherwise tail-bin
        // means average only the slow replicates and overstate the tail.
        let times: Vec<SimTime> = point
            .iter()
            .max_by_key(|(s, _, _)| s.len())
            .map(|(s, _, _)| s.iter().map(|&(tm, _)| tm).collect())
            .unwrap_or_default();
        for (raw, hosts, (skey, smetrics)) in point {
            let padded: Vec<(SimTime, f64)> = times
                .iter()
                .enumerate()
                .map(|(i, &tm)| (tm, raw.get(i).map_or(0.0, |&(_, v)| v)))
                .collect();
            series.extend_at(p, series_rows(system, &padded, hosts));
            summary.push_at(p, skey, &smetrics);
        }
    }
    vec![series.build(), summary.build()]
}
