//! Ablations of Opera's key design choices (DESIGN.md §"Key design
//! decisions"):
//!
//! 1. **Offset vs simultaneous reconfiguration** (§3.1.1, Figure 3):
//!    fraction of time with full rack-to-rack reachability.
//! 2. **Expansion needs u−1 ≥ 3 matchings** (§3.1.2): slice connectivity
//!    and diameter as the switch count shrinks.
//! 3. **Bulk threshold** (§4.1): FCT of a mid-size flow when classified
//!    bulk vs low-latency.
//! 4. **VLB for skew** (§4.2.2): hot-rack drain time with and without
//!    two-hop Valiant.

use expt::{Cell, Ctx, Experiment, MetricFmt, RepTableBuilder, Sweep, Table};
use opera::{opera_net, OperaNetConfig, SliceTiming};
use simkit::SimTime;
use topo::opera::{OperaParams, OperaTopology};
use workloads::FlowSpec;

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "ablate_design",
    title: "Ablations: offset reconfig, uplink count, bulk threshold, VLB",
};

/// Build all four ablation tables.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    vec![offset(ctx), uplink_count(ctx), threshold(ctx), vlb(ctx)]
}

/// 1. With offset reconfiguration at most one switch is down and the
///    remaining u−1 matchings keep the network connected; simultaneous
///    reconfiguration leaves *zero* circuits during every reconfiguration
///    window — connectivity drops to nothing r/slice of the time.
///    Closed-form at a fixed topology seed, so replicate CIs are zero.
fn offset(ctx: &Ctx) -> Table {
    let t = SliceTiming::paper_default();
    let params = ctx.by_scale(
        OperaParams {
            racks: 24,
            uplinks: 4,
            hosts_per_rack: 4,
            groups: 1,
        },
        OperaParams::example_648(),
        OperaParams::example_648(),
    );
    let (topo, _) = OperaTopology::generate_validated(params, 1, 64);
    let connected_slices = (0..topo.slices_per_cycle())
        .filter(|&s| topo.slice(s).graph().is_connected())
        .count();
    let offset_up = connected_slices as f64 / topo.slices_per_cycle() as f64;
    // Simultaneous: all switches reconfigure together; the network is
    // fully dark for r out of every matching period.
    let simultaneous_up = 1.0 - t.reconfig.as_ns() as f64 / t.slice().as_ns() as f64;

    let mut out = RepTableBuilder::new(
        "offset_vs_simultaneous",
        &["strategy", "disruption"],
        &[("fraction_fully_connected", expt::f as MetricFmt)],
    );
    out.push_constant(
        vec![
            Cell::from("offset"),
            Cell::from("none (expander always available)"),
        ],
        &[offset_up],
        ctx.replicates(),
    );
    out.push_constant(
        vec![
            Cell::from("simultaneous"),
            Cell::from(format!(
                "whole-network outage every slice ({} of {})",
                t.reconfig,
                t.slice()
            )),
        ],
        &[simultaneous_up],
        ctx.replicates(),
    );
    out.build()
}

/// 2. Slice expansion vs number of circuit switches. The topology seed
///    is fixed (paper construction): computed once per point, recorded
///    once per replicate, zero CI.
fn uplink_count(ctx: &Ctx) -> Table {
    let us: &[usize] = ctx.by_scale(&[3, 6], &[3, 4, 6, 8], &[3, 4, 6, 8]);
    let racks: usize = ctx.by_scale(48, 96, 96);
    let sweep = Sweep::grid1(us, |u| u);
    let sref = ctx.sweep_ref(&sweep);
    let per_point = ctx.run(&sweep, |&u, _| {
        let params = OperaParams {
            racks,
            uplinks: u,
            hosts_per_rack: 4,
            groups: 1,
        };
        let topo = OperaTopology::generate(params, 7);
        let mut connected = 0usize;
        let mut avg = 0.0;
        let mut max = 0usize;
        let samples = 12.min(topo.slices_per_cycle());
        for i in 0..samples {
            let s = i * topo.slices_per_cycle() / samples;
            let g = topo.slice(s).graph();
            if g.is_connected() {
                connected += 1;
            }
            let st = g.path_length_stats();
            avg += st.avg / samples as f64;
            max = max.max(st.max);
        }
        (
            vec![Cell::from(u), Cell::from(u - 1)],
            vec![connected as f64, samples as f64, avg, max as f64],
        )
    });
    let mut out = RepTableBuilder::new(
        "uplink_count",
        &["uplinks", "active_matchings"],
        &[
            ("connected_slices", expt::f0 as MetricFmt),
            ("sampled_slices", expt::f0),
            ("avg_path", expt::f2),
            ("max_path", expt::f2),
        ],
    )
    .for_sweep(&sref);
    for ((key, metrics), &p) in per_point.into_iter().zip(&sref.owned) {
        out.push_constant_at(p, key, &metrics, ctx.replicates());
    }
    out.build()
}

/// 3. The same 2 MB flow serviced as bulk vs low-latency. The single
///    flow is fixed: one simulation per case, recorded once per
///    replicate, zero CI.
fn threshold(ctx: &Ctx) -> Table {
    let racks: usize = ctx.by_scale(8, 16, 16);
    let cases = [("bulk", 1_000u64), ("low_latency", u64::MAX)];
    let sweep = Sweep::grid1(&cases, |c| c);
    let sref = ctx.sweep_ref(&sweep);
    let per_point = ctx.run(&sweep, |&(label, bulk_threshold), _| {
        let mut cfg = OperaNetConfig::small_test();
        cfg.params.racks = racks;
        cfg.bulk_threshold = bulk_threshold;
        let dst = cfg.hosts() - 2;
        let flows = vec![FlowSpec {
            src: 1,
            dst,
            size: 2_000_000,
            start: SimTime::ZERO,
        }];
        let mut sim = opera_net::build(cfg, flows);
        sim.run_until(SimTime::from_ms(100));
        let t = sim.world.logic.tracker();
        let fct = t.get(0).fct().map(|x| x.as_ms_f64()).unwrap_or(f64::NAN);
        let note = match label {
            "bulk" => "waits for circuits, zero tax",
            _ => "immediate, pays expander tax",
        };
        (vec![Cell::from(label), Cell::from(note)], vec![fct])
    });
    // Shape: at this size the two are comparable; the threshold is the
    // size where a cycle's wait amortizes (15 MB at paper scale, §4.1).
    let mut out = RepTableBuilder::new(
        "bulk_threshold",
        &["class", "note"],
        &[("fct_ms", expt::f3 as MetricFmt)],
    )
    .for_sweep(&sref);
    for ((key, metrics), &p) in per_point.into_iter().zip(&sref.owned) {
        out.push_constant_at(p, key, &metrics, ctx.replicates());
    }
    out.build()
}

/// 4. Hot-rack drain with and without Valiant load balancing: rack 0
///    sends 1 MB to each host of rack 1. VLB sprays the hot pair over
///    idle circuits (RotorLB), cutting drain time roughly (u−1)× for a
///    single hot destination. Flow start jitter is drawn per replicate
///    seed, so the CI columns reflect genuine spread.
fn vlb(ctx: &Ctx) -> Table {
    let racks: usize = ctx.by_scale(8, 16, 16);
    let sweep = Sweep::grid1(&[true, false], |b| b);
    let sref = ctx.sweep_ref(&sweep);
    let per_point = ctx.run_replicated(&sweep, |&allow, rc| {
        let mut cfg = OperaNetConfig::small_test();
        cfg.params.racks = racks;
        cfg.allow_vlb = allow;
        cfg.bulk_threshold = 0;
        let mut rng = rc.rng_stream(4);
        let mut flows = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                flows.push(FlowSpec {
                    src: i,
                    dst: 4 + j,
                    size: 1_000_000,
                    start: SimTime::from_us(rng.below(100)),
                });
            }
        }
        let mut sim = opera_net::build(cfg, flows);
        sim.run_until(SimTime::from_ms(40));
        let t = sim.world.logic.tracker();
        let done = t.completed() as f64 / t.len() as f64;
        let s = expt::summarize(
            t.flows()
                .iter()
                .filter_map(|f| f.fct())
                .map(|x| x.as_ms_f64()),
        );
        (vec![Cell::from(allow)], vec![done, s.mean])
    });
    let mut out = RepTableBuilder::new(
        "vlb_under_skew",
        &["vlb"],
        &[
            ("completion_fraction_at_40ms", expt::f2 as MetricFmt),
            ("avg_bulk_fct_ms", expt::f2),
        ],
    )
    .for_sweep(&sref);
    for (point, &p) in per_point.into_iter().zip(&sref.owned) {
        for (key, metrics) in point {
            out.push_at(p, key, &metrics);
        }
    }
    out.build()
}
