//! Table 1: routing-state entries and switch-memory utilization for
//! Opera rulesets at various datacenter sizes (§6.2).

use expt::{Cell, Ctx, Experiment, MetricFmt, RepTableBuilder, Sweep, Table};
use opera::ruleset::{ruleset_for, table1_rows};

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "table1_ruleset",
    title: "Table 1: Opera ruleset sizes",
};

/// The paper's published (entries, utilization %) values, row-aligned
/// with [`table1_rows`].
const PAPER: [(u64, f64); 6] = [
    (12_096, 0.7),
    (65_268, 3.8),
    (276_120, 16.2),
    (600_576, 35.3),
    (1_032_192, 60.7),
    (1_461_600, 85.9),
];

/// Build the table. Ruleset sizes are closed-form (no seed dependence),
/// so each size is computed once and recorded once per replicate
/// (push_constant): CIs are exactly zero, columns kept for schema
/// uniformity across figures.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let sizes = table1_rows();
    let sweep = Sweep::grid1(&sizes, |rc| rc);
    let sref = ctx.sweep_ref(&sweep);
    let per_point = ctx.run(&sweep, |&(racks, uplinks), pt| {
        let r = ruleset_for(racks, uplinks);
        let (paper_entries, paper_util) = PAPER.get(pt.index).copied().unwrap_or((0, 0.0));
        (
            vec![Cell::from(r.racks), Cell::from(r.uplinks)],
            vec![
                r.entries as f64,
                r.utilization_pct,
                paper_entries as f64,
                paper_util,
            ],
        )
    });

    let mut t = RepTableBuilder::new(
        "ruleset_sizes",
        &["racks", "uplinks"],
        &[
            ("entries", expt::f0 as MetricFmt),
            ("util_pct", expt::f2),
            ("paper_entries", expt::f0),
            ("paper_util_pct", expt::f2),
        ],
    )
    .for_sweep(&sref);
    for ((key, metrics), &p) in per_point.into_iter().zip(&sref.owned) {
        t.push_constant_at(p, key, &metrics, ctx.replicates());
    }
    vec![t.build()]
}
