//! Table 1: routing-state entries and switch-memory utilization for
//! Opera rulesets at various datacenter sizes (§6.2).

use expt::{Cell, Ctx, Experiment, Sweep, Table};
use opera::ruleset::{ruleset_for, table1_rows};

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "table1_ruleset",
    title: "Table 1: Opera ruleset sizes",
};

/// The paper's published (entries, utilization %) values, row-aligned
/// with [`table1_rows`].
const PAPER: [(u64, f64); 6] = [
    (12_096, 0.7),
    (65_268, 3.8),
    (276_120, 16.2),
    (600_576, 35.3),
    (1_032_192, 60.7),
    (1_461_600, 85.9),
];

/// Build the table.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let sizes = table1_rows();
    let sweep = Sweep::grid1(&sizes, |rc| rc);
    let rows = ctx.run(&sweep, |&(racks, uplinks), pt| {
        let r = ruleset_for(racks, uplinks);
        let (paper_entries, paper_util) = PAPER.get(pt.index).copied().unwrap_or((0, 0.0));
        vec![
            Cell::from(r.racks),
            Cell::from(r.uplinks),
            Cell::from(r.entries),
            expt::f2(r.utilization_pct),
            Cell::from(paper_entries),
            expt::f2(paper_util),
        ]
    });

    let mut t = Table::new(
        "ruleset_sizes",
        &[
            "racks",
            "uplinks",
            "entries",
            "util_pct",
            "paper_entries",
            "paper_util_pct",
        ],
    );
    t.extend(rows);
    vec![t]
}
