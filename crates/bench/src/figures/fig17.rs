//! Figure 17 / Appendix D: spectral gap vs path length for Opera's
//! topology slices compared to static expanders of varying degree, all
//! on k = 12 ToRs with ~650 hosts.

use expt::{Cell, Ctx, Experiment, MetricFmt, RepTableBuilder, Sweep, Table};
use topo::expander::{ExpanderParams, ExpanderTopology};
use topo::opera::{OperaParams, OperaTopology};
use topo::spectral::adjacency_spectrum;

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "fig17_spectral_gap",
    title: "Figure 17: spectral gap vs path length (Opera slices vs static expanders)",
};

#[derive(Clone, Copy)]
enum Point {
    OperaSlice(usize),
    StaticU(usize),
}

/// Build the figure's tables.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let (params, slice_step, us, iters): (OperaParams, usize, &[usize], usize) = ctx.by_scale(
        (
            OperaParams {
                racks: 24,
                uplinks: 4,
                hosts_per_rack: 4,
                groups: 1,
            },
            8,
            &[4, 5],
            100,
        ),
        (OperaParams::example_648(), 6, &[5, 6, 7, 8], 300),
        (OperaParams::example_648(), 6, &[5, 6, 7, 8], 300),
    );
    // The static expanders must be same-radix, same-host-count peers of
    // the scale-selected Opera network (paper: k = 12, ~650 hosts).
    let radix = params.uplinks + params.hosts_per_rack;

    // Opera: slices of the cycle (sampled to keep it fast).
    let (topo, _) = OperaTopology::generate_validated(params, 1, 64);
    let mut points: Vec<Point> = (0..topo.slices_per_cycle())
        .step_by(slice_step)
        .map(Point::OperaSlice)
        .collect();
    // Static expanders with u uplinks (more uplinks -> fewer hosts/rack
    // -> more racks for the same host count).
    points.extend(us.iter().map(|&u| Point::StaticU(u)));
    let hosts_target = params.racks * params.hosts_per_rack;

    // Everything below is seed-independent (fixed topology seeds), so
    // each point is computed once and recorded once per replicate
    // (push_constant): zero CI, none of the spectral work repeated.
    let sweep = Sweep::from_points(points);
    let sref = ctx.sweep_ref(&sweep);
    let rows = ctx.run(&sweep, |&p, _| match p {
        Point::OperaSlice(s) => {
            let g = topo.slice(s).graph();
            let sp = adjacency_spectrum(&g, iters, 40 + s as u64);
            let st = g.path_length_stats();
            (
                vec![Cell::from("opera_slice"), Cell::from(s)],
                vec![
                    sp.gap(),
                    st.avg,
                    st.max as f64,
                    sp.lambda2,
                    sp.ramanujan_bound(),
                ],
            )
        }
        Point::StaticU(u) => {
            let d = radix - u;
            let racks = {
                let r = (hosts_target + 2).div_ceil(d);
                r + r % 2
            };
            let e = ExpanderTopology::generate(
                ExpanderParams {
                    racks,
                    uplinks: u,
                    hosts_per_rack: d,
                },
                9,
            );
            let sp = adjacency_spectrum(e.graph(), iters, 70 + u as u64);
            let st = e.graph().path_length_stats();
            (
                vec![Cell::from(format!("static_u{u}")), Cell::from(u)],
                vec![
                    sp.gap(),
                    st.avg,
                    st.max as f64,
                    sp.lambda2,
                    sp.ramanujan_bound(),
                ],
            )
        }
    });

    let mut t = RepTableBuilder::new(
        "spectral_gap",
        &["series", "index"],
        &[
            ("gap", expt::f3 as MetricFmt),
            ("avg_path", expt::f3),
            ("max_path", expt::f0),
            ("lambda2", expt::f3),
            ("ramanujan_bound", expt::f3),
        ],
    )
    .for_sweep(&sref);
    for ((key, metrics), &pi) in rows.into_iter().zip(&sref.owned) {
        t.push_constant_at(pi, key, &metrics, ctx.replicates());
    }
    vec![t.build()]
}
