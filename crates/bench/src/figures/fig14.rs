//! Figure 14: relative cycle time vs ToR radix, with and without
//! circuit-switch grouping (Appendix B).

use expt::{Cell, Ctx, Experiment, MetricFmt, RepTableBuilder, Sweep, Table};
use opera::timing::{cycle_slices_grouped, cycle_slices_ungrouped, SliceTiming};

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "fig14_cycle_time_scaling",
    title: "Figure 14: relative cycle time vs ToR radix (normalized to k=12)",
};

/// Build the figure's tables (closed-form timing arithmetic; replicate
/// CIs are exactly zero).
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let ks: Vec<usize> = if ctx.quick() {
        (12..=36).step_by(8).collect()
    } else {
        (12..=60).step_by(4).collect()
    };
    let base = cycle_slices_ungrouped(12) as f64;
    let t = SliceTiming::paper_default();

    let sweep = Sweep::grid1(&ks, |k| k);
    let sref = ctx.sweep_ref(&sweep);
    let rows = ctx.run(&sweep, |&k, _| {
        let ungrouped = cycle_slices_ungrouped(k);
        let grouped = cycle_slices_grouped(k, 6.min(k / 2));
        (
            vec![Cell::from(k), Cell::from(3 * k * k / 4)],
            vec![
                ungrouped as f64 / base,
                grouped as f64 / base,
                t.cycle(grouped).as_ms_f64(),
            ],
        )
    });

    let mut cycle = RepTableBuilder::new(
        "cycle_time",
        &["k", "racks"],
        &[
            ("no_groups", expt::f2 as MetricFmt),
            ("groups_of_6", expt::f2),
            ("cycle_ms_grouped", expt::f2),
        ],
    )
    .for_sweep(&sref);
    for ((key, metrics), &p) in rows.into_iter().zip(&sref.owned) {
        cycle.push_constant_at(p, key, &metrics, ctx.replicates());
    }

    // The k=64-class takeaway: grouped cycle grows ~6x from k=12
    // (paper: "factor of 6"), and the bulk threshold scales accordingly.
    let mut thresholds = RepTableBuilder::new(
        "bulk_threshold_mb",
        &["config"],
        &[("threshold_mb", expt::f0 as MetricFmt)],
    );
    thresholds.push_constant(
        vec![Cell::from("k60_grouped")],
        &[t.bulk_threshold_bytes(cycle_slices_grouped(60, 6), 10.0) as f64 / 1e6],
        ctx.replicates(),
    );
    thresholds.push_constant(
        vec![Cell::from("k12_ungrouped")],
        &[t.bulk_threshold_bytes(cycle_slices_ungrouped(12), 10.0) as f64 / 1e6],
        ctx.replicates(),
    );
    vec![cycle.build(), thresholds.build()]
}
