//! Figure 20 / Appendix E: connectivity loss and path stretch of the
//! u=7 static expander under link and ToR failures.

use expt::{Cell, Ctx, Experiment, MetricFmt, RepTableBuilder, Sweep, Table};
use topo::expander::{ExpanderParams, ExpanderTopology};
use topo::failures::{analyze_static, FailureSet};

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "fig20_expander_failures",
    title: "Figure 20: u=7 expander under failures",
};

/// Build the figure's tables. Failure sets are sampled per replicate
/// seed, so the CI columns reflect genuine sampling spread.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let params = ctx.by_scale(
        ExpanderParams {
            racks: 16,
            uplinks: 4,
            hosts_per_rack: 3,
        },
        ExpanderParams::example_650(),
        ExpanderParams::example_650(),
    );
    let exp = ExpanderTopology::generate(params, 20);
    let g = exp.graph();
    let tors: Vec<usize> = (0..exp.racks()).collect();
    // Undirected link domain.
    let mut domain = Vec::new();
    for a in 0..g.len() {
        for e in g.edges(a) {
            if a < e.to {
                domain.push((a, e.to));
            }
        }
    }
    let fracs: &[f64] = ctx.by_scale(
        &[0.05, 0.20],
        &[0.01, 0.025, 0.05, 0.10, 0.20, 0.40],
        &[0.01, 0.025, 0.05, 0.10, 0.20, 0.40],
    );

    let kinds = ["links", "tors"];
    let sweep = Sweep::grid2(&kinds, fracs, |k, f| (k, f));
    let sref = ctx.sweep_ref(&sweep);
    let per_point = ctx.run_replicated(&sweep, |&(kind, frac), rc| {
        let mut rng = rc.rng();
        let fails = match kind {
            "links" => {
                let n = (frac * domain.len() as f64).round() as usize;
                let mut all: Vec<usize> = (0..domain.len()).collect();
                rng.shuffle(&mut all);
                FailureSet {
                    links: all[..n].iter().map(|&i| domain[i]).collect(),
                    ..Default::default()
                }
            }
            _ => {
                let n = (frac * exp.racks() as f64).round() as usize;
                let mut pool = tors.clone();
                rng.shuffle(&mut pool);
                FailureSet {
                    tors: pool[..n].to_vec(),
                    ..Default::default()
                }
            }
        };
        let r = analyze_static(g, &tors, &fails);
        (
            vec![Cell::from(kind), Cell::F64(frac)],
            vec![r.worst_slice_loss, r.avg_path_len, r.max_path_len as f64],
        )
    });

    let mut t = RepTableBuilder::new(
        "expander_failures",
        &["failure_kind", "fraction"],
        &[
            ("connectivity_loss", expt::f as MetricFmt),
            ("avg_path", expt::f3),
            ("worst_path", expt::f2),
        ],
    )
    .for_sweep(&sref);
    for (point, &p) in per_point.into_iter().zip(&sref.owned) {
        for (key, metrics) in point {
            t.push_at(p, key, &metrics);
        }
    }
    vec![t.build()]
}
