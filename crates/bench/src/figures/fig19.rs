//! Figure 19 / Appendix E: connectivity loss and path stretch of the
//! 3:1 folded Clos under link and switch failures.

use expt::{Cell, Ctx, Experiment, MetricFmt, RepTableBuilder, Sweep, Table};
use topo::clos::{ClosParams, ClosTopology};
use topo::failures::{analyze_static, clos_link_domain, FailureSet};

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "fig19_clos_failures",
    title: "Figure 19: 3:1 folded Clos under failures",
};

/// Build the figure's tables.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let params = ctx.by_scale(
        ClosParams {
            radix: 8,
            oversubscription: 3,
        },
        ClosParams::example_648(),
        ClosParams::example_648(),
    );
    let clos = ClosTopology::generate(params);
    let tors: Vec<usize> = (0..clos.tors()).collect();
    let domain = clos_link_domain(&clos);
    let switches = clos.graph().len(); // all switch nodes can fail
    let fracs: &[f64] = ctx.by_scale(
        &[0.05, 0.20],
        &[0.01, 0.025, 0.05, 0.10, 0.20, 0.40],
        &[0.01, 0.025, 0.05, 0.10, 0.20, 0.40],
    );

    let kinds = ["links", "switches"];
    let sweep = Sweep::grid2(&kinds, fracs, |k, f| (k, f));
    let sref = ctx.sweep_ref(&sweep);
    let rows = ctx.run_replicated(&sweep, |&(kind, frac), rc| {
        let mut rng = rc.rng();
        let fails = match kind {
            "links" => {
                let n = (frac * domain.len() as f64).round() as usize;
                let mut all: Vec<usize> = (0..domain.len()).collect();
                rng.shuffle(&mut all);
                FailureSet {
                    links: all[..n].iter().map(|&i| domain[i]).collect(),
                    ..Default::default()
                }
            }
            _ => {
                // Switch failures: sample among non-ToR switches (aggs +
                // cores), as the paper's ToR failures are separate.
                let aggs_cores: Vec<usize> = (clos.tors()..switches).collect();
                let n = (frac * aggs_cores.len() as f64).round() as usize;
                let mut pool = aggs_cores.clone();
                rng.shuffle(&mut pool);
                FailureSet {
                    switches: pool[..n].to_vec(),
                    ..Default::default()
                }
            }
        };
        let r = analyze_static(clos.graph(), &tors, &fails);
        (
            vec![Cell::from(kind), Cell::F64(frac)],
            vec![r.worst_slice_loss, r.avg_path_len, r.max_path_len as f64],
        )
    });

    let mut t = RepTableBuilder::new(
        "clos_failures",
        &["failure_kind", "fraction"],
        &[
            ("connectivity_loss", expt::f as MetricFmt),
            ("avg_path", expt::f3),
            ("worst_path", expt::f2),
        ],
    )
    .for_sweep(&sref);
    for (point, &p) in rows.into_iter().zip(&sref.owned) {
        t.extend_at(p, point);
    }
    vec![t.build()]
}
