//! Declarative figure/table definitions on top of the [`expt`] harness.
//!
//! Each module exports an [`expt::Experiment`] (whose `name` matches the
//! binary name and the `results/<name>/` output directory) and a
//! `tables(&Ctx) -> Vec<Table>` builder. The binaries in `src/bin/` are
//! one-line `expt::run_main` calls; [`all`] is the registry CI and tests
//! iterate.

pub mod ablate_design;
pub mod ablate_queue;
pub mod ablate_transport;
pub mod fig01;
pub mod fig04;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod table1;
pub mod table2;

use expt::golden::{bless_driver, compare_driver, Drift, GoldenSpec};
use expt::{Cell, Ctx, Experiment, ExptArgs, MetricFmt, RunMeta, Scale, Table};
use netsim::FlowTracker;
use opera::harness::FctStats;
use std::io;
use std::path::{Path, PathBuf};

/// A figure's table builder.
pub type BuildFn = fn(&Ctx) -> Vec<Table>;

/// Every driver definition, in figure order.
pub fn all() -> Vec<(Experiment, BuildFn)> {
    vec![
        (fig01::EXPERIMENT, fig01::tables),
        (fig04::EXPERIMENT, fig04::tables),
        (fig07::EXPERIMENT, fig07::tables),
        (fig08::EXPERIMENT, fig08::tables),
        (fig09::EXPERIMENT, fig09::tables),
        (fig10::EXPERIMENT, fig10::tables),
        (fig11::EXPERIMENT, fig11::tables),
        (fig12::EXPERIMENT, fig12::tables),
        (fig13::EXPERIMENT, fig13::tables),
        (fig14::EXPERIMENT, fig14::tables),
        (fig16::EXPERIMENT, fig16::tables),
        (fig17::EXPERIMENT, fig17::tables),
        (fig18::EXPERIMENT, fig18::tables),
        (fig19::EXPERIMENT, fig19::tables),
        (fig20::EXPERIMENT, fig20::tables),
        (table1::EXPERIMENT, table1::tables),
        (table2::EXPERIMENT, table2::tables),
        (ablate_design::EXPERIMENT, ablate_design::tables),
        (ablate_queue::EXPERIMENT, ablate_queue::tables),
        (ablate_transport::EXPERIMENT, ablate_transport::tables),
    ]
}

/// The per-driver golden comparison spec ([`expt::golden`]). Every
/// driver is near-exact today; loosen a column here (not by re-blessing)
/// when a legitimate cross-platform difference shows up.
///
/// `fig12_cost_sweep` opts its throughput metrics into the
/// replicate-aware CI rule: the driver's expander side may be produced
/// by warm-started MCF solves (exact today, so this adds no slack in
/// practice), and the rule keeps "statistically identical" well-defined
/// — within the committed row's own `_ci95` — should that ever change,
/// instead of a hand-picked fixed tolerance.
pub fn golden_spec(driver: &str) -> GoldenSpec {
    match driver {
        "fig12_cost_sweep" => GoldenSpec::strict()
            .with_ci_metric("opera", 1.0)
            .with_ci_metric("expander", 1.0)
            .with_ci_metric("throughput", 1.0),
        _ => GoldenSpec::strict(),
    }
}

/// The committed golden store: `goldens/` at the workspace root.
pub fn golden_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../goldens")
}

/// The canonical context goldens are recorded and checked under: quick
/// scale, base seed 0, 3 replicates, no result files. Thread count is
/// free — the harness guarantees it cannot affect output.
pub fn golden_ctx(threads: usize) -> Ctx {
    Ctx::new(ExptArgs {
        scale: Scale::Quick,
        threads,
        no_write: true,
        ..ExptArgs::default()
    })
}

/// Build one driver's tables under `ctx` and diff them against its
/// committed goldens (or re-record them when `bless` is set; a bless
/// returns no drifts). This is the shared engine behind the tier-1
/// `golden_figures` test and the `golden_check` binary.
pub fn golden_run(
    exp: &Experiment,
    build: BuildFn,
    ctx: &Ctx,
    root: &Path,
    bless: bool,
) -> io::Result<Vec<Drift>> {
    let tables = build(ctx);
    let meta = RunMeta::new(exp.name, &ctx.args);
    if bless {
        bless_driver(exp.name, &tables, root, &meta)?;
        return Ok(Vec::new());
    }
    compare_driver(exp.name, &tables, root, &golden_spec(exp.name), &meta)
}

/// Key columns of the per-size-bin FCT tables (Figures 7 and 9).
pub(crate) const FCT_KEY_COLUMNS: [&str; 4] = ["system", "load", "size_lo", "size_hi"];

/// Metric columns of the per-size-bin FCT tables, aggregated over
/// replicate seeds.
pub(crate) const FCT_METRICS: [(&str, MetricFmt); 5] = [
    ("flows", expt::f2),
    ("unfinished", expt::f2),
    ("avg_us", expt::f2),
    ("p50_us", expt::f2),
    ("p99_us", expt::f2),
];

/// Metric columns of the completion-summary tables.
pub(crate) const COMPLETION_METRICS: [(&str, MetricFmt); 2] =
    [("completed", expt::f2), ("offered", expt::f2)];

/// Per-size-bin FCT observations for one `(system, load)` replicate:
/// `(key cells, metric values)` aligned with [`FCT_KEY_COLUMNS`] and
/// [`FCT_METRICS`].
pub(crate) fn fct_rows(
    system: &str,
    load: f64,
    tracker: &FlowTracker,
) -> Vec<(Vec<Cell>, Vec<f64>)> {
    let stats = FctStats::from_tracker(tracker, &FctStats::default_edges());
    stats
        .bins
        .iter()
        .filter(|b| b.count > 0 || b.unfinished > 0)
        .map(|b| {
            (
                vec![
                    Cell::from(system),
                    Cell::F64(load),
                    Cell::from(b.lo),
                    Cell::from(b.hi),
                ],
                vec![
                    b.count as f64,
                    b.unfinished as f64,
                    b.avg_us,
                    b.p50_us,
                    b.p99_us,
                ],
            )
        })
        .collect()
}

/// Completion-summary observation for one `(system, load)` replicate.
pub(crate) fn completion_row(
    system: &str,
    load: f64,
    tracker: &FlowTracker,
    offered: usize,
) -> (Vec<Cell>, Vec<f64>) {
    (
        vec![Cell::from(system), Cell::F64(load)],
        vec![tracker.completed() as f64, offered as f64],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use expt::{ExptArgs, Scale};

    fn quick_ctx(threads: usize) -> Ctx {
        Ctx::new(ExptArgs {
            scale: Scale::Quick,
            threads,
            no_write: true,
            ..ExptArgs::default()
        })
    }

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let defs = all();
        assert_eq!(defs.len(), 20);
        let mut names: Vec<&str> = defs.iter().map(|(e, _)| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20, "duplicate experiment names");
        for (e, _) in &defs {
            assert!(!e.name.is_empty() && !e.title.is_empty());
        }
    }

    #[test]
    fn cheap_figures_produce_rows_in_quick_mode() {
        let ctx = quick_ctx(2);
        for build in [
            fig01::tables as BuildFn,
            fig14::tables,
            table1::tables,
            table2::tables,
        ] {
            let tables = build(&ctx);
            assert!(!tables.is_empty());
            assert!(tables.iter().any(|t| !t.is_empty()));
        }
    }

    #[test]
    fn parallel_quick_run_is_byte_identical_to_serial() {
        // The acceptance bar for the harness: --threads 8 output equals
        // --threads 1, byte for byte. fig11 exercises per-point RNG use.
        for build in [fig11::tables as BuildFn, fig14::tables] {
            let serial: Vec<String> = build(&quick_ctx(1)).iter().map(Table::to_csv).collect();
            let parallel: Vec<String> = build(&quick_ctx(8)).iter().map(Table::to_csv).collect();
            assert_eq!(serial, parallel);
        }
    }
}
