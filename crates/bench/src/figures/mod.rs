//! Declarative figure/table definitions on top of the [`expt`] harness.
//!
//! Each module exports an [`expt::Experiment`] (whose `name` matches the
//! binary name and the `results/<name>/` output directory) and a
//! `tables(&Ctx) -> Vec<Table>` builder. The binaries in `src/bin/` are
//! one-line `expt::run_main` calls; [`all`] is the registry CI and tests
//! iterate.

pub mod ablate_design;
pub mod ablate_queue;
pub mod fig01;
pub mod fig04;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod table1;
pub mod table2;

use expt::{Cell, Ctx, Experiment, Table};
use netsim::FlowTracker;
use opera::harness::FctStats;

/// A figure's table builder.
pub type BuildFn = fn(&Ctx) -> Vec<Table>;

/// Every driver definition, in figure order.
pub fn all() -> Vec<(Experiment, BuildFn)> {
    vec![
        (fig01::EXPERIMENT, fig01::tables),
        (fig04::EXPERIMENT, fig04::tables),
        (fig07::EXPERIMENT, fig07::tables),
        (fig08::EXPERIMENT, fig08::tables),
        (fig09::EXPERIMENT, fig09::tables),
        (fig10::EXPERIMENT, fig10::tables),
        (fig11::EXPERIMENT, fig11::tables),
        (fig12::EXPERIMENT, fig12::tables),
        (fig13::EXPERIMENT, fig13::tables),
        (fig14::EXPERIMENT, fig14::tables),
        (fig16::EXPERIMENT, fig16::tables),
        (fig17::EXPERIMENT, fig17::tables),
        (fig18::EXPERIMENT, fig18::tables),
        (fig19::EXPERIMENT, fig19::tables),
        (fig20::EXPERIMENT, fig20::tables),
        (table1::EXPERIMENT, table1::tables),
        (table2::EXPERIMENT, table2::tables),
        (ablate_design::EXPERIMENT, ablate_design::tables),
        (ablate_queue::EXPERIMENT, ablate_queue::tables),
    ]
}

/// Column set of the per-size-bin FCT tables (Figures 7 and 9).
pub(crate) const FCT_COLUMNS: [&str; 9] = [
    "system",
    "load",
    "size_lo",
    "size_hi",
    "flows",
    "unfinished",
    "avg_us",
    "p50_us",
    "p99_us",
];

/// Per-size-bin FCT rows for one `(system, load)` run.
pub(crate) fn fct_rows(system: &str, load: f64, tracker: &FlowTracker) -> Vec<Vec<Cell>> {
    let stats = FctStats::from_tracker(tracker, &FctStats::default_edges());
    stats
        .bins
        .iter()
        .filter(|b| b.count > 0 || b.unfinished > 0)
        .map(|b| {
            vec![
                Cell::from(system),
                Cell::F64(load),
                Cell::from(b.lo),
                Cell::from(b.hi),
                Cell::from(b.count),
                Cell::from(b.unfinished),
                expt::f2(b.avg_us),
                expt::f2(b.p50_us),
                expt::f2(b.p99_us),
            ]
        })
        .collect()
}

/// Completion-summary row for one `(system, load)` run.
pub(crate) fn completion_row(
    system: &str,
    load: f64,
    tracker: &FlowTracker,
    offered: usize,
) -> Vec<Cell> {
    vec![
        Cell::from(system),
        Cell::F64(load),
        Cell::from(tracker.completed()),
        Cell::from(offered),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use expt::{ExptArgs, Scale};

    fn quick_ctx(threads: usize) -> Ctx {
        Ctx::new(ExptArgs {
            scale: Scale::Quick,
            threads,
            no_write: true,
            ..ExptArgs::default()
        })
    }

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let defs = all();
        assert_eq!(defs.len(), 19);
        let mut names: Vec<&str> = defs.iter().map(|(e, _)| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 19, "duplicate experiment names");
        for (e, _) in &defs {
            assert!(!e.name.is_empty() && !e.title.is_empty());
        }
    }

    #[test]
    fn cheap_figures_produce_rows_in_quick_mode() {
        let ctx = quick_ctx(2);
        for build in [
            fig01::tables as BuildFn,
            fig14::tables,
            table1::tables,
            table2::tables,
        ] {
            let tables = build(&ctx);
            assert!(!tables.is_empty());
            assert!(tables.iter().any(|t| !t.is_empty()));
        }
    }

    #[test]
    fn parallel_quick_run_is_byte_identical_to_serial() {
        // The acceptance bar for the harness: --threads 8 output equals
        // --threads 1, byte for byte. fig11 exercises per-point RNG use.
        for build in [fig11::tables as BuildFn, fig14::tables] {
            let serial: Vec<String> = build(&quick_ctx(1)).iter().map(Table::to_csv).collect();
            let parallel: Vec<String> = build(&quick_ctx(8)).iter().map(Table::to_csv).collect();
            assert_eq!(serial, parallel);
        }
    }
}
