//! Ablation: the switch-policy × transport matrix.
//!
//! The paper commits to one pairing — NDP over trimming switches for the
//! low-latency class (§4.2) — with a sentence of justification. This
//! ablation makes the alternatives concrete: every
//! [`netsim::SwitchPolicyKind`] (drop-tail, NDP trim, PFC, ECN marking)
//! crossed with every [`transport::TransportKind`] (NDP, DCTCP,
//! go-back-N) on three topologies (Opera's time-varying expander, a
//! static expander, a folded Clos), under the two workloads where the
//! pairing matters most:
//!
//! * **incast** — many senders converge on one host; the switch queue at
//!   the last hop is the whole story;
//! * **victim** — one moderate flow shares that congested region; its
//!   FCT shows collateral damage (PFC head-of-line blocking, drop-tail
//!   timeouts) that aggregate counters hide.
//!
//! Mismatched pairings are run on purpose: go-back-N over trimming
//! switches recovers trims only by timeout, DCTCP over drop-tail sees no
//! marks, NDP over PFC never trims. The `completed`/`dropped`/`trimmed`/
//! `marked` columns make each mechanism's fingerprint visible.

use expt::{Cell, Ctx, Experiment, MetricFmt, RepTableBuilder, Sweep, Table};
use netsim::fabric::QueueConfig;
use netsim::policy::{DropTail, EcnMark, NdpTrim, Pfc};
use netsim::{FlowTracker, SwitchPolicyKind};
use opera::static_net::{StaticNetConfig, StaticTopologyKind};
use opera::{opera_net, static_net, OperaNetConfig};
use simkit::stats::Samples;
use simkit::{SimRng, SimTime};
use topo::clos::ClosParams;
use transport::{DctcpParams, GoBackNParams, NdpParams, TransportKind};
use workloads::FlowSpec;

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "ablate_transport",
    title: "Ablation: switch policy x transport matrix (incast + victim workloads)",
};

/// One point of the matrix sweep.
type Combo = (
    &'static str,
    SwitchPolicyKind,
    &'static str,
    TransportKind,
    &'static str,
);

fn policies() -> [(&'static str, SwitchPolicyKind); 4] {
    [
        ("droptail", SwitchPolicyKind::from(DropTail)),
        ("ndp_trim", SwitchPolicyKind::from(NdpTrim)),
        ("pfc", SwitchPolicyKind::from(Pfc::paper_default())),
        ("ecn", SwitchPolicyKind::from(EcnMark::paper_default())),
    ]
}

fn transports() -> [(&'static str, TransportKind); 3] {
    [
        ("ndp", TransportKind::Ndp(NdpParams::paper_default())),
        ("dctcp", TransportKind::Dctcp(DctcpParams::paper_default())),
        (
            "gbn",
            TransportKind::GoBackN(GoBackNParams::paper_default()),
        ),
    ]
}

const TOPOLOGIES: [&str; 3] = ["opera", "expander", "clos"];

/// Flow list for one scenario. The victim (when present) starts at t=0,
/// strictly before every jittered background flow, so after the sorted
/// injection it is always flow id 0.
fn scenario_flows(
    scenario: &str,
    hosts: usize,
    senders: usize,
    size: u64,
    rng: &mut SimRng,
) -> Vec<FlowSpec> {
    let mut flows = Vec::new();
    if scenario == "victim" {
        flows.push(FlowSpec {
            src: hosts / 2,
            dst: 1, // same edge switch as the incast target
            size: 2 * size,
            start: SimTime::ZERO,
        });
    }
    for _ in 0..senders {
        // Senders from the upper three quarters of hosts: never the
        // incast target's rack, on any of the three topologies.
        flows.push(FlowSpec {
            src: hosts / 4 + rng.index(hosts - hosts / 4),
            dst: 0,
            size,
            start: SimTime::from_us(1 + rng.below(20)),
        });
    }
    flows
}

/// Metrics of one simulated point, aligned with [`METRICS`].
fn metrics_of(
    tracker: &FlowTracker,
    counters: &netsim::fabric::FabricCounters,
    victim: bool,
) -> Vec<f64> {
    let mut fcts = Samples::new();
    for f in tracker.flows() {
        if let Some(t) = f.fct() {
            fcts.push(t.as_us_f64());
        }
    }
    let victim_fct = if victim {
        tracker.get(0).fct().map(|t| t.as_us_f64())
    } else {
        None
    };
    // Absent values (no completions; victim column on incast rows) are 0,
    // not NaN: the replicate summarizer rejects NaN samples.
    vec![
        tracker.completed() as f64,
        tracker.len() as f64,
        fcts.mean().unwrap_or(0.0),
        fcts.quantile(0.99).unwrap_or(0.0),
        victim_fct.unwrap_or(0.0),
        counters.dropped as f64,
        counters.trimmed as f64,
        counters.ecn_marked as f64,
    ]
}

/// Metric columns of the matrix table.
const METRICS: [(&str, MetricFmt); 8] = [
    ("completed", expt::f2),
    ("offered", expt::f2),
    ("avg_fct_us", expt::f2),
    ("p99_fct_us", expt::f2),
    ("victim_fct_us", expt::f2),
    ("dropped", expt::f2),
    ("trimmed", expt::f2),
    ("marked", expt::f2),
];

/// Build the matrix table: every policy × transport × topology point,
/// incast and victim scenarios as separate rows of the same point.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let senders: usize = ctx.by_scale(8, 16, 24);
    let size: u64 = ctx.by_scale(15_000, 30_000, 30_000);
    let racks: usize = ctx.by_scale(8, 8, 16);

    let mut combos: Vec<Combo> = Vec::new();
    for topo in TOPOLOGIES {
        for (pl, pk) in policies() {
            for (tl, tk) in transports() {
                combos.push((pl, pk, tl, tk, topo));
            }
        }
    }
    let sweep = Sweep::grid1(&combos, |c| c);
    let sref = ctx.sweep_ref(&sweep);

    let per_point = ctx.run_replicated(&sweep, |&(pl, pk, tl, tk, topo), rc| {
        let mut rows = Vec::new();
        for scenario in ["incast", "victim"] {
            let mut rng = rc.rng_stream(match scenario {
                "incast" => 5,
                _ => 6,
            });
            let victim = scenario == "victim";
            let key = vec![
                Cell::from(pl),
                Cell::from(tl),
                Cell::from(topo),
                Cell::from(scenario),
            ];
            let metrics = match topo {
                "opera" => {
                    let mut cfg = OperaNetConfig::small_test();
                    cfg.params.racks = racks;
                    cfg.bulk_threshold = u64::MAX; // everything low-latency
                    cfg.queues = QueueConfig::builder().policy(pk).build();
                    cfg.transport = tk;
                    let flows = scenario_flows(scenario, cfg.hosts(), senders, size, &mut rng);
                    let mut sim = opera_net::build(cfg, flows);
                    sim.world.logic.set_hello_enabled(false);
                    sim.run_until(SimTime::from_ms(40));
                    metrics_of(
                        sim.world.logic.tracker(),
                        &sim.world.fabric.counters,
                        victim,
                    )
                }
                "expander" => {
                    let mut cfg = StaticNetConfig::small_expander();
                    cfg.queues = QueueConfig::builder().policy(pk).build();
                    cfg.transport = tk;
                    let flows = scenario_flows(scenario, 32, senders, size, &mut rng);
                    let mut sim = static_net::build(cfg, flows);
                    sim.run_until(SimTime::from_ms(40));
                    metrics_of(
                        sim.world.logic.tracker(),
                        &sim.world.fabric.counters,
                        victim,
                    )
                }
                _ => {
                    let params = ClosParams {
                        radix: 4,
                        oversubscription: 1,
                    };
                    let hosts = params.hosts();
                    let mut cfg = StaticNetConfig::small_expander();
                    cfg.kind = StaticTopologyKind::FoldedClos(params);
                    cfg.queues = QueueConfig::builder().policy(pk).build();
                    cfg.transport = tk;
                    let flows = scenario_flows(scenario, hosts, senders, size, &mut rng);
                    let mut sim = static_net::build(cfg, flows);
                    sim.run_until(SimTime::from_ms(40));
                    metrics_of(
                        sim.world.logic.tracker(),
                        &sim.world.fabric.counters,
                        victim,
                    )
                }
            };
            rows.push((key, metrics));
        }
        rows
    });

    let mut out = RepTableBuilder::new(
        "matrix",
        &["policy", "transport", "topology", "scenario"],
        &METRICS,
    )
    .for_sweep(&sref);
    for (point, &p) in per_point.into_iter().zip(&sref.owned) {
        for rep in point {
            for (key, metrics) in rep {
                out.push_at(p, key, &metrics);
            }
        }
    }
    vec![out.build()]
}
