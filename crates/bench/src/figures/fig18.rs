//! Figure 18 / Appendix E: average and worst-case Opera path length
//! under link, ToR, and circuit-switch failures.

use crate::figures::fig11::{failure_params, fractions, sample_failures, KINDS};
use expt::{Cell, Ctx, Experiment, MetricFmt, RepTableBuilder, Sweep, Table};
use topo::failures::{analyze_opera, opera_link_domain};
use topo::opera::OperaTopology;

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "fig18_failure_stretch",
    title: "Figure 18: Opera path stretch under failures",
};

/// Build the figure's tables.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let params = failure_params(ctx);
    let (topo, _) = OperaTopology::generate_validated(params, 3, 64);
    let domain = opera_link_domain(&topo);
    let fracs = fractions(ctx);

    let sweep = Sweep::grid2(&KINDS, fracs, |k, f| (k, f));
    let sref = ctx.sweep_ref(&sweep);
    let rows = ctx.run_replicated(&sweep, |&(kind, frac), rc| {
        let mut rng = rc.rng();
        let fails = sample_failures(&topo, &domain, kind, frac, &mut rng);
        let r = analyze_opera(&topo, &fails);
        (
            vec![Cell::from(kind), Cell::F64(frac)],
            vec![r.avg_path_len, r.max_path_len as f64],
        )
    });

    let mut t = RepTableBuilder::new(
        "path_stretch",
        &["failure_kind", "fraction"],
        &[
            ("avg_path", expt::f3 as MetricFmt),
            ("worst_path", expt::f2),
        ],
    )
    .for_sweep(&sref);
    for (point, &p) in rows.into_iter().zip(&sref.owned) {
        t.extend_at(p, point);
    }
    vec![t.build()]
}
