//! Figures 12 and 15, folded into one parameterized driver: throughput
//! vs relative cost α for hot-rack, skew[0.2,1], and permutation
//! workloads at ToR radix `k`, flow-level.
//!
//! Figure 12 is `k = 24` (5184 hosts), Figure 15 the `k = 12` (648-host)
//! version the paper's Appendix C shows to scale identically. Pass
//! `--k K` to select the radix explicitly; otherwise quick mode uses
//! `k = 8`, the default `k = 12`, and `--full` the paper's `k = 24`.

use expt::{Cell, Ctx, Experiment, MetricFmt, RepTableBuilder, Sweep, Table};
use flowsim::models::Demand;
use flowsim::{clos_throughput, max_concurrent_flow, opera_model, McfSolver, McfState};
use topo::cost::{expander_racks, expander_uplinks};
use topo::expander::{ExpanderParams, ExpanderTopology};
use topo::opera::{OperaParams, OperaTopology};
use workloads::gen::ScenarioGen;

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "fig12_cost_sweep",
    title: "Figures 12/15: throughput vs relative cost alpha (flow-level)",
};

const WORKLOADS: [&str; 3] = ["hotrack", "skew02", "permutation"];

/// Build the figure's tables.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let k = ctx.args.k.unwrap_or_else(|| ctx.by_scale(8, 12, 24));
    let rate = 10.0;
    let duty = 0.98;
    let d_opera = k / 2;
    let racks_opera = 3 * k * k / 4;
    let hosts = racks_opera * d_opera;
    let opera = OperaTopology::generate(OperaParams::from_radix(k, racks_opera), 5);
    let alphas: &[f64] = ctx.by_scale(
        &[1.0, 1.5, 2.0],
        &[1.0, 1.25, 1.5, 1.75, 2.0],
        &[1.0, 1.25, 1.5, 1.75, 2.0],
    );
    let mcf_iters: usize = ctx.by_scale(25, 60, 60);

    // Opera's α-independent throughput, computed once per (workload,
    // replicate): the demand matrices of the seeded workloads vary with
    // the replicate seed.
    let reps = ctx.replicates();
    let opera_side: Vec<Vec<f64>> = WORKLOADS
        .iter()
        .enumerate()
        .map(|(i, &name)| {
            (0..reps)
                .map(|rep| {
                    let mut rng = ctx.runner.point_ctx(i).replicate(rep).rng_stream(21);
                    let demands = match name {
                        "hotrack" => ScenarioGen::hotrack_demands(d_opera, rate),
                        "skew02" => {
                            ScenarioGen::skew_demands(racks_opera, 0.2, d_opera, rate, &mut rng)
                        }
                        _ => ScenarioGen::permutation_demands(racks_opera, d_opera, rate, &mut rng),
                    };
                    opera_model(&opera, &demands, rate, duty, true).throughput_fraction()
                })
                .collect()
        })
        .collect();

    // The cost-equivalent expander depends only on α (topology seed 7
    // is fixed), so build one instance per α instead of regenerating it
    // per (workload, α, replicate) inside the sweep closure.
    let expanders: Vec<(usize, usize, ExpanderTopology)> = alphas
        .iter()
        .map(|&alpha| {
            let u = expander_uplinks(alpha, k).clamp(3, k - 1);
            let de = k - u;
            let racks_e = expander_racks(hosts, k, u);
            let exp = ExpanderTopology::generate(
                ExpanderParams {
                    racks: racks_e,
                    uplinks: u,
                    hosts_per_rack: de,
                },
                7,
            );
            (u, de, exp)
        })
        .collect();

    // Hot-rack demands are closed-form (no RNG, replicate-independent),
    // so that workload's expander λ is a pure function of α: solve it
    // once per α here, warm-chaining across the sweep — adjacent α
    // values often share an uplink count and hence the identical
    // problem, which `solve_warm` detects by fingerprint and continues
    // instead of re-solving (falling back to a cold solve otherwise, so
    // every λ is bit-identical to the per-point solves it replaces).
    let mut prior: Option<McfState> = None;
    let hot_lambda: Vec<f64> = expanders
        .iter()
        .map(|(_, de, exp)| {
            let demands = ScenarioGen::hotrack_demands(*de, rate);
            let tor: Vec<usize> = (0..exp.racks()).collect();
            let mut solver = McfSolver::new(exp.graph());
            let (r, state) = solver.solve_warm(
                prior.as_ref(),
                &tor,
                &demands,
                rate,
                *de as f64 * rate,
                mcf_iters,
            );
            prior = Some(state);
            r.lambda
        })
        .collect();

    // The expensive part — one max-concurrent-flow solve per
    // (workload, α, replicate) — fans out over the runner.
    let alpha_idx: Vec<usize> = (0..alphas.len()).collect();
    let sweep = Sweep::grid2(&[0usize, 1, 2], &alpha_idx, |w, ai| (w, ai));
    let sref = ctx.sweep_ref(&sweep);
    let rows = ctx.run_replicated(&sweep, |&(wi, ai), rc| {
        let name = &WORKLOADS[wi];
        let alpha = alphas[ai];
        let o = &opera_side[wi][rc.rep];
        let (_, de, exp) = &expanders[ai];
        let de = *de;
        let racks_e = exp.racks();
        let e = if *name == "hotrack" {
            hot_lambda[ai]
        } else {
            // Map the workload onto the expander's rack count.
            let mut rng_e = rc.rng_stream(31);
            let demands_e: Vec<Demand> = match *name {
                "skew02" => ScenarioGen::skew_demands(racks_e, 0.2, de, rate, &mut rng_e),
                _ => ScenarioGen::permutation_demands(racks_e, de, rate, &mut rng_e),
            };
            let tor: Vec<usize> = (0..racks_e).collect();
            max_concurrent_flow(
                exp.graph(),
                &tor,
                &demands_e,
                rate,
                de as f64 * rate,
                mcf_iters,
            )
            .lambda
        };
        let c = clos_throughput(alpha);
        (vec![Cell::from(*name), Cell::F64(alpha)], vec![*o, e, c])
    });

    let mut sweep_table = RepTableBuilder::new(
        "throughput_vs_alpha",
        &["workload", "alpha"],
        &[
            ("opera", expt::f as MetricFmt),
            ("expander", expt::f),
            ("clos", expt::f),
        ],
    )
    .for_sweep(&sref);
    for (point, &p) in rows.into_iter().zip(&sref.owned) {
        sweep_table.extend_at(p, point);
    }
    // Header metadata the old driver printed as a comment.
    let mut meta = Table::new("config", &["k", "racks", "hosts"]);
    meta.push(vec![
        Cell::from(k),
        Cell::from(racks_opera),
        Cell::from(hosts),
    ]);

    // All-to-all shuffle reference (Opera's direct-path advantage) —
    // closed-form demands, so one computation stands for every replicate.
    let a2a = ScenarioGen::all_to_all_demands(racks_opera, d_opera, rate, 1.0);
    let o = opera_model(&opera, &a2a, rate, duty, true).throughput_fraction();
    let mut reference = RepTableBuilder::new(
        "all_to_all_reference",
        &["workload", "network"],
        &[("throughput", expt::f as MetricFmt)],
    );
    reference.push_constant(
        vec![Cell::from("all_to_all"), Cell::from("opera")],
        &[o],
        reps,
    );

    vec![meta, sweep_table.build(), reference.build()]
}
