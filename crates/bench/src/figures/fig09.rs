//! Figure 9: FCTs for the Websearch workload — Opera's worst case, since
//! every flow is under the bulk threshold and rides indirect expander
//! paths paying the bandwidth tax.

use crate::figures::{completion_row, fct_rows, COMPLETION_METRICS, FCT_KEY_COLUMNS, FCT_METRICS};
use crate::{clos_cfg, expander_cfg, opera_cfg, static_hosts};
use expt::{Ctx, Experiment, RepTableBuilder, Sweep, Table};
use opera::{opera_net, static_net};
use simkit::SimTime;
use workloads::dists::{FlowSizeDist, Workload};
use workloads::gen::PoissonGen;
use workloads::FlowSpec;

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "fig09_websearch_fct",
    title: "Figure 9: Websearch FCTs (all flows low-latency in Opera)",
};

const SYSTEMS: [&str; 3] = ["opera", "expander", "folded-clos"];

fn gen_flows(hosts: usize, load: f64, window: SimTime, seed: u64) -> Vec<FlowSpec> {
    let mut g = PoissonGen::new(
        FlowSizeDist::of(Workload::Websearch),
        hosts,
        10.0,
        load,
        seed,
    );
    g.flows_until(window)
}

/// Build the figure's tables.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let scale = ctx.args.scale;
    let (window, run_until) = ctx.by_scale(
        (SimTime::from_ms(2), SimTime::from_ms(80)),
        (SimTime::from_ms(6), SimTime::from_ms(200)),
        (SimTime::from_ms(40), SimTime::from_ms(500)),
    );
    let loads: &[f64] = ctx.by_scale(&[0.05], &[0.01, 0.05, 0.10], &[0.01, 0.05, 0.10]);

    let sweep = Sweep::grid2(&SYSTEMS, loads, |s, l| (s, l));
    let sref = ctx.sweep_ref(&sweep);
    let results = ctx.run_replicated(&sweep, |&(system, load), rc| {
        let load_idx = rc.point.index % loads.len();
        let seed = expt::replicate_seed(
            expt::derive_seed(ctx.runner.base_seed() ^ 17, load_idx as u64),
            rc.rep,
        );
        match system {
            "opera" => {
                let mut cfg = opera_cfg(scale);
                // Figure 9's premise: every Websearch flow sits below the
                // bulk threshold (15 MB at paper scale) and rides
                // indirect paths.
                cfg.bulk_threshold = 20_000_000;
                let flows = gen_flows(cfg.hosts(), load, window, seed);
                let n = flows.len();
                let mut sim = opera_net::build(cfg, flows);
                sim.run_until(run_until);
                let t = sim.world.logic.tracker();
                (
                    fct_rows(system, load, t),
                    completion_row(system, load, t, n),
                )
            }
            _ => {
                let cfg = if system == "expander" {
                    expander_cfg(scale)
                } else {
                    clos_cfg(scale)
                };
                let flows = gen_flows(static_hosts(&cfg), load, window, seed);
                let n = flows.len();
                let mut sim = static_net::build(cfg, flows);
                sim.run_until(run_until);
                let t = sim.world.logic.tracker();
                (
                    fct_rows(system, load, t),
                    completion_row(system, load, t, n),
                )
            }
        }
    });

    let mut fct =
        RepTableBuilder::new("fct_by_size", &FCT_KEY_COLUMNS, &FCT_METRICS).for_sweep(&sref);
    let mut completion =
        RepTableBuilder::new("completion", &["system", "load"], &COMPLETION_METRICS)
            .for_sweep(&sref);
    for (point, &p) in results.into_iter().zip(&sref.owned) {
        for (rows, (ckey, cmetrics)) in point {
            fct.extend_at(p, rows);
            completion.push_at(p, ckey, &cmetrics);
        }
    }
    vec![fct.build(), completion.build()]
}
