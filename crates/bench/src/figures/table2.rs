//! Table 2 / Appendix A: cost per "port" for a static network vs Opera,
//! and the derived cost-normalization quantities.

use expt::{Cell, Ctx, Experiment, MetricFmt, RepTableBuilder, Table};
use topo::cost::{clos_hosts, clos_oversubscription, expander_uplinks, table2_alpha, PortCost};

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "table2_cost_model",
    title: "Table 2: per-port cost breakdown (USD)",
};

/// Build the tables. The cost model is closed-form (no sweep, no seed
/// dependence), so every replicate observes the same values and the CI
/// columns are exactly zero — kept for schema uniformity across figures.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let reps = ctx.replicates();
    let s = PortCost::static_port();
    let o = PortCost::opera_port();
    let mut cost = RepTableBuilder::new(
        "port_cost",
        &["component"],
        &[
            ("static_usd", expt::f0 as MetricFmt),
            ("opera_usd", expt::f0),
        ],
    );
    for (label, sv, ov) in [
        ("sr_transceiver", s.transceiver, o.transceiver),
        ("optical_fiber", s.fiber, o.fiber),
        ("tor_port", s.tor_port, o.tor_port),
        ("rotor_components", s.rotor_components, o.rotor_components),
        ("total", s.total(), o.total()),
    ] {
        cost.push_constant(vec![Cell::from(label)], &[sv, ov], reps);
    }

    // Appendix A derived quantities at alpha (paper: alpha = 1.3).
    let a = table2_alpha();
    let mut derived = RepTableBuilder::new(
        "derived_quantities",
        &["quantity"],
        &[("value", expt::f3 as MetricFmt)],
    );
    derived.push_constant(vec![Cell::from("alpha")], &[a], reps);
    derived.push_constant(
        vec![Cell::from("cost_equivalent_clos_oversubscription_F")],
        &[clos_oversubscription(a, 3)],
        reps,
    );
    derived.push_constant(
        vec![Cell::from("cost_equivalent_clos_hosts_k12")],
        &[clos_hosts(4.0 / 3.0, 12)],
        reps,
    );
    derived.push_constant(
        vec![Cell::from("cost_equivalent_expander_uplinks_k12")],
        &[expander_uplinks(1.4, 12) as f64],
        reps,
    );
    vec![cost.build(), derived.build()]
}
