//! Table 2 / Appendix A: cost per "port" for a static network vs Opera,
//! and the derived cost-normalization quantities.

use expt::{Cell, Ctx, Experiment, Table};
use topo::cost::{clos_hosts, clos_oversubscription, expander_uplinks, table2_alpha, PortCost};

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "table2_cost_model",
    title: "Table 2: per-port cost breakdown (USD)",
};

/// Build the tables (closed-form; no sweep needed).
pub fn tables(_ctx: &Ctx) -> Vec<Table> {
    let s = PortCost::static_port();
    let o = PortCost::opera_port();
    let mut cost = Table::new("port_cost", &["component", "static_usd", "opera_usd"]);
    for (label, sv, ov) in [
        ("sr_transceiver", s.transceiver, o.transceiver),
        ("optical_fiber", s.fiber, o.fiber),
        ("tor_port", s.tor_port, o.tor_port),
        ("rotor_components", s.rotor_components, o.rotor_components),
        ("total", s.total(), o.total()),
    ] {
        cost.push(vec![
            Cell::from(label),
            Cell::from(format!("{sv:.0}")),
            Cell::from(format!("{ov:.0}")),
        ]);
    }

    // Appendix A derived quantities at alpha (paper: alpha = 1.3).
    let a = table2_alpha();
    let mut derived = Table::new("derived_quantities", &["quantity", "value"]);
    derived.push(vec![Cell::from("alpha"), expt::f3(a)]);
    derived.push(vec![
        Cell::from("cost_equivalent_clos_oversubscription_F"),
        expt::f2(clos_oversubscription(a, 3)),
    ]);
    derived.push(vec![
        Cell::from("cost_equivalent_clos_hosts_k12"),
        Cell::from(format!("{:.0}", clos_hosts(4.0 / 3.0, 12))),
    ]);
    derived.push(vec![
        Cell::from("cost_equivalent_expander_uplinks_k12"),
        Cell::from(expander_uplinks(1.4, 12)),
    ]);
    vec![cost, derived]
}
