//! Figure 13: RTT CDF of the hardware prototype's ping-pong traffic,
//! with and without bulk background traffic (model of §6.1).

use expt::{Cell, Ctx, Experiment, Sweep, Table};
use opera::prototype::{simulate_prototype, PrototypeParams};

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "fig13_prototype_rtt",
    title: "Figure 13: prototype ping-pong RTT CDFs (us)",
};

/// Build the figure's tables.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let n: usize = ctx.by_scale(10_000, 100_000, 100_000);
    let sweep = Sweep::from_points(vec![()]);
    let results = ctx.run(&sweep, |_, _| {
        // The seed doubles as the prototype's topology seed, and not
        // every seed yields an 8-rack topology meeting the model's
        // diameter <= 4 premise — keep the hand-validated one.
        let r = simulate_prototype(PrototypeParams::paper_default(), n, 7);
        let mut rows = Vec::new();
        for (label, mut s) in [("no_bulk", r.quiet), ("with_bulk", r.with_bulk)] {
            for q in 1..=100 {
                let v = s.quantile(q as f64 / 100.0).unwrap();
                rows.push(vec![
                    Cell::from(label),
                    Cell::from(format!("{v:.2}")),
                    expt::f2(q as f64 / 100.0),
                ]);
            }
        }
        rows
    });

    let mut t = Table::new("rtt_cdfs", &["series", "rtt_us", "cdf"]);
    for rows in results {
        t.extend(rows);
    }
    vec![t]
}
