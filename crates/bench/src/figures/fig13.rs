//! Figure 13: RTT CDF of the hardware prototype's ping-pong traffic,
//! with and without bulk background traffic (model of §6.1).

use expt::{Cell, Ctx, Experiment, MetricFmt, RepTableBuilder, Sweep, Table};
use opera::prototype::{simulate_prototype_seeded, PrototypeParams};

/// Driver identity.
pub const EXPERIMENT: Experiment = Experiment {
    name: "fig13_prototype_rtt",
    title: "Figure 13: prototype ping-pong RTT CDFs (us)",
};

/// Build the figure's tables: per-percentile RTT with mean/CI over the
/// traffic-seed replicates.
pub fn tables(ctx: &Ctx) -> Vec<Table> {
    let n: usize = ctx.by_scale(10_000, 100_000, 100_000);
    let sweep = Sweep::from_points(vec![()]);
    let sref = ctx.sweep_ref(&sweep);
    let results = ctx.run_replicated(&sweep, |_, rc| {
        // Topology seed 7 stays fixed: not every seed yields an 8-rack
        // topology meeting the model's diameter <= 4 premise, so only
        // the traffic stream varies across replicates.
        let r = simulate_prototype_seeded(PrototypeParams::paper_default(), n, 7, rc.seed);
        let mut rows = Vec::new();
        for (label, mut s) in [("no_bulk", r.quiet), ("with_bulk", r.with_bulk)] {
            for q in 1..=100 {
                let v = s.quantile(q as f64 / 100.0).unwrap();
                rows.push((vec![Cell::from(label), Cell::from(q as u64)], vec![v]));
            }
        }
        rows
    });

    let mut t = RepTableBuilder::new(
        "rtt_cdfs",
        &["series", "percentile"],
        &[("rtt_us", expt::f2 as MetricFmt)],
    )
    .for_sweep(&sref);
    for (point, &p) in results.into_iter().zip(&sref.owned) {
        for rows in point {
            t.extend_at(p, rows);
        }
    }
    vec![t.build()]
}
