//! Nightly full-scale spot baselines: a handful of headline numbers at
//! the paper's 648-host configurations, recorded under `goldens/full/`.
//!
//! The quick-mode goldens exercise every code path but tiny networks;
//! the figures' *full* sweeps (fig08's all-to-all shuffle, fig09's
//! Websearch loads) are hours of packet simulation — too slow even for
//! a nightly job. The spot suite is the tractable middle: the **exact
//! paper-scale networks** (`PaperTrio`, 648 hosts, 90 µs slices) under
//! a **bounded spot workload** — a partial shuffle and a short
//! Websearch window — sized so the whole suite fits a nightly CI
//! budget. The headline metrics (shuffle completion time, Websearch
//! p99) regress through the same tolerance-aware golden machinery as
//! the quick baselines, manifest included:
//!
//! ```text
//! spot_check            # compare against goldens/full/
//! spot_check --bless    # re-record (commit the goldens/full/ diff)
//! ```

use crate::PaperTrio;
use expt::{f, f2, Cell, Table};
use flowsim::{clos_throughput, opera_model, McfSolver};
use netsim::FlowTracker;
use opera::{opera_net, static_net};
use simkit::SimTime;
use topo::cost::{expander_racks, expander_uplinks};
use topo::expander::{ExpanderParams, ExpanderTopology};
use topo::opera::{OperaParams, OperaTopology};
use workloads::dists::{FlowSizeDist, Workload};
use workloads::gen::{PoissonGen, ScenarioGen};
use workloads::FlowSpec;

/// The golden "driver" directory spot baselines live under
/// (`goldens/full/`).
pub const DRIVER: &str = "full";

/// One spot point: a named table builder.
pub type SpotFn = fn() -> Table;

/// Every spot point, in suite order: `(table name, builder)`.
pub fn all() -> Vec<(&'static str, SpotFn)> {
    vec![
        ("shuffle_648", shuffle_648 as SpotFn),
        ("websearch_648", websearch_648 as SpotFn),
        ("fig12_k24", fig12_k24 as SpotFn),
    ]
}

fn fct_summary(tracker: &FlowTracker) -> (f64, f64, f64) {
    let s = expt::summarize(
        tracker
            .flows()
            .iter()
            .filter_map(|f| f.fct())
            .map(|x| x.as_ms_f64()),
    );
    (s.mean, s.p99, s.max)
}

/// Fig08's headline at paper scale: bulk shuffle time on the 648-host
/// Opera network, every flow over direct circuits. The spot workload is
/// a partial shuffle — each host sends 100 KB to its next
/// `SHUFFLE_PEERS` ring neighbors — so the run measures paper-scale
/// circuit scheduling without fig08's full 648 × 647 flow matrix.
fn shuffle_648() -> Table {
    const SHUFFLE_PEERS: usize = 16;
    const FLOW_SIZE: u64 = 100_000;
    let mut cfg = PaperTrio::opera();
    cfg.bulk_threshold = 0; // application tags everything bulk (§3.4)
    let hosts = cfg.hosts();
    let mut flows = Vec::with_capacity(hosts * SHUFFLE_PEERS);
    for src in 0..hosts {
        for k in 1..=SHUFFLE_PEERS {
            flows.push(FlowSpec {
                src,
                dst: (src + k * (hosts / SHUFFLE_PEERS + 1)) % hosts,
                size: FLOW_SIZE,
                start: SimTime::ZERO,
            });
        }
    }
    let offered = flows.len();
    let mut sim = opera_net::build(cfg, flows);
    sim.run_until(SimTime::from_ms(120));
    let t = sim.world.logic.tracker();
    let (mean, p99, max) = fct_summary(t);
    let mut out = Table::new(
        "shuffle_648",
        &[
            "network",
            "flows",
            "completed",
            "shuffle_ms",
            "p99_fct_ms",
            "mean_fct_ms",
        ],
    );
    out.push(vec![
        Cell::from("opera-648"),
        Cell::from(offered),
        Cell::from(t.completed()),
        f2(max),
        f2(p99),
        f2(mean),
    ]);
    out
}

/// Fig12's headline at the paper's `k = 24` radix (5184 hosts): one
/// flow-level throughput point — the hot-rack workload at α = 1.0 —
/// through the same Opera duty-cycle model and expander
/// max-concurrent-flow solve as the figure's full sweep. The quick
/// goldens only ever solve `k = 8`; this pins the paper-scale solver
/// path (432-rack Opera, cost-equivalent expander MCF at 60
/// iterations) nightly. Hot-rack demands are closed-form, so the point
/// needs no RNG and is exactly reproducible.
fn fig12_k24() -> Table {
    const K: usize = 24;
    const ALPHA: f64 = 1.0;
    let rate = 10.0;
    let duty = 0.98;
    let d_opera = K / 2;
    let racks_opera = 3 * K * K / 4;
    let hosts = racks_opera * d_opera;

    let opera = OperaTopology::generate(OperaParams::from_radix(K, racks_opera), 5);
    let demands = ScenarioGen::hotrack_demands(d_opera, rate);
    let o = opera_model(&opera, &demands, rate, duty, true).throughput_fraction();

    // Cost-equivalent expander at α = 1.0, as fig12 builds it.
    let u = expander_uplinks(ALPHA, K).clamp(3, K - 1);
    let de = K - u;
    let racks_e = expander_racks(hosts, K, u);
    let exp = ExpanderTopology::generate(
        ExpanderParams {
            racks: racks_e,
            uplinks: u,
            hosts_per_rack: de,
        },
        7,
    );
    let demands_e = ScenarioGen::hotrack_demands(de, rate);
    let tor: Vec<usize> = (0..racks_e).collect();
    let e = McfSolver::new(exp.graph())
        .solve(&tor, &demands_e, rate, de as f64 * rate, 60)
        .lambda;
    let c = clos_throughput(ALPHA);

    let mut out = Table::new(
        "fig12_k24",
        &[
            "workload", "alpha", "k", "hosts", "opera", "expander", "clos",
        ],
    );
    out.push(vec![
        Cell::from("hotrack"),
        Cell::F64(ALPHA),
        Cell::from(K),
        Cell::from(hosts),
        f(o),
        f(e),
        f(c),
    ]);
    out
}

/// Fig09's headline at paper scale: Websearch p99 FCT on the 648-host
/// Opera network (every flow under the bulk threshold, riding indirect
/// expander paths) against the cost-equivalent 3:1 folded Clos. The
/// spot workload is one short Poisson window at 10% load.
fn websearch_648() -> Table {
    const LOAD: f64 = 0.10;
    let window = SimTime::from_ms(10);
    let horizon = SimTime::from_ms(60);
    let mut out = Table::new(
        "websearch_648",
        &[
            "network",
            "load",
            "flows",
            "completed",
            "p99_fct_ms",
            "mean_fct_ms",
        ],
    );
    let mut push = |network: &str, offered: usize, tracker: &FlowTracker| {
        let (mean, p99, _) = fct_summary(tracker);
        out.push(vec![
            Cell::from(network),
            Cell::F64(LOAD),
            Cell::from(offered),
            Cell::from(tracker.completed()),
            f2(p99),
            f2(mean),
        ]);
    };

    let gen_flows = |hosts: usize| -> Vec<FlowSpec> {
        PoissonGen::new(FlowSizeDist::of(Workload::Websearch), hosts, 10.0, LOAD, 0)
            .flows_until(window)
    };

    {
        let mut cfg = PaperTrio::opera();
        cfg.bulk_threshold = 20_000_000; // fig09's premise: all low-latency
        let flows = gen_flows(cfg.hosts());
        let offered = flows.len();
        let mut sim = opera_net::build(cfg, flows);
        sim.run_until(horizon);
        push("opera-648", offered, sim.world.logic.tracker());
    }
    {
        let cfg = PaperTrio::clos();
        let flows = gen_flows(crate::static_hosts(&cfg));
        let offered = flows.len();
        let mut sim = static_net::build(cfg, flows);
        sim.run_until(horizon);
        push("folded-clos-648", offered, sim.world.logic.tracker());
    }
    out
}
