//! Shared helpers for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper. By default they run a *scaled-down* configuration so the whole
//! suite completes in minutes on a laptop; set `OPERA_SCALE=full` to run
//! the paper-scale networks (648 / 5184 hosts, 90 µs slices) where the
//! binary supports it.

pub mod cost_sweep;

use opera::{OperaNetConfig, SliceTiming, StaticNetConfig, StaticTopologyKind};
use topo::clos::ClosParams;
use topo::expander::ExpanderParams;
use topo::opera::OperaParams;

/// Experiment scale selected via the `OPERA_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-friendly mini networks (default).
    Mini,
    /// The paper's configurations.
    Full,
}

/// Read the scale from the environment.
pub fn scale() -> Scale {
    match std::env::var("OPERA_SCALE").as_deref() {
        Ok("full") | Ok("FULL") => Scale::Full,
        _ => Scale::Mini,
    }
}

/// The cost-equivalent trio at mini scale (`k = 8`, 192 hosts):
/// * Opera: 48 racks × 4 hosts, u = 4,
/// * static expander: u = 5, d = 3, 64 racks (α = 5/3, slightly favoring
///   the expander, mirroring the paper's u = 7 vs α = 1.3 choice),
/// * folded Clos: 3:1, k = 8 (32 ToRs × 6 hosts).
pub struct MiniTrio;

impl MiniTrio {
    /// Opera configuration.
    pub fn opera() -> OperaNetConfig {
        OperaNetConfig {
            params: OperaParams {
                racks: 48,
                uplinks: 4,
                hosts_per_rack: 4,
                groups: 1,
            },
            timing: SliceTiming::fast_sim(),
            bulk_threshold: 1_500_000,
            ..OperaNetConfig::small_test()
        }
    }

    /// Expander configuration.
    pub fn expander() -> StaticNetConfig {
        StaticNetConfig {
            kind: StaticTopologyKind::Expander(ExpanderParams {
                racks: 64,
                uplinks: 5,
                hosts_per_rack: 3,
            }),
            ..StaticNetConfig::small_expander()
        }
    }

    /// Folded-Clos configuration.
    pub fn clos() -> StaticNetConfig {
        StaticNetConfig {
            kind: StaticTopologyKind::FoldedClos(ClosParams {
                radix: 8,
                oversubscription: 3,
            }),
            ..StaticNetConfig::small_expander()
        }
    }

    /// Host count shared by the trio (192, matched within rack rounding).
    pub fn hosts() -> usize {
        192
    }
}

/// Paper-scale trio (648 / 650 / 648 hosts).
pub struct PaperTrio;

impl PaperTrio {
    /// 648-host Opera.
    pub fn opera() -> OperaNetConfig {
        OperaNetConfig::paper_648()
    }
    /// 650-host u=7 expander.
    pub fn expander() -> StaticNetConfig {
        StaticNetConfig::paper_expander_650()
    }
    /// 648-host 3:1 Clos.
    pub fn clos() -> StaticNetConfig {
        StaticNetConfig::paper_clos_648()
    }
    /// Host count (Opera/Clos; the expander has 650).
    pub fn hosts() -> usize {
        648
    }
}

/// Print a CSV header + rows (simple, greppable output format).
pub fn print_csv(header: &str, rows: &[Vec<String>]) {
    println!("{header}");
    for r in rows {
        println!("{}", r.join(","));
    }
}

/// Format a float with 4 decimals.
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}
