//! Shared configuration and figure definitions for the reproduction
//! drivers.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper through the [`expt`] harness: a declarative definition in
//! [`figures`] plus a one-line `main`. All drivers accept the shared
//! `--quick` / `--full` / `--threads` / `--seed` / `--out` flags
//! (`OPERA_SCALE=full` still selects paper scale, as before):
//!
//! * **quick** — tiny grids and networks, the CI smoke configuration,
//! * **default** — laptop-friendly mini networks, minutes for the suite,
//! * **full** — the paper's configurations (648 / 5184 hosts, 90 µs
//!   slices) where the driver supports it.

pub mod backend;
pub mod figures;
pub mod record;
pub mod scenario;
pub mod spot;

use expt::Scale;
use opera::{OperaNetConfig, SliceTiming, StaticNetConfig, StaticTopologyKind};
use topo::clos::ClosParams;
use topo::expander::ExpanderParams;
use topo::opera::OperaParams;

/// The cost-equivalent trio at mini scale (`k = 8`, 192 hosts):
/// * Opera: 48 racks × 4 hosts, u = 4,
/// * static expander: u = 5, d = 3, 64 racks (α = 5/3, slightly favoring
///   the expander, mirroring the paper's u = 7 vs α = 1.3 choice),
/// * folded Clos: 3:1, k = 8 (32 ToRs × 6 hosts).
pub struct MiniTrio;

impl MiniTrio {
    /// Opera configuration.
    pub fn opera() -> OperaNetConfig {
        OperaNetConfig {
            params: OperaParams {
                racks: 48,
                uplinks: 4,
                hosts_per_rack: 4,
                groups: 1,
            },
            timing: SliceTiming::fast_sim(),
            bulk_threshold: 1_500_000,
            ..OperaNetConfig::small_test()
        }
    }

    /// Expander configuration.
    pub fn expander() -> StaticNetConfig {
        StaticNetConfig {
            kind: StaticTopologyKind::Expander(ExpanderParams {
                racks: 64,
                uplinks: 5,
                hosts_per_rack: 3,
            }),
            ..StaticNetConfig::small_expander()
        }
    }

    /// Folded-Clos configuration.
    pub fn clos() -> StaticNetConfig {
        StaticNetConfig {
            kind: StaticTopologyKind::FoldedClos(ClosParams {
                radix: 8,
                oversubscription: 3,
            }),
            ..StaticNetConfig::small_expander()
        }
    }

    /// Host count shared by the trio (192, matched within rack rounding).
    pub fn hosts() -> usize {
        192
    }
}

/// Paper-scale trio (648 / 650 / 648 hosts).
pub struct PaperTrio;

impl PaperTrio {
    /// 648-host Opera.
    pub fn opera() -> OperaNetConfig {
        OperaNetConfig::paper_648()
    }
    /// 650-host u=7 expander.
    pub fn expander() -> StaticNetConfig {
        StaticNetConfig::paper_expander_650()
    }
    /// 648-host 3:1 Clos.
    pub fn clos() -> StaticNetConfig {
        StaticNetConfig::paper_clos_648()
    }
    /// Host count (Opera/Clos; the expander has 650).
    pub fn hosts() -> usize {
        648
    }
}

/// The smoke-test trio for `--quick` mode: not cost-equivalent, just the
/// smallest networks that exercise every code path (8-rack Opera, 8-rack
/// expander, k = 4 Clos).
pub struct QuickTrio;

impl QuickTrio {
    /// 48-host Opera. 12 racks, not `small_test`'s 8: hybrid-RotorNet
    /// runs drop one uplink (4 → 3), and the uplink count must divide
    /// the rack count.
    pub fn opera() -> OperaNetConfig {
        OperaNetConfig {
            params: OperaParams {
                racks: 12,
                uplinks: 4,
                hosts_per_rack: 4,
                groups: 1,
            },
            ..OperaNetConfig::small_test()
        }
    }
    /// 32-host expander.
    pub fn expander() -> StaticNetConfig {
        StaticNetConfig::small_expander()
    }
    /// 24-host k = 4 Clos.
    pub fn clos() -> StaticNetConfig {
        StaticNetConfig {
            kind: StaticTopologyKind::FoldedClos(ClosParams {
                radix: 4,
                oversubscription: 3,
            }),
            ..StaticNetConfig::small_expander()
        }
    }
}

/// The Opera configuration for a scale.
pub fn opera_cfg(scale: Scale) -> OperaNetConfig {
    match scale {
        Scale::Quick => QuickTrio::opera(),
        Scale::Default => MiniTrio::opera(),
        Scale::Full => PaperTrio::opera(),
    }
}

/// The static-expander configuration for a scale.
pub fn expander_cfg(scale: Scale) -> StaticNetConfig {
    match scale {
        Scale::Quick => QuickTrio::expander(),
        Scale::Default => MiniTrio::expander(),
        Scale::Full => PaperTrio::expander(),
    }
}

/// The folded-Clos configuration for a scale.
pub fn clos_cfg(scale: Scale) -> StaticNetConfig {
    match scale {
        Scale::Quick => QuickTrio::clos(),
        Scale::Default => MiniTrio::clos(),
        Scale::Full => PaperTrio::clos(),
    }
}

/// Host count of a static-network configuration.
pub fn static_hosts(cfg: &StaticNetConfig) -> usize {
    match &cfg.kind {
        StaticTopologyKind::Expander(p) => p.racks * p.hosts_per_rack,
        StaticTopologyKind::FoldedClos(p) => p.hosts(),
    }
}
