//! Run declarative scenario files ([`expt::scenario`]) against the
//! simulator, with optional trace capture and trace reconciliation.
//!
//! `expt` parses scenario files but treats topology / policy /
//! transport names as opaque strings; this module is the registry that
//! maps those names onto concrete config types (with named errors
//! listing the known values), builds the network, runs every sweep
//! point, and writes a metrics CSV. When the scenario requests traces,
//! the fabric gets a [`netsim::MultiSink`] fanning out to a JSON-lines
//! sink and a pcapng sink, and after the run the two outputs are
//! reconciled: the pcapng is re-read with the validating reader and its
//! per-link packet counts must equal the JSON-lines `tx` record counts,
//! link for link.

use expt::scenario::{Scenario, ScenarioPoint};
use netsim::fabric::QueueConfig;
use netsim::policy::{DropTail, EcnMark, NdpTrim, Pfc};
use netsim::trace::{JsonlSink, MultiSink, TraceSink};
use netsim::{FlowTracker, PcapngSink, SwitchPolicyKind};
use opera::static_net::{StaticNetConfig, StaticTopologyKind};
use opera::{opera_net, static_net, OperaNetConfig};
use simkit::stats::Samples;
use simkit::{SimRng, SimTime};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use topo::clos::ClosParams;
use transport::{DctcpParams, GoBackNParams, NdpParams, TransportKind};
use workloads::FlowSpec;

/// Switch policy names the scenario runner accepts.
pub const KNOWN_POLICIES: [&str; 4] = ["droptail", "ndp_trim", "pfc", "ecn"];
/// Transport names the scenario runner accepts.
pub const KNOWN_TRANSPORTS: [&str; 3] = ["ndp", "dctcp", "gbn"];
/// Topology names the scenario runner accepts.
pub const KNOWN_TOPOLOGIES: [&str; 6] = [
    "opera",
    "opera_paper",
    "expander",
    "expander_paper",
    "clos",
    "clos_paper",
];
/// Workload names the scenario runner accepts.
pub const KNOWN_WORKLOADS: [&str; 2] = ["incast", "victim"];

fn policy_of(name: &str) -> Result<SwitchPolicyKind, String> {
    Ok(match name {
        "droptail" => SwitchPolicyKind::from(DropTail),
        "ndp_trim" => SwitchPolicyKind::from(NdpTrim),
        "pfc" => SwitchPolicyKind::from(Pfc::paper_default()),
        "ecn" => SwitchPolicyKind::from(EcnMark::paper_default()),
        other => {
            return Err(format!(
                "unknown switch policy {other:?}; known policies: {KNOWN_POLICIES:?}"
            ))
        }
    })
}

fn transport_of(name: &str) -> Result<TransportKind, String> {
    Ok(match name {
        "ndp" => TransportKind::Ndp(NdpParams::paper_default()),
        "dctcp" => TransportKind::Dctcp(DctcpParams::paper_default()),
        "gbn" => TransportKind::GoBackN(GoBackNParams::paper_default()),
        other => {
            return Err(format!(
                "unknown transport {other:?}; known transports: {KNOWN_TRANSPORTS:?}"
            ))
        }
    })
}

/// Validate every name a scenario references against the registries,
/// before anything is built or scheduled.
pub fn check_names(sc: &Scenario) -> Result<(), String> {
    if !KNOWN_TOPOLOGIES.contains(&sc.topology.as_str()) {
        return Err(format!(
            "unknown topology {:?}; known topologies: {KNOWN_TOPOLOGIES:?}",
            sc.topology
        ));
    }
    if !KNOWN_WORKLOADS.contains(&sc.workload.as_str()) {
        return Err(format!(
            "unknown workload {:?}; known workloads: {KNOWN_WORKLOADS:?}",
            sc.workload
        ));
    }
    for p in &sc.policies {
        policy_of(p)?;
    }
    for t in &sc.transports {
        transport_of(t)?;
    }
    Ok(())
}

/// Flow list for a workload (the `ablate_transport` construction): an
/// incast of `senders` flows onto host 0 from the upper three quarters
/// of hosts, plus — for `victim` — one moderate flow into the target's
/// edge switch, started strictly first so it is always flow id 0.
fn workload_flows(
    workload: &str,
    hosts: usize,
    senders: usize,
    size: u64,
    rng: &mut SimRng,
) -> Vec<FlowSpec> {
    let mut flows = Vec::new();
    if workload == "victim" {
        flows.push(FlowSpec {
            src: hosts / 2,
            dst: 1,
            size: 2 * size,
            start: SimTime::ZERO,
        });
    }
    for _ in 0..senders {
        flows.push(FlowSpec {
            src: hosts / 4 + rng.index(hosts - hosts / 4),
            dst: 0,
            size,
            start: SimTime::from_us(1 + rng.below(20)),
        });
    }
    flows
}

/// Metrics of one completed point.
#[derive(Debug, Clone, Copy)]
pub struct PointMetrics {
    /// Flows completed before the horizon.
    pub completed: usize,
    /// Flows offered.
    pub offered: usize,
    /// Mean flow-completion time, µs (0 when nothing completed).
    pub avg_fct_us: f64,
    /// 99th-percentile FCT, µs.
    pub p99_fct_us: f64,
    /// Packets dropped at full queues.
    pub dropped: u64,
    /// Packets trimmed to headers.
    pub trimmed: u64,
    /// Packets ECN-marked.
    pub marked: u64,
}

fn metrics_of(tracker: &FlowTracker, counters: &netsim::fabric::FabricCounters) -> PointMetrics {
    let mut fcts = Samples::new();
    for f in tracker.flows() {
        if let Some(t) = f.fct() {
            fcts.push(t.as_us_f64());
        }
    }
    PointMetrics {
        completed: tracker.completed(),
        offered: tracker.len(),
        avg_fct_us: fcts.mean().unwrap_or(0.0),
        p99_fct_us: fcts.quantile(0.99).unwrap_or(0.0),
        dropped: counters.dropped,
        trimmed: counters.trimmed,
        marked: counters.ecn_marked,
    }
}

/// Result of reconciling the two trace outputs of one run.
#[derive(Debug, Clone)]
pub struct TraceValidation {
    /// Total JSON-lines records.
    pub jsonl_records: u64,
    /// JSON-lines `tx` records (== pcapng packets).
    pub jsonl_tx: u64,
    /// Packets in the pcapng capture.
    pub pcapng_packets: u64,
    /// Links carrying at least one transmission.
    pub links: usize,
}

/// Report of one scenario run.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Metrics per sweep point, in sweep order.
    pub rows: Vec<(ScenarioPoint, PointMetrics)>,
    /// Metrics CSV path.
    pub csv: PathBuf,
    /// JSON-lines trace, when requested.
    pub trace_jsonl: Option<PathBuf>,
    /// pcapng capture, when requested.
    pub trace_pcapng: Option<PathBuf>,
    /// Trace reconciliation result, when both sinks were requested.
    pub validation: Option<TraceValidation>,
}

/// Run one sweep point, returning metrics (and the finished sink, for
/// error reporting).
fn run_point(
    sc: &Scenario,
    pt: &ScenarioPoint,
    idx: usize,
    trace: Option<Box<dyn TraceSink>>,
) -> Result<PointMetrics, String> {
    let pk = policy_of(&pt.policy)?;
    let tk = transport_of(&pt.transport)?;
    let queues = QueueConfig::builder().policy(pk).build();
    let horizon = SimTime::from_ms(sc.duration_ms);
    let mut rng = SimRng::new(sc.seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));

    let (tracker_metrics, sink) = match sc.topology.as_str() {
        "opera" | "opera_paper" => {
            let mut cfg = if sc.topology == "opera" {
                OperaNetConfig::small_test()
            } else {
                OperaNetConfig::paper_648()
            };
            if let Some(racks) = sc.racks {
                cfg.params.racks = racks;
            }
            cfg.bulk_threshold = u64::MAX; // everything low-latency
            cfg.queues = queues;
            cfg.transport = tk;
            let flows = workload_flows(
                &sc.workload,
                cfg.hosts(),
                pt.senders,
                sc.flow_bytes,
                &mut rng,
            );
            let mut sim = opera_net::build(cfg, flows);
            sim.world.logic.set_hello_enabled(false);
            if let Some(sink) = trace {
                sim.world.fabric.set_trace(sink);
            }
            sim.run_until(horizon);
            (
                metrics_of(sim.world.logic.tracker(), &sim.world.fabric.counters),
                sim.world.fabric.take_trace(),
            )
        }
        topo => {
            let mut cfg = match topo {
                "expander" => StaticNetConfig::small_expander(),
                "expander_paper" => StaticNetConfig::paper_expander_650(),
                "clos" => {
                    let mut c = StaticNetConfig::small_expander();
                    c.kind = StaticTopologyKind::FoldedClos(ClosParams {
                        radix: 4,
                        oversubscription: 1,
                    });
                    c
                }
                "clos_paper" => StaticNetConfig::paper_clos_648(),
                other => {
                    return Err(format!(
                        "unknown topology {other:?}; known topologies: {KNOWN_TOPOLOGIES:?}"
                    ))
                }
            };
            let hosts = crate::static_hosts(&cfg);
            cfg.queues = queues;
            cfg.transport = tk;
            let flows = workload_flows(&sc.workload, hosts, pt.senders, sc.flow_bytes, &mut rng);
            let mut sim = static_net::build(cfg, flows);
            if let Some(sink) = trace {
                sim.world.fabric.set_trace(sink);
            }
            sim.run_until(horizon);
            (
                metrics_of(sim.world.logic.tracker(), &sim.world.fabric.counters),
                sim.world.fabric.take_trace(),
            )
        }
    };
    if let Some(mut sink) = sink {
        sink.finish()?;
    }
    Ok(tracker_metrics)
}

/// Run every point of `sc`, writing outputs under `out_dir` (created if
/// missing). Fails with a named error before any simulation starts if
/// the scenario references unknown topology / workload / policy /
/// transport names.
pub fn run_scenario(sc: &Scenario, out_dir: &Path) -> Result<ScenarioReport, String> {
    check_names(sc)?;
    std::fs::create_dir_all(out_dir)
        .map_err(|e| format!("scenario out dir {}: {e}", out_dir.display()))?;

    let trace_jsonl = sc.trace.jsonl.as_ref().map(|f| out_dir.join(f));
    let trace_pcapng = sc.trace.pcapng.as_ref().map(|f| out_dir.join(f));

    let points = sc.points();
    let mut rows = Vec::with_capacity(points.len());
    for (idx, pt) in points.iter().enumerate() {
        // Tracing is only legal on single-point scenarios (enforced at
        // parse time), so the sink construction runs at most once.
        let sink: Option<Box<dyn TraceSink>> = if sc.trace.enabled() {
            let mut multi = MultiSink::new();
            if let Some(p) = &trace_jsonl {
                multi = multi.with(Box::new(JsonlSink::create(p)?));
            }
            if let Some(p) = &trace_pcapng {
                multi = multi.with(Box::new(PcapngSink::create(p)?));
            }
            Some(Box::new(multi))
        } else {
            None
        };
        let metrics = run_point(sc, pt, idx, sink)?;
        rows.push((pt.clone(), metrics));
    }

    let csv = out_dir.join(format!("{}.csv", sc.name));
    write_csv(&csv, &rows)?;

    let validation = match (&trace_jsonl, &trace_pcapng) {
        (Some(j), Some(p)) => Some(reconcile_traces(j, p)?),
        _ => None,
    };
    Ok(ScenarioReport {
        name: sc.name.clone(),
        rows,
        csv,
        trace_jsonl,
        trace_pcapng,
        validation,
    })
}

fn write_csv(path: &Path, rows: &[(ScenarioPoint, PointMetrics)]) -> Result<(), String> {
    let mut f = std::fs::File::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut out = String::from(
        "policy,transport,senders,completed,offered,avg_fct_us,p99_fct_us,dropped,trimmed,marked\n",
    );
    for (pt, m) in rows {
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.2},{:.2},{},{},{}",
            pt.policy,
            pt.transport,
            pt.senders,
            m.completed,
            m.offered,
            m.avg_fct_us,
            m.p99_fct_us,
            m.dropped,
            m.trimmed,
            m.marked
        );
    }
    f.write_all(out.as_bytes())
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// Per-link `tx` counts keyed by `(node, port)`.
type LinkCounts = BTreeMap<(usize, usize), u64>;

/// Count `tx` records per `(node, port)` link in a JSON-lines trace.
fn jsonl_tx_counts(path: &Path) -> Result<(u64, LinkCounts), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut total = 0u64;
    let mut tx = LinkCounts::new();
    for (i, line) in text.lines().enumerate() {
        let rec = expt::json::Json::parse(line)
            .map_err(|e| format!("{} line {}: {e}", path.display(), i + 1))?;
        let event = rec
            .get("event")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("{} line {}: missing event", path.display(), i + 1))?;
        let node = rec.get("node").and_then(|v| v.as_usize());
        let port = rec.get("port").and_then(|v| v.as_usize());
        let (Some(node), Some(port)) = (node, port) else {
            return Err(format!(
                "{} line {}: missing node/port",
                path.display(),
                i + 1
            ));
        };
        total += 1;
        if event == "tx" {
            *tx.entry((node, port)).or_insert(0) += 1;
        }
    }
    Ok((total, tx))
}

/// Re-read both trace files and reconcile them: the pcapng must pass
/// the validating reader, and its per-link packet counts must equal the
/// JSON-lines `tx` counts exactly, link for link.
pub fn reconcile_traces(jsonl: &Path, pcapng: &Path) -> Result<TraceValidation, String> {
    let (jsonl_records, tx) = jsonl_tx_counts(jsonl)?;
    let bytes = std::fs::read(pcapng).map_err(|e| format!("{}: {e}", pcapng.display()))?;
    let capture = netsim::pcapng::read(&bytes).map_err(|e| format!("{}: {e}", pcapng.display()))?;

    let counts = capture.counts_per_link();
    let mut cap = LinkCounts::new();
    for (i, (node, port, _)) in capture.ifaces.iter().enumerate() {
        if counts[i] > 0 {
            cap.insert((*node, *port), counts[i]);
        }
    }
    if tx != cap {
        for (link, n) in &tx {
            let got = cap.get(link).copied().unwrap_or(0);
            if got != *n {
                return Err(format!(
                    "trace reconciliation failed at link n{}.p{}: jsonl has {n} tx record(s), \
                     pcapng has {got} packet(s)",
                    link.0, link.1
                ));
            }
        }
        for (link, n) in &cap {
            if !tx.contains_key(link) {
                return Err(format!(
                    "trace reconciliation failed at link n{}.p{}: pcapng has {n} packet(s), \
                     jsonl has none",
                    link.0, link.1
                ));
            }
        }
        return Err("trace reconciliation failed (count maps differ)".into());
    }
    let jsonl_tx: u64 = tx.values().sum();
    Ok(TraceValidation {
        jsonl_records,
        jsonl_tx,
        pcapng_packets: capture.packets.len() as u64,
        links: tx.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use expt::json::Json;
    use expt::scenario::Scenario;

    fn tiny(topology: &str, policy: &str, transport: &str, trace: bool) -> Scenario {
        let trace_part = if trace {
            r#","trace": {"jsonl": "t.jsonl", "pcapng": "t.pcapng"}"#
        } else {
            ""
        };
        let json = format!(
            r#"{{"name": "t",
                "topology": {{"kind": "{topology}"}},
                "workload": {{"kind": "incast", "senders": 2, "flow_kb": 6}},
                "switch": {{"policy": "{policy}"}},
                "transport": {{"kind": "{transport}"}},
                "run": {{"duration_ms": 5, "seed": 1}}{trace_part}}}"#
        );
        Scenario::from_doc(&Json::parse(&json).unwrap(), "t").unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("opera-scenario-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn unknown_names_fail_before_running() {
        let sc = tiny("atlantis", "ndp_trim", "ndp", false);
        let err = run_scenario(&sc, &tmp("topo")).unwrap_err();
        assert!(
            err.contains("atlantis") && err.contains("known topologies"),
            "{err}"
        );

        let sc = tiny("expander", "redlight", "ndp", false);
        let err = run_scenario(&sc, &tmp("pol")).unwrap_err();
        assert!(
            err.contains("redlight") && err.contains("known policies"),
            "{err}"
        );

        let sc = tiny("expander", "ndp_trim", "smtp", false);
        let err = run_scenario(&sc, &tmp("tr")).unwrap_err();
        assert!(
            err.contains("smtp") && err.contains("known transports"),
            "{err}"
        );
    }

    #[test]
    fn traced_run_reconciles_and_is_behavior_invariant() {
        // Run once without tracing, once with: metrics must be identical
        // (tracing is pure observation) and the traces must reconcile.
        let dir = tmp("recon");
        let plain = run_scenario(&tiny("expander", "ndp_trim", "ndp", false), &dir).unwrap();
        let traced = run_scenario(&tiny("expander", "ndp_trim", "ndp", true), &dir).unwrap();
        assert_eq!(plain.rows.len(), 1);
        let (p, t) = (&plain.rows[0].1, &traced.rows[0].1);
        assert_eq!(p.completed, t.completed);
        assert_eq!(p.avg_fct_us, t.avg_fct_us);
        assert_eq!(p.trimmed, t.trimmed);
        assert!(t.completed == 2, "incast should complete: {t:?}");

        let v = traced.validation.expect("validation ran");
        assert!(v.jsonl_tx > 0);
        assert_eq!(v.jsonl_tx, v.pcapng_packets);
        assert!(v.jsonl_records > v.jsonl_tx, "jsonl also has non-tx events");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reconcile_detects_divergence() {
        let dir = tmp("diverge");
        let traced = run_scenario(&tiny("expander", "ndp_trim", "ndp", true), &dir).unwrap();
        let jsonl = traced.trace_jsonl.unwrap();
        // Drop one tx line from the jsonl: reconciliation must name a link.
        let text = std::fs::read_to_string(&jsonl).unwrap();
        let mut dropped = false;
        let filtered: Vec<&str> = text
            .lines()
            .filter(|l| {
                if !dropped && l.contains("\"event\":\"tx\"") {
                    dropped = true;
                    false
                } else {
                    true
                }
            })
            .collect();
        std::fs::write(&jsonl, filtered.join("\n") + "\n").unwrap();
        let err = reconcile_traces(&jsonl, &traced.trace_pcapng.unwrap()).unwrap_err();
        assert!(err.contains("reconciliation failed at link"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn opera_topology_runs_traced() {
        let dir = tmp("opera");
        let report = run_scenario(&tiny("opera", "ndp_trim", "ndp", true), &dir).unwrap();
        let v = report.validation.expect("validation ran");
        assert!(v.jsonl_tx > 0, "opera incast produced no transmissions");
        assert!(report.csv.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
