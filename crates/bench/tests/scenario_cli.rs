//! CLI acceptance tests for `opera_orchestrate`'s name validation and
//! the `run-scenario` subcommand, driving the real binary.
//!
//! The regression of record: an empty or unknown driver list must be a
//! hard named error *before any job is scheduled* — never an exit-0 run
//! of zero jobs that CI reads as green. Same rule for `resume` against
//! a corrupted manifest and for `run-scenario` with unknown names.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn orchestrate() -> &'static str {
    env!("CARGO_BIN_EXE_opera_orchestrate")
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("scenario-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn run(args: &[&str]) -> Output {
    Command::new(orchestrate())
        .args(args)
        .output()
        .expect("spawn opera_orchestrate")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The repo-root `scenarios/` directory (tests run with the crate as
/// cwd, two levels down).
fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

#[test]
fn unknown_driver_is_exit_2_with_known_list() {
    let out = run(&["--drivers", "fig99_nonexistent", "--no-write"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(err.contains("fig99_nonexistent"), "{err}");
    assert!(err.contains("known drivers"), "{err}");
}

#[test]
fn empty_plan_driver_list_is_a_hard_error() {
    let dir = scratch("empty-plan");
    let plan = dir.join("plan.json");
    std::fs::write(&plan, r#"{"drivers": [], "shards": 1}"#).unwrap();
    let out = run(&["--plan", plan.to_str().unwrap(), "--no-write"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "empty driver list must not exit 0: {}",
        stderr_of(&out)
    );
    assert!(
        stderr_of(&out).contains("empty driver list"),
        "{}",
        stderr_of(&out)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_manifest_with_unknown_driver() {
    let dir = scratch("resume-unknown");
    // A quick real run writes a valid manifest...
    let out = run(&[
        "--drivers",
        "fig14_cycle_time_scaling",
        "--shards",
        "1",
        "--quick",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    // ...which we then corrupt to name a driver that does not exist.
    let manifest = dir.join("run.json");
    let text = std::fs::read_to_string(&manifest).unwrap();
    std::fs::write(
        &manifest,
        text.replace("fig14_cycle_time_scaling", "fig14_cycle_time_scalng"),
    )
    .unwrap();
    let out = run(&["resume", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(err.contains("fig14_cycle_time_scalng"), "{err}");
    assert!(err.contains("known drivers"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_scenario_missing_file_is_exit_2() {
    let out = run(&["run-scenario", "/nonexistent/never.toml"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("never.toml"),
        "{}",
        stderr_of(&out)
    );
}

#[test]
fn run_scenario_unknown_policy_is_exit_2_before_running() {
    let dir = scratch("bad-policy");
    let sc = dir.join("bad.toml");
    std::fs::write(
        &sc,
        "[topology]\nkind = \"expander\"\n\
         [workload]\nkind = \"incast\"\nsenders = 2\nflow_kb = 6\n\
         [switch]\npolicy = \"redlight\"\n\
         [transport]\nkind = \"ndp\"\n\
         [run]\nduration_ms = 5\nseed = 1\n",
    )
    .unwrap();
    let out = run(&[
        "run-scenario",
        sc.to_str().unwrap(),
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(
        err.contains("redlight") && err.contains("known policies"),
        "{err}"
    );
    // Nothing was written: validation failed before any simulation.
    assert!(!dir.join("bad").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_scenario_unknown_key_is_exit_2() {
    let dir = scratch("bad-key");
    let sc = dir.join("typo.toml");
    std::fs::write(
        &sc,
        "[topology]\nkind = \"expander\"\n\
         [workload]\nkind = \"incast\"\nsenders = 2\nflow_kb = 6\n\
         [switch]\npoliciy = \"ndp_trim\"\n\
         [transport]\nkind = \"ndp\"\n\
         [run]\nduration_ms = 5\nseed = 1\n",
    )
    .unwrap();
    let out = run(&[
        "run-scenario",
        sc.to_str().unwrap(),
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    assert!(stderr_of(&out).contains("policiy"), "{}", stderr_of(&out));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_scenario_tiny_incast_end_to_end() {
    let dir = scratch("tiny");
    let sc = scenarios_dir().join("tiny_incast.toml");
    let out = run(&[
        "run-scenario",
        sc.to_str().unwrap(),
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("traces reconciled"), "{stdout}");
    let base = dir.join("tiny_incast");
    assert!(base.join("tiny_incast.csv").exists());
    assert!(base.join("trace.jsonl").exists());
    assert!(base.join("trace.pcapng").exists());
    let _ = std::fs::remove_dir_all(&dir);
}
