//! Real-binary acceptance tests for [`bench::backend::SubprocessBackend`]:
//! a subprocess-orchestrated run must be byte-identical to the in-process
//! backend, and every child failure mode (non-zero exit, signal death,
//! missing documents, unparseable documents) must surface as a per-job
//! error rather than taking the sweep down.
//!
//! These live in the bench crate (not the root tests/) because cargo
//! only guarantees driver binaries are built — and exposes their paths
//! via `CARGO_BIN_EXE_<name>` — for the crate that defines them.

use bench::backend::{LocalBackend, SubprocessBackend};
use expt::orchestrate::{Backend, OrchestrateError, Orchestrator, Plan, ShardJob};
use expt::{ExptArgs, Scale};
use std::path::{Path, PathBuf};

const DRIVER: &str = "fig14_cycle_time_scaling";

fn quick_args() -> ExptArgs {
    ExptArgs {
        scale: Scale::Quick,
        no_write: true,
        ..ExptArgs::default()
    }
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("orch-subproc-{tag}-{}", std::process::id()))
}

/// The directory holding the real driver binaries for this test build.
fn bin_dir() -> PathBuf {
    Path::new(env!("CARGO_BIN_EXE_fig14_cycle_time_scaling"))
        .parent()
        .unwrap()
        .to_path_buf()
}

/// The headline guarantee: spawning the real driver binary per shard
/// job merges to output byte-identical to the in-process backend (which
/// the tier-1 suite separately proves identical to unsharded
/// `--threads 1`).
#[test]
fn subprocess_run_is_byte_identical_to_local() {
    let plan = Plan {
        drivers: vec![DRIVER.to_string()],
        shards: 2,
        retries: 0,
    };
    let sub = Orchestrator::new(
        SubprocessBackend::new(quick_args(), bin_dir()).with_scratch(scratch("ident")),
        2,
    );
    let sub_report = sub.run(&plan).expect("subprocess run succeeds");

    let local = Orchestrator::new(LocalBackend::new(quick_args()), 2);
    let local_report = local.run(&plan).unwrap();

    let (s, l) = (&sub_report.drivers[0], &local_report.drivers[0]);
    assert_eq!(s.merged.len(), l.merged.len());
    for (sm, lm) in s.merged.iter().zip(&l.merged) {
        assert_eq!(sm.table, lm.table);
        assert_eq!(
            sm.to_csv(),
            lm.to_csv(),
            "{DRIVER}/{}: subprocess merge differs from local",
            sm.table
        );
    }
    // Stronger than CSV equality: the shard documents themselves are
    // byte-identical, so resume can mix backends freely.
    for (sd, ld) in s.shard_docs.iter().zip(&l.shard_docs) {
        assert_eq!(sd.len(), ld.len());
        for (a, b) in sd.iter().zip(ld) {
            assert_eq!(a.render(), b.render());
        }
    }
}

/// Install a fake driver shell script so the failure-mapping tests can
/// exercise exits the real drivers never produce.
#[cfg(unix)]
fn fake_driver(dir: &Path, name: &str, body: &str) {
    use std::os::unix::fs::PermissionsExt;
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, format!("#!/bin/sh\n{body}\n")).unwrap();
    std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o755)).unwrap();
}

#[cfg(unix)]
fn run_fake(name: &str, body: &str) -> Result<Vec<String>, String> {
    let dir = scratch(&format!("bin-{name}"));
    fake_driver(&dir, name, body);
    let b = SubprocessBackend::new(quick_args(), dir.clone())
        .with_scratch(scratch(&format!("job-{name}")));
    let res = b.run_shard(&ShardJob {
        driver: name.to_string(),
        shard: (0, 1),
    });
    let _ = std::fs::remove_dir_all(&dir);
    res
}

/// A non-zero exit maps to an error naming the exit status and carrying
/// the child's stderr tail.
#[cfg(unix)]
#[test]
fn nonzero_exit_names_status_and_stderr_tail() {
    let err = run_fake("fake_exit", "echo boom >&2\nexit 3").unwrap_err();
    assert!(err.contains("exit status: 3"), "{err}");
    assert!(err.contains("boom"), "stderr tail missing: {err}");
}

/// A child killed by a signal (segfault, abort, OOM) maps to an error
/// naming the signal.
#[cfg(unix)]
#[test]
fn signal_death_names_the_signal() {
    let err = run_fake("fake_sig", "kill -9 $$").unwrap_err();
    assert!(err.contains("killed by signal 9"), "{err}");
}

/// A child that exits 0 without writing shard documents is still a
/// job failure — silence is never success.
#[cfg(unix)]
#[test]
fn silent_success_without_documents_is_an_error() {
    let err = run_fake("fake_silent", "exit 0").unwrap_err();
    assert!(err.contains("wrote no shard documents"), "{err}");
}

/// A child that writes unparseable documents fails at the orchestrator's
/// validation layer, consuming retry budget like any other job error.
#[cfg(unix)]
#[test]
fn garbage_documents_are_a_job_failure() {
    let dir = scratch("bin-garbage");
    fake_driver(
        &dir,
        "fake_garbage",
        r#"out=""
while [ $# -gt 0 ]; do
  if [ "$1" = "--out" ]; then out="$2"; shift; fi
  shift
done
mkdir -p "$out/fake_garbage/shards"
printf '{ not json' > "$out/fake_garbage/shards/t.shard0of1.json""#,
    );
    let orch = Orchestrator::new(
        SubprocessBackend::new(quick_args(), dir.clone()).with_scratch(scratch("job-garbage")),
        1,
    );
    let err = orch
        .run(&Plan {
            drivers: vec!["fake_garbage".to_string()],
            shards: 1,
            retries: 0,
        })
        .unwrap_err();
    let _ = std::fs::remove_dir_all(&dir);
    match err {
        OrchestrateError::Job { job, error, .. } => {
            assert_eq!(job.driver, "fake_garbage");
            assert!(!error.is_empty());
        }
        other => panic!("expected a job error, got: {other}"),
    }
}
