//! Criterion microbenchmarks of the simulator's hot paths: event queue,
//! factorization + Kempe mixing, per-slice table construction, packet
//! forwarding through the fabric, the max-min and MCF solvers, and
//! spectral analysis.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use simkit::engine::{EventContext, EventHandler, Simulator};
use simkit::{SimRng, SimTime};
use std::time::Duration;

struct Ticker {
    remaining: u64,
}
impl EventHandler for Ticker {
    type Event = u32;
    fn handle_event(&mut self, _ev: u32, ctx: &mut EventContext<'_, u32>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.schedule_in(SimTime::from_ns(100), 0);
        }
    }
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("simkit_100k_events", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(Ticker { remaining: 100_000 });
            sim.schedule_at(SimTime::ZERO, 0);
            sim.run();
            sim.events_processed()
        })
    });
}

fn bench_factorization(c: &mut Criterion) {
    c.bench_function("factorize_108_racks_mixed", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(1);
            topo::matching::factorize_complete(108, &mut rng).len()
        })
    });
    c.bench_function("lifted_factorize_432_racks", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(1);
            topo::lifting::factorize_lifted(432, &mut rng).len()
        })
    });
}

fn bench_tables(c: &mut Criterion) {
    let topo = topo::opera::OperaTopology::generate(topo::opera::OperaParams::example_648(), 1);
    c.bench_function("slice_graph_bfs_648", |b| {
        b.iter(|| topo.slice(17).graph().path_length_stats())
    });
    c.bench_function("build_bulk_tables_648", |b| {
        b.iter(|| opera::tables::BulkTables::build(&topo))
    });
}

fn bench_packet_sim(c: &mut Criterion) {
    use opera::{opera_net, OperaNetConfig};
    use workloads::FlowSpec;
    c.bench_function("opera_32host_1MB_bulk_flow", |b| {
        b.iter_batched(
            || {
                opera_net::build(
                    OperaNetConfig::small_test(),
                    vec![FlowSpec {
                        src: 0,
                        dst: 31,
                        size: 1_000_000,
                        start: SimTime::ZERO,
                    }],
                )
            },
            |mut sim| {
                sim.run_until(SimTime::from_ms(30));
                sim.events_processed()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_solvers(c: &mut Criterion) {
    use flowsim::models::Demand;
    let topo = topo::opera::OperaTopology::generate(
        topo::opera::OperaParams {
            racks: 108,
            uplinks: 6,
            hosts_per_rack: 6,
            groups: 1,
        },
        2,
    );
    let demands: Vec<Demand> = (0..108)
        .map(|r| Demand {
            src: r,
            dst: (r + 54) % 108,
            amount: 60.0,
        })
        .collect();
    c.bench_function("flowsim_opera_mesh_108", |b| {
        b.iter(|| flowsim::opera_model(&topo, &demands, 10.0, 0.98, true).delivered())
    });

    let exp = topo::expander::ExpanderTopology::generate(
        topo::expander::ExpanderParams::example_650(),
        3,
    );
    let tor: Vec<usize> = (0..130).collect();
    let dem: Vec<Demand> = (0..130)
        .map(|r| Demand {
            src: r,
            dst: (r + 65) % 130,
            amount: 50.0,
        })
        .collect();
    c.bench_function("mcf_expander_130_20phases", |b| {
        b.iter(|| flowsim::max_concurrent_flow(exp.graph(), &tor, &dem, 10.0, 50.0, 20).lambda)
    });

    // Same solve through a kept solver instance: isolates the steady
    // state (CSR + reverse adjacency built once, scratch/heap recycled)
    // from the one-shot wrapper above.
    let mut solver = flowsim::McfSolver::new(exp.graph());
    c.bench_function("mcf_expander_130_20phases_reused", |b| {
        b.iter(|| solver.solve(&tor, &dem, 10.0, 50.0, 20).lambda)
    });

    // Warm-started α-sweep step: the prior point's multiplicative-
    // weights state seeds the next solve, as fig10/fig12 drive it.
    let (_, state) = solver.solve_warm(None, &tor, &dem, 10.0, 50.0, 10);
    c.bench_function("mcf_expander_130_warm_continue_20", |b| {
        b.iter(|| {
            solver
                .solve_warm(Some(&state), &tor, &dem, 10.0, 50.0, 20)
                .0
                .lambda
        })
    });
}

fn bench_spectral(c: &mut Criterion) {
    let exp = topo::expander::ExpanderTopology::generate(
        topo::expander::ExpanderParams::example_650(),
        4,
    );
    c.bench_function("spectral_gap_130racks", |b| {
        b.iter(|| topo::spectral::adjacency_spectrum(exp.graph(), 300, 1).gap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_event_queue,
        bench_factorization,
        bench_tables,
        bench_packet_sim,
        bench_solvers,
        bench_spectral
}
criterion_main!(benches);
