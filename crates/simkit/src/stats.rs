//! Streaming statistics for experiment harnesses.
//!
//! Everything the paper reports is a percentile (99th-percentile FCT), a CDF
//! (path lengths, RTTs), or a time series (delivered throughput). This module
//! provides the corresponding accumulators:
//!
//! * [`Samples`] — exact percentiles/CDFs over a stored sample set,
//! * [`LogHistogram`] — bounded-memory log-spaced histogram for huge runs,
//! * [`TimeSeries`] — binned byte/packet counters for throughput-vs-time,
//! * [`Counter`] — simple running totals and means.

use crate::time::SimTime;

/// Exact sample set with percentile and CDF queries.
///
/// Stores every sample; suitable for up to tens of millions of points.
///
/// **NaN policy:** a NaN observation carries no ordering information,
/// so it is counted ([`Samples::nan_count`]) but excluded from the
/// stored set — [`Samples::len`], quantiles, mean, min/max and the CDFs
/// are computed over the non-NaN observations only, and a set fed
/// nothing but NaN behaves as empty (`None` summaries). One degenerate
/// FCT sample therefore degrades one statistic instead of aborting the
/// whole driver run. The sort itself uses [`f64::total_cmp`] as a
/// second line of defense: even a NaN that somehow reached `values`
/// could not panic the comparator.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
    nan_seen: usize,
}

impl Samples {
    /// Empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation. NaN observations are counted separately and
    /// excluded from every statistic (see the type-level NaN policy).
    pub fn push(&mut self, v: f64) {
        if v.is_nan() {
            self.nan_seen += 1;
            return;
        }
        self.values.push(v);
        self.sorted = false;
    }

    /// Number of retained (non-NaN) observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Number of NaN observations dropped at ingestion.
    pub fn nan_count(&self) -> usize {
        self.nan_seen
    }

    /// True if no (non-NaN) observations recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values.sort_unstable_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) using nearest-rank on sorted samples.
    /// Returns `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.values.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.values[rank - 1])
    }

    /// Convenience: 99th percentile.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Arithmetic mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Maximum value.
    pub fn max(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.values.last().copied()
    }

    /// Minimum value.
    pub fn min(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.values.first().copied()
    }

    /// Empirical CDF evaluated at each of `points`: fraction of samples ≤ p.
    pub fn cdf_at(&mut self, points: &[f64]) -> Vec<f64> {
        self.ensure_sorted();
        let n = self.values.len();
        points
            .iter()
            .map(|&p| {
                let cnt = self.values.partition_point(|&v| v <= p);
                if n == 0 {
                    0.0
                } else {
                    cnt as f64 / n as f64
                }
            })
            .collect()
    }

    /// Full `(value, cumulative fraction)` CDF over distinct sample values.
    pub fn cdf(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.values.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let v = self.values[i];
            let mut j = i + 1;
            while j < n && self.values[j] == v {
                j += 1;
            }
            out.push((v, j as f64 / n as f64));
            i = j;
        }
        out
    }
}

/// Log-spaced histogram: constant memory, ~`buckets_per_decade` relative
/// resolution. Used when a run would produce too many samples to store.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    min_value: f64,
    buckets_per_decade: f64,
    counts: Vec<u64>,
    underflow: u64,
    total: u64,
}

impl LogHistogram {
    /// Histogram covering `[min_value, ∞)` with the given resolution.
    pub fn new(min_value: f64, buckets_per_decade: usize, decades: usize) -> Self {
        LogHistogram {
            min_value,
            buckets_per_decade: buckets_per_decade as f64,
            counts: vec![0; buckets_per_decade * decades + 1],
            underflow: 0,
            total: 0,
        }
    }

    fn bucket_of(&self, v: f64) -> Option<usize> {
        if v < self.min_value {
            return None;
        }
        let b = ((v / self.min_value).log10() * self.buckets_per_decade) as usize;
        Some(b.min(self.counts.len() - 1))
    }

    /// Record one observation.
    pub fn record(&mut self, v: f64) {
        self.total += 1;
        match self.bucket_of(v) {
            Some(b) => self.counts[b] += 1,
            None => self.underflow += 1,
        }
    }

    /// Number recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Approximate `q`-quantile (upper bucket edge), `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut cum = self.underflow;
        if cum >= target {
            return Some(self.min_value);
        }
        for (b, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                let edge = self.min_value * 10f64.powf((b as f64 + 1.0) / self.buckets_per_decade);
                return Some(edge);
            }
        }
        Some(f64::INFINITY)
    }
}

/// Fixed-width time bins accumulating a quantity (e.g. bytes delivered) for
/// throughput-vs-time plots such as the paper's Figure 8.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bin: SimTime,
    bins: Vec<f64>,
}

impl TimeSeries {
    /// Series with bins of width `bin`.
    pub fn new(bin: SimTime) -> Self {
        assert!(bin.as_ns() > 0, "zero-width bin");
        TimeSeries { bin, bins: vec![] }
    }

    /// Add `amount` at time `t`.
    pub fn record(&mut self, t: SimTime, amount: f64) {
        let idx = (t.as_ns() / self.bin.as_ns()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += amount;
    }

    /// Bin width.
    pub fn bin_width(&self) -> SimTime {
        self.bin
    }

    /// `(bin start time, total in bin)` pairs.
    pub fn series(&self) -> Vec<(SimTime, f64)> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &v)| (SimTime::from_ns(i as u64 * self.bin.as_ns()), v))
            .collect()
    }

    /// Per-bin rate: total divided by bin width in seconds.
    pub fn rate_per_sec(&self) -> Vec<(SimTime, f64)> {
        let w = self.bin.as_secs_f64();
        self.series().into_iter().map(|(t, v)| (t, v / w)).collect()
    }

    /// Sum over all bins.
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }
}

/// Running total and mean.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counter {
    sum: f64,
    n: u64,
}

impl Counter {
    /// Fresh counter.
    pub fn new() -> Self {
        Self::default()
    }
    /// Add an observation.
    pub fn add(&mut self, v: f64) {
        self.sum += v;
        self.n += 1;
    }
    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }
    /// Count of observations.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.sum / self.n as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_exact() {
        let mut s = Samples::new();
        for v in 1..=100 {
            s.push(v as f64);
        }
        assert_eq!(s.quantile(0.5), Some(50.0));
        assert_eq!(s.p99(), Some(99.0));
        assert_eq!(s.quantile(1.0), Some(100.0));
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(100.0));
        assert_eq!(s.mean(), Some(50.5));
    }

    #[test]
    fn quantile_empty_none() {
        let mut s = Samples::new();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn nan_samples_are_dropped_not_fatal() {
        // Regression: `ensure_sorted` used `partial_cmp(..).expect("NaN
        // sample")`, so a single NaN observation aborted the whole run
        // the first time anything asked for a quantile.
        let mut s = Samples::new();
        s.push(f64::NAN);
        assert!(s.is_empty());
        assert_eq!(s.nan_count(), 1);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
        for v in [2.0, f64::NAN, 1.0, 3.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.nan_count(), 2);
        assert_eq!(s.quantile(0.5), Some(2.0));
        assert_eq!(s.p99(), Some(3.0));
        assert_eq!(s.mean(), Some(2.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
        assert_eq!(s.cdf_at(&[2.5]), vec![2.0 / 3.0]);
        assert_eq!(s.cdf().len(), 3);
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let mut s = Samples::new();
        for v in [3.0, 1.0, 2.0, 2.0, 5.0] {
            s.push(v);
        }
        let cdf = s.cdf();
        assert_eq!(cdf.len(), 4); // distinct values
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(s.cdf_at(&[0.0, 2.0, 10.0]), vec![0.0, 0.6, 1.0]);
    }

    #[test]
    fn log_histogram_percentile_close() {
        let mut h = LogHistogram::new(1.0, 100, 9);
        for v in 1..=10_000 {
            h.record(v as f64);
        }
        let p99 = h.quantile(0.99).unwrap();
        let exact = 9900.0;
        assert!(
            (p99 / exact - 1.0).abs() < 0.05,
            "p99 {p99} vs exact {exact}"
        );
        assert_eq!(h.total(), 10_000);
    }

    #[test]
    fn log_histogram_underflow() {
        let mut h = LogHistogram::new(10.0, 10, 3);
        h.record(1.0);
        h.record(5.0);
        assert_eq!(h.quantile(0.5), Some(10.0));
    }

    #[test]
    fn time_series_bins() {
        let mut ts = TimeSeries::new(SimTime::from_ms(1));
        ts.record(SimTime::from_us(100), 1000.0);
        ts.record(SimTime::from_us(900), 500.0);
        ts.record(SimTime::from_us(1500), 2000.0);
        let s = ts.series();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].1, 1500.0);
        assert_eq!(s[1].1, 2000.0);
        assert_eq!(ts.total(), 3500.0);
        let r = ts.rate_per_sec();
        assert!((r[0].1 - 1_500_000.0).abs() < 1e-6);
    }

    #[test]
    fn counter_mean() {
        let mut c = Counter::new();
        assert_eq!(c.mean(), None);
        c.add(2.0);
        c.add(4.0);
        assert_eq!(c.mean(), Some(3.0));
        assert_eq!(c.sum(), 6.0);
        assert_eq!(c.count(), 2);
    }
}
