//! The discrete-event engine.
//!
//! The scheduler is a **hierarchical timing wheel** (Varghese & Lauck)
//! rather than the classic binary-heap calendar queue: 11 levels of 64
//! slots each, level *k* bucketing times by their *k*-th 6-bit digit, so
//! the levels together cover every `u64` nanosecond timestamp with no
//! separate overflow structure. The workload this engine exists for —
//! packet simulation of rotor networks — schedules almost everything on
//! a small set of known slot boundaries (rotor reconfigurations,
//! timeslot edges, back-to-back serialization times), which a wheel
//! turns into O(1) bucket appends and bulk drains where a heap pays a
//! `log n` sift per event.
//!
//! Determinism is unchanged from the heap engine: every entry carries a
//! monotonically increasing sequence number, buckets only ever receive
//! appends in sequence order (direct inserts happen strictly after any
//! cascade into the same bucket), and a drained level-0 bucket holds
//! exactly one timestamp — so simultaneous events fire in *exactly* the
//! FIFO order the heap produced, and whole simulations stay reproducible
//! bit-for-bit from a seed. The `goldens/` CSVs are the proof: they were
//! recorded under the heap engine and must stay byte-identical.
//!
//! Components do not hold references to each other. Instead, a single
//! *world* type (e.g. `netsim::Network`) owns all components and dispatches
//! events to them, scheduling follow-up events through [`EventContext`].
//! This keeps the design free of `Rc<RefCell<..>>` aliasing while remaining
//! fast: a couple of bit operations per event and no dynamic dispatch on
//! the hot path.

use crate::time::SimTime;
use std::collections::HashSet;

/// Identifies a logical component within a world. Worlds assign these
/// themselves; the engine treats them as opaque.
pub type HandlerId = u32;

/// Name of the scheduler implementation behind [`EventQueue`], recorded
/// into `BENCH_hot_paths.json` entries so the perf trajectory says which
/// engine produced each number.
pub const ENGINE_NAME: &str = "timing_wheel";

/// Bits per wheel digit: 64 slots per level.
const BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Levels: ⌈64 / 6⌉ = 11 six-bit digits cover every `u64` timestamp, so
/// arbitrarily far-future events land in a top-level slot instead of a
/// separate overflow queue.
const LEVELS: usize = 11;

/// A handle for cancelling a scheduled event, returned by the
/// `*_cancellable` scheduling methods.
///
/// Cancellation is lazy (tombstoned): the entry stays in its bucket until
/// the wheel reaches it, then is skipped. Cancelling a token whose event
/// has already fired is a caller bug — the engine cannot detect it, and
/// it corrupts [`EventQueue::len`] accounting — so hold tokens only for
/// events known to be pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

/// One wheel level: 64 buckets plus an occupancy bitmap so the scheduler
/// skips empty slots with a `trailing_zeros` instead of ticking through
/// them.
#[derive(Debug)]
struct Level<E> {
    slots: [Vec<Entry<E>>; SLOTS],
    occupied: u64,
}

impl<E> Level<E> {
    fn new() -> Self {
        Level {
            slots: std::array::from_fn(|_| Vec::new()),
            occupied: 0,
        }
    }
}

/// The digit of `t` at wheel level `k`.
#[inline]
fn digit(t: u64, level: usize) -> usize {
    ((t >> (BITS as usize * level)) & (SLOTS as u64 - 1)) as usize
}

/// Scheduling interface handed to event handlers while they run.
///
/// Holds the current simulation time and the pending-event queue; handlers
/// use it to schedule follow-up events.
pub struct EventContext<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> EventContext<'a, E> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — time travel indicates a logic error
    /// in the caller and must never be silently reordered.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: now={} at={}",
            self.now,
            at
        );
        self.queue.push(at, event);
    }

    /// Like [`EventContext::schedule_in`], returning a token that can
    /// cancel the event while it is still pending.
    pub fn schedule_in_cancellable(&mut self, delay: SimTime, event: E) -> EventToken {
        self.queue.push(self.now + delay, event)
    }

    /// Like [`EventContext::schedule_at`], returning a cancellation token.
    pub fn schedule_at_cancellable(&mut self, at: SimTime, event: E) -> EventToken {
        assert!(
            at >= self.now,
            "scheduling into the past: now={} at={}",
            self.now,
            at
        );
        self.queue.push(at, event)
    }

    /// Cancel a pending event. Returns `true` if this call newly marked
    /// the event cancelled. See [`EventToken`] for the pending-only
    /// contract.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        self.queue.cancel(token)
    }
}

/// The pending-event queue: the hierarchical timing wheel.
pub struct EventQueue<E> {
    levels: Vec<Level<E>>,
    /// Wheel position: the tick (ns) of the bucket currently being
    /// drained — all pending events are at `time >= cursor`.
    cursor: u64,
    /// The earliest bucket, detached from its slot and reversed so FIFO
    /// pops come off the end (keeping the allocation recyclable).
    active: Vec<Entry<E>>,
    /// Recycled bucket allocations, so steady-state scheduling never
    /// allocates.
    spare: Vec<Vec<Entry<E>>>,
    /// Tombstoned sequence numbers awaiting lazy removal.
    cancelled: HashSet<u64>,
    /// Pending (non-cancelled) events.
    live: usize,
    next_seq: u64,
    peak: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Cap on the recycled-allocation pool; beyond this, exhausted buckets
/// are simply dropped.
const SPARE_CAP: usize = 256;

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            cursor: 0,
            active: Vec::new(),
            spare: Vec::new(),
            cancelled: HashSet::new(),
            live: 0,
            next_seq: 0,
            peak: 0,
        }
    }

    fn push(&mut self, time: SimTime, event: E) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(Entry { time, seq, event });
        self.live += 1;
        self.peak = self.peak.max(self.live);
        EventToken(seq)
    }

    /// File an entry into the wheel. The level is the position of the
    /// highest digit where the entry's time differs from the cursor —
    /// which is what makes slots unambiguous without modular wraparound:
    /// a time whose level-`k` digit is *behind* the cursor's must differ
    /// at some higher digit, so it files above, never into a stale slot.
    fn insert(&mut self, entry: Entry<E>) {
        let t = entry.time.as_ns();
        debug_assert!(t >= self.cursor, "insert before wheel cursor");
        let x = t ^ self.cursor;
        let level = if x == 0 {
            0
        } else {
            ((63 - x.leading_zeros()) / BITS) as usize
        };
        let slot = digit(t, level);
        let lv = &mut self.levels[level];
        let bucket = &mut lv.slots[slot];
        if bucket.capacity() == 0 {
            if let Some(recycled) = self.spare.pop() {
                *bucket = recycled;
            }
        }
        bucket.push(entry);
        lv.occupied |= 1 << slot;
    }

    /// Make `active` hold the earliest pending entry at its tail (reaping
    /// cancelled entries on the way). Returns `false` when no live event
    /// remains.
    fn ensure_front(&mut self) -> bool {
        loop {
            // Drain the detached bucket first: its entries carry the
            // smallest (time, seq) keys in the whole wheel.
            while let Some(e) = self.active.last() {
                if !self.cancelled.is_empty() && self.cancelled.remove(&e.seq) {
                    self.active.pop();
                    continue;
                }
                return true;
            }
            if let Some(recycled) = {
                let a = &mut self.active;
                (a.capacity() > 0 && self.spare.len() < SPARE_CAP).then(|| std::mem::take(a))
            } {
                self.spare.push(recycled);
            }
            if self.live == 0 {
                return false;
            }
            // Scan levels bottom-up for the next occupied slot at or
            // beyond the cursor's digit. Lower levels always hold earlier
            // times (a higher-level occupied slot exceeds the cursor's
            // digit there, putting its whole window later).
            let mut level = 0;
            loop {
                debug_assert!(level < LEVELS, "live events but an empty wheel");
                let from = digit(self.cursor, level);
                let hits = self.levels[level].occupied & (!0u64 << from);
                if hits == 0 {
                    level += 1;
                    continue;
                }
                let slot = hits.trailing_zeros() as usize;
                let lv = &mut self.levels[level];
                let mut bucket = std::mem::take(&mut lv.slots[slot]);
                lv.occupied &= !(1 << slot);
                if level == 0 {
                    // A level-0 bucket holds exactly one timestamp; move
                    // the cursor there and drain it FIFO (reversed, pops
                    // off the end).
                    self.cursor = bucket[0].time.as_ns();
                    bucket.reverse();
                    self.active = bucket;
                } else {
                    // Cascade: advance the cursor to the window start and
                    // re-file the bucket's entries one level (or more)
                    // down. Entries are re-filed in stored order, which
                    // is sequence order, so FIFO survives the cascade.
                    let shift = BITS as usize * level;
                    let hi = if shift + BITS as usize >= 64 {
                        0
                    } else {
                        (self.cursor >> (shift + BITS as usize)) << (shift + BITS as usize)
                    };
                    self.cursor = hi | ((slot as u64) << shift);
                    for e in bucket.drain(..) {
                        self.insert(e);
                    }
                    if self.spare.len() < SPARE_CAP {
                        self.spare.push(bucket);
                    }
                }
                break;
            }
        }
    }

    /// Remove and return the earliest event `(time, event)`; `None` when
    /// no live events remain.
    fn pop(&mut self) -> Option<(SimTime, E)> {
        if !self.ensure_front() {
            return None;
        }
        let e = self.active.pop().expect("ensure_front guarantees a tail");
        self.live -= 1;
        Some((e.time, e.event))
    }

    /// Time of the earliest pending event, without removing it.
    fn next_time(&mut self) -> Option<SimTime> {
        if !self.ensure_front() {
            return None;
        }
        Some(self.active.last().expect("non-empty").time)
    }

    /// Cancel the pending event behind `token`; `true` when this call
    /// newly tombstoned it.
    fn cancel(&mut self, token: EventToken) -> bool {
        if token.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(token.0) {
            self.live -= 1;
            true
        } else {
            false
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Largest number of simultaneously pending events seen so far.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

/// A world owns every simulated component and dispatches events to them.
pub trait EventHandler {
    /// The event payload type routed through the queue.
    type Event;

    /// Handle one event. `ctx` exposes the current time and scheduling.
    fn handle_event(&mut self, event: Self::Event, ctx: &mut EventContext<'_, Self::Event>);
}

/// The simulator: an event queue plus a clock, driving a world.
pub struct Simulator<W: EventHandler> {
    queue: EventQueue<W::Event>,
    now: SimTime,
    processed: u64,
    /// The world being simulated; public so callers can inspect and mutate
    /// component state between runs.
    pub world: W,
}

impl<W: EventHandler> Simulator<W> {
    /// Create a simulator at time zero around `world`.
    pub fn new(world: W) -> Self {
        Simulator {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            world,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Largest number of simultaneously pending events seen so far — the
    /// queue-pressure figure the perf trajectory records per scenario.
    pub fn peak_pending(&self) -> usize {
        self.queue.peak()
    }

    /// Schedule an event at absolute time `at` (must be ≥ now).
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) {
        assert!(at >= self.now, "scheduling into the past");
        self.queue.push(at, event);
    }

    /// Schedule an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: W::Event) {
        self.queue.push(self.now + delay, event);
    }

    /// Like [`Simulator::schedule_at`], returning a cancellation token.
    pub fn schedule_at_cancellable(&mut self, at: SimTime, event: W::Event) -> EventToken {
        assert!(at >= self.now, "scheduling into the past");
        self.queue.push(at, event)
    }

    /// Like [`Simulator::schedule_in`], returning a cancellation token.
    pub fn schedule_in_cancellable(&mut self, delay: SimTime, event: W::Event) -> EventToken {
        self.queue.push(self.now + delay, event)
    }

    /// Cancel a pending event. Returns `true` if this call newly marked
    /// the event cancelled. See [`EventToken`] for the pending-only
    /// contract.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        self.queue.cancel(token)
    }

    /// Process a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some((time, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "event from the past in queue");
        self.now = time;
        self.processed += 1;
        let mut ctx = EventContext {
            now: self.now,
            queue: &mut self.queue,
        };
        self.world.handle_event(event, &mut ctx);
        true
    }

    /// Run until the queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until simulated time exceeds `until` or the queue empties.
    /// Events at exactly `until` are processed. The clock is left at
    /// `max(now, until)` so subsequent scheduling is relative to `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.queue.next_time() {
            if t > until {
                break;
            }
            self.step();
        }
        if self.now < until {
            self.now = until;
        }
    }

    /// Run until at most `max_events` more events have been processed or the
    /// queue empties. Returns the number of events processed by this call.
    pub fn run_events(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that records the order events arrive in.
    struct Recorder {
        log: Vec<(u64, u32)>,
    }

    impl EventHandler for Recorder {
        type Event = u32;
        fn handle_event(&mut self, event: u32, ctx: &mut EventContext<'_, u32>) {
            self.log.push((ctx.now().as_ns(), event));
            // Event 1 spawns two children to exercise in-handler scheduling.
            if event == 1 {
                ctx.schedule_in(SimTime::from_ns(5), 10);
                ctx.schedule_in(SimTime::from_ns(5), 11);
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::new(Recorder { log: vec![] });
        sim.schedule_at(SimTime::from_ns(30), 3);
        sim.schedule_at(SimTime::from_ns(10), 1);
        sim.schedule_at(SimTime::from_ns(20), 2);
        sim.run();
        assert_eq!(
            sim.world.log,
            vec![(10, 1), (15, 10), (15, 11), (20, 2), (30, 3)]
        );
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut sim = Simulator::new(Recorder { log: vec![] });
        for i in 0..100u32 {
            sim.schedule_at(SimTime::from_ns(7), 100 + i);
        }
        sim.run();
        let order: Vec<u32> = sim.world.log.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, (100..200).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = Simulator::new(Recorder { log: vec![] });
        sim.schedule_at(SimTime::from_ns(10), 2);
        sim.schedule_at(SimTime::from_ns(100), 3);
        sim.run_until(SimTime::from_ns(50));
        assert_eq!(sim.world.log, vec![(10, 2)]);
        assert_eq!(sim.now(), SimTime::from_ns(50));
        assert_eq!(sim.pending(), 1);
        sim.run();
        assert_eq!(sim.world.log.len(), 2);
    }

    #[test]
    fn run_until_inclusive_boundary() {
        let mut sim = Simulator::new(Recorder { log: vec![] });
        sim.schedule_at(SimTime::from_ns(50), 2);
        sim.run_until(SimTime::from_ns(50));
        assert_eq!(sim.world.log, vec![(50, 2)]);
    }

    #[test]
    fn run_events_budget() {
        let mut sim = Simulator::new(Recorder { log: vec![] });
        for i in 0..10 {
            sim.schedule_at(SimTime::from_ns(i), i as u32 + 100);
        }
        assert_eq!(sim.run_events(4), 4);
        assert_eq!(sim.world.log.len(), 4);
        assert_eq!(sim.run_events(100), 6);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulator::new(Recorder { log: vec![] });
        sim.schedule_at(SimTime::from_ns(10), 1);
        sim.run();
        sim.schedule_at(SimTime::from_ns(5), 2);
    }

    #[test]
    fn empty_queue_step_false() {
        let mut sim = Simulator::new(Recorder { log: vec![] });
        assert!(!sim.step());
        assert!(sim.queue.is_empty());
        assert_eq!(EventQueue::<u32>::default().len(), 0);
    }

    /// The cascade-order trap: an event filed far ahead (level > 0, low
    /// seq) and one filed directly at the same timestamp later (level 0,
    /// higher seq) must still fire in seq order after the first cascades
    /// down. The wheel guarantees it structurally: a direct insert into
    /// a window's level-0 slot can only happen once the cursor is inside
    /// that window, i.e. strictly after the cascade filed its entries.
    #[test]
    fn cascaded_and_direct_same_time_keep_fifo() {
        let mut sim = Simulator::new(Recorder { log: vec![] });
        // Same timestamp, scheduled at wildly different distances: 101
        // is filed at a high level, 102 directly near the cursor once
        // time advances.
        sim.schedule_at(SimTime::from_ns(1 << 20), 101); // far: level 3
        sim.schedule_at(SimTime::from_ns(60), 100); // nudges the cursor
        sim.run_until(SimTime::from_ns(1 << 19));
        sim.schedule_at(SimTime::from_ns(1 << 20), 102); // near: lower level
        sim.run();
        let order: Vec<u32> = sim.world.log.iter().map(|&(_, e)| e).collect();
        assert_eq!(
            order,
            vec![100, 101, 102],
            "seq order across cascade depths"
        );
    }

    #[test]
    fn far_future_events_cross_every_level() {
        let mut sim = Simulator::new(Recorder { log: vec![] });
        // One event per wheel level, including the top (shift 60).
        let mut times: Vec<u64> = (0..11).map(|k| 1u64 << (6 * k)).collect();
        times.push(u64::MAX - 1);
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_ns(t), 100 + i as u32);
        }
        sim.run();
        let got: Vec<u64> = sim.world.log.iter().map(|&(t, _)| t).collect();
        assert_eq!(got, times, "popped in time order across all levels");
        assert_eq!(sim.events_processed(), 12);
    }

    #[test]
    fn cancellation_skips_events_and_updates_len() {
        let mut sim = Simulator::new(Recorder { log: vec![] });
        sim.schedule_at(SimTime::from_ns(10), 101);
        let tok = sim.schedule_at_cancellable(SimTime::from_ns(20), 102);
        sim.schedule_at(SimTime::from_ns(30), 103);
        assert_eq!(sim.pending(), 3);
        assert!(sim.cancel(tok));
        assert!(!sim.cancel(tok), "double-cancel reports false");
        assert_eq!(sim.pending(), 2);
        sim.run();
        let order: Vec<u32> = sim.world.log.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, vec![101, 103]);
        assert_eq!(sim.events_processed(), 2, "cancelled event never fires");
    }

    /// Cancelling the sole remaining event must empty the queue (pop
    /// returns None without firing the tombstone), and scheduling after
    /// that works normally.
    #[test]
    fn cancel_last_event_then_reschedule() {
        let mut sim = Simulator::new(Recorder { log: vec![] });
        let tok = sim.schedule_at_cancellable(SimTime::from_ns(10), 1);
        sim.cancel(tok);
        assert!(sim.queue.is_empty());
        sim.run();
        assert!(sim.world.log.is_empty());
        sim.schedule_at(SimTime::from_ns(40), 2);
        sim.run();
        assert_eq!(sim.world.log, vec![(40, 2)]);
    }

    #[test]
    fn in_handler_cancellation() {
        /// Cancels its sibling from inside the handler.
        struct Canceller {
            victim: Option<EventToken>,
            log: Vec<u32>,
        }
        impl EventHandler for Canceller {
            type Event = u32;
            fn handle_event(&mut self, ev: u32, ctx: &mut EventContext<'_, u32>) {
                self.log.push(ev);
                if ev == 1 {
                    let tok = ctx.schedule_in_cancellable(SimTime::from_ns(50), 99);
                    self.victim = Some(tok);
                    ctx.schedule_in(SimTime::from_ns(10), 2);
                } else if ev == 2 {
                    let tok = self.victim.take().expect("scheduled by event 1");
                    assert!(ctx.cancel(tok));
                }
            }
        }
        let mut sim = Simulator::new(Canceller {
            victim: None,
            log: vec![],
        });
        sim.schedule_at(SimTime::from_ns(5), 1);
        sim.run();
        assert_eq!(sim.world.log, vec![1, 2], "99 was cancelled in flight");
    }

    #[test]
    fn peak_pending_high_water() {
        let mut sim = Simulator::new(Recorder { log: vec![] });
        for i in 0..50 {
            sim.schedule_at(SimTime::from_ns(100 + i), i as u32);
        }
        assert_eq!(sim.peak_pending(), 50);
        sim.run();
        assert_eq!(sim.pending(), 0);
        assert_eq!(sim.peak_pending(), 50, "peak survives the drain");
    }
}
