//! The discrete-event engine.
//!
//! The engine follows the classic calendar-queue design of packet simulators
//! like `htsim`: a single priority queue of `(time, sequence, event)` entries.
//! The monotonically increasing sequence number gives *deterministic FIFO
//! ordering of simultaneous events*, which makes whole simulations
//! reproducible bit-for-bit from a seed.
//!
//! Components do not hold references to each other. Instead, a single
//! *world* type (e.g. `netsim::Network`) owns all components and dispatches
//! events to them, scheduling follow-up events through [`EventContext`].
//! This keeps the design free of `Rc<RefCell<..>>` aliasing while remaining
//! fast: one heap operation per event and no dynamic dispatch on the hot
//! path.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifies a logical component within a world. Worlds assign these
/// themselves; the engine treats them as opaque.
pub type HandlerId = u32;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    // Reversed: BinaryHeap is a max-heap, we want earliest-first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Scheduling interface handed to event handlers while they run.
///
/// Holds the current simulation time and the pending-event queue; handlers
/// use it to schedule follow-up events.
pub struct EventContext<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> EventContext<'a, E> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — time travel indicates a logic error
    /// in the caller and must never be silently reordered.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: now={} at={}",
            self.now,
            at
        );
        self.queue.push(at, event);
    }
}

/// The pending-event priority queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A world owns every simulated component and dispatches events to them.
pub trait EventHandler {
    /// The event payload type routed through the queue.
    type Event;

    /// Handle one event. `ctx` exposes the current time and scheduling.
    fn handle_event(&mut self, event: Self::Event, ctx: &mut EventContext<'_, Self::Event>);
}

/// The simulator: an event queue plus a clock, driving a world.
pub struct Simulator<W: EventHandler> {
    queue: EventQueue<W::Event>,
    now: SimTime,
    processed: u64,
    /// The world being simulated; public so callers can inspect and mutate
    /// component state between runs.
    pub world: W,
}

impl<W: EventHandler> Simulator<W> {
    /// Create a simulator at time zero around `world`.
    pub fn new(world: W) -> Self {
        Simulator {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            world,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule an event at absolute time `at` (must be ≥ now).
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) {
        assert!(at >= self.now, "scheduling into the past");
        self.queue.push(at, event);
    }

    /// Schedule an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: W::Event) {
        self.queue.push(self.now + delay, event);
    }

    /// Process a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some(entry) = self.queue.heap.pop() else {
            return false;
        };
        debug_assert!(entry.time >= self.now, "event from the past in queue");
        self.now = entry.time;
        self.processed += 1;
        let mut ctx = EventContext {
            now: self.now,
            queue: &mut self.queue,
        };
        self.world.handle_event(entry.event, &mut ctx);
        true
    }

    /// Run until the queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until simulated time exceeds `until` or the queue empties.
    /// Events at exactly `until` are processed. The clock is left at
    /// `max(now, until)` so subsequent scheduling is relative to `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(entry) = self.queue.heap.peek() {
            if entry.time > until {
                break;
            }
            self.step();
        }
        if self.now < until {
            self.now = until;
        }
    }

    /// Run until at most `max_events` more events have been processed or the
    /// queue empties. Returns the number of events processed by this call.
    pub fn run_events(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that records the order events arrive in.
    struct Recorder {
        log: Vec<(u64, u32)>,
    }

    impl EventHandler for Recorder {
        type Event = u32;
        fn handle_event(&mut self, event: u32, ctx: &mut EventContext<'_, u32>) {
            self.log.push((ctx.now().as_ns(), event));
            // Event 1 spawns two children to exercise in-handler scheduling.
            if event == 1 {
                ctx.schedule_in(SimTime::from_ns(5), 10);
                ctx.schedule_in(SimTime::from_ns(5), 11);
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::new(Recorder { log: vec![] });
        sim.schedule_at(SimTime::from_ns(30), 3);
        sim.schedule_at(SimTime::from_ns(10), 1);
        sim.schedule_at(SimTime::from_ns(20), 2);
        sim.run();
        assert_eq!(
            sim.world.log,
            vec![(10, 1), (15, 10), (15, 11), (20, 2), (30, 3)]
        );
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut sim = Simulator::new(Recorder { log: vec![] });
        for i in 0..100u32 {
            sim.schedule_at(SimTime::from_ns(7), 100 + i);
        }
        sim.run();
        let order: Vec<u32> = sim.world.log.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, (100..200).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = Simulator::new(Recorder { log: vec![] });
        sim.schedule_at(SimTime::from_ns(10), 2);
        sim.schedule_at(SimTime::from_ns(100), 3);
        sim.run_until(SimTime::from_ns(50));
        assert_eq!(sim.world.log, vec![(10, 2)]);
        assert_eq!(sim.now(), SimTime::from_ns(50));
        assert_eq!(sim.pending(), 1);
        sim.run();
        assert_eq!(sim.world.log.len(), 2);
    }

    #[test]
    fn run_until_inclusive_boundary() {
        let mut sim = Simulator::new(Recorder { log: vec![] });
        sim.schedule_at(SimTime::from_ns(50), 2);
        sim.run_until(SimTime::from_ns(50));
        assert_eq!(sim.world.log, vec![(50, 2)]);
    }

    #[test]
    fn run_events_budget() {
        let mut sim = Simulator::new(Recorder { log: vec![] });
        for i in 0..10 {
            sim.schedule_at(SimTime::from_ns(i), i as u32 + 100);
        }
        assert_eq!(sim.run_events(4), 4);
        assert_eq!(sim.world.log.len(), 4);
        assert_eq!(sim.run_events(100), 6);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulator::new(Recorder { log: vec![] });
        sim.schedule_at(SimTime::from_ns(10), 1);
        sim.run();
        sim.schedule_at(SimTime::from_ns(5), 2);
    }

    #[test]
    fn empty_queue_step_false() {
        let mut sim = Simulator::new(Recorder { log: vec![] });
        assert!(!sim.step());
        assert!(sim.queue.is_empty());
        assert_eq!(EventQueue::<u32>::default().len(), 0);
    }
}
