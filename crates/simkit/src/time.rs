//! Simulated time.
//!
//! Time is a `u64` count of nanoseconds since the start of the simulation.
//! One nanosecond resolution is sufficient for 10–400 Gb/s links (a 64-byte
//! header at 10 Gb/s serializes in 51.2 ns) and a `u64` covers ~584 years of
//! simulated time, so overflow is not a practical concern.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Nanoseconds per microsecond.
pub const NS_PER_US: u64 = 1_000;
/// Nanoseconds per millisecond.
pub const NS_PER_MS: u64 = 1_000_000;
/// Nanoseconds per second.
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any reachable simulation time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }
    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * NS_PER_US)
    }
    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * NS_PER_MS)
    }
    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NS_PER_SEC)
    }
    /// Construct from a floating-point number of seconds (rounds to ns).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s * NS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_ns(self) -> u64 {
        self.0
    }
    /// Time as floating-point microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / NS_PER_US as f64
    }
    /// Time as floating-point milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / NS_PER_MS as f64
    }
    /// Time as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NS_PER_SEC as f64
    }

    /// Saturating subtraction: `self - other`, clamped at zero.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    pub fn checked_add(self, other: SimTime) -> Option<SimTime> {
        self.0.checked_add(other.0).map(SimTime)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NS_PER_SEC {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if self.0 >= NS_PER_MS {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= NS_PER_US {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Time taken to serialize `bytes` bytes onto a link of `gbps` gigabits/s.
///
/// Rounds up to the next nanosecond so that back-to-back packets never
/// serialize in zero time.
pub fn serialization_ns(bytes: u64, gbps: f64) -> u64 {
    let bits = bytes as f64 * 8.0;
    (bits / gbps).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_us(90).as_ns(), 90_000);
        assert_eq!(SimTime::from_ms(11).as_ns(), 11_000_000);
        assert_eq!(SimTime::from_secs(2).as_ns(), 2 * NS_PER_SEC);
        assert!((SimTime::from_ms(250).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimTime::from_secs_f64(1e-9).as_ns(), 1);
        assert_eq!(SimTime::from_secs_f64(0.5).as_ns(), NS_PER_SEC / 2);
    }

    #[test]
    fn ordering_and_arith() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(25);
        assert!(a < b);
        assert_eq!((b - a).as_ns(), 15);
        assert_eq!((a + b).as_ns(), 35);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_ns(), 35);
    }

    #[test]
    fn serialization_time_10g() {
        // 1500-byte MTU at 10 Gb/s = 1.2us
        assert_eq!(serialization_ns(1500, 10.0), 1200);
        // 64-byte header at 10 Gb/s = 51.2ns -> rounds up to 52.
        assert_eq!(serialization_ns(64, 10.0), 52);
        // zero bytes serialize instantly
        assert_eq!(serialization_ns(0, 10.0), 0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_ns(5)), "5ns");
        assert_eq!(format!("{}", SimTime::from_us(5)), "5.000us");
        assert_eq!(format!("{}", SimTime::from_ms(5)), "5.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(5)), "5.000000s");
    }
}
