//! `simkit` — a deterministic discrete-event simulation engine.
//!
//! This crate is the foundation of the Opera reproduction: a from-scratch
//! replacement for the event core of the `htsim` packet simulator used in the
//! paper. It provides:
//!
//! * [`time`] — nanosecond-resolution simulated time ([`time::SimTime`]) and
//!   duration arithmetic,
//! * [`engine`] — the event queue and scheduler ([`engine::Simulator`]) with
//!   deterministic FIFO tie-breaking for simultaneous events,
//! * [`rng`] — a small, seedable, reproducible random-number generator,
//! * [`stats`] — streaming statistics (histograms, percentile estimation,
//!   time-weighted averages) used by every experiment harness.
//!
//! Determinism is a design requirement: two runs with the same seed produce
//! bit-identical event orderings, which the integration tests assert.

pub mod engine;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{EventContext, EventHandler, EventToken, HandlerId, Simulator};
pub use rng::SimRng;
pub use time::{SimTime, NS_PER_MS, NS_PER_SEC, NS_PER_US};
