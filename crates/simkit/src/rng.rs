//! Deterministic random-number generation.
//!
//! All stochastic choices in the reproduction (topology factorization, flow
//! arrivals, flow sizes, path tie-breaking, failure injection) flow through
//! [`SimRng`], a thin wrapper over a fixed, explicitly-seeded generator so
//! that every experiment is reproducible from its printed seed.
//!
//! The core generator is `xoshiro256**`-style, implemented locally to keep
//! streams stable regardless of `rand` version bumps. `SimRng` also
//! implements [`rand::RngCore`] so it can drive `rand` distributions.

use rand::RngCore;

/// SplitMix64: used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed from a single 64-bit value (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child stream, e.g. one per component, so
    /// adding randomness in one module does not perturb another.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Rejection-free for our purposes: 128-bit multiply, retry on the
        // biased low region.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= lo.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform usize in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        // Inverse-CDF; guard against ln(0).
        let u = 1.0 - self.f64();
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Choose a uniformly random element, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        SimRng::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_in_range_and_covers() {
        let mut r = SimRng::new(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
    }

    #[test]
    fn exp_mean_close() {
        let mut r = SimRng::new(11);
        let n = 200_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let emp = sum / n as f64;
        assert!((emp - mean).abs() < 0.1, "empirical mean {emp}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(13);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle changed order");
    }

    #[test]
    fn fork_streams_diverge() {
        let mut root = SimRng::new(1);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn fill_bytes_deterministic() {
        let mut a = SimRng::new(3);
        let mut b = SimRng::new(3);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn choose_empty_none() {
        let mut r = SimRng::new(17);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[42]), Some(&42));
    }
}
