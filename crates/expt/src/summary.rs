//! Percentile / confidence-interval summaries, computed once here
//! instead of hand-rolled per figure binary.

use simkit::stats::Samples;

/// Summary statistics over a set of scalar observations.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Observation count.
    pub count: usize,
    /// Arithmetic mean (NaN when empty).
    pub mean: f64,
    /// Sample standard deviation (NaN when `count < 2`).
    pub std_dev: f64,
    /// Half-width of the normal-approximation 95% CI on the mean
    /// (NaN when `count < 2`).
    pub ci95: f64,
    /// Minimum (NaN when empty).
    pub min: f64,
    /// Median (NaN when empty).
    pub p50: f64,
    /// 99th percentile (NaN when empty).
    pub p99: f64,
    /// Maximum (NaN when empty).
    pub max: f64,
}

/// Summarize observations via [`simkit::stats::Samples`] percentiles.
pub fn summarize(values: impl IntoIterator<Item = f64>) -> Summary {
    let mut s = Samples::new();
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for v in values {
        s.push(v);
        sum += v;
        sum_sq += v * v;
    }
    let n = s.len();
    let mean = s.mean().unwrap_or(f64::NAN);
    let std_dev = if n >= 2 {
        ((sum_sq - sum * sum / n as f64) / (n as f64 - 1.0))
            .max(0.0)
            .sqrt()
    } else {
        f64::NAN
    };
    Summary {
        count: n,
        mean,
        std_dev,
        ci95: 1.96 * std_dev / (n as f64).sqrt(),
        min: s.min().unwrap_or(f64::NAN),
        p50: s.quantile(0.5).unwrap_or(f64::NAN),
        p99: s.quantile(0.99).unwrap_or(f64::NAN),
        max: s.max().unwrap_or(f64::NAN),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_nan() {
        let s = summarize(std::iter::empty());
        assert_eq!(s.count, 0);
        assert!(s.mean.is_nan() && s.p99.is_nan() && s.std_dev.is_nan());
    }

    #[test]
    fn basic_stats() {
        let s = summarize((1..=100).map(|i| i as f64));
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p99, 99.0);
        assert!((s.std_dev - 29.011491975882016).abs() < 1e-9);
        assert!(s.ci95 > 0.0);
    }

    #[test]
    fn single_sample() {
        let s = summarize([7.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.0);
        assert!(s.std_dev.is_nan());
    }
}
