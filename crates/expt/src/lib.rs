//! `expt` — the shared experiment harness behind every figure driver.
//!
//! The paper's headline results are parameter sweeps (load × workload ×
//! topology × seed). Every point of such a sweep is an isolated,
//! deterministic `simkit` run, which makes a full reproduction
//! embarrassingly parallel. This crate factors the machinery every
//! `crates/bench` binary used to re-implement by hand:
//!
//! * [`sweep::Sweep`] — a cartesian-grid builder that enumerates sweep
//!   points in a fixed row-major order,
//! * [`runner::Runner`] — fans points out over `std::thread::scope`
//!   workers with deterministic per-point seeding and collects results
//!   *in sweep order*, so `--threads 8` output is byte-identical to
//!   `--threads 1`; supports `--shard i/n` point filtering and a
//!   replicate axis ([`runner::Runner::run_replicated`]),
//! * [`replicate`] — per-point replicate seeds and the
//!   [`replicate::RepTableBuilder`] that folds R observations per row
//!   into `mean`/`ci95` columns,
//! * [`golden`] — committed quick-mode baseline CSVs with provenance
//!   manifests and the tolerance-aware diff engine behind the tier-1
//!   golden test,
//! * [`table::Table`] — the uniform result model (named columns × typed
//!   cells, per-row sweep-point provenance),
//! * [`output`] — CSV and JSON table-document writers into
//!   `results/<figure>/`, plus the self-validating shard merge
//!   ([`output::merge_shard_docs`]),
//! * [`orchestrate`] — the driver-level scheduler behind
//!   `opera_orchestrate`: fans `driver × shard` jobs over a worker pool
//!   (pluggable [`orchestrate::Backend`]), retries failures, and merges
//!   shard documents with point-index validation,
//! * [`runfile`] — durable run state: the `run.json` manifest, the
//!   incremental [`runfile::RunWriter`] that persists each shard
//!   document the moment its job completes (atomic tmp-file + rename),
//!   and [`runfile::resume_run`], which re-runs only the missing or
//!   corrupt shards of an interrupted run,
//! * [`json`] — the minimal offline JSON reader the two modules above
//!   share,
//! * [`cli::ExptArgs`] — the `--quick` / `--threads` / `--out` /
//!   `--full` / `--seed` / `--replicates` / `--shard` flags shared by
//!   all drivers,
//! * [`summary`] — percentile/CI summaries computed once here instead of
//!   per-binary.
//!
//! A figure driver is now a declarative definition: an [`Experiment`]
//! (name + title) and a function `fn(&Ctx) -> Vec<Table>`; its `main` is
//! one call to [`run_main`].

pub mod cli;
pub mod golden;
pub mod json;
pub mod orchestrate;
pub mod output;
pub mod replicate;
pub mod runfile;
pub mod runner;
pub mod scenario;
pub mod summary;
pub mod sweep;
pub mod table;

pub use cli::{ExptArgs, Scale};
pub use output::{merge_shard_docs, MergeError, RunMeta, TableDoc};
pub use replicate::{replicate_seed, MetricFmt, RepCtx, RepTableBuilder};
pub use runner::{derive_seed, PointCtx, Runner};
pub use summary::{summarize, Summary};
pub use sweep::{Sweep, SweepRef};
pub use table::{f, f0, f2, f3, Cell, Table};

/// Static description of one figure/table driver.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Directory name under `results/` — by convention the binary name.
    pub name: &'static str,
    /// One-line human title printed at the top of the output.
    pub title: &'static str,
}

/// Everything a figure definition needs at run time: the parsed CLI
/// arguments plus a ready-to-use parallel [`Runner`].
#[derive(Debug)]
pub struct Ctx {
    /// Parsed command-line arguments.
    pub args: ExptArgs,
    /// Parallel sweep runner (threads and base seed already set).
    pub runner: Runner,
}

impl Ctx {
    /// Build a context from parsed arguments.
    pub fn new(args: ExptArgs) -> Self {
        let runner = Runner::new(args.threads, args.seed).with_shard(args.shard);
        Ctx { args, runner }
    }

    /// True in `--quick` smoke mode (tiny grids, fixed seed).
    pub fn quick(&self) -> bool {
        self.args.scale == Scale::Quick
    }

    /// True at paper scale (`--full` or `OPERA_SCALE=full`).
    pub fn full(&self) -> bool {
        self.args.scale == Scale::Full
    }

    /// Run a sweep through the parallel runner (ordered results).
    pub fn run<P, R, F>(&self, sweep: &Sweep<P>, f: F) -> Vec<R>
    where
        P: Sync,
        R: Send,
        F: Fn(&P, &PointCtx) -> R + Sync,
    {
        self.runner.run(sweep, f)
    }

    /// Replicate seeds per sweep point (`--replicates`, at least 1).
    pub fn replicates(&self) -> usize {
        self.args.replicates
    }

    /// The sweep's shape as this runner sees it: total point count plus
    /// the global indices of the points this runner's shard owns.
    /// Figure builders zip owned results with `sweep_ref.owned` to
    /// recover global point indices, and pass the whole [`SweepRef`] to
    /// `Table::for_sweep` / `RepTableBuilder::for_sweep` so the shard
    /// merge can validate completeness.
    pub fn sweep_ref<P>(&self, sweep: &Sweep<P>) -> SweepRef {
        SweepRef {
            points: sweep.len(),
            owned: self.runner.owned_points(sweep.len()),
        }
    }

    /// Run a sweep with [`Ctx::replicates`] replicate seeds per point;
    /// `out[p][r]` is replicate `r` of owned point `p` in sweep order.
    pub fn run_replicated<P, R, F>(&self, sweep: &Sweep<P>, f: F) -> Vec<Vec<R>>
    where
        P: Sync,
        R: Send,
        F: Fn(&P, &RepCtx) -> R + Sync,
    {
        self.runner.run_replicated(sweep, self.args.replicates, f)
    }

    /// Pick among three values by scale: quick / default / full.
    pub fn by_scale<T>(&self, quick: T, default: T, full: T) -> T {
        match self.args.scale {
            Scale::Quick => quick,
            Scale::Default => default,
            Scale::Full => full,
        }
    }
}

/// Entry point shared by every figure binary: parse the CLI, build the
/// tables, print them as CSV to stdout, and (unless `--no-write`) write
/// CSV + JSON files under `<out>/<experiment name>/`.
pub fn run_main<F>(exp: Experiment, build: F)
where
    F: FnOnce(&Ctx) -> Vec<Table>,
{
    let args = ExptArgs::parse_or_exit(exp.name, exp.title);
    let ctx = Ctx::new(args);
    let tables = build(&ctx);
    emit(&exp, &ctx, &tables);
}

/// Print tables to stdout and write result files.
///
/// Split from [`run_main`] so tests can drive it with synthetic args.
pub fn emit(exp: &Experiment, ctx: &Ctx, tables: &[Table]) {
    println!("# {}", exp.title);
    let shard = match ctx.runner.shard() {
        Some((i, n)) => format!(" shard={i}/{n}"),
        None => String::new(),
    };
    println!(
        "# mode={} threads={} seed={} replicates={}{shard}",
        ctx.args.scale,
        ctx.runner.threads(),
        ctx.args.seed,
        ctx.args.replicates
    );
    for t in tables {
        println!("table,{}", t.name);
        print!("{}", t.to_csv());
        println!();
    }
    if !ctx.args.no_write {
        let dir = ctx.args.out.join(exp.name);
        let meta = RunMeta::new(exp.name, &ctx.args);
        match output::write_tables(&dir, tables, &meta) {
            Ok(paths) => {
                for p in paths {
                    println!("# wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("error: writing results under {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
}
