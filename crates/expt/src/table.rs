//! The uniform result model: named columns × typed cells.
//!
//! Every figure's data is one or more [`Table`]s. A table renders to CSV
//! (the greppable stdout format and the `.csv` artifact) and to JSON
//! (the machine-readable `.json` artifact); both renderings are pure
//! functions of the cell values, so output is deterministic.

use std::fmt;

/// One table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Free-form label.
    Str(String),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float, rendered with shortest round-trip formatting.
    F64(f64),
    /// Boolean.
    Bool(bool),
}

/// Float formatted to 4 decimals (the figure drivers' house style).
pub fn f(x: f64) -> Cell {
    Cell::Str(format!("{x:.4}"))
}

/// Float formatted to 2 decimals.
pub fn f2(x: f64) -> Cell {
    Cell::Str(format!("{x:.2}"))
}

/// Float formatted to 3 decimals.
pub fn f3(x: f64) -> Cell {
    Cell::Str(format!("{x:.3}"))
}

/// Float formatted to 0 decimals (integral quantities whose replicate
/// mean may still be fractional render via [`f2`] instead).
pub fn f0(x: f64) -> Cell {
    Cell::Str(format!("{x:.0}"))
}

impl fmt::Display for Cell {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Str(s) => out.write_str(s),
            Cell::U64(v) => write!(out, "{v}"),
            Cell::I64(v) => write!(out, "{v}"),
            Cell::F64(v) => write!(out, "{v}"),
            Cell::Bool(v) => write!(out, "{v}"),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Str(s.to_string())
    }
}
impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Str(s)
    }
}
impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::U64(v)
    }
}
impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::U64(v as u64)
    }
}
impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::I64(v)
    }
}
impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::F64(v)
    }
}
impl From<bool> for Cell {
    fn from(v: bool) -> Self {
        Cell::Bool(v)
    }
}

/// A named table with a fixed column set.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name: the file stem under `results/<figure>/`.
    pub name: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Rows; every row has exactly `columns.len()` cells.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// New empty table.
    pub fn new(name: &str, columns: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics when the cell count does not match the column count.
    pub fn push(&mut self, row: Vec<Cell>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "table {}: row has {} cells, expected {}",
            self.name,
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Append many rows.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Vec<Cell>>) {
        for r in rows {
            self.push(r);
        }
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as CSV (header line + one line per row, `\n` terminated).
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        s.push_str(&self.columns.join(","));
        s.push('\n');
        for row in &self.rows {
            let mut first = true;
            for cell in row {
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str(&csv_escape(&cell.to_string()));
            }
            s.push('\n');
        }
        s
    }

    /// Render as JSON: `{"name": ..., "columns": [...], "rows": [{...}]}`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"name\": ");
        json_string(&mut s, &self.name);
        s.push_str(",\n  \"columns\": [");
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            json_string(&mut s, c);
        }
        s.push_str("],\n  \"rows\": [");
        for (ri, row) in self.rows.iter().enumerate() {
            if ri > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            for (ci, cell) in row.iter().enumerate() {
                if ci > 0 {
                    s.push_str(", ");
                }
                json_string(&mut s, &self.columns[ci]);
                s.push_str(": ");
                json_cell(&mut s, cell);
            }
            s.push('}');
        }
        if !self.rows.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Quote a CSV field when it contains separators or quotes.
fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_cell(out: &mut String, cell: &Cell) {
    match cell {
        Cell::Str(s) => json_string(out, s),
        Cell::U64(v) => out.push_str(&v.to_string()),
        Cell::I64(v) => out.push_str(&v.to_string()),
        Cell::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
        // NaN/inf are not valid JSON numbers.
        Cell::F64(_) => out.push_str("null"),
        Cell::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering() {
        let mut t = Table::new("demo", &["a", "b", "c"]);
        t.push(vec![Cell::from("x,y"), Cell::from(3u64), f(0.5)]);
        t.push(vec![Cell::from("plain"), Cell::from(4u64), Cell::F64(1.25)]);
        assert_eq!(t.to_csv(), "a,b,c\n\"x,y\",3,0.5000\nplain,4,1.25\n");
    }

    #[test]
    fn json_rendering() {
        let mut t = Table::new("demo", &["label", "v"]);
        t.push(vec![Cell::from("a\"b"), Cell::F64(f64::NAN)]);
        let j = t.to_json();
        assert!(j.contains("\"label\": \"a\\\"b\""));
        assert!(j.contains("\"v\": null"));
        assert!(j.starts_with("{\n  \"name\": \"demo\""));
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn row_arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec![Cell::from(1u64)]);
    }

    #[test]
    fn float_helpers() {
        assert_eq!(f(1.0 / 3.0).to_string(), "0.3333");
        assert_eq!(f2(1.0 / 3.0).to_string(), "0.33");
        assert_eq!(f3(1.0 / 3.0).to_string(), "0.333");
        assert_eq!(f0(647.6).to_string(), "648");
    }
}
