//! The uniform result model: named columns × typed cells, with per-row
//! sweep provenance.
//!
//! Every figure's data is one or more [`Table`]s. A table renders to CSV
//! (the greppable stdout format and the `.csv` artifact); the
//! machine-readable `.json` artifact is rendered by
//! [`crate::output::table_json`], which additionally records each row's
//! **sweep point index** and the run's flags so sharded outputs can be
//! merged with full validation. Both renderings are pure functions of
//! the cell values, so output is deterministic.
//!
//! Row provenance follows two rules, enforced at push time:
//!
//! 1. **Constant rows precede sweep rows.** A *constant* row
//!    ([`Table::push`]) is computed outside any sweep and is therefore
//!    identical in every shard; a *sweep* row ([`Table::push_indexed`])
//!    belongs to one sweep point. Interleaving them would make the
//!    merged row order ambiguous.
//! 2. **Sweep rows arrive in non-decreasing point order.** The runner
//!    hands results back in owned-point order, so this holds naturally;
//!    enforcing it keeps the unsharded rendering equal to the canonical
//!    merge order (constants, then points ascending).

use crate::sweep::SweepRef;
use std::fmt;

/// One table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Free-form label.
    Str(String),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float, rendered with shortest round-trip formatting.
    F64(f64),
    /// Boolean.
    Bool(bool),
}

/// Float formatted to 4 decimals (the figure drivers' house style).
pub fn f(x: f64) -> Cell {
    Cell::Str(format!("{x:.4}"))
}

/// Float formatted to 2 decimals.
pub fn f2(x: f64) -> Cell {
    Cell::Str(format!("{x:.2}"))
}

/// Float formatted to 3 decimals.
pub fn f3(x: f64) -> Cell {
    Cell::Str(format!("{x:.3}"))
}

/// Float formatted to 0 decimals (integral quantities whose replicate
/// mean may still be fractional render via [`f2`] instead).
pub fn f0(x: f64) -> Cell {
    Cell::Str(format!("{x:.0}"))
}

impl fmt::Display for Cell {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Str(s) => out.write_str(s),
            Cell::U64(v) => write!(out, "{v}"),
            Cell::I64(v) => write!(out, "{v}"),
            Cell::F64(v) => write!(out, "{v}"),
            Cell::Bool(v) => write!(out, "{v}"),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Str(s.to_string())
    }
}
impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Str(s)
    }
}
impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::U64(v)
    }
}
impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::U64(v as u64)
    }
}
impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::I64(v)
    }
}
impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::F64(v)
    }
}
impl From<bool> for Cell {
    fn from(v: bool) -> Self {
        Cell::Bool(v)
    }
}

/// A named table with a fixed column set and per-row sweep provenance.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name: the file stem under `results/<figure>/`.
    pub name: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Rows; every row has exactly `columns.len()` cells.
    pub rows: Vec<Vec<Cell>>,
    /// Per-row provenance, parallel to `rows`: the global sweep point
    /// index that produced the row, or `None` for constant rows.
    pub row_points: Vec<Option<usize>>,
    /// Total point count of the sweep behind the indexed rows, across
    /// all shards (`None` when the table has no sweep rows).
    pub sweep_points: Option<usize>,
    /// Global indices of the sweep points this run actually executed
    /// (its shard's share), ascending. A point may legitimately produce
    /// zero rows, so completeness is validated against this list, not
    /// against the rows.
    pub points_run: Vec<usize>,
}

impl Table {
    /// New empty table.
    pub fn new(name: &str, columns: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            row_points: Vec::new(),
            sweep_points: None,
            points_run: Vec::new(),
        }
    }

    /// Declare the sweep this table's indexed rows come from: total
    /// point count plus the points this run owns (see [`SweepRef`],
    /// built by `Ctx::sweep_ref`).
    pub fn for_sweep(mut self, sweep: &SweepRef) -> Self {
        self.set_sweep(sweep);
        self
    }

    /// In-place form of [`Table::for_sweep`].
    pub fn set_sweep(&mut self, sweep: &SweepRef) {
        self.sweep_points = Some(sweep.points);
        self.points_run = sweep.owned.clone();
    }

    /// Append a constant row (identical in every shard).
    ///
    /// # Panics
    /// Panics when the cell count does not match the column count, or
    /// when an indexed row was already pushed (constant rows must
    /// precede sweep rows — see the module docs).
    pub fn push(&mut self, row: Vec<Cell>) {
        assert!(
            self.row_points.iter().all(Option::is_none),
            "table {}: constant rows must precede sweep-indexed rows",
            self.name
        );
        self.check_arity(&row);
        self.rows.push(row);
        self.row_points.push(None);
    }

    /// Append a row produced by sweep point `point` (global index).
    ///
    /// # Panics
    /// Panics on cell-count mismatch, on a point index beyond the
    /// declared sweep, or when `point` is smaller than the last indexed
    /// row's point (sweep rows must arrive in point order).
    pub fn push_indexed(&mut self, point: usize, row: Vec<Cell>) {
        self.check_arity(&row);
        if let Some(n) = self.sweep_points {
            assert!(
                point < n,
                "table {}: point {point} out of range for a {n}-point sweep",
                self.name
            );
        }
        if let Some(&Some(last)) = self.row_points.iter().rev().find(|p| p.is_some()) {
            assert!(
                point >= last,
                "table {}: point {point} pushed after point {last} (sweep rows must \
                 arrive in point order)",
                self.name
            );
        }
        self.rows.push(row);
        self.row_points.push(Some(point));
    }

    fn check_arity(&self, row: &[Cell]) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "table {}: row has {} cells, expected {}",
            self.name,
            row.len(),
            self.columns.len()
        );
    }

    /// Append many constant rows.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Vec<Cell>>) {
        for r in rows {
            self.push(r);
        }
    }

    /// Append many rows produced by sweep point `point`.
    pub fn extend_indexed(&mut self, point: usize, rows: impl IntoIterator<Item = Vec<Cell>>) {
        for r in rows {
            self.push_indexed(point, r);
        }
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as CSV (header line + one line per row, `\n` terminated).
    /// Provenance is metadata, not data: it appears in the JSON artifact
    /// only, so sharded and unsharded runs render identical CSV rows.
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        s.push_str(&self.columns.join(","));
        s.push('\n');
        for row in &self.rows {
            let mut first = true;
            for cell in row {
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str(&csv_escape(&cell.to_string()));
            }
            s.push('\n');
        }
        s
    }
}

/// Quote a CSV field when it contains separators or quotes.
pub(crate) fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering() {
        let mut t = Table::new("demo", &["a", "b", "c"]);
        t.push(vec![Cell::from("x,y"), Cell::from(3u64), f(0.5)]);
        t.push(vec![Cell::from("plain"), Cell::from(4u64), Cell::F64(1.25)]);
        assert_eq!(t.to_csv(), "a,b,c\n\"x,y\",3,0.5000\nplain,4,1.25\n");
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn row_arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec![Cell::from(1u64)]);
    }

    #[test]
    fn provenance_bookkeeping() {
        let sweep = SweepRef {
            points: 4,
            owned: vec![1, 3],
        };
        let mut t = Table::new("demo", &["x"]).for_sweep(&sweep);
        t.push(vec![Cell::from("const")]);
        t.push_indexed(1, vec![Cell::from("a")]);
        t.extend_indexed(3, vec![vec![Cell::from("b")], vec![Cell::from("c")]]);
        assert_eq!(t.row_points, [None, Some(1), Some(3), Some(3)]);
        assert_eq!(t.sweep_points, Some(4));
        assert_eq!(t.points_run, [1, 3]);
    }

    #[test]
    #[should_panic(expected = "constant rows must precede")]
    fn constant_after_indexed_rejected() {
        let mut t = Table::new("demo", &["x"]);
        t.push_indexed(0, vec![Cell::from(1u64)]);
        t.push(vec![Cell::from(2u64)]);
    }

    #[test]
    #[should_panic(expected = "sweep rows must")]
    fn decreasing_point_rejected() {
        let mut t = Table::new("demo", &["x"]);
        t.push_indexed(2, vec![Cell::from(1u64)]);
        t.push_indexed(1, vec![Cell::from(2u64)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn point_beyond_sweep_rejected() {
        let sweep = SweepRef {
            points: 2,
            owned: vec![0, 1],
        };
        let mut t = Table::new("demo", &["x"]).for_sweep(&sweep);
        t.push_indexed(2, vec![Cell::from(1u64)]);
    }

    #[test]
    fn float_helpers() {
        assert_eq!(f(1.0 / 3.0).to_string(), "0.3333");
        assert_eq!(f2(1.0 / 3.0).to_string(), "0.33");
        assert_eq!(f3(1.0 / 3.0).to_string(), "0.333");
        assert_eq!(f0(647.6).to_string(), "648");
    }
}
