//! Cartesian sweep grids.
//!
//! A [`Sweep`] is an ordered list of points. The `grid*` constructors
//! enumerate cartesian products in **row-major order** (the last axis
//! varies fastest), which fixes both the per-point seed derivation
//! (seeds depend on the point index) and the output row order, so a
//! sweep's results are independent of how many workers execute it.

/// An ordered list of sweep points.
#[derive(Debug, Clone)]
pub struct Sweep<P> {
    points: Vec<P>,
}

/// A sweep's shape as one runner sees it: the total point count plus
/// the global indices of the points this runner (shard) owns. Tables
/// record this ([`crate::Table::for_sweep`]) so a shard-merge can
/// validate completeness — every point index present exactly once —
/// instead of trusting row order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRef {
    /// Total number of points in the sweep, across all shards.
    pub points: usize,
    /// Global indices of the points this runner owns, ascending.
    pub owned: Vec<usize>,
}

impl<P> Sweep<P> {
    /// A sweep over explicit points, in the given order.
    pub fn from_points(points: Vec<P>) -> Self {
        Sweep { points }
    }

    /// One-axis sweep.
    pub fn grid1<A, F>(xs: &[A], mut f: F) -> Self
    where
        A: Clone,
        F: FnMut(A) -> P,
    {
        Sweep {
            points: xs.iter().map(|x| f(x.clone())).collect(),
        }
    }

    /// Two-axis cartesian sweep; `ys` varies fastest.
    pub fn grid2<A, B, F>(xs: &[A], ys: &[B], mut f: F) -> Self
    where
        A: Clone,
        B: Clone,
        F: FnMut(A, B) -> P,
    {
        let mut points = Vec::with_capacity(xs.len() * ys.len());
        for x in xs {
            for y in ys {
                points.push(f(x.clone(), y.clone()));
            }
        }
        Sweep { points }
    }

    /// Three-axis cartesian sweep; `zs` varies fastest.
    pub fn grid3<A, B, C, F>(xs: &[A], ys: &[B], zs: &[C], mut f: F) -> Self
    where
        A: Clone,
        B: Clone,
        C: Clone,
        F: FnMut(A, B, C) -> P,
    {
        let mut points = Vec::with_capacity(xs.len() * ys.len() * zs.len());
        for x in xs {
            for y in ys {
                for z in zs {
                    points.push(f(x.clone(), y.clone(), z.clone()));
                }
            }
        }
        Sweep { points }
    }

    /// Four-axis cartesian sweep; `ws` varies fastest.
    pub fn grid4<A, B, C, D, F>(xs: &[A], ys: &[B], zs: &[C], ws: &[D], mut f: F) -> Self
    where
        A: Clone,
        B: Clone,
        C: Clone,
        D: Clone,
        F: FnMut(A, B, C, D) -> P,
    {
        let mut points = Vec::with_capacity(xs.len() * ys.len() * zs.len() * ws.len());
        for x in xs {
            for y in ys {
                for z in zs {
                    for w in ws {
                        points.push(f(x.clone(), y.clone(), z.clone(), w.clone()));
                    }
                }
            }
        }
        Sweep { points }
    }

    /// Append one point.
    pub fn push(&mut self, p: P) {
        self.points.push(p);
    }

    /// Append all of another sweep's points after this one's.
    pub fn chain(mut self, other: Sweep<P>) -> Self {
        self.points.extend(other.points);
        self
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the sweep has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points, in sweep order.
    pub fn points(&self) -> &[P] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2_row_major() {
        let s = Sweep::grid2(&[1, 2], &["a", "b", "c"], |x, y| (x, y));
        assert_eq!(
            s.points(),
            &[(1, "a"), (1, "b"), (1, "c"), (2, "a"), (2, "b"), (2, "c")]
        );
    }

    #[test]
    fn grid3_last_axis_fastest() {
        let s = Sweep::grid3(&[0, 1], &[0, 1], &[0, 1], |a, b, c| a * 4 + b * 2 + c);
        assert_eq!(s.points(), &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn grid4_count_and_order() {
        let s = Sweep::grid4(
            &[0u32, 1],
            &[0u32, 1, 2],
            &[0u32, 1],
            &[0u32, 1, 2, 3],
            |a, b, c, d| ((a * 3 + b) * 2 + c) * 4 + d,
        );
        assert_eq!(s.len(), 2 * 3 * 2 * 4);
        let expect: Vec<u32> = (0..48).collect();
        assert_eq!(s.points(), &expect[..]);
    }

    #[test]
    fn chain_and_push_preserve_order() {
        let mut a = Sweep::grid1(&[1, 2], |x| x);
        a.push(3);
        let b = Sweep::from_points(vec![4, 5]);
        let c = a.chain(b);
        assert_eq!(c.points(), &[1, 2, 3, 4, 5]);
        assert!(!c.is_empty());
    }
}
