//! Parallel sweep execution with deterministic seeding and ordered
//! collection.
//!
//! Each sweep point is an isolated simulation: its only inputs are the
//! point parameters and a seed derived from `(base_seed, point index)`.
//! Workers claim points from a shared atomic counter, so scheduling is
//! nondeterministic — but results are keyed by point index and returned
//! in sweep order, and no RNG state is shared across points. Hence a run
//! with `--threads 8` produces byte-identical output to `--threads 1`.

use crate::replicate::RepCtx;
use crate::sweep::Sweep;
use simkit::SimRng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Mix a base seed and a point index into an independent 64-bit seed
/// (SplitMix64 finalizer over a golden-ratio index stride).
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xA24B_AED4_963E_E407));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-point execution context handed to the sweep function.
#[derive(Debug, Clone, Copy)]
pub struct PointCtx {
    /// Index of the point in sweep order.
    pub index: usize,
    /// Seed derived from the runner's base seed and `index`.
    pub seed: u64,
}

impl PointCtx {
    /// A fresh RNG for this point.
    pub fn rng(&self) -> SimRng {
        SimRng::new(self.seed)
    }

    /// An independent RNG sub-stream for this point (e.g. one for the
    /// workload, one for failure sampling).
    pub fn rng_stream(&self, stream: u64) -> SimRng {
        SimRng::new(derive_seed(self.seed, stream.wrapping_add(1)))
    }
}

/// Executes sweeps across scoped worker threads.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    threads: usize,
    base_seed: u64,
    shard: Option<(usize, usize)>,
}

impl Runner {
    /// `threads == 0` means one worker per available core.
    pub fn new(threads: usize, base_seed: u64) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        Runner {
            threads,
            base_seed,
            shard: None,
        }
    }

    /// Restrict this runner to shard `(i, n)`: only sweep points with
    /// `index % n == i` run (seeds still derive from the *global* point
    /// index, so shards compute exactly what an unsharded run would).
    ///
    /// # Panics
    /// Panics when `i >= n` or `n == 0`.
    pub fn with_shard(mut self, shard: Option<(usize, usize)>) -> Self {
        if let Some((i, n)) = shard {
            assert!(n > 0 && i < n, "invalid shard {i}/{n}");
        }
        self.shard = shard;
        self
    }

    /// The configured `(i, n)` shard, if any.
    pub fn shard(&self) -> Option<(usize, usize)> {
        self.shard
    }

    /// Worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Base seed per-point seeds derive from.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Global indices of the sweep points this runner owns, ascending —
    /// all of `0..n_points` unsharded, every `n`-th under shard `(i,
    /// n)`. Figure builders zip owned results with this list to tag
    /// rows with their global point index.
    pub fn owned_points(&self, n_points: usize) -> Vec<usize> {
        match self.shard {
            None => (0..n_points).collect(),
            Some((i, n)) => (0..n_points).filter(|p| p % n == i).collect(),
        }
    }

    /// The [`PointCtx`] the runner hands to point `index` — exposed so
    /// sequential code outside a sweep can reuse the same derivation.
    pub fn point_ctx(&self, index: usize) -> PointCtx {
        PointCtx {
            index,
            seed: derive_seed(self.base_seed, index as u64),
        }
    }

    /// Run `f` on every owned point of `sweep`, fanning out over scoped
    /// threads, and return results in sweep order (restricted to this
    /// runner's shard when one is set).
    ///
    /// A panic in any point aborts the whole run (propagated after all
    /// workers stop claiming new points).
    pub fn run<P, R, F>(&self, sweep: &Sweep<P>, f: F) -> Vec<R>
    where
        P: Sync,
        R: Send,
        F: Fn(&P, &PointCtx) -> R + Sync,
    {
        let points = sweep.points();
        let owned = self.owned_points(points.len());
        self.execute(owned.len(), |slot| {
            let i = owned[slot];
            f(&points[i], &self.point_ctx(i))
        })
    }

    /// Run `f` on every `(owned point, replicate)` pair of `sweep`,
    /// fanning the flattened work list out over scoped threads, and
    /// return results grouped per point (`out[p][r]` is replicate `r` of
    /// owned point `p`), in sweep order.
    ///
    /// Replicate seeds derive from `(base seed, global point index,
    /// replicate index)` only, so — like [`Runner::run`] — the output is
    /// byte-identical for any worker count.
    ///
    /// # Panics
    /// Panics when `reps == 0`.
    pub fn run_replicated<P, R, F>(&self, sweep: &Sweep<P>, reps: usize, f: F) -> Vec<Vec<R>>
    where
        P: Sync,
        R: Send,
        F: Fn(&P, &RepCtx) -> R + Sync,
    {
        assert!(reps >= 1, "run_replicated requires at least one replicate");
        let points = sweep.points();
        let owned = self.owned_points(points.len());
        let flat = self.execute(owned.len() * reps, |slot| {
            let i = owned[slot / reps];
            let rep = slot % reps;
            f(&points[i], &self.point_ctx(i).replicate(rep))
        });
        let mut flat = flat.into_iter();
        (0..owned.len())
            .map(|_| (0..reps).map(|_| flat.next().unwrap()).collect())
            .collect()
    }

    /// Claim-loop core shared by [`Runner::run`] and
    /// [`Runner::run_replicated`]: evaluate `work(0..n)` across scoped
    /// worker threads and collect results ordered by slot.
    fn execute<R, W>(&self, n: usize, work: W) -> Vec<R>
    where
        R: Send,
        W: Fn(usize) -> R + Sync,
    {
        let workers = self.threads.min(n).max(1);
        if workers == 1 {
            return (0..n).map(work).collect();
        }

        let next = AtomicUsize::new(0);
        let work = &work;
        let next = &next;
        let mut collected: Vec<(usize, R)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, work(i)));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(local) => collected.extend(local),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        collected.sort_unstable_by_key(|&(i, _)| i);
        debug_assert!(collected.iter().enumerate().all(|(k, &(i, _))| k == i));
        collected.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn seed_derivation_is_stable() {
        // Snapshot values: these must never change, or every recorded
        // figure CSV silently shifts.
        assert_eq!(derive_seed(0, 0), 16294208416658607535);
        assert_eq!(derive_seed(0, 1), 8033628859552847100);
        assert_eq!(derive_seed(1, 0), 10451216379200822465);
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        assert_ne!(derive_seed(42, 7), derive_seed(42, 8));
        assert_ne!(derive_seed(42, 7), derive_seed(43, 7));
    }

    #[test]
    fn ordered_collection_under_out_of_order_completion() {
        // Early points sleep longest, so workers finish in roughly
        // reverse order; collection must still be in sweep order.
        let sweep = Sweep::grid1(&(0usize..32).collect::<Vec<_>>(), |i| i);
        let r = Runner::new(8, 0);
        let out = r.run(&sweep, |&i, ctx| {
            std::thread::sleep(Duration::from_millis((32 - i as u64) / 4));
            assert_eq!(ctx.index, i);
            i * 10
        });
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let sweep = Sweep::grid2(&[1u64, 2, 3], &[10u64, 20], |a, b| (a, b));
        let run = |threads| {
            Runner::new(threads, 99).run(&sweep, |&(a, b), ctx| {
                let mut rng = ctx.rng();
                (a, b, ctx.seed, rng.next_u64())
            })
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn rng_streams_are_independent_per_point() {
        let r = Runner::new(1, 5);
        let a = r.point_ctx(0);
        let b = r.point_ctx(1);
        assert_ne!(a.seed, b.seed);
        assert_ne!(a.rng().next_u64(), b.rng().next_u64());
        assert_ne!(a.rng_stream(0).next_u64(), a.rng_stream(1).next_u64());
    }

    #[test]
    fn empty_sweep() {
        let sweep: Sweep<u32> = Sweep::from_points(vec![]);
        let out = Runner::new(4, 0).run(&sweep, |&x, _| x);
        assert!(out.is_empty());
    }

    #[test]
    fn shards_partition_the_sweep() {
        let sweep = Sweep::grid1(&(0usize..10).collect::<Vec<_>>(), |i| i);
        let full = Runner::new(2, 7).run(&sweep, |&i, ctx| (i, ctx.seed));
        let merged: Vec<Vec<(usize, u64)>> = (0..3)
            .map(|i| {
                Runner::new(2, 7)
                    .with_shard(Some((i, 3)))
                    .run(&sweep, |&p, ctx| (p, ctx.seed))
            })
            .collect();
        // Shard i owns points i, i+3, ... with the seeds of the full run.
        for (i, part) in merged.iter().enumerate() {
            let expect: Vec<_> = full.iter().copied().skip(i).step_by(3).collect();
            assert_eq!(part, &expect);
        }
        let total: usize = merged.iter().map(Vec::len).sum();
        assert_eq!(total, full.len());
    }

    #[test]
    fn replicated_run_groups_by_point() {
        let sweep = Sweep::grid1(&[10usize, 20], |i| i);
        let out = Runner::new(4, 3).run_replicated(&sweep, 3, |&p, rc| {
            assert_eq!(
                rc.seed,
                crate::replicate::replicate_seed(rc.point.seed, rc.rep)
            );
            (p, rc.rep, rc.seed)
        });
        assert_eq!(out.len(), 2);
        for (pi, reps) in out.iter().enumerate() {
            assert_eq!(reps.len(), 3);
            for (r, &(p, rep, _)) in reps.iter().enumerate() {
                assert_eq!((p, rep), ([10, 20][pi], r));
            }
        }
        // All six replicate seeds are pairwise distinct.
        let seeds: std::collections::HashSet<u64> =
            out.iter().flatten().map(|&(_, _, s)| s).collect();
        assert_eq!(seeds.len(), 6);
    }

    #[test]
    fn replicated_run_is_thread_invariant() {
        let sweep = Sweep::grid2(&[1u64, 2, 3], &[4u64, 5], |a, b| (a, b));
        let run = |threads| {
            Runner::new(threads, 11).run_replicated(&sweep, 4, |&(a, b), rc| {
                let mut rng = rc.rng();
                (a, b, rc.rep, rc.seed, rng.next_u64())
            })
        };
        assert_eq!(run(1), run(8));
    }
}
