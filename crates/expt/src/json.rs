//! Minimal JSON reader for the shard-merge path.
//!
//! The workspace builds offline (no serde), and the only JSON this
//! crate must *read back* is the JSON it wrote itself: table shard
//! documents ([`crate::output::table_json`]) and orchestrator plan
//! files. This parser covers full JSON syntax with one deliberate
//! twist: numbers keep their **raw literal text** ([`Json::Num`])
//! instead of being eagerly converted to `f64`, so 64-bit seeds and
//! rendered cell values round-trip byte-exactly.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw literal text (lossless for u64).
    Num(String),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved (documents written by this
    /// crate never repeat keys).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if this is an integral number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number as `usize`, if this is an integral number in range.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// True when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Render back to JSON text, pretty-printed with two-space indents
    /// and sorted object keys. Numbers are emitted as their raw literal
    /// text, so `parse → render → parse` is lossless — the property the
    /// append-only `BENCH_*.json` trajectory relies on when it rewrites
    /// the document with one more entry.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_string(out, k);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair: our writer never emits
                            // them, but decode defensively.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        char::from_u32(
                                            0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00),
                                        )
                                    } else {
                                        None // high surrogate not followed by a low one
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or("invalid \\u escape")?);
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let step = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    s.push_str(std::str::from_utf8(&rest[..step]).map_err(|e| e.to_string())?);
                    self.pos += step;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        self.pos += 4;
        u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
            .map_err(|e| e.to_string())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if text.is_empty() || text == "-" {
            return Err(format!("malformed number at byte {start}"));
        }
        Ok(Json::Num(text.to_string()))
    }
}

/// Escape and quote `s` as a JSON string into `out`.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_structure() {
        let j = Json::parse(r#"{"a": [1, -2.5, 1e3], "b": "x\ny", "c": null, "d": true}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(j.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            j.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(j.get("b").unwrap().as_str(), Some("x\ny"));
        assert!(j.get("c").unwrap().is_null());
        assert_eq!(j.get("d").unwrap().as_bool(), Some(true));
        assert!(j.get("missing").is_none());
    }

    #[test]
    fn numbers_keep_raw_text() {
        // u64::MAX does not fit in f64; the raw literal must survive.
        let j = Json::parse("{\"seed\": 18446744073709551615}").unwrap();
        assert_eq!(j.get("seed").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(j.get("seed").unwrap().as_usize(), Some(usize::MAX));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1f}µ→";
        let mut doc = String::new();
        write_string(&mut doc, original);
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn errors() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("-").is_err());
        // Lone or mismatched surrogates are errors, not panics.
        assert!(Json::parse(r#""\ud800""#).is_err());
        assert!(Json::parse(r#""\ud800A""#).is_err());
        assert!(Json::parse(r#""\ud800\u0041""#).is_err());
        // A well-formed pair still decodes.
        assert_eq!(Json::parse(r#""😀""#).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn render_round_trips_losslessly() {
        let text =
            r#"{"b": [1, 2.5, 18446744073709551615], "a": {"x": null, "y": "q\n"}, "c": true}"#;
        let parsed = Json::parse(text).unwrap();
        let rendered = parsed.render();
        // Pretty output parses back to the identical value (raw number
        // text preserved, u64 seeds included).
        assert_eq!(Json::parse(&rendered).unwrap(), parsed);
        assert!(rendered.contains("18446744073709551615"));
        // Rendering is idempotent once pretty-printed.
        assert_eq!(Json::parse(&rendered).unwrap().render(), rendered);
    }

    #[test]
    fn nested_and_empty() {
        let j = Json::parse(r#"{"o": {}, "a": [], "n": [[1], {"k": [2]}]}"#).unwrap();
        assert_eq!(j.get("o"), Some(&Json::Obj(Default::default())));
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 0);
        assert_eq!(
            j.get("n").unwrap().as_arr().unwrap()[1]
                .get("k")
                .unwrap()
                .as_arr()
                .unwrap()[0]
                .as_u64(),
            Some(2)
        );
    }
}
