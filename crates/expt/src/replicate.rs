//! Replicate axis: R independent seeds per sweep point, folded into
//! mean / 95%-CI table columns.
//!
//! A single seeded run per sweep point makes a figure a point estimate;
//! the paper-style presentation is a mean with a confidence interval
//! over replicate seeds. This module provides the two halves:
//!
//! * [`RepCtx`] — the per-`(point, replicate)` execution context handed
//!   out by [`crate::Runner::run_replicated`]. Its seed derives from
//!   `(base seed, global point index, replicate index)` via the same
//!   SplitMix64 chain as point seeds, so replicated output keeps the
//!   harness determinism guarantee: byte-identical for any `--threads`.
//! * [`RepTableBuilder`] — accumulates one observation row per
//!   `(row key, replicate)` and renders a [`Table`] whose metric columns
//!   become `<metric>_mean` / `<metric>_ci95` pairs (normal-approximation
//!   95% interval via [`summarize`]) plus a trailing `reps` count.
//!
//! Row keys are matched across replicates by their rendered label cells,
//! in first-seen order, so replicates may legitimately disagree on which
//! rows exist (e.g. an FCT size bin empty under one seed): such rows get
//! the CI of however many replicates produced them, and `reps` says how
//! many that was. A key pushed fewer than twice renders its `ci95` as
//! `NaN` — there is no spread to estimate from one observation.

use crate::runner::{derive_seed, PointCtx};
use crate::summary::summarize;
use crate::sweep::SweepRef;
use crate::table::{Cell, Table};
use simkit::SimRng;
use std::collections::HashMap;

/// Salt mixed into the point seed before deriving replicate seeds, so
/// replicate streams can never collide with [`PointCtx::rng_stream`]
/// sub-streams (which derive from the unsalted point seed).
const REPLICATE_SALT: u64 = 0x7E11_CA7E_0B5E_55ED;

/// Mix a point seed and a replicate index into an independent seed.
pub fn replicate_seed(point_seed: u64, rep: usize) -> u64 {
    derive_seed(point_seed ^ REPLICATE_SALT, rep as u64)
}

/// Per-`(point, replicate)` execution context.
#[derive(Debug, Clone, Copy)]
pub struct RepCtx {
    /// The sweep point this replicate belongs to.
    pub point: PointCtx,
    /// Replicate index within the point (`0..replicates`).
    pub rep: usize,
    /// Seed derived from the point seed and `rep`.
    pub seed: u64,
}

impl RepCtx {
    /// A fresh RNG for this replicate.
    pub fn rng(&self) -> SimRng {
        SimRng::new(self.seed)
    }

    /// An independent RNG sub-stream for this replicate (same stream
    /// separation scheme as [`PointCtx::rng_stream`]).
    pub fn rng_stream(&self, stream: u64) -> SimRng {
        SimRng::new(derive_seed(self.seed, stream.wrapping_add(1)))
    }
}

impl PointCtx {
    /// The [`RepCtx`] of replicate `rep` of this point.
    pub fn replicate(&self, rep: usize) -> RepCtx {
        RepCtx {
            point: *self,
            rep,
            seed: replicate_seed(self.seed, rep),
        }
    }
}

/// Renders a metric value into its table cell (e.g. [`crate::f2`]).
pub type MetricFmt = fn(f64) -> Cell;

/// One builder row: the sweep point that produced it (`None` for
/// constant rows), its key cells, and one observation series per
/// metric.
type RepRow = (Option<usize>, Vec<Cell>, Vec<Vec<f64>>);

/// Accumulates per-replicate observations keyed by label cells and
/// builds the aggregated mean/CI table, tracking each row's sweep point
/// so sharded outputs can be merged with validation.
///
/// Rows come in two kinds, mirroring [`Table`]: *sweep* rows
/// ([`RepTableBuilder::push_at`]) carry the global index of the sweep
/// point that produced them, *constant* rows ([`RepTableBuilder::push`])
/// are computed outside any sweep and must precede them. A row key must
/// always come from the same sweep point — keys are how replicates of a
/// point find their row, so a key shared *across* points would fold
/// unrelated observations together (and silently diverge under
/// sharding); that is rejected at push time.
#[derive(Debug, Clone)]
pub struct RepTableBuilder {
    name: String,
    key_cols: Vec<String>,
    metrics: Vec<(String, MetricFmt)>,
    index: HashMap<String, usize>,
    rows: Vec<RepRow>,
    sweep: Option<SweepRef>,
}

impl RepTableBuilder {
    /// New builder for table `name` with the given key columns and
    /// `(metric name, formatter)` pairs.
    pub fn new(name: &str, key_cols: &[&str], metrics: &[(&str, MetricFmt)]) -> Self {
        RepTableBuilder {
            name: name.to_string(),
            key_cols: key_cols.iter().map(|c| c.to_string()).collect(),
            metrics: metrics
                .iter()
                .map(|&(m, fmt)| (m.to_string(), fmt))
                .collect(),
            index: HashMap::new(),
            rows: Vec::new(),
            sweep: None,
        }
    }

    /// Declare the sweep behind this table's indexed rows (see
    /// `Ctx::sweep_ref`); recorded into the built [`Table`] so the
    /// shard merge can validate point completeness.
    pub fn for_sweep(mut self, sweep: &SweepRef) -> Self {
        self.sweep = Some(sweep.clone());
        self
    }

    /// Record one replicate's observation of the constant row
    /// identified by `key` (a row computed outside any sweep). Rows
    /// appear in the built table in first-push order.
    ///
    /// # Panics
    /// Panics when `key` or `metrics` have the wrong arity, when `key`
    /// was first pushed as a sweep row, or when any sweep row was
    /// already pushed (constant rows must precede sweep rows).
    pub fn push(&mut self, key: Vec<Cell>, metrics: &[f64]) {
        self.record(None, key, metrics);
    }

    /// Record one replicate's observation of the row identified by
    /// `key`, produced by sweep point `point` (global index).
    ///
    /// # Panics
    /// Panics on arity mismatch or when `key` was previously pushed
    /// with a different point (or as a constant row).
    pub fn push_at(&mut self, point: usize, key: Vec<Cell>, metrics: &[f64]) {
        self.record(Some(point), key, metrics);
    }

    fn record(&mut self, point: Option<usize>, key: Vec<Cell>, metrics: &[f64]) {
        assert_eq!(
            key.len(),
            self.key_cols.len(),
            "table {}: key has {} cells, expected {}",
            self.name,
            key.len(),
            self.key_cols.len()
        );
        assert_eq!(
            metrics.len(),
            self.metrics.len(),
            "table {}: row has {} metrics, expected {}",
            self.name,
            metrics.len(),
            self.metrics.len()
        );
        if point.is_none() {
            assert!(
                self.rows.iter().all(|(p, _, _)| p.is_none()),
                "table {}: constant rows must precede sweep-indexed rows",
                self.name
            );
        }
        let id = key
            .iter()
            .map(Cell::to_string)
            .collect::<Vec<_>>()
            .join("\u{1f}");
        let idx = match self.index.get(&id) {
            Some(&i) => i,
            None => {
                let i = self.rows.len();
                self.index.insert(id, i);
                self.rows
                    .push((point, key, vec![Vec::new(); self.metrics.len()]));
                i
            }
        };
        assert_eq!(
            self.rows[idx].0, point,
            "table {}: row key {:?} pushed from sweep point {:?} but first seen from {:?} \
             (a key must identify one sweep point)",
            self.name, self.rows[idx].1, point, self.rows[idx].0
        );
        for (series, &v) in self.rows[idx].2.iter_mut().zip(metrics) {
            series.push(v);
        }
    }

    /// Record many constant observations (see [`RepTableBuilder::push`]).
    pub fn extend(&mut self, rows: impl IntoIterator<Item = (Vec<Cell>, Vec<f64>)>) {
        for (key, metrics) in rows {
            self.push(key, &metrics);
        }
    }

    /// Record many observations from sweep point `point` (see
    /// [`RepTableBuilder::push_at`]).
    pub fn extend_at(
        &mut self,
        point: usize,
        rows: impl IntoIterator<Item = (Vec<Cell>, Vec<f64>)>,
    ) {
        for (key, metrics) in rows {
            self.push_at(point, key, &metrics);
        }
    }

    /// Record the same constant observation once per replicate — for
    /// closed-form, seed-independent rows that would be identical under
    /// every replicate seed (their CI is exactly 0 without
    /// re-computation).
    pub fn push_constant(&mut self, key: Vec<Cell>, metrics: &[f64], reps: usize) {
        for _ in 0..reps {
            self.push(key.clone(), metrics);
        }
    }

    /// [`RepTableBuilder::push_constant`] for a seed-independent row
    /// that still belongs to sweep point `point` (computed once *per
    /// point*, not once per replicate).
    pub fn push_constant_at(&mut self, point: usize, key: Vec<Cell>, metrics: &[f64], reps: usize) {
        for _ in 0..reps {
            self.push_at(point, key.clone(), metrics);
        }
    }

    /// Build the aggregated table: key columns, then
    /// `<metric>_mean`/`<metric>_ci95` per metric, then `reps`.
    pub fn build(self) -> Table {
        let mut columns: Vec<String> = self.key_cols;
        for (m, _) in &self.metrics {
            columns.push(format!("{m}_mean"));
            columns.push(format!("{m}_ci95"));
        }
        columns.push("reps".to_string());
        let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
        let mut t = Table::new(&self.name, &column_refs);
        if let Some(sweep) = &self.sweep {
            t.set_sweep(sweep);
        }
        for (point, key, series) in self.rows {
            let mut row = key;
            let mut reps = 0usize;
            for ((_, fmt), vals) in self.metrics.iter().zip(&series) {
                let s = summarize(vals.iter().copied());
                reps = reps.max(s.count);
                row.push(fmt(s.mean));
                row.push(fmt(if s.count < 2 { f64::NAN } else { s.ci95 }));
            }
            row.push(Cell::from(reps));
            match point {
                Some(p) => t.push_indexed(p, row),
                None => t.push(row),
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{f, f2};

    #[test]
    fn replicate_seed_snapshots() {
        // Snapshot values: these must never change, or every committed
        // golden CSV silently shifts.
        assert_eq!(replicate_seed(0, 0), 7783651692260004749);
        assert_eq!(replicate_seed(0, 1), 7412183137375824277);
        assert_eq!(replicate_seed(1, 0), 3490541878623535042);
        assert_ne!(replicate_seed(5, 2), replicate_seed(5, 3));
        assert_ne!(replicate_seed(5, 2), replicate_seed(6, 2));
    }

    #[test]
    fn replicate_seeds_avoid_stream_seeds() {
        // A point's replicate seeds and its rng_stream sub-seeds live in
        // salted vs unsalted derivation chains; spot-check disjointness.
        let pt = crate::Runner::new(1, 0).point_ctx(0);
        let rep_seeds: Vec<u64> = (0..8).map(|r| pt.replicate(r).seed).collect();
        for stream in 0..8u64 {
            let s = derive_seed(pt.seed, stream + 1);
            assert!(!rep_seeds.contains(&s));
        }
    }

    #[test]
    fn builder_aggregates_across_replicates() {
        let mut b = RepTableBuilder::new(
            "demo",
            &["system", "load"],
            &[("fct", f2 as MetricFmt), ("done", f)],
        );
        for rep in 0..3 {
            b.push(
                vec![Cell::from("opera"), Cell::F64(0.1)],
                &[10.0 + rep as f64, 1.0],
            );
        }
        // A row only one replicate produced.
        b.push(vec![Cell::from("clos"), Cell::F64(0.1)], &[5.0, 0.5]);
        let t = b.build();
        assert_eq!(
            t.columns,
            [
                "system",
                "load",
                "fct_mean",
                "fct_ci95",
                "done_mean",
                "done_ci95",
                "reps"
            ]
        );
        assert_eq!(t.rows.len(), 2);
        // Mean of 10, 11, 12 with sample std dev 1.0.
        assert_eq!(t.rows[0][2].to_string(), "11.00");
        let ci: f64 = t.rows[0][3].to_string().parse().unwrap();
        assert!((ci - 1.96 / 3f64.sqrt()).abs() < 0.005);
        assert_eq!(t.rows[0][4].to_string(), "1.0000");
        assert_eq!(t.rows[0][5].to_string(), "0.0000"); // zero spread
        assert_eq!(t.rows[0][6].to_string(), "3");
        // Single-observation row: mean rendered, CI is NaN, reps = 1.
        assert_eq!(t.rows[1][2].to_string(), "5.00");
        assert_eq!(t.rows[1][3].to_string(), "NaN");
        assert_eq!(t.rows[1][6].to_string(), "1");
    }

    #[test]
    fn push_constant_yields_zero_ci() {
        let mut b = RepTableBuilder::new("c", &["q"], &[("v", f as MetricFmt)]);
        b.push_constant(vec![Cell::from("alpha")], &[1.3], 3);
        let t = b.build();
        assert_eq!(t.rows[0][1].to_string(), "1.3000");
        assert_eq!(t.rows[0][2].to_string(), "0.0000");
        assert_eq!(t.rows[0][3].to_string(), "3");
    }

    #[test]
    fn builder_tracks_sweep_provenance() {
        let sweep = SweepRef {
            points: 4,
            owned: vec![1, 3],
        };
        let mut b = RepTableBuilder::new("p", &["k"], &[("v", f as MetricFmt)]).for_sweep(&sweep);
        b.push(vec![Cell::from("const")], &[0.0]);
        for rep in 0..2 {
            b.push_at(1, vec![Cell::from("one")], &[rep as f64]);
        }
        b.push_constant_at(3, vec![Cell::from("three")], &[9.0], 2);
        let t = b.build();
        assert_eq!(t.row_points, [None, Some(1), Some(3)]);
        assert_eq!(t.sweep_points, Some(4));
        assert_eq!(t.points_run, [1, 3]);
        assert_eq!(t.rows[2][3].to_string(), "2"); // reps column
    }

    #[test]
    #[should_panic(expected = "must identify one sweep point")]
    fn key_shared_across_points_rejected() {
        let mut b = RepTableBuilder::new("p", &["k"], &[("v", f as MetricFmt)]);
        b.push_at(0, vec![Cell::from("same")], &[1.0]);
        b.push_at(1, vec![Cell::from("same")], &[2.0]);
    }

    #[test]
    #[should_panic(expected = "constant rows must precede")]
    fn constant_after_sweep_row_rejected() {
        let mut b = RepTableBuilder::new("p", &["k"], &[("v", f as MetricFmt)]);
        b.push_at(0, vec![Cell::from("a")], &[1.0]);
        b.push(vec![Cell::from("late const")], &[2.0]);
    }

    #[test]
    #[should_panic(expected = "row has 1 metrics")]
    fn metric_arity_checked() {
        let mut b = RepTableBuilder::new("x", &["k"], &[("a", f as MetricFmt), ("b", f)]);
        b.push(vec![Cell::from("k")], &[1.0]);
    }
}
