//! Declarative scenario files: experiments as data, not code.
//!
//! A scenario file describes one simulation setup — topology, workload,
//! switch policy, transport, run length, and trace options — in TOML or
//! JSON. Parsing is strict: unknown tables or keys are named errors, so
//! a typo'd `policiy` cannot silently select a default. The axis fields
//! (`switch.policy`, `transport.kind`, `workload.senders`) accept a
//! scalar *or* an array; arrays become sweep axes and
//! [`Scenario::sweep`] expands their cartesian product into an ordered
//! [`Sweep`](crate::Sweep) of [`ScenarioPoint`]s, exactly like the
//! hand-written figure drivers.
//!
//! This module is deliberately *name-generic*: it validates structure
//! and types but treats topology/policy/transport names as opaque
//! strings, because the `expt` harness does not depend on the simulator
//! crates. Mapping names to concrete `netsim`/`transport` types (and
//! rejecting unknown names with the list of known ones) happens in
//! `bench::scenario`, where the registry lives.
//!
//! ```toml
//! name = "incast_smoke"
//!
//! [topology]
//! kind = "opera"        # opera | opera_paper | expander | expander_paper | clos
//! racks = 8             # optional, opera only
//!
//! [workload]
//! kind = "incast"       # incast | victim
//! senders = 8           # scalar or array (sweep axis)
//! flow_kb = 15
//!
//! [switch]
//! policy = "ndp_trim"   # scalar or array (sweep axis)
//!
//! [transport]
//! kind = "ndp"          # scalar or array (sweep axis)
//!
//! [run]
//! duration_ms = 40
//! seed = 1
//!
//! [trace]               # optional; requires a single-point scenario
//! jsonl = "trace.jsonl"
//! pcapng = "trace.pcapng"
//! ```

use crate::json::Json;
use crate::sweep::Sweep;
use std::collections::BTreeMap;
use std::path::Path;

/// Trace output options of a scenario.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSpec {
    /// JSON-lines event trace file, relative to the run's output dir.
    pub jsonl: Option<String>,
    /// pcapng capture file, relative to the run's output dir.
    pub pcapng: Option<String>,
}

impl TraceSpec {
    /// True when any trace output is requested.
    pub fn enabled(&self) -> bool {
        self.jsonl.is_some() || self.pcapng.is_some()
    }
}

/// A parsed scenario file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Scenario name (defaults to the file stem).
    pub name: String,
    /// Topology kind (opaque here; resolved by the runner).
    pub topology: String,
    /// Rack-count override for sized topologies (optional).
    pub racks: Option<usize>,
    /// Workload kind (`incast` / `victim`; opaque here).
    pub workload: String,
    /// Sender counts — axis (singleton for a scalar field).
    pub senders: Vec<usize>,
    /// Per-flow payload bytes.
    pub flow_bytes: u64,
    /// Switch policy names — axis.
    pub policies: Vec<String>,
    /// Transport names — axis.
    pub transports: Vec<String>,
    /// Simulated run length, milliseconds.
    pub duration_ms: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Trace outputs.
    pub trace: TraceSpec,
}

/// One point of a scenario's sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioPoint {
    /// Switch policy name.
    pub policy: String,
    /// Transport name.
    pub transport: String,
    /// Concurrent senders.
    pub senders: usize,
}

impl Scenario {
    /// Load a scenario from `path`, dispatching on the `.toml` / `.json`
    /// extension.
    pub fn load(path: &Path) -> Result<Scenario, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("scenario {}: {e}", path.display()))?;
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "scenario".into());
        let doc = match path.extension().and_then(|e| e.to_str()) {
            Some("toml") => {
                parse_toml(&text).map_err(|e| format!("scenario {}: {e}", path.display()))?
            }
            Some("json") => {
                Json::parse(&text).map_err(|e| format!("scenario {}: {e}", path.display()))?
            }
            other => {
                return Err(format!(
                    "scenario {}: unsupported extension {other:?} (want .toml or .json)",
                    path.display()
                ))
            }
        };
        Scenario::from_doc(&doc, &stem).map_err(|e| format!("scenario {}: {e}", path.display()))
    }

    /// Build a scenario from a parsed document tree (the common TOML/JSON
    /// path). `default_name` is used when the file has no `name` key.
    pub fn from_doc(doc: &Json, default_name: &str) -> Result<Scenario, String> {
        let Json::Obj(top) = doc else {
            return Err("top level must be a table/object".into());
        };
        check_keys(
            top,
            &[
                "name",
                "topology",
                "workload",
                "switch",
                "transport",
                "run",
                "trace",
            ],
            "top level",
        )?;
        let name = match top.get("name") {
            Some(v) => req_str(v, "name")?,
            None => default_name.to_string(),
        };

        let topo = section(top, "topology")?;
        check_keys(topo, &["kind", "racks"], "[topology]")?;
        let topology = req_str(
            topo.get("kind").ok_or("[topology] missing `kind`")?,
            "topology.kind",
        )?;
        let racks = topo
            .get("racks")
            .map(|v| req_usize(v, "topology.racks"))
            .transpose()?;

        let wl = section(top, "workload")?;
        check_keys(
            wl,
            &["kind", "senders", "flow_kb", "flow_bytes"],
            "[workload]",
        )?;
        let workload = req_str(
            wl.get("kind").ok_or("[workload] missing `kind`")?,
            "workload.kind",
        )?;
        let senders = usize_axis(
            wl.get("senders").ok_or("[workload] missing `senders`")?,
            "workload.senders",
        )?;
        let flow_bytes = match (wl.get("flow_kb"), wl.get("flow_bytes")) {
            (Some(_), Some(_)) => {
                return Err("[workload]: give `flow_kb` or `flow_bytes`, not both".into())
            }
            (Some(kb), None) => 1000 * req_u64(kb, "workload.flow_kb")?,
            (None, Some(b)) => req_u64(b, "workload.flow_bytes")?,
            (None, None) => return Err("[workload] missing `flow_kb` (or `flow_bytes`)".into()),
        };

        let sw = section(top, "switch")?;
        check_keys(sw, &["policy"], "[switch]")?;
        let policies = str_axis(
            sw.get("policy").ok_or("[switch] missing `policy`")?,
            "switch.policy",
        )?;

        let tr = section(top, "transport")?;
        check_keys(tr, &["kind"], "[transport]")?;
        let transports = str_axis(
            tr.get("kind").ok_or("[transport] missing `kind`")?,
            "transport.kind",
        )?;

        let run = section(top, "run")?;
        check_keys(run, &["duration_ms", "seed"], "[run]")?;
        let duration_ms = req_u64(
            run.get("duration_ms")
                .ok_or("[run] missing `duration_ms`")?,
            "run.duration_ms",
        )?;
        let seed = match run.get("seed") {
            Some(v) => req_u64(v, "run.seed")?,
            None => 0,
        };

        let trace = match top.get("trace") {
            None => TraceSpec::default(),
            Some(Json::Obj(t)) => {
                check_keys(t, &["jsonl", "pcapng"], "[trace]")?;
                TraceSpec {
                    jsonl: t
                        .get("jsonl")
                        .map(|v| req_str(v, "trace.jsonl"))
                        .transpose()?,
                    pcapng: t
                        .get("pcapng")
                        .map(|v| req_str(v, "trace.pcapng"))
                        .transpose()?,
                }
            }
            Some(_) => return Err("[trace] must be a table/object".into()),
        };

        let sc = Scenario {
            name,
            topology,
            racks,
            workload,
            senders,
            flow_bytes,
            policies,
            transports,
            duration_ms,
            seed,
            trace,
        };
        if sc.trace.enabled() && sc.point_count() != 1 {
            return Err(format!(
                "tracing requires a single-point scenario, but the axes expand to {} points \
                 (make `switch.policy`, `transport.kind`, and `workload.senders` scalars)",
                sc.point_count()
            ));
        }
        Ok(sc)
    }

    /// Number of points the axes expand to.
    pub fn point_count(&self) -> usize {
        self.policies.len() * self.transports.len() * self.senders.len()
    }

    /// Expand the axes into an ordered cartesian point list
    /// (policy-major, senders fastest — matching the figure drivers).
    pub fn points(&self) -> Vec<ScenarioPoint> {
        let mut pts = Vec::with_capacity(self.point_count());
        for p in &self.policies {
            for t in &self.transports {
                for &s in &self.senders {
                    pts.push(ScenarioPoint {
                        policy: p.clone(),
                        transport: t.clone(),
                        senders: s,
                    });
                }
            }
        }
        pts
    }

    /// The scenario's sweep, for the `Ctx`/`Runner` machinery.
    pub fn sweep(&self) -> Sweep<ScenarioPoint> {
        Sweep::from_points(self.points())
    }
}

fn section<'a>(
    top: &'a BTreeMap<String, Json>,
    key: &str,
) -> Result<&'a BTreeMap<String, Json>, String> {
    match top.get(key) {
        Some(Json::Obj(m)) => Ok(m),
        Some(_) => Err(format!("[{key}] must be a table/object")),
        None => Err(format!("missing required table [{key}]")),
    }
}

fn check_keys(map: &BTreeMap<String, Json>, known: &[&str], what: &str) -> Result<(), String> {
    for k in map.keys() {
        if !known.contains(&k.as_str()) {
            return Err(format!("{what}: unknown key {k:?} (known: {known:?})"));
        }
    }
    Ok(())
}

fn req_str(v: &Json, what: &str) -> Result<String, String> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{what} must be a string"))
}

fn req_u64(v: &Json, what: &str) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("{what} must be a non-negative integer"))
}

fn req_usize(v: &Json, what: &str) -> Result<usize, String> {
    v.as_usize()
        .ok_or_else(|| format!("{what} must be a non-negative integer"))
}

/// Scalar-or-array of strings.
fn str_axis(v: &Json, what: &str) -> Result<Vec<String>, String> {
    match v {
        Json::Arr(xs) if xs.is_empty() => Err(format!("{what}: empty array")),
        Json::Arr(xs) => xs.iter().map(|x| req_str(x, what)).collect(),
        _ => Ok(vec![req_str(v, what)?]),
    }
}

/// Scalar-or-array of integers.
fn usize_axis(v: &Json, what: &str) -> Result<Vec<usize>, String> {
    match v {
        Json::Arr(xs) if xs.is_empty() => Err(format!("{what}: empty array")),
        Json::Arr(xs) => xs.iter().map(|x| req_usize(x, what)).collect(),
        _ => Ok(vec![req_usize(v, what)?]),
    }
}

/// Parse the TOML subset scenario files use into a [`Json`] tree:
/// comments, one level of `[table]` headers, and `key = value` pairs
/// where a value is a string, integer, float, boolean, or a flat array
/// of those. Duplicate keys and tables are errors.
pub fn parse_toml(text: &str) -> Result<Json, String> {
    let mut top: BTreeMap<String, Json> = BTreeMap::new();
    let mut current: Option<String> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let name = header
                .strip_suffix(']')
                .ok_or_else(|| format!("line {lineno}: unterminated table header"))?
                .trim();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(format!("line {lineno}: bad table name {name:?}"));
            }
            if top.contains_key(name) {
                return Err(format!("line {lineno}: duplicate table [{name}]"));
            }
            top.insert(name.to_string(), Json::Obj(BTreeMap::new()));
            current = Some(name.to_string());
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("line {lineno}: bad key {key:?}"));
        }
        let value = toml_value(value.trim(), lineno)?;
        let target = match &current {
            None => &mut top,
            Some(t) => match top.get_mut(t) {
                Some(Json::Obj(m)) => m,
                _ => unreachable!("tables are always objects"),
            },
        };
        if target.insert(key.to_string(), value).is_some() {
            return Err(format!("line {lineno}: duplicate key {key:?}"));
        }
    }
    Ok(Json::Obj(top))
}

/// Drop a `#`-comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn toml_value(s: &str, lineno: usize) -> Result<Json, String> {
    if s.is_empty() {
        return Err(format!("line {lineno}: missing value"));
    }
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| format!("line {lineno}: unterminated array"))?
            .trim();
        if body.is_empty() {
            return Ok(Json::Arr(Vec::new()));
        }
        return split_toml_items(body)
            .map_err(|e| format!("line {lineno}: {e}"))?
            .into_iter()
            .map(|item| toml_scalar(item.trim(), lineno))
            .collect::<Result<Vec<_>, _>>()
            .map(Json::Arr);
    }
    toml_scalar(s, lineno)
}

/// Split a flat array body on commas, respecting quoted strings.
fn split_toml_items(body: &str) -> Result<Vec<&str>, String> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                items.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_str {
        return Err("unterminated string in array".into());
    }
    items.push(&body[start..]);
    Ok(items)
}

fn toml_scalar(s: &str, lineno: usize) -> Result<Json, String> {
    if let Some(body) = s.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| format!("line {lineno}: unterminated string"))?;
        if body.contains('"') || body.contains('\\') {
            return Err(format!(
                "line {lineno}: escapes/embedded quotes unsupported in {s:?}"
            ));
        }
        return Ok(Json::Str(body.to_string()));
    }
    match s {
        "true" => return Ok(Json::Bool(true)),
        "false" => return Ok(Json::Bool(false)),
        _ => {}
    }
    // Integer or float literal; underscores allowed TOML-style.
    let cleaned: String = s.chars().filter(|&c| c != '_').collect();
    if cleaned.parse::<i64>().is_ok() || cleaned.parse::<f64>().is_ok() {
        return Ok(Json::Num(cleaned));
    }
    Err(format!("line {lineno}: unrecognized value {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
# A scenario with every section.
name = "demo"

[topology]
kind = "opera"
racks = 8

[workload]
kind = "incast"
senders = [4, 8]   # axis
flow_kb = 15

[switch]
policy = ["ndp_trim", "droptail"]

[transport]
kind = "ndp"

[run]
duration_ms = 40
seed = 3
"#;

    #[test]
    fn toml_example_parses_and_sweeps() {
        let doc = parse_toml(EXAMPLE).unwrap();
        let sc = Scenario::from_doc(&doc, "fallback").unwrap();
        assert_eq!(sc.name, "demo");
        assert_eq!(sc.topology, "opera");
        assert_eq!(sc.racks, Some(8));
        assert_eq!(sc.flow_bytes, 15_000);
        assert_eq!(sc.seed, 3);
        assert_eq!(sc.point_count(), 4);
        let pts = sc.points();
        assert_eq!(pts.len(), sc.sweep().len());
        assert_eq!((pts[0].policy.as_str(), pts[0].senders), ("ndp_trim", 4));
        assert_eq!((pts[3].policy.as_str(), pts[3].senders), ("droptail", 8));
        assert!(!sc.trace.enabled());
    }

    #[test]
    fn json_form_parses_identically() {
        let json = r#"{
            "name": "demo",
            "topology": {"kind": "expander"},
            "workload": {"kind": "victim", "senders": 8, "flow_bytes": 30000},
            "switch": {"policy": "pfc"},
            "transport": {"kind": "gbn"},
            "run": {"duration_ms": 10, "seed": 1},
            "trace": {"jsonl": "t.jsonl", "pcapng": "t.pcapng"}
        }"#;
        let sc = Scenario::from_doc(&Json::parse(json).unwrap(), "x").unwrap();
        assert_eq!(sc.topology, "expander");
        assert_eq!(sc.flow_bytes, 30_000);
        assert_eq!(sc.trace.jsonl.as_deref(), Some("t.jsonl"));
        assert!(sc.trace.enabled());
        assert_eq!(sc.point_count(), 1);
    }

    #[test]
    fn unknown_keys_are_named_errors() {
        let doc = parse_toml(EXAMPLE.replace("[switch]", "[snitch]").as_str());
        // Unknown table name caught at scenario level.
        let err = Scenario::from_doc(&doc.unwrap(), "x").unwrap_err();
        assert!(err.contains("snitch"), "{err}");

        let doc = parse_toml(EXAMPLE.replace("racks = 8", "rakcs = 8").as_str()).unwrap();
        let err = Scenario::from_doc(&doc, "x").unwrap_err();
        assert!(err.contains("rakcs"), "{err}");
    }

    #[test]
    fn missing_required_fields_are_errors() {
        let doc = parse_toml(EXAMPLE.replace("kind = \"incast\"", "").as_str()).unwrap();
        let err = Scenario::from_doc(&doc, "x").unwrap_err();
        assert!(err.contains("[workload] missing `kind`"), "{err}");
    }

    #[test]
    fn tracing_rejects_multi_point_scenarios() {
        let text = format!("{EXAMPLE}\n[trace]\njsonl = \"t.jsonl\"\n");
        let err = Scenario::from_doc(&parse_toml(&text).unwrap(), "x").unwrap_err();
        assert!(err.contains("single-point"), "{err}");
    }

    #[test]
    fn toml_parser_rejects_malformed_input() {
        assert!(parse_toml("[unclosed\n").is_err());
        assert!(parse_toml("key\n").is_err());
        assert!(parse_toml("k = \"unterminated\n").is_err());
        assert!(parse_toml("k = [1, 2\n").is_err());
        assert!(parse_toml("k = 1\nk = 2\n").is_err());
        assert!(parse_toml("[a]\n[a]\n").is_err());
        assert!(parse_toml("k = nope\n").is_err());
    }

    #[test]
    fn toml_comments_and_underscores() {
        let doc = parse_toml("x = 1_000 # one thousand\ns = \"a # b\"\n").unwrap();
        assert_eq!(doc.get("x").unwrap().as_u64(), Some(1000));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("a # b"));
    }
}
