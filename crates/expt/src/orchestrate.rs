//! Driver-level sweep orchestration: fan `driver × shard` jobs over a
//! worker pool, retry failures, and merge the per-shard table documents
//! with full validation.
//!
//! The per-driver `--shard i/n` flag (PR 3/4) lets one *driver* split
//! its sweep, but left scheduling and merging to the caller — and the
//! merge worked on rendered CSV, which cannot validate what each shard
//! actually produced. This module is the missing scheduler:
//!
//! * a [`Plan`] says which drivers to run, across how many shards, and
//!   how often to retry a failed shard,
//! * a [`Backend`] executes one [`ShardJob`] and returns the table
//!   documents the sharded run wrote — the in-process thread-pool
//!   backend lives in `bench` (it needs the driver registry), and a
//!   multi-machine runner can slot in behind the same trait,
//! * the [`Orchestrator`] claims jobs across scoped worker threads,
//!   retries, then merges each driver's shard documents through
//!   [`crate::output::merge_shard_docs`], so every result set is
//!   *validated* — every point index present exactly once, schema and
//!   flags matching — before a merged CSV is rendered. Each job attempt
//!   is isolated: a panicking backend, or one returning unparseable or
//!   misattributed documents, is a failed *attempt* consuming retry
//!   budget, never a dead worker thread taking the sweep down,
//! * a [`RunObserver`] hears each job's final outcome as it completes,
//!   from the worker thread that ran it — the seam
//!   [`crate::runfile::RunWriter`] uses to persist every shard document
//!   the moment its job finishes instead of once at the end of the run,
//! * [`write_run`] persists a run under `results/` (shard documents
//!   under `shards/`, merged CSV + JSON beside them, plus the
//!   [`crate::runfile::RunManifest`]), and [`validate_dir`]
//!   re-validates such a directory from disk — the CI merge-validation
//!   step, and the hook tests use to prove a dropped shard fails with a
//!   named [`MergeError::MissingPointIndex`].

use crate::json::Json;
use crate::output::{self, merge_shard_docs, MergeError, TableDoc};
use crate::Scale;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One unit of work: one driver restricted to one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardJob {
    /// Driver (experiment) name.
    pub driver: String,
    /// The `(i, n)` shard this job runs.
    pub shard: (usize, usize),
}

/// Executes shard jobs. Implementations must be shareable across the
/// orchestrator's worker threads.
pub trait Backend: Sync {
    /// Run one shard job to completion, returning the JSON table
    /// documents it produced (one per table, in table order). Errors are
    /// retried up to the orchestrator's retry budget.
    fn run_shard(&self, job: &ShardJob) -> Result<Vec<String>, String>;
}

impl<B: Backend + ?Sized> Backend for &B {
    fn run_shard(&self, job: &ShardJob) -> Result<Vec<String>, String> {
        (**self).run_shard(job)
    }
}

/// What to run: the resolved driver list plus sharding and retry knobs.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Drivers to run, in order.
    pub drivers: Vec<String>,
    /// Shards per driver (1 = unsharded).
    pub shards: usize,
    /// Extra attempts per failed shard job (0 = fail fast).
    pub retries: usize,
}

/// Plan-file overrides (JSON): any subset of
/// `{"drivers": [...], "shards": N, "retries": N, "workers": N,
/// "scale": "quick", "seed": S, "replicates": R,
/// "backend": "local"}`.
/// Omitted fields keep their CLI/default values; `drivers` omitted (or
/// `"all"`) means every registered driver.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanFile {
    /// Driver subset, `None` = all.
    pub drivers: Option<Vec<String>>,
    /// Shards per driver.
    pub shards: Option<usize>,
    /// Retry budget per shard job.
    pub retries: Option<usize>,
    /// Orchestrator worker threads.
    pub workers: Option<usize>,
    /// Run scale (`quick` / `default` / `full`).
    pub scale: Option<Scale>,
    /// Base seed.
    pub seed: Option<u64>,
    /// Replicates per sweep point.
    pub replicates: Option<usize>,
    /// Backend name (`local` / `subprocess`) — interpreted by the
    /// orchestrate CLI, which owns the backend registry.
    pub backend: Option<String>,
}

impl PlanFile {
    /// Parse a plan file.
    pub fn parse(text: &str) -> Result<PlanFile, String> {
        let j = Json::parse(text).map_err(|e| format!("plan: {e}"))?;
        if !matches!(j, Json::Obj(_)) {
            return Err("plan: expected a JSON object".into());
        }
        let uint = |k: &str| -> Result<Option<usize>, String> {
            match j.get(k) {
                None => Ok(None),
                Some(v) => v
                    .as_usize()
                    .map(Some)
                    .ok_or_else(|| format!("plan: {k:?} must be a non-negative integer")),
            }
        };
        let drivers = match j.get("drivers") {
            None => None,
            Some(Json::Str(s)) if s == "all" => None,
            Some(Json::Arr(a)) => Some(
                a.iter()
                    .map(|v| {
                        v.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "plan: \"drivers\" entries must be strings".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            Some(_) => return Err("plan: \"drivers\" must be an array or \"all\"".into()),
        };
        let scale = match j.get("scale").map(|v| v.as_str()) {
            None => None,
            Some(Some(name)) => Some(Scale::from_name(name).map_err(|e| format!("plan: {e}"))?),
            Some(None) => return Err("plan: \"scale\" must be quick/default/full".into()),
        };
        Ok(PlanFile {
            drivers,
            shards: uint("shards")?,
            retries: uint("retries")?,
            workers: uint("workers")?,
            scale,
            seed: match j.get("seed") {
                None => None,
                Some(v) => {
                    Some(v.as_u64().ok_or_else(|| {
                        "plan: \"seed\" must be a non-negative integer".to_string()
                    })?)
                }
            },
            replicates: uint("replicates")?,
            backend: match j.get("backend") {
                None => None,
                Some(v) => Some(
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "plan: \"backend\" must be a string".to_string())?,
                ),
            },
        })
    }
}

/// One driver's outcome within a completed run.
#[derive(Debug)]
pub struct DriverRun {
    /// Driver name.
    pub driver: String,
    /// Shard documents, grouped per shard in shard order
    /// (`shard_docs[i]` holds shard `i`'s parsed documents).
    pub shard_docs: Vec<Vec<TableDoc>>,
    /// Validated merged documents, one per table.
    pub merged: Vec<TableDoc>,
    /// Shard-job attempts that failed and were retried.
    pub retried: usize,
}

/// A completed orchestrated run.
#[derive(Debug)]
pub struct RunReport {
    /// Per-driver outcomes, in plan order.
    pub drivers: Vec<DriverRun>,
    /// Shards per driver.
    pub shards: usize,
    /// Total shard-job attempts, including retries.
    pub attempts: usize,
}

/// An orchestration failure.
#[derive(Debug)]
pub enum OrchestrateError {
    /// A shard job failed after exhausting its retry budget.
    Job {
        /// Failing job.
        job: ShardJob,
        /// Attempts made (1 + retries).
        attempts: usize,
        /// The last error.
        error: String,
    },
    /// A backend returned a document that did not parse, or a shard
    /// merge failed validation.
    Merge {
        /// Driver whose results failed to merge.
        driver: String,
        /// The underlying merge error.
        error: MergeError,
    },
    /// Filesystem failure while persisting or validating a run.
    Io {
        /// Path involved.
        path: PathBuf,
        /// The underlying error.
        error: String,
    },
    /// A validated directory disagrees with its shard documents.
    Stale {
        /// The merged CSV that is out of date.
        path: PathBuf,
        /// What disagreed.
        detail: String,
    },
    /// A `run.json` manifest is missing, unreadable, or inconsistent.
    Manifest {
        /// Manifest path involved.
        path: PathBuf,
        /// What was wrong with it.
        detail: String,
    },
}

impl fmt::Display for OrchestrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrchestrateError::Job {
                job,
                attempts,
                error,
            } => write!(
                f,
                "{} shard {}/{}: failed after {attempts} attempt(s): {error}",
                job.driver, job.shard.0, job.shard.1
            ),
            OrchestrateError::Merge { driver, error } => write!(f, "{driver}: {error}"),
            OrchestrateError::Io { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
            OrchestrateError::Stale { path, detail } => {
                write!(f, "{}: {detail}", path.display())
            }
            OrchestrateError::Manifest { path, detail } => {
                write!(f, "{}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for OrchestrateError {}

/// Hears each job's final outcome the moment it completes, from the
/// worker thread that ran it. Implementations persist state
/// incrementally — [`crate::runfile::RunWriter`] writes the shard
/// documents and updates `run.json` per completion — or do nothing
/// ([`NoObserver`]). Completion order is scheduling-dependent; anything
/// derived from it must be keyed by job, not by arrival order.
pub trait RunObserver: Sync {
    /// Called exactly once per job with its final outcome (after the
    /// retry budget is spent or the job succeeds).
    fn job_done(&self, job: &ShardJob, attempts: usize, outcome: &Result<Vec<TableDoc>, String>);
}

/// Observer that ignores every completion.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoObserver;

impl RunObserver for NoObserver {
    fn job_done(&self, _: &ShardJob, _: usize, _: &Result<Vec<TableDoc>, String>) {}
}

/// Final outcome of one shard job after retries.
#[derive(Debug)]
pub struct JobOutcome {
    /// Attempts made (1 + retries consumed).
    pub attempts: usize,
    /// Parsed table documents on success, the last error otherwise.
    pub result: Result<Vec<TableDoc>, String>,
}

/// The `driver × shard` job list of a plan, driver-major in plan order.
pub fn plan_jobs(plan: &Plan) -> Vec<ShardJob> {
    plan.drivers
        .iter()
        .flat_map(|d| {
            (0..plan.shards).map(move |i| ShardJob {
                driver: d.clone(),
                shard: (i, plan.shards),
            })
        })
        .collect()
}

/// Schedules shard jobs over a worker pool and merges the results.
#[derive(Debug)]
pub struct Orchestrator<B> {
    backend: B,
    workers: usize,
}

impl<B: Backend> Orchestrator<B> {
    /// New orchestrator over `backend`. `workers == 0` means one worker
    /// per available core.
    pub fn new(backend: B, workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            workers
        };
        Orchestrator { backend, workers }
    }

    /// Run every `driver × shard` job of `plan`, retrying each failed
    /// job up to `plan.retries` extra times, then merge and validate
    /// each driver's shard documents. Job scheduling is work-stealing
    /// and nondeterministic; results are keyed by (driver, shard), so
    /// the report — like everything in this harness — is independent of
    /// worker count.
    pub fn run(&self, plan: &Plan) -> Result<RunReport, OrchestrateError> {
        self.run_observed(plan, &NoObserver)
    }

    /// [`Orchestrator::run`] with a per-job completion observer: every
    /// job's final outcome is delivered to `observer` as it completes,
    /// before the end-of-run merge — the hook that lets
    /// [`crate::runfile::RunWriter`] persist each shard document the
    /// moment it exists, so a killed run keeps everything that
    /// finished.
    pub fn run_observed(
        &self,
        plan: &Plan,
        observer: &dyn RunObserver,
    ) -> Result<RunReport, OrchestrateError> {
        assert!(plan.shards >= 1, "plan needs at least one shard");
        let jobs = plan_jobs(plan);
        let outcomes = self.execute_jobs(&jobs, plan.retries, observer);

        let mut report = RunReport {
            drivers: Vec::with_capacity(plan.drivers.len()),
            shards: plan.shards,
            attempts: 0,
        };
        let mut outcomes = outcomes.into_iter();
        for (di, driver) in plan.drivers.iter().enumerate() {
            let mut shard_docs: Vec<Vec<TableDoc>> = Vec::with_capacity(plan.shards);
            let mut retried = 0usize;
            for shard in 0..plan.shards {
                let job = &jobs[di * plan.shards + shard];
                let outcome = outcomes.next().expect("one outcome per job");
                report.attempts += outcome.attempts;
                match outcome.result {
                    Ok(docs) => {
                        retried += outcome.attempts - 1;
                        shard_docs.push(docs);
                    }
                    Err(error) => {
                        return Err(OrchestrateError::Job {
                            job: job.clone(),
                            attempts: outcome.attempts,
                            error,
                        });
                    }
                }
            }
            let merged = merge_driver_docs(driver, &shard_docs)?;
            report.drivers.push(DriverRun {
                driver: driver.clone(),
                shard_docs,
                merged,
                retried,
            });
        }
        Ok(report)
    }

    /// The claim-loop core shared by fresh runs and
    /// [`crate::runfile::resume_run`]: run every job in `jobs` with up
    /// to `1 + retries` attempts each, delivering each job's final
    /// outcome to `observer` from the worker that ran it. Job failures
    /// are *recorded*, not propagated — every job runs regardless of
    /// how the others fare, so one permanently broken shard cannot stop
    /// the rest of a sweep from completing (and being persisted).
    /// Returns one outcome per job, in job order.
    pub fn execute_jobs(
        &self,
        jobs: &[ShardJob],
        retries: usize,
        observer: &dyn RunObserver,
    ) -> Vec<JobOutcome> {
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<JobOutcome>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.workers.min(jobs.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= jobs.len() {
                        break;
                    }
                    let job = &jobs[slot];
                    let mut outcome = JobOutcome {
                        attempts: 0,
                        result: Err("never attempted".into()),
                    };
                    for attempt in 1..=retries + 1 {
                        outcome = JobOutcome {
                            attempts: attempt,
                            result: self.attempt(job),
                        };
                        if outcome.result.is_ok() {
                            break;
                        }
                    }
                    observer.job_done(job, outcome.attempts, &outcome.result);
                    *results[slot].lock().unwrap() = Some(outcome);
                });
            }
        });
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap()
                    .expect("every job slot is claimed exactly once")
            })
            .collect()
    }

    /// One attempt of one job. The backend call is isolated behind
    /// `catch_unwind`, so a panicking backend (or driver) becomes a
    /// failed attempt consuming retry budget instead of a dead worker
    /// thread aborting the whole sweep; the returned documents are
    /// parsed and checked against the job, so unparseable or
    /// misattributed output — a crashed child's half of a handshake —
    /// is likewise a retryable per-job failure.
    fn attempt(&self, job: &ShardJob) -> Result<Vec<TableDoc>, String> {
        let raw =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.backend.run_shard(job)))
                .map_err(|payload| {
                    let msg = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("no panic message");
                    format!("backend panicked: {msg}")
                })??;
        let mut docs = Vec::with_capacity(raw.len());
        for text in &raw {
            let doc =
                TableDoc::parse(text).map_err(|e| format!("unparseable table document: {e}"))?;
            if doc.driver != job.driver {
                return Err(format!(
                    "document for driver {:?} returned for a {:?} job",
                    doc.driver, job.driver
                ));
            }
            if doc.shard != Some(job.shard) {
                return Err(format!(
                    "document for shard {:?} returned for shard ({}, {})",
                    doc.shard, job.shard.0, job.shard.1
                ));
            }
            docs.push(doc);
        }
        // Canonicalize table order. The in-process backend sees the
        // driver's emission order but a subprocess backend reads shard
        // documents back from the filesystem, which cannot preserve it;
        // sorting by table name here makes every substrate merge — and
        // every manifest record — byte-identically.
        docs.sort_by(|a, b| a.table.cmp(&b.table));
        Ok(docs)
    }
}

/// Group one driver's per-shard documents by table and merge each group
/// with validation. Tables are ordered as shard 0 produced them; every
/// shard must produce the same table set.
pub fn merge_driver_docs(
    driver: &str,
    shard_docs: &[Vec<TableDoc>],
) -> Result<Vec<TableDoc>, OrchestrateError> {
    let merr = |error| OrchestrateError::Merge {
        driver: driver.to_string(),
        error,
    };
    let first = shard_docs
        .first()
        .ok_or_else(|| merr(MergeError::NoShards))?;
    let mut merged = Vec::with_capacity(first.len());
    for lead in first {
        // Every shard must produce the table exactly once: a missing
        // copy is a short shard; a duplicate (e.g. a retry artifact
        // from a buggy backend) could silently shadow drifted rows if
        // only the first copy were taken.
        let mut group: Vec<TableDoc> = Vec::with_capacity(shard_docs.len());
        for (i, docs) in shard_docs.iter().enumerate() {
            let mut matches = docs.iter().filter(|d| d.table == lead.table);
            match (matches.next(), matches.next()) {
                (Some(one), None) => group.push(one.clone()),
                (found, _) => {
                    return Err(merr(MergeError::SchemaMismatch {
                        table: lead.table.clone(),
                        field: "table",
                        got: if found.is_none() {
                            format!("absent from shard {i}")
                        } else {
                            format!("duplicated in shard {i}")
                        },
                        want: "exactly one document per shard".to_string(),
                    }));
                }
            }
        }
        merged.push(merge_shard_docs(&group).map_err(merr)?);
    }
    // A shard producing extra tables is drift too.
    for (i, docs) in shard_docs.iter().enumerate() {
        if let Some(extra) = docs
            .iter()
            .find(|d| !first.iter().any(|l| l.table == d.table))
        {
            return Err(merr(MergeError::SchemaMismatch {
                table: extra.table.clone(),
                field: "table",
                got: format!("extra table in shard {i}"),
                want: "absent from shard 0".to_string(),
            }));
        }
    }
    Ok(merged)
}

/// Persist a completed run under `out`: each driver's shard documents
/// under `<out>/<driver>/shards/`, the validated merged tables as
/// `<out>/<driver>/<table>.csv` + `.json`, and a
/// [`crate::runfile::RunManifest`] (`run.json`) recording the plan and
/// per-job status. Each driver directory is pruned first — stale shard
/// documents from a previous run with a different shard count, and
/// merged files of tables the driver no longer produces, would
/// otherwise poison a later [`validate_dir`] (or resurrect dropped
/// tables as "ok"). All writes are atomic (tmp file + rename). Returns
/// the merged CSV paths.
///
/// This is the end-of-run convenience over [`crate::runfile::RunWriter`],
/// which the orchestrate CLI uses directly to persist each shard as its
/// job completes.
pub fn write_run(out: &Path, report: &RunReport) -> Result<Vec<PathBuf>, OrchestrateError> {
    let manifest = crate::runfile::RunManifest::from_report(report);
    let writer = crate::runfile::RunWriter::create(out, manifest)?;
    for run in &report.drivers {
        for (shard, docs) in run.shard_docs.iter().enumerate() {
            let job = ShardJob {
                driver: run.driver.clone(),
                shard: (shard, report.shards),
            };
            writer.job_done(&job, 1, &Ok(docs.clone()));
        }
    }
    let merged: Vec<(String, Vec<TableDoc>)> = report
        .drivers
        .iter()
        .map(|r| (r.driver.clone(), r.merged.clone()))
        .collect();
    writer.finish(&merged)
}

/// One validated `(driver, table)` pair from [`validate_dir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidatedTable {
    /// Driver directory name.
    pub driver: String,
    /// Table name.
    pub table: String,
    /// Shard documents found.
    pub shards: usize,
    /// Merged data-row count.
    pub rows: usize,
}

/// Re-validate an orchestrated results directory from disk: for every
/// `<dir>/<driver>/shards/*.json`, re-merge the shard documents (full
/// validation — missing or duplicated point indices fail here) and
/// check the committed merged CSV matches the re-merge byte-for-byte.
/// Returns the validated tables, or the first failure.
pub fn validate_dir(out: &Path) -> Result<Vec<ValidatedTable>, OrchestrateError> {
    let io_err = |path: &Path, e: std::io::Error| OrchestrateError::Io {
        path: path.to_path_buf(),
        error: e.to_string(),
    };
    let mut validated = Vec::new();
    let mut driver_dirs: Vec<PathBuf> = fs::read_dir(out)
        .map_err(|e| io_err(out, e))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.join(output::SHARD_DIR).is_dir())
        .collect();
    driver_dirs.sort();
    for dir in driver_dirs {
        let driver = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let sdir = dir.join(output::SHARD_DIR);
        let mut groups: BTreeMap<String, Vec<TableDoc>> = BTreeMap::new();
        let mut files: Vec<PathBuf> = fs::read_dir(&sdir)
            .map_err(|e| io_err(&sdir, e))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        files.sort();
        for path in files {
            let text = fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
            let doc = TableDoc::parse(&text).map_err(|error| OrchestrateError::Merge {
                driver: driver.clone(),
                error,
            })?;
            groups.entry(doc.table.clone()).or_default().push(doc);
        }
        for (table, docs) in groups {
            let merged = merge_shard_docs(&docs).map_err(|error| OrchestrateError::Merge {
                driver: driver.clone(),
                error,
            })?;
            let csv_path = dir.join(format!("{table}.csv"));
            let committed = fs::read_to_string(&csv_path).map_err(|e| io_err(&csv_path, e))?;
            if committed != merged.to_csv() {
                return Err(OrchestrateError::Stale {
                    path: csv_path,
                    detail: "merged CSV does not match a re-merge of its shard documents"
                        .to_string(),
                });
            }
            validated.push(ValidatedTable {
                driver: driver.clone(),
                table,
                shards: docs.len(),
                rows: merged.rows.len(),
            });
        }
    }
    Ok(validated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::RunMeta;
    use crate::sweep::SweepRef;
    use crate::table::{Cell, Table};

    /// A deterministic fake driver: 6-point sweep, 2 rows per point,
    /// one constant row.
    fn fake_docs(driver: &str, shard: (usize, usize), seed: u64) -> Vec<String> {
        let points = 6usize;
        let owned: Vec<usize> = (0..points).filter(|p| p % shard.1 == shard.0).collect();
        let sweep = SweepRef {
            points,
            owned: owned.clone(),
        };
        let mut t = Table::new("data", &["point", "sub"]).for_sweep(&sweep);
        t.push(vec![Cell::from("const"), Cell::from(seed)]);
        for &p in &owned {
            for sub in 0..2usize {
                t.push_indexed(p, vec![Cell::from(p), Cell::from(sub)]);
            }
        }
        let meta = RunMeta {
            driver: driver.to_string(),
            scale: "quick".into(),
            seed,
            replicates: 1,
            k: None,
            shard: Some(shard),
        };
        vec![crate::output::table_json(&t, &meta)]
    }

    struct FakeBackend {
        /// Jobs that fail on their first `fail_first` attempts.
        fail_first: usize,
        calls: std::sync::Mutex<std::collections::HashMap<String, usize>>,
    }

    impl Backend for FakeBackend {
        fn run_shard(&self, job: &ShardJob) -> Result<Vec<String>, String> {
            let key = format!("{}:{}", job.driver, job.shard.0);
            let mut calls = self.calls.lock().unwrap();
            let n = calls.entry(key).or_insert(0);
            *n += 1;
            if *n <= self.fail_first {
                return Err(format!("transient failure {n}"));
            }
            if job.driver == "always-broken" {
                return Err("permanent failure".into());
            }
            Ok(fake_docs(&job.driver, job.shard, 0))
        }
    }

    fn plan(drivers: &[&str], shards: usize, retries: usize) -> Plan {
        Plan {
            drivers: drivers.iter().map(|s| s.to_string()).collect(),
            shards,
            retries,
        }
    }

    #[test]
    fn orchestrates_and_merges_across_workers() {
        let orch = Orchestrator::new(
            FakeBackend {
                fail_first: 0,
                calls: Default::default(),
            },
            3,
        );
        let report = orch.run(&plan(&["a", "b"], 3, 0)).unwrap();
        assert_eq!(report.attempts, 6);
        assert_eq!(report.drivers.len(), 2);
        for run in &report.drivers {
            assert_eq!(run.retried, 0);
            assert_eq!(run.merged.len(), 1);
            // Merged equals what an unsharded run would render.
            let unsharded = TableDoc::parse(&fake_docs(&run.driver, (0, 1), 0)[0]).unwrap();
            assert_eq!(run.merged[0].to_csv(), unsharded.to_csv());
        }
    }

    #[test]
    fn retries_recover_transient_failures() {
        let orch = Orchestrator::new(
            FakeBackend {
                fail_first: 1,
                calls: Default::default(),
            },
            2,
        );
        let report = orch.run(&plan(&["a"], 2, 2)).unwrap();
        // Each of the 2 jobs failed once, then succeeded.
        assert_eq!(report.attempts, 4);
        assert_eq!(report.drivers[0].retried, 2);
    }

    #[test]
    fn exhausted_retries_fail_with_the_job_named() {
        let orch = Orchestrator::new(
            FakeBackend {
                fail_first: 0,
                calls: Default::default(),
            },
            2,
        );
        let err = orch.run(&plan(&["a", "always-broken"], 2, 1)).unwrap_err();
        match err {
            OrchestrateError::Job { job, attempts, .. } => {
                assert_eq!(job.driver, "always-broken");
                assert_eq!(attempts, 2);
            }
            other => panic!("expected Job error, got {other}"),
        }
    }

    #[test]
    fn write_then_validate_round_trips_and_detects_drops() {
        let out = std::env::temp_dir().join(format!("orch-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&out);
        let orch = Orchestrator::new(
            FakeBackend {
                fail_first: 0,
                calls: Default::default(),
            },
            2,
        );
        let report = orch.run(&plan(&["a"], 3, 0)).unwrap();
        let csvs = write_run(&out, &report).unwrap();
        assert_eq!(csvs.len(), 1);
        let validated = validate_dir(&out).unwrap();
        assert_eq!(validated.len(), 1);
        assert_eq!(validated[0].shards, 3);

        // Injected dropped shard: deleting one shard document must fail
        // with the named missing-point-index error.
        fs::remove_file(out.join("a/shards/data.shard1of3.json")).unwrap();
        match validate_dir(&out).unwrap_err() {
            OrchestrateError::Merge {
                error: MergeError::MissingPointIndex { point, .. },
                ..
            } => assert_eq!(point, 1),
            other => panic!("expected MissingPointIndex, got {other}"),
        }

        // Duplicated shard: copying a shard in as another shard's file
        // fails as a duplicate point index.
        let text = fs::read_to_string(out.join("a/shards/data.shard0of3.json")).unwrap();
        fs::write(out.join("a/shards/data.shard1of3.json"), &text).unwrap();
        fs::write(out.join("a/shards/data.extra.json"), &text).unwrap();
        match validate_dir(&out).unwrap_err() {
            OrchestrateError::Merge {
                error: MergeError::DuplicatePointIndex { point, .. },
                ..
            } => assert_eq!(point, 0),
            other => panic!("expected DuplicatePointIndex, got {other}"),
        }
        fs::remove_dir_all(&out).unwrap();
    }

    #[test]
    fn rewriting_a_run_prunes_stale_shard_docs() {
        let out = std::env::temp_dir().join(format!("orch-prune-{}", std::process::id()));
        let _ = fs::remove_dir_all(&out);
        let orch = Orchestrator::new(
            FakeBackend {
                fail_first: 0,
                calls: Default::default(),
            },
            2,
        );
        // A 3-shard run followed by a 2-shard run into the same out dir:
        // without pruning, the leftover *of3 documents would make
        // validate_dir fail with a shard-count mismatch.
        let report = orch.run(&plan(&["a"], 3, 0)).unwrap();
        write_run(&out, &report).unwrap();
        let report = orch.run(&plan(&["a"], 2, 0)).unwrap();
        write_run(&out, &report).unwrap();
        let validated = validate_dir(&out).unwrap();
        assert_eq!(validated.len(), 1);
        assert_eq!(validated[0].shards, 2);
        fs::remove_dir_all(&out).unwrap();
    }

    #[test]
    fn duplicate_table_within_a_shard_is_rejected() {
        let docs0: Vec<TableDoc> = fake_docs("a", (0, 2), 0)
            .iter()
            .map(|d| TableDoc::parse(d).unwrap())
            .collect();
        let docs1: Vec<TableDoc> = fake_docs("a", (1, 2), 0)
            .iter()
            .map(|d| TableDoc::parse(d).unwrap())
            .collect();
        // Shard 1 returns its table twice (e.g. a retry artifact).
        let doubled = vec![docs0, vec![docs1[0].clone(), docs1[0].clone()]];
        match merge_driver_docs("a", &doubled).unwrap_err() {
            OrchestrateError::Merge {
                error: MergeError::SchemaMismatch { got, .. },
                ..
            } => assert!(got.contains("duplicated in shard 1")),
            other => panic!("expected SchemaMismatch, got {other}"),
        }
    }

    #[test]
    fn tampered_merged_csv_is_stale() {
        let out = std::env::temp_dir().join(format!("orch-stale-{}", std::process::id()));
        let _ = fs::remove_dir_all(&out);
        let orch = Orchestrator::new(
            FakeBackend {
                fail_first: 0,
                calls: Default::default(),
            },
            1,
        );
        let report = orch.run(&plan(&["a"], 2, 0)).unwrap();
        let csvs = write_run(&out, &report).unwrap();
        fs::write(&csvs[0], "point,sub\n9,9\n").unwrap();
        assert!(matches!(
            validate_dir(&out).unwrap_err(),
            OrchestrateError::Stale { .. }
        ));
        fs::remove_dir_all(&out).unwrap();
    }

    /// Panics on the first `panic_first` attempts of every job of the
    /// driver named `"panicky"`; everything else succeeds immediately.
    /// The call counter lock is released before panicking so the test
    /// exercises the orchestrator's isolation, not a poisoned test
    /// fixture.
    struct PanickyBackend {
        panic_first: usize,
        calls: std::sync::Mutex<std::collections::HashMap<String, usize>>,
    }

    impl Backend for PanickyBackend {
        fn run_shard(&self, job: &ShardJob) -> Result<Vec<String>, String> {
            let n = {
                let mut calls = self.calls.lock().unwrap();
                let entry = calls
                    .entry(format!("{}:{}", job.driver, job.shard.0))
                    .or_insert(0);
                *entry += 1;
                *entry
            };
            if job.driver == "panicky" && n <= self.panic_first {
                panic!("deliberate panic on attempt {n}");
            }
            Ok(fake_docs(&job.driver, job.shard, 0))
        }
    }

    #[test]
    fn backend_panics_are_retryable_per_job_failures() {
        // A panic consumes one attempt; the retry recovers the job.
        let orch = Orchestrator::new(
            PanickyBackend {
                panic_first: 1,
                calls: Default::default(),
            },
            2,
        );
        let report = orch.run(&plan(&["panicky"], 2, 1)).unwrap();
        assert_eq!(report.drivers[0].retried, 2);
        assert_eq!(report.attempts, 4);
    }

    #[test]
    fn backend_panic_does_not_take_down_other_jobs() {
        // Regression: a panicking worker used to propagate through the
        // thread scope and abort the entire sweep. Now the panic is a
        // per-job failure and every other job still completes.
        let orch = Orchestrator::new(
            PanickyBackend {
                panic_first: usize::MAX,
                calls: Default::default(),
            },
            2,
        );
        let p = plan(&["panicky", "ok"], 2, 0);
        let outcomes = orch.execute_jobs(&plan_jobs(&p), p.retries, &NoObserver);
        assert_eq!(outcomes.len(), 4);
        for o in &outcomes[..2] {
            let err = o.result.as_ref().unwrap_err();
            assert!(err.contains("backend panicked: deliberate panic"), "{err}");
        }
        for o in &outcomes[2..] {
            assert!(o.result.is_ok());
        }
        // run() reports the panicking job as a named Job error.
        match orch.run(&p).unwrap_err() {
            OrchestrateError::Job { job, error, .. } => {
                assert_eq!(job.driver, "panicky");
                assert!(error.contains("backend panicked"));
            }
            other => panic!("expected Job error, got {other}"),
        }
    }

    #[test]
    fn unparseable_documents_consume_retry_budget() {
        struct GarbageBackend;
        impl Backend for GarbageBackend {
            fn run_shard(&self, _: &ShardJob) -> Result<Vec<String>, String> {
                Ok(vec!["{ not json".into()])
            }
        }
        let orch = Orchestrator::new(GarbageBackend, 1);
        match orch.run(&plan(&["a"], 1, 2)).unwrap_err() {
            OrchestrateError::Job {
                attempts, error, ..
            } => {
                assert_eq!(attempts, 3);
                assert!(error.contains("unparseable table document"), "{error}");
            }
            other => panic!("expected Job error, got {other}"),
        }
    }

    #[test]
    fn misattributed_documents_are_job_failures() {
        // A backend shipping back some *other* job's documents (wrong
        // driver or wrong shard) must fail that job, not poison the
        // merge.
        struct WrongDriver;
        impl Backend for WrongDriver {
            fn run_shard(&self, job: &ShardJob) -> Result<Vec<String>, String> {
                Ok(fake_docs("impostor", job.shard, 0))
            }
        }
        let orch = Orchestrator::new(WrongDriver, 1);
        match orch.run(&plan(&["a"], 1, 0)).unwrap_err() {
            OrchestrateError::Job { error, .. } => assert!(error.contains("impostor"), "{error}"),
            other => panic!("expected Job error, got {other}"),
        }

        struct WrongShard;
        impl Backend for WrongShard {
            fn run_shard(&self, job: &ShardJob) -> Result<Vec<String>, String> {
                Ok(fake_docs(&job.driver, (job.shard.0, job.shard.1 + 1), 0))
            }
        }
        let orch = Orchestrator::new(WrongShard, 1);
        match orch.run(&plan(&["a"], 2, 0)).unwrap_err() {
            OrchestrateError::Job { error, .. } => {
                assert!(error.contains("shard"), "{error}")
            }
            other => panic!("expected Job error, got {other}"),
        }
    }

    #[test]
    fn observer_hears_every_job_outcome() {
        struct Collect(Mutex<Vec<(String, usize, bool)>>);
        impl RunObserver for Collect {
            fn job_done(
                &self,
                job: &ShardJob,
                attempts: usize,
                outcome: &Result<Vec<TableDoc>, String>,
            ) {
                self.0.lock().unwrap().push((
                    format!("{}:{}", job.driver, job.shard.0),
                    attempts,
                    outcome.is_ok(),
                ));
            }
        }
        let orch = Orchestrator::new(
            FakeBackend {
                fail_first: 1,
                calls: Default::default(),
            },
            2,
        );
        let collect = Collect(Mutex::new(Vec::new()));
        let report = orch
            .run_observed(&plan(&["a"], 3, 1), &collect)
            .expect("retries recover");
        assert_eq!(report.drivers[0].retried, 3);
        let mut seen = collect.0.into_inner().unwrap();
        seen.sort();
        assert_eq!(
            seen,
            vec![
                ("a:0".to_string(), 2, true),
                ("a:1".to_string(), 2, true),
                ("a:2".to_string(), 2, true),
            ]
        );
    }

    #[test]
    fn plan_file_parsing() {
        let p = PlanFile::parse(
            r#"{"drivers": ["fig08"], "shards": 4, "retries": 1, "workers": 2,
                "scale": "quick", "seed": 7, "replicates": 2, "backend": "subprocess"}"#,
        )
        .unwrap();
        assert_eq!(p.drivers.as_deref(), Some(&["fig08".to_string()][..]));
        assert_eq!(p.shards, Some(4));
        assert_eq!(p.retries, Some(1));
        assert_eq!(p.workers, Some(2));
        assert_eq!(p.scale, Some(Scale::Quick));
        assert_eq!(p.seed, Some(7));
        assert_eq!(p.replicates, Some(2));
        assert_eq!(p.backend.as_deref(), Some("subprocess"));
        assert!(PlanFile::parse(r#"{"backend": 3}"#).is_err());
        assert_eq!(
            PlanFile::parse(r#"{"drivers": "all"}"#).unwrap().drivers,
            None
        );
        assert_eq!(PlanFile::parse("{}").unwrap(), PlanFile::default());
        assert!(PlanFile::parse(r#"{"scale": "huge"}"#).is_err());
        assert!(PlanFile::parse("[1]").is_err());
        assert!(PlanFile::parse("{").is_err());
    }
}
