//! Result-file writers: `results/<figure>/<table>.csv` and `.json`.

use crate::table::Table;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Write every table as both CSV and JSON under `dir`, creating the
/// directory as needed. Returns the written paths (CSV then JSON per
/// table, in table order). Existing files are overwritten so re-runs
/// are idempotent.
pub fn write_tables(dir: &Path, tables: &[Table]) -> io::Result<Vec<PathBuf>> {
    fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(tables.len() * 2);
    for t in tables {
        let csv = dir.join(format!("{}.csv", t.name));
        fs::write(&csv, t.to_csv())?;
        paths.push(csv);
        let json = dir.join(format!("{}.json", t.name));
        fs::write(&json, t.to_json())?;
        paths.push(json);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("expt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn writes_csv_and_json() {
        let dir = tmp_dir("write");
        let mut t = Table::new("series", &["x", "y"]);
        t.push(vec![Cell::from(1u64), Cell::from(2u64)]);
        let paths = write_tables(&dir, std::slice::from_ref(&t)).unwrap();
        assert_eq!(paths.len(), 2);
        assert_eq!(fs::read_to_string(&paths[0]).unwrap(), "x,y\n1,2\n");
        assert!(fs::read_to_string(&paths[1]).unwrap().contains("\"rows\""));
        // Overwrite is idempotent.
        let again = write_tables(&dir, std::slice::from_ref(&t)).unwrap();
        assert_eq!(paths, again);
        fs::remove_dir_all(&dir).unwrap();
    }
}
