//! Result-file writers and the self-validating shard merge.
//!
//! Unsharded runs write `results/<figure>/<table>.csv` and a JSON
//! *table document* (`<table>.json`) carrying the same rows plus
//! provenance: the run's flags (scale / seed / replicates), the shard,
//! the sweep's total point count, the point indices this run executed,
//! and each row's point index. Sharded runs (`--shard i/n`) write only
//! their table documents, under `results/<figure>/shards/`.
//!
//! [`merge_shard_docs`] reassembles the unsharded table from shard
//! documents and *validates* what used to be a caller contract: every
//! point index present exactly once across shards, no duplicates, no
//! point in the wrong shard, matching schema and flags, and identical
//! constant rows. Each failure mode is a distinct [`MergeError`]
//! variant, so a dropped or duplicated shard is named, not scrambled
//! into the output.

use crate::json::{self, Json};
use crate::table::{Cell, Table};
use crate::ExptArgs;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Subdirectory of `results/<figure>/` holding per-shard table
/// documents.
pub const SHARD_DIR: &str = "shards";

/// Format tag written into every table document.
const DOC_FORMAT: u64 = 1;

/// Run provenance stamped into every table document: which driver
/// produced it, under which flags, and which shard it is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Driver (experiment) name.
    pub driver: String,
    /// Scale the run used (`quick` / `default` / `full`).
    pub scale: String,
    /// Base seed.
    pub seed: u64,
    /// Replicates per sweep point.
    pub replicates: usize,
    /// The `--k` ToR-radix override, where the driver supports one —
    /// part of the flag set shards must agree on (different `k` means a
    /// different topology).
    pub k: Option<usize>,
    /// The `(i, n)` shard, if the run was sharded.
    pub shard: Option<(usize, usize)>,
}

impl RunMeta {
    /// The meta describing one driver invocation.
    pub fn new(driver: &str, args: &ExptArgs) -> Self {
        RunMeta {
            driver: driver.to_string(),
            scale: args.scale.to_string(),
            seed: args.seed,
            replicates: args.replicates,
            k: args.k,
            shard: args.shard,
        }
    }
}

/// Render one table as a JSON table document.
///
/// Cells are recorded as their **rendered strings** — exactly the text
/// the CSV writer emits — so a merged document reproduces the unsharded
/// CSV byte-for-byte (typed JSON numbers would lose `NaN` cells and
/// 64-bit integer precision).
pub fn table_json(t: &Table, meta: &RunMeta) -> String {
    let mut s = String::from("{\n  \"format\": ");
    s.push_str(&DOC_FORMAT.to_string());
    s.push_str(",\n  \"driver\": ");
    json::write_string(&mut s, &meta.driver);
    s.push_str(",\n  \"table\": ");
    json::write_string(&mut s, &t.name);
    s.push_str(",\n  \"scale\": ");
    json::write_string(&mut s, &meta.scale);
    s.push_str(&format!(",\n  \"seed\": {}", meta.seed));
    s.push_str(&format!(",\n  \"replicates\": {}", meta.replicates));
    match meta.k {
        Some(k) => s.push_str(&format!(",\n  \"k\": {k}")),
        None => s.push_str(",\n  \"k\": null"),
    }
    match meta.shard {
        Some((i, n)) => s.push_str(&format!(",\n  \"shard\": [{i}, {n}]")),
        None => s.push_str(",\n  \"shard\": null"),
    }
    match t.sweep_points {
        Some(n) => s.push_str(&format!(",\n  \"sweep_points\": {n}")),
        None => s.push_str(",\n  \"sweep_points\": null"),
    }
    s.push_str(",\n  \"points_run\": [");
    for (i, p) in t.points_run.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&p.to_string());
    }
    s.push_str("],\n  \"columns\": [");
    for (i, c) in t.columns.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        json::write_string(&mut s, c);
    }
    s.push_str("],\n  \"row_points\": [");
    for (i, p) in t.row_points.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match p {
            Some(p) => s.push_str(&p.to_string()),
            None => s.push_str("null"),
        }
    }
    s.push_str("],\n  \"rows\": [");
    for (ri, row) in t.rows.iter().enumerate() {
        if ri > 0 {
            s.push(',');
        }
        s.push_str("\n    [");
        for (ci, cell) in row.iter().enumerate() {
            if ci > 0 {
                s.push_str(", ");
            }
            json::write_string(&mut s, &cell.to_string());
        }
        s.push(']');
    }
    if !t.rows.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// A parsed table document: one table as one (possibly sharded) run
/// produced it, with full provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDoc {
    /// Driver name.
    pub driver: String,
    /// Table name.
    pub table: String,
    /// Run scale.
    pub scale: String,
    /// Base seed.
    pub seed: u64,
    /// Replicates per sweep point.
    pub replicates: usize,
    /// The `--k` ToR-radix override, if one was set.
    pub k: Option<usize>,
    /// The `(i, n)` shard, if sharded.
    pub shard: Option<(usize, usize)>,
    /// Total sweep point count, if the table has sweep rows.
    pub sweep_points: Option<usize>,
    /// Point indices this run executed.
    pub points_run: Vec<usize>,
    /// Column names.
    pub columns: Vec<String>,
    /// Per-row point index, parallel to `rows`.
    pub row_points: Vec<Option<usize>>,
    /// Rows of rendered cells.
    pub rows: Vec<Vec<String>>,
}

impl TableDoc {
    /// Parse a table document from its JSON text.
    pub fn parse(text: &str) -> Result<TableDoc, MergeError> {
        let bad = |what: &str| MergeError::Parse {
            context: what.to_string(),
        };
        let j = Json::parse(text).map_err(|e| MergeError::Parse { context: e })?;
        match j.get("format").and_then(Json::as_u64) {
            Some(DOC_FORMAT) => {}
            Some(other) => {
                return Err(bad(&format!(
                    "unsupported document format {other} (this build reads format {DOC_FORMAT})"
                )))
            }
            None => return Err(bad("missing or non-integer field \"format\"")),
        }
        let str_field = |k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(&format!("missing or non-string field {k:?}")))
        };
        let opt_pair = |k: &str| -> Result<Option<(usize, usize)>, MergeError> {
            match j.get(k) {
                None => Err(bad(&format!("missing field {k:?}"))),
                Some(Json::Null) => Ok(None),
                Some(v) => {
                    let a = v.as_arr().ok_or_else(|| bad(&format!("bad {k:?}")))?;
                    match a {
                        [i, n] => Ok(Some((
                            i.as_usize().ok_or_else(|| bad(&format!("bad {k:?}")))?,
                            n.as_usize().ok_or_else(|| bad(&format!("bad {k:?}")))?,
                        ))),
                        _ => Err(bad(&format!("bad {k:?}"))),
                    }
                }
            }
        };
        let doc = TableDoc {
            driver: str_field("driver")?,
            table: str_field("table")?,
            scale: str_field("scale")?,
            seed: j
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing or non-integer field \"seed\""))?,
            replicates: j
                .get("replicates")
                .and_then(Json::as_usize)
                .ok_or_else(|| bad("missing or non-integer field \"replicates\""))?,
            k: match j.get("k") {
                Some(Json::Null) => None,
                Some(v) => Some(v.as_usize().ok_or_else(|| bad("bad \"k\""))?),
                None => return Err(bad("missing field \"k\"")),
            },
            shard: opt_pair("shard")?,
            sweep_points: match j.get("sweep_points") {
                Some(Json::Null) => None,
                Some(v) => Some(v.as_usize().ok_or_else(|| bad("bad \"sweep_points\""))?),
                None => return Err(bad("missing field \"sweep_points\"")),
            },
            points_run: j
                .get("points_run")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("missing field \"points_run\""))?
                .iter()
                .map(|v| v.as_usize().ok_or_else(|| bad("bad \"points_run\" entry")))
                .collect::<Result<_, _>>()?,
            columns: j
                .get("columns")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("missing field \"columns\""))?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| bad("bad column name"))
                })
                .collect::<Result<_, _>>()?,
            row_points: j
                .get("row_points")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("missing field \"row_points\""))?
                .iter()
                .map(|v| match v {
                    Json::Null => Ok(None),
                    v => v
                        .as_usize()
                        .map(Some)
                        .ok_or_else(|| bad("bad \"row_points\" entry")),
                })
                .collect::<Result<_, _>>()?,
            rows: j
                .get("rows")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("missing field \"rows\""))?
                .iter()
                .map(|row| {
                    row.as_arr()
                        .ok_or_else(|| bad("bad row"))?
                        .iter()
                        .map(|c| {
                            c.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| bad("bad cell (expected string)"))
                        })
                        .collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<_, _>>()?,
        };
        if doc.rows.len() != doc.row_points.len() {
            return Err(bad("\"rows\" and \"row_points\" lengths disagree"));
        }
        if let Some(bad_row) = doc.rows.iter().find(|r| r.len() != doc.columns.len()) {
            return Err(bad(&format!(
                "row has {} cells, expected {}",
                bad_row.len(),
                doc.columns.len()
            )));
        }
        Ok(doc)
    }

    /// Build a document directly from a table (what [`table_json`]
    /// renders).
    pub fn from_table(t: &Table, meta: &RunMeta) -> TableDoc {
        TableDoc {
            driver: meta.driver.clone(),
            table: t.name.clone(),
            scale: meta.scale.clone(),
            seed: meta.seed,
            replicates: meta.replicates,
            k: meta.k,
            shard: meta.shard,
            sweep_points: t.sweep_points,
            points_run: t.points_run.clone(),
            columns: t.columns.clone(),
            row_points: t.row_points.clone(),
            rows: t
                .rows
                .iter()
                .map(|r| r.iter().map(Cell::to_string).collect())
                .collect(),
        }
    }

    /// Convert back into a [`Table`] (cells become rendered strings —
    /// the CSV output is unchanged by the round trip).
    pub fn to_table(&self) -> Table {
        let columns: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        let mut t = Table::new(&self.table, &columns);
        t.sweep_points = self.sweep_points;
        t.points_run = self.points_run.clone();
        t.rows = self
            .rows
            .iter()
            .map(|r| r.iter().map(|c| Cell::Str(c.clone())).collect())
            .collect();
        t.row_points = self.row_points.clone();
        t
    }

    /// Render the document's rows as CSV — by construction the same
    /// renderer, and therefore the same bytes, as the source table's
    /// [`Table::to_csv`].
    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }

    /// Render as JSON text.
    pub fn render(&self) -> String {
        let meta = RunMeta {
            driver: self.driver.clone(),
            scale: self.scale.clone(),
            seed: self.seed,
            replicates: self.replicates,
            k: self.k,
            shard: self.shard,
        };
        table_json(&self.to_table(), &meta)
    }
}

/// A validation failure while merging shard documents. Every failure
/// mode the merge guards against is a distinct variant, so CI and tests
/// can assert on *which* invariant broke.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// No shard documents were given.
    NoShards,
    /// A document failed to parse or was structurally invalid.
    Parse {
        /// What was malformed.
        context: String,
    },
    /// Documents disagree on driver, table name, or column set.
    SchemaMismatch {
        /// Table being merged.
        table: String,
        /// Which part of the schema disagreed.
        field: &'static str,
        /// Value in the offending document.
        got: String,
        /// Value in the first document.
        want: String,
    },
    /// Documents disagree on a run flag (scale / seed / replicates /
    /// sweep size): they come from different runs and must not merge.
    FlagMismatch {
        /// Table being merged.
        table: String,
        /// Which flag disagreed.
        flag: &'static str,
        /// Value in the offending document.
        got: String,
        /// Value in the first document.
        want: String,
    },
    /// A multi-document merge contained an unsharded document.
    NotSharded {
        /// Table being merged.
        table: String,
    },
    /// Documents disagree on the shard count `n`.
    ShardCountMismatch {
        /// Table being merged.
        table: String,
        /// `n` in the offending document.
        got: usize,
        /// `n` in the first document.
        want: usize,
    },
    /// A document claims shard index `i >= n`.
    InvalidShardIndex {
        /// Table being merged.
        table: String,
        /// The out-of-range shard index.
        shard: usize,
        /// The declared shard count.
        count: usize,
    },
    /// A table has sweep rows but no recorded sweep point count.
    UnknownPointCount {
        /// Table being merged.
        table: String,
    },
    /// A document claims a point its shard does not own (`point % n !=
    /// i`), or reports a row for a point it never ran.
    ShardAssignment {
        /// Table being merged.
        table: String,
        /// The misassigned point.
        point: usize,
        /// The shard index that claimed it.
        shard: usize,
    },
    /// A sweep point index is present in no shard — a shard was dropped
    /// or never ran.
    MissingPointIndex {
        /// Table being merged.
        table: String,
        /// The absent point.
        point: usize,
        /// The shard index that should have produced it.
        expected_shard: usize,
    },
    /// A sweep point index is present in more than one shard — a shard
    /// was duplicated.
    DuplicatePointIndex {
        /// Table being merged.
        table: String,
        /// The duplicated point.
        point: usize,
    },
    /// Constant (non-sweep) rows differ between shards.
    ConstantRowMismatch {
        /// Table being merged.
        table: String,
        /// 1-based constant-row number (0 when the counts differ).
        row: usize,
        /// Rendered row in the offending document.
        got: String,
        /// Rendered row in the first document.
        want: String,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoShards => write!(f, "no shard documents to merge"),
            MergeError::Parse { context } => write!(f, "malformed table document: {context}"),
            MergeError::SchemaMismatch {
                table,
                field,
                got,
                want,
            } => write!(
                f,
                "{table}: shard schema mismatch on {field}: got `{got}` want `{want}`"
            ),
            MergeError::FlagMismatch {
                table,
                flag,
                got,
                want,
            } => write!(
                f,
                "{table}: shard flag mismatch on {flag}: got `{got}` want `{want}` \
                 (shards must come from one run configuration)"
            ),
            MergeError::NotSharded { table } => {
                write!(f, "{table}: unsharded document in a multi-shard merge")
            }
            MergeError::ShardCountMismatch { table, got, want } => write!(
                f,
                "{table}: shard count mismatch: got {got}-way shard, want {want}-way"
            ),
            MergeError::InvalidShardIndex {
                table,
                shard,
                count,
            } => write!(
                f,
                "{table}: invalid shard index {shard} for a {count}-way sharding"
            ),
            MergeError::UnknownPointCount { table } => write!(
                f,
                "{table}: sweep rows present but no sweep point count recorded"
            ),
            MergeError::ShardAssignment {
                table,
                point,
                shard,
            } => write!(
                f,
                "{table}: point index {point} claimed by shard {shard}, which does not own it"
            ),
            MergeError::MissingPointIndex {
                table,
                point,
                expected_shard,
            } => write!(
                f,
                "{table}: missing point index {point} (shard {expected_shard} dropped?)"
            ),
            MergeError::DuplicatePointIndex { table, point } => write!(
                f,
                "{table}: duplicate point index {point} across shards (shard submitted twice?)"
            ),
            MergeError::ConstantRowMismatch {
                table,
                row,
                got,
                want,
            } => write!(
                f,
                "{table}: constant row {row} differs between shards: got `{got}` want `{want}`"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Merge shard documents of one table back into the unsharded document.
///
/// Validates, in order: schema (driver / table / columns), run flags
/// (scale / seed / replicates / sweep size), shard consistency, point
/// ownership (`point % n == i`), completeness (**every point index
/// present exactly once across shards** — a dropped shard surfaces as
/// [`MergeError::MissingPointIndex`], a duplicated one as
/// [`MergeError::DuplicatePointIndex`]), and constant-row identity.
/// The merged row order is the canonical unsharded order: constant rows
/// first, then sweep rows by ascending point index, each point's rows
/// in its shard's emission order — so the merged CSV is byte-identical
/// to a `--threads 1` unsharded run.
pub fn merge_shard_docs(docs: &[TableDoc]) -> Result<TableDoc, MergeError> {
    let first = docs.first().ok_or(MergeError::NoShards)?;
    let table = first.table.clone();

    // Schema and flag agreement.
    for d in docs {
        let schema = |field, got: &str, want: &str| MergeError::SchemaMismatch {
            table: table.clone(),
            field,
            got: got.to_string(),
            want: want.to_string(),
        };
        if d.driver != first.driver {
            return Err(schema("driver", &d.driver, &first.driver));
        }
        if d.table != first.table {
            return Err(schema("table", &d.table, &first.table));
        }
        if d.columns != first.columns {
            return Err(schema(
                "columns",
                &d.columns.join(","),
                &first.columns.join(","),
            ));
        }
        let flag = |flag, got: String, want: String| MergeError::FlagMismatch {
            table: table.clone(),
            flag,
            got,
            want,
        };
        if d.scale != first.scale {
            return Err(flag("scale", d.scale.clone(), first.scale.clone()));
        }
        if d.seed != first.seed {
            return Err(flag("seed", d.seed.to_string(), first.seed.to_string()));
        }
        if d.replicates != first.replicates {
            return Err(flag(
                "replicates",
                d.replicates.to_string(),
                first.replicates.to_string(),
            ));
        }
        if d.k != first.k {
            return Err(flag("k", format!("{:?}", d.k), format!("{:?}", first.k)));
        }
        if d.sweep_points != first.sweep_points {
            return Err(flag(
                "sweep_points",
                format!("{:?}", d.sweep_points),
                format!("{:?}", first.sweep_points),
            ));
        }
    }

    // Single unsharded document: nothing to reassemble.
    if docs.len() == 1 && first.shard.is_none() {
        return Ok(first.clone());
    }

    // Shard consistency.
    let (_, n) = first.shard.ok_or(MergeError::NotSharded {
        table: table.clone(),
    })?;
    for d in docs {
        let (i, dn) = d.shard.ok_or(MergeError::NotSharded {
            table: table.clone(),
        })?;
        if dn != n {
            return Err(MergeError::ShardCountMismatch {
                table,
                got: dn,
                want: n,
            });
        }
        if i >= n {
            return Err(MergeError::InvalidShardIndex {
                table,
                shard: i,
                count: n,
            });
        }
    }

    let sweep_points = match first.sweep_points {
        Some(p) => p,
        None => {
            // No sweep behind this table: every shard computed the same
            // constant rows. Validate identity and pass one through.
            if docs
                .iter()
                .any(|d| d.row_points.iter().any(Option::is_some))
            {
                return Err(MergeError::UnknownPointCount { table });
            }
            check_constants(&table, docs)?;
            let mut merged = first.clone();
            merged.shard = None;
            return Ok(merged);
        }
    };

    // Point ownership and completeness, from the executed-point lists:
    // a point may produce zero rows, so rows alone cannot prove a shard
    // ran. `owner[p]` is the doc index that executed point `p`.
    let mut owner: Vec<Option<usize>> = vec![None; sweep_points];
    for (di, d) in docs.iter().enumerate() {
        let shard_i = d.shard.expect("checked above").0;
        for &p in &d.points_run {
            if p >= sweep_points || p % n != shard_i {
                return Err(MergeError::ShardAssignment {
                    table,
                    point: p,
                    shard: shard_i,
                });
            }
            if owner[p].is_some() {
                return Err(MergeError::DuplicatePointIndex { table, point: p });
            }
            owner[p] = Some(di);
        }
        // Every row's point must be among the points the shard ran.
        for p in d.row_points.iter().flatten() {
            if !d.points_run.contains(p) {
                return Err(MergeError::ShardAssignment {
                    table,
                    point: *p,
                    shard: shard_i,
                });
            }
        }
    }
    if let Some(p) = owner.iter().position(Option::is_none) {
        return Err(MergeError::MissingPointIndex {
            table,
            point: p,
            expected_shard: p % n,
        });
    }

    check_constants(&table, docs)?;

    // Reassemble: constants (validated identical) first, then points in
    // ascending global order, each in its owning shard's emission order.
    let mut merged = TableDoc {
        shard: None,
        points_run: (0..sweep_points).collect(),
        row_points: Vec::new(),
        rows: Vec::new(),
        ..first.clone()
    };
    for (row, p) in first.rows.iter().zip(&first.row_points) {
        if p.is_none() {
            merged.rows.push(row.clone());
            merged.row_points.push(None);
        }
    }
    for (p, di) in owner.iter().enumerate() {
        let d = &docs[di.expect("completeness checked")];
        for (row, rp) in d.rows.iter().zip(&d.row_points) {
            if *rp == Some(p) {
                merged.rows.push(row.clone());
                merged.row_points.push(Some(p));
            }
        }
    }
    Ok(merged)
}

/// Validate that every document's constant (non-sweep) rows are
/// identical, in order.
fn check_constants(table: &str, docs: &[TableDoc]) -> Result<(), MergeError> {
    let constants = |d: &TableDoc| -> Vec<Vec<String>> {
        d.rows
            .iter()
            .zip(&d.row_points)
            .filter(|(_, p)| p.is_none())
            .map(|(r, _)| r.clone())
            .collect()
    };
    let want = constants(&docs[0]);
    for d in &docs[1..] {
        let got = constants(d);
        if got.len() != want.len() {
            return Err(MergeError::ConstantRowMismatch {
                table: table.to_string(),
                row: 0,
                got: format!("{} constant row(s)", got.len()),
                want: format!("{} constant row(s)", want.len()),
            });
        }
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            if g != w {
                return Err(MergeError::ConstantRowMismatch {
                    table: table.to_string(),
                    row: i + 1,
                    got: g.join(","),
                    want: w.join(","),
                });
            }
        }
    }
    Ok(())
}

/// The shard-document filename for table `name` under shard `(i, n)`.
pub fn shard_file_name(name: &str, shard: (usize, usize)) -> String {
    format!("{name}.shard{}of{}.json", shard.0, shard.1)
}

/// Write `contents` to `path` atomically: write `<path>.tmp` in full,
/// then rename over `path`. A reader (or a resumed run) therefore never
/// sees a half-written file — it sees the old contents, the new
/// contents, or no file at all. The `.tmp` suffix is *appended* (not an
/// extension swap) so a leftover temp file from a killed process never
/// matches the `.json` / `.csv` filters of
/// [`crate::orchestrate::validate_dir`] and resume scans.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

/// Write every table's result files under `dir`, creating directories
/// as needed. Unsharded runs write `<table>.csv` plus the `<table>.json`
/// table document; sharded runs write only
/// `shards/<table>.shard<i>of<n>.json`, ready for [`merge_shard_docs`].
/// Returns the written paths in table order. Every file is written
/// atomically ([`write_atomic`]), so re-runs are idempotent and a
/// killed run never leaves a half-written document behind.
pub fn write_tables(dir: &Path, tables: &[Table], meta: &RunMeta) -> io::Result<Vec<PathBuf>> {
    let mut paths = Vec::with_capacity(tables.len() * 2);
    match meta.shard {
        Some(shard) => {
            let sdir = dir.join(SHARD_DIR);
            fs::create_dir_all(&sdir)?;
            for t in tables {
                let json = sdir.join(shard_file_name(&t.name, shard));
                write_atomic(&json, &table_json(t, meta))?;
                paths.push(json);
            }
        }
        None => {
            fs::create_dir_all(dir)?;
            for t in tables {
                let csv = dir.join(format!("{}.csv", t.name));
                write_atomic(&csv, &t.to_csv())?;
                paths.push(csv);
                let json = dir.join(format!("{}.json", t.name));
                write_atomic(&json, &table_json(t, meta))?;
                paths.push(json);
            }
        }
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepRef;
    use crate::table::Cell;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("expt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn meta(shard: Option<(usize, usize)>) -> RunMeta {
        RunMeta {
            driver: "drv".into(),
            scale: "quick".into(),
            seed: 0,
            replicates: 3,
            k: None,
            shard,
        }
    }

    /// A 5-point sweep sharded 2 ways, with one constant row and two
    /// rows per point.
    fn sharded_docs() -> Vec<TableDoc> {
        (0..2usize)
            .map(|i| {
                let sweep = SweepRef {
                    points: 5,
                    owned: (0..5).filter(|p| p % 2 == i).collect(),
                };
                let mut t = Table::new("series", &["p", "sub"]).for_sweep(&sweep);
                t.push(vec![Cell::from("const"), Cell::from(0u64)]);
                for &p in &sweep.owned {
                    for sub in 0..2u64 {
                        t.push_indexed(p, vec![Cell::from(p), Cell::from(sub)]);
                    }
                }
                TableDoc::from_table(&t, &meta(Some((i, 2))))
            })
            .collect()
    }

    fn unsharded_csv() -> String {
        let sweep = SweepRef {
            points: 5,
            owned: (0..5).collect(),
        };
        let mut t = Table::new("series", &["p", "sub"]).for_sweep(&sweep);
        t.push(vec![Cell::from("const"), Cell::from(0u64)]);
        for p in 0..5usize {
            for sub in 0..2u64 {
                t.push_indexed(p, vec![Cell::from(p), Cell::from(sub)]);
            }
        }
        t.to_csv()
    }

    #[test]
    fn doc_round_trips_through_json() {
        let sweep = SweepRef {
            points: 3,
            owned: vec![0, 1, 2],
        };
        let mut t = Table::new("demo", &["label", "v"]).for_sweep(&sweep);
        t.push(vec![Cell::from("a\"b,c"), Cell::F64(f64::NAN)]);
        t.push_indexed(0, vec![Cell::from("x"), Cell::F64(0.5)]);
        let m = meta(Some((0, 1)));
        let text = table_json(&t, &m);
        let doc = TableDoc::parse(&text).unwrap();
        assert_eq!(doc, TableDoc::from_table(&t, &m));
        // Rendered cells preserve NaN and the CSV rendering exactly.
        assert_eq!(doc.rows[0][1], "NaN");
        assert_eq!(doc.to_csv(), t.to_csv());
        // render() is parse's inverse.
        assert_eq!(TableDoc::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn merge_restores_unsharded_order_with_multirow_points() {
        let merged = merge_shard_docs(&sharded_docs()).unwrap();
        assert_eq!(merged.to_csv(), unsharded_csv());
        assert_eq!(merged.shard, None);
        assert_eq!(merged.points_run, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn dropped_shard_is_a_missing_point_index() {
        let docs = sharded_docs();
        let err = merge_shard_docs(&docs[..1]).unwrap_err();
        assert_eq!(
            err,
            MergeError::MissingPointIndex {
                table: "series".into(),
                point: 1,
                expected_shard: 1,
            }
        );
        assert!(err.to_string().contains("missing point index 1"));
    }

    #[test]
    fn duplicated_shard_is_a_duplicate_point_index() {
        let docs = sharded_docs();
        let dup = vec![docs[0].clone(), docs[1].clone(), docs[0].clone()];
        let err = merge_shard_docs(&dup).unwrap_err();
        assert_eq!(
            err,
            MergeError::DuplicatePointIndex {
                table: "series".into(),
                point: 0,
            }
        );
    }

    #[test]
    fn schema_and_flag_mismatches_are_named() {
        let mut docs = sharded_docs();
        docs[1].columns[1] = "other".into();
        assert!(matches!(
            merge_shard_docs(&docs).unwrap_err(),
            MergeError::SchemaMismatch {
                field: "columns",
                ..
            }
        ));
        let mut docs = sharded_docs();
        docs[1].seed = 7;
        assert!(matches!(
            merge_shard_docs(&docs).unwrap_err(),
            MergeError::FlagMismatch { flag: "seed", .. }
        ));
        // Shards run under different --k topologies must not merge.
        let mut docs = sharded_docs();
        docs[1].k = Some(24);
        assert!(matches!(
            merge_shard_docs(&docs).unwrap_err(),
            MergeError::FlagMismatch { flag: "k", .. }
        ));
        // An out-of-range shard index is named as such.
        let mut docs = sharded_docs();
        docs[1].shard = Some((5, 2));
        docs[1].points_run.clear();
        docs[1].rows.truncate(1);
        docs[1].row_points.truncate(1);
        assert!(matches!(
            merge_shard_docs(&docs).unwrap_err(),
            MergeError::InvalidShardIndex {
                shard: 5,
                count: 2,
                ..
            }
        ));
        let mut docs = sharded_docs();
        docs[1].shard = None;
        assert!(matches!(
            merge_shard_docs(&docs).unwrap_err(),
            MergeError::NotSharded { .. }
        ));
        let mut docs = sharded_docs();
        docs[1].shard = Some((1, 3));
        assert!(matches!(
            merge_shard_docs(&docs).unwrap_err(),
            MergeError::ShardCountMismatch {
                got: 3,
                want: 2,
                ..
            }
        ));
    }

    #[test]
    fn misassigned_point_and_constant_drift_are_named() {
        let mut docs = sharded_docs();
        // Shard 1 claims point 2 (owned by shard 0).
        docs[1].points_run.push(2);
        assert_eq!(
            merge_shard_docs(&docs).unwrap_err(),
            MergeError::ShardAssignment {
                table: "series".into(),
                point: 2,
                shard: 1,
            }
        );
        let mut docs = sharded_docs();
        docs[1].rows[0][0] = "drifted".into();
        assert!(matches!(
            merge_shard_docs(&docs).unwrap_err(),
            MergeError::ConstantRowMismatch { row: 1, .. }
        ));
    }

    #[test]
    fn zero_row_points_still_validate() {
        // A shard that ran its points but produced no rows for them is
        // complete; dropping it from points_run is what must fail.
        let mut docs = sharded_docs();
        // Keep the constant row, drop the sweep rows.
        docs[1].rows.truncate(1);
        docs[1].row_points.truncate(1);
        assert!(merge_shard_docs(&docs).is_ok());
        docs[1].points_run.clear();
        assert!(matches!(
            merge_shard_docs(&docs).unwrap_err(),
            MergeError::MissingPointIndex { point: 1, .. }
        ));
    }

    #[test]
    fn constant_tables_merge_by_identity() {
        let mut t = Table::new("config", &["k"]);
        t.push(vec![Cell::from(12u64)]);
        let docs: Vec<TableDoc> = (0..3)
            .map(|i| TableDoc::from_table(&t, &meta(Some((i, 3)))))
            .collect();
        let merged = merge_shard_docs(&docs).unwrap();
        assert_eq!(merged.to_csv(), t.to_csv());
        // Single unsharded doc passes through.
        let solo = TableDoc::from_table(&t, &meta(None));
        assert_eq!(merge_shard_docs(std::slice::from_ref(&solo)).unwrap(), solo);
    }

    #[test]
    fn writes_csv_and_doc_unsharded_and_doc_only_sharded() {
        let dir = tmp_dir("write");
        let mut t = Table::new("series", &["x", "y"]);
        t.push(vec![Cell::from(1u64), Cell::from(2u64)]);
        let paths = write_tables(&dir, std::slice::from_ref(&t), &meta(None)).unwrap();
        assert_eq!(paths.len(), 2);
        assert_eq!(fs::read_to_string(&paths[0]).unwrap(), "x,y\n1,2\n");
        let doc = TableDoc::parse(&fs::read_to_string(&paths[1]).unwrap()).unwrap();
        assert_eq!(doc.rows, vec![vec!["1".to_string(), "2".to_string()]]);
        // Overwrite is idempotent.
        let again = write_tables(&dir, std::slice::from_ref(&t), &meta(None)).unwrap();
        assert_eq!(paths, again);
        // Sharded: document only, under shards/.
        let spaths = write_tables(&dir, std::slice::from_ref(&t), &meta(Some((1, 4)))).unwrap();
        assert_eq!(spaths.len(), 1);
        assert!(spaths[0].ends_with("shards/series.shard1of4.json"));
        assert!(spaths[0].exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
