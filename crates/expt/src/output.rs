//! Result-file writers: `results/<figure>/<table>.csv` and `.json`.

use crate::table::Table;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Write every table as both CSV and JSON under `dir`, creating the
/// directory as needed. Returns the written paths (CSV then JSON per
/// table, in table order). Existing files are overwritten so re-runs
/// are idempotent.
pub fn write_tables(dir: &Path, tables: &[Table]) -> io::Result<Vec<PathBuf>> {
    fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(tables.len() * 2);
    for t in tables {
        let csv = dir.join(format!("{}.csv", t.name));
        fs::write(&csv, t.to_csv())?;
        paths.push(csv);
        let json = dir.join(format!("{}.json", t.name));
        fs::write(&json, t.to_json())?;
        paths.push(json);
    }
    Ok(paths)
}

/// Merge per-shard CSV renderings of one table back into the unsharded
/// row order.
///
/// Shard `k` of `n` owns sweep points `k, k + n, k + 2n, ...`
/// ([`crate::Runner::with_shard`]), so for tables with exactly one row
/// per sweep point — the common figure-table shape — the unsharded
/// order is the round-robin interleave of the shard files' data rows.
/// Pass the parts in shard order (`parts[k]` is shard `k`'s CSV).
/// Tables built outside the sweep are identical in every shard and are
/// returned as-is.
///
/// **Caller contract: one row per sweep point.** A rendered CSV does
/// not say which point produced a row, so this cannot be validated
/// here: the row-count check below rejects *impossible* shardings, but
/// a multi-row-per-point table whose per-shard row counts happen to be
/// round-robin-consistent (e.g. every point emitting the same number of
/// rows) merges without error into a scrambled row order. Tables that
/// emit several rows per point (the FCT size-bin tables) must be
/// re-run unsharded instead.
///
/// Errors when headers disagree, or when the row counts are impossible
/// for a `k/n` sharding of one sweep. Rows are split on newlines, so
/// cells containing embedded newlines are not supported here.
pub fn merge_sharded_csv(parts: &[String]) -> Result<String, String> {
    if parts.is_empty() {
        return Err("no shard files to merge".into());
    }
    if parts.iter().all(|p| p == &parts[0]) {
        // Constant (non-sweep) table: every shard computed the same rows.
        return Ok(parts[0].clone());
    }
    let split: Vec<(&str, Vec<&str>)> = parts
        .iter()
        .map(|p| {
            let mut lines = p.lines();
            let header = lines.next().unwrap_or("");
            (header, lines.collect())
        })
        .collect();
    let header = split[0].0;
    if split.iter().any(|(h, _)| *h != header) {
        return Err("shard headers disagree".into());
    }
    let n = split.len();
    let total: usize = split.iter().map(|(_, rows)| rows.len()).sum();
    let mut out = String::with_capacity(parts.iter().map(String::len).sum());
    out.push_str(header);
    out.push('\n');
    for j in 0..total {
        let (_, rows) = &split[j % n];
        let row = rows.get(j / n).ok_or_else(|| {
            format!(
                "shard {} has too few rows for a {}-way round-robin merge \
                 (is this a one-row-per-point table?)",
                j % n,
                n
            )
        })?;
        out.push_str(row);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("expt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn sharded_merge_restores_sweep_order() {
        // 7 points over 3 shards: 0,3,6 / 1,4 / 2,5.
        let unsharded = "x,y\n0,a\n1,b\n2,c\n3,d\n4,e\n5,f\n6,g\n";
        let parts = vec![
            "x,y\n0,a\n3,d\n6,g\n".to_string(),
            "x,y\n1,b\n4,e\n".to_string(),
            "x,y\n2,c\n5,f\n".to_string(),
        ];
        assert_eq!(merge_sharded_csv(&parts).unwrap(), unsharded);
    }

    #[test]
    fn constant_tables_pass_through() {
        let same = "k,v\n1,2\n".to_string();
        assert_eq!(
            merge_sharded_csv(&[same.clone(), same.clone()]).unwrap(),
            same
        );
    }

    #[test]
    fn merge_errors() {
        assert!(merge_sharded_csv(&[]).is_err());
        // Mismatched headers.
        let parts = vec!["a,b\n1,2\n".to_string(), "a,c\n3,4\n".to_string()];
        assert!(merge_sharded_csv(&parts).is_err());
        // Impossible row counts for round-robin (shard 1 longer than 0).
        let parts = vec!["h\n1\n".to_string(), "h\n2\n3\n4\n".to_string()];
        assert!(merge_sharded_csv(&parts).is_err());
    }

    #[test]
    fn writes_csv_and_json() {
        let dir = tmp_dir("write");
        let mut t = Table::new("series", &["x", "y"]);
        t.push(vec![Cell::from(1u64), Cell::from(2u64)]);
        let paths = write_tables(&dir, std::slice::from_ref(&t)).unwrap();
        assert_eq!(paths.len(), 2);
        assert_eq!(fs::read_to_string(&paths[0]).unwrap(), "x,y\n1,2\n");
        assert!(fs::read_to_string(&paths[1]).unwrap().contains("\"rows\""));
        // Overwrite is idempotent.
        let again = write_tables(&dir, std::slice::from_ref(&t)).unwrap();
        assert_eq!(paths, again);
        fs::remove_dir_all(&dir).unwrap();
    }
}
