//! Command-line arguments shared by every figure driver.
//!
//! All 19 binaries accept the same flags so CI and laptops exercise the
//! same code paths:
//!
//! * `--quick` — tiny grids + fixed seed (CI smoke mode),
//! * `--full` — paper-scale configurations (also `OPERA_SCALE=full`),
//! * `--threads N` — worker threads (`0` = all cores, the default),
//! * `--seed S` — base seed for per-point seed derivation,
//! * `--replicates R` — replicate seeds per sweep point (default 3);
//!   figure tables report mean and 95% CI over the replicates,
//! * `--shard I/N` — run only sweep points with `index % N == I`, for
//!   fanning a sweep out across machines; sharded runs write JSON table
//!   documents under `results/<driver>/shards/`, merged back (with
//!   point-index validation) by [`crate::output::merge_shard_docs`] or
//!   the `opera_orchestrate` binary,
//! * `--out DIR` — results root (default `results/`),
//! * `--no-write` — print CSV to stdout only,
//! * `--k K` — ToR radix override where the driver supports it.

use std::fmt;
use std::path::PathBuf;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny grid, fixed seed: the CI smoke configuration.
    Quick,
    /// Laptop-friendly mini networks (the default).
    Default,
    /// The paper's configurations (slow).
    Full,
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scale::Quick => "quick",
            Scale::Default => "default",
            Scale::Full => "full",
        })
    }
}

impl Scale {
    /// Parse the name [`Scale`] renders to (`quick` / `default` /
    /// `full`) — the form plan files and run manifests store.
    pub fn from_name(name: &str) -> Result<Scale, String> {
        match name {
            "quick" => Ok(Scale::Quick),
            "default" => Ok(Scale::Default),
            "full" => Ok(Scale::Full),
            other => Err(format!("unknown scale {other:?} (want quick/default/full)")),
        }
    }
}

/// Parsed arguments for one driver invocation.
#[derive(Debug, Clone)]
pub struct ExptArgs {
    /// Selected scale (quick wins over full if both are given).
    pub scale: Scale,
    /// Worker threads; `0` means one per available core.
    pub threads: usize,
    /// Base seed all per-point seeds derive from.
    pub seed: u64,
    /// Replicate seeds per sweep point (at least 1).
    pub replicates: usize,
    /// Optional `(i, n)` shard: run only points with `index % n == i`.
    pub shard: Option<(usize, usize)>,
    /// Results root directory.
    pub out: PathBuf,
    /// Skip writing result files.
    pub no_write: bool,
    /// Optional ToR-radix override (`--k`).
    pub k: Option<usize>,
}

impl Default for ExptArgs {
    fn default() -> Self {
        ExptArgs {
            scale: Scale::Default,
            threads: 0,
            seed: 0,
            replicates: 3,
            shard: None,
            out: PathBuf::from("results"),
            no_write: false,
            k: None,
        }
    }
}

impl ExptArgs {
    /// Parse from an explicit iterator (testable core of
    /// [`ExptArgs::parse_or_exit`]). `env_scale` is the value of the
    /// `OPERA_SCALE` environment variable, if any.
    pub fn parse_from<I, S>(args: I, env_scale: Option<&str>) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = ExptArgs::default();
        if matches!(env_scale, Some("full") | Some("FULL")) {
            out.scale = Scale::Full;
        }
        let mut quick = false;
        let mut it = args.into_iter().map(Into::into);
        while let Some(a) = it.next() {
            let mut value_for =
                |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
            match a.as_str() {
                "--quick" => quick = true,
                "--full" => out.scale = Scale::Full,
                "--threads" => {
                    out.threads = value_for("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?;
                }
                "--seed" => {
                    out.seed = value_for("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--replicates" => {
                    out.replicates = value_for("--replicates")?
                        .parse()
                        .map_err(|e| format!("--replicates: {e}"))?;
                    if out.replicates == 0 {
                        return Err("--replicates must be at least 1".into());
                    }
                }
                "--shard" => {
                    out.shard = Some(parse_shard(&value_for("--shard")?)?);
                }
                "--out" => out.out = PathBuf::from(value_for("--out")?),
                "--no-write" => out.no_write = true,
                "--k" => {
                    out.k = Some(value_for("--k")?.parse().map_err(|e| format!("--k: {e}"))?);
                }
                "--help" | "-h" => return Err(String::new()),
                other => return Err(format!("unknown argument: {other}")),
            }
        }
        if quick {
            // Quick beats full: CI passes --quick unconditionally.
            out.scale = Scale::Quick;
        }
        Ok(out)
    }

    /// Parse `std::env::args`, printing usage and exiting on error or
    /// `--help`.
    pub fn parse_or_exit(name: &str, title: &str) -> Self {
        let env_scale = std::env::var("OPERA_SCALE").ok();
        match Self::parse_from(std::env::args().skip(1), env_scale.as_deref()) {
            Ok(a) => a,
            Err(msg) => {
                if !msg.is_empty() {
                    eprintln!("error: {msg}");
                }
                eprintln!("{title}");
                eprintln!(
                    "usage: {name} [--quick] [--full] [--threads N] [--seed S] \
                     [--replicates R] [--shard I/N] [--out DIR] [--no-write] [--k K]"
                );
                std::process::exit(if msg.is_empty() { 0 } else { 2 });
            }
        }
    }
}

/// Parse a `--shard` value of the form `I/N` with `I < N`.
fn parse_shard(s: &str) -> Result<(usize, usize), String> {
    let bad = || format!("--shard: expected I/N with I < N, got {s:?}");
    let (i, n) = s.split_once('/').ok_or_else(bad)?;
    let i: usize = i.trim().parse().map_err(|_| bad())?;
    let n: usize = n.trim().parse().map_err(|_| bad())?;
    if n == 0 || i >= n {
        return Err(bad());
    }
    Ok((i, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = ExptArgs::parse_from(Vec::<String>::new(), None).unwrap();
        assert_eq!(a.scale, Scale::Default);
        assert_eq!(a.threads, 0);
        assert_eq!(a.seed, 0);
        assert_eq!(a.replicates, 3);
        assert_eq!(a.shard, None);
        assert_eq!(a.out, PathBuf::from("results"));
        assert!(!a.no_write);
        assert_eq!(a.k, None);
    }

    #[test]
    fn all_flags() {
        let a = ExptArgs::parse_from(
            [
                "--quick",
                "--threads",
                "8",
                "--seed",
                "42",
                "--replicates",
                "5",
                "--shard",
                "1/4",
                "--out",
                "tmp/r",
                "--no-write",
                "--k",
                "12",
            ],
            None,
        )
        .unwrap();
        assert_eq!(a.scale, Scale::Quick);
        assert_eq!(a.threads, 8);
        assert_eq!(a.seed, 42);
        assert_eq!(a.replicates, 5);
        assert_eq!(a.shard, Some((1, 4)));
        assert_eq!(a.out, PathBuf::from("tmp/r"));
        assert!(a.no_write);
        assert_eq!(a.k, Some(12));
    }

    #[test]
    fn quick_beats_full_and_env() {
        let a = ExptArgs::parse_from(["--quick", "--full"], Some("full")).unwrap();
        assert_eq!(a.scale, Scale::Quick);
        let a = ExptArgs::parse_from(Vec::<String>::new(), Some("full")).unwrap();
        assert_eq!(a.scale, Scale::Full);
    }

    #[test]
    fn errors() {
        assert!(ExptArgs::parse_from(["--threads"], None).is_err());
        assert!(ExptArgs::parse_from(["--threads", "x"], None).is_err());
        assert!(ExptArgs::parse_from(["--bogus"], None).is_err());
        assert!(ExptArgs::parse_from(["--replicates", "0"], None).is_err());
    }

    #[test]
    fn shard_parsing() {
        assert_eq!(parse_shard("0/2"), Ok((0, 2)));
        assert_eq!(parse_shard("3/8"), Ok((3, 8)));
        assert!(parse_shard("2/2").is_err()); // i must be < n
        assert!(parse_shard("0/0").is_err());
        assert!(parse_shard("1").is_err());
        assert!(parse_shard("a/b").is_err());
    }
}
