//! Durable run state: the `run.json` manifest and incremental writers
//! that make an orchestrated sweep survivable.
//!
//! The original orchestrator wrote results *once, at the very end* of a
//! run — a killed `--full` sweep (paper-scale points take minutes each)
//! lost every completed shard. This module closes that gap:
//!
//! * [`RunManifest`] — the plan, run flags, and per-job status
//!   (pending / ok / failed, attempts, persisted tables), serialized as
//!   `run.json` in the run directory and rewritten atomically after
//!   every job completion,
//! * [`RunWriter`] — a [`RunObserver`] that persists each job's shard
//!   documents to `<out>/<driver>/shards/` *the moment the job
//!   completes*, via [`crate::output::write_atomic`] (tmp file +
//!   rename), then updates the manifest — so at any kill point the disk
//!   holds only complete documents plus an accurate account of what
//!   finished,
//! * [`resume_run`] — reloads a manifest, re-validates every surviving
//!   shard document (parse + provenance against the manifest), and
//!   re-runs *only* the missing, corrupt, or never-completed jobs
//!   before re-merging. Because per-point seeds derive from the plan
//!   and not the attempt, the resumed merge is byte-identical to an
//!   uninterrupted run.

use crate::json::Json;
use crate::orchestrate::{
    merge_driver_docs, plan_jobs, Backend, OrchestrateError, Orchestrator, Plan, RunObserver,
    RunReport, ShardJob,
};
use crate::output::{self, TableDoc};
use crate::{ExptArgs, Scale};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Manifest filename inside a run directory.
pub const RUN_FILE: &str = "run.json";

/// Format tag written into every manifest.
const MANIFEST_FORMAT: u64 = 1;

/// Lifecycle state of one shard job within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Not yet completed (never ran, or the run was killed mid-job).
    Pending,
    /// Completed; its shard documents are on disk.
    Ok,
    /// Failed after exhausting the retry budget.
    Failed,
}

impl JobStatus {
    fn name(self) -> &'static str {
        match self {
            JobStatus::Pending => "pending",
            JobStatus::Ok => "ok",
            JobStatus::Failed => "failed",
        }
    }

    fn from_name(name: &str) -> Result<JobStatus, String> {
        match name {
            "pending" => Ok(JobStatus::Pending),
            "ok" => Ok(JobStatus::Ok),
            "failed" => Ok(JobStatus::Failed),
            other => Err(format!(
                "unknown job status {other:?} (want pending/ok/failed)"
            )),
        }
    }
}

/// One shard job's entry in the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct JobEntry {
    /// Driver name.
    pub driver: String,
    /// The `(i, n)` shard.
    pub shard: (usize, usize),
    /// Lifecycle state.
    pub status: JobStatus,
    /// Attempts made so far (0 while pending).
    pub attempts: usize,
    /// Last error, for failed jobs.
    pub error: Option<String>,
    /// Table names whose shard documents this job persisted — the
    /// exact files [`resume_run`] must find (and re-validate) to reuse
    /// the job.
    pub tables: Vec<String>,
}

impl JobEntry {
    /// The job this entry describes.
    pub fn job(&self) -> ShardJob {
        ShardJob {
            driver: self.driver.clone(),
            shard: self.shard,
        }
    }
}

/// The durable description of one orchestrated run: plan, run flags,
/// backend, and per-job status. Serialized as `run.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Drivers in plan order.
    pub drivers: Vec<String>,
    /// Shards per driver.
    pub shards: usize,
    /// Retry budget per shard job.
    pub retries: usize,
    /// Backend name the run used (`local` / `subprocess` / ...) — what
    /// `resume` re-runs with unless overridden.
    pub backend: String,
    /// Run scale.
    pub scale: Scale,
    /// Base seed.
    pub seed: u64,
    /// Replicates per sweep point.
    pub replicates: usize,
    /// Optional `--k` ToR-radix override.
    pub k: Option<usize>,
    /// True once the run merged and wrote final CSVs.
    pub complete: bool,
    /// One entry per `driver × shard` job.
    pub jobs: Vec<JobEntry>,
}

impl RunManifest {
    /// A fresh manifest for `plan` run under `backend` with `args`:
    /// every job pending.
    pub fn new(plan: &Plan, backend: &str, args: &ExptArgs) -> RunManifest {
        RunManifest {
            drivers: plan.drivers.clone(),
            shards: plan.shards,
            retries: plan.retries,
            backend: backend.to_string(),
            scale: args.scale,
            seed: args.seed,
            replicates: args.replicates,
            k: args.k,
            complete: false,
            jobs: plan_jobs(plan)
                .into_iter()
                .map(|j| JobEntry {
                    driver: j.driver,
                    shard: j.shard,
                    status: JobStatus::Pending,
                    attempts: 0,
                    error: None,
                    tables: Vec::new(),
                })
                .collect(),
        }
    }

    /// A manifest describing an already-completed in-memory report
    /// (the [`crate::orchestrate::write_run`] path). Run flags are
    /// recovered from the report's own documents; the backend is
    /// recorded as `local` since the report was produced in-process.
    pub fn from_report(report: &RunReport) -> RunManifest {
        let probe = report.drivers.iter().flat_map(|d| d.merged.first()).next();
        let (scale, seed, replicates, k) = match probe {
            Some(doc) => (
                Scale::from_name(&doc.scale).unwrap_or(Scale::Default),
                doc.seed,
                doc.replicates,
                doc.k,
            ),
            None => (Scale::Default, 0, 1, None),
        };
        let plan = Plan {
            drivers: report.drivers.iter().map(|d| d.driver.clone()).collect(),
            shards: report.shards,
            retries: 0,
        };
        RunManifest::new(
            &plan,
            "local",
            &ExptArgs {
                scale,
                seed,
                replicates,
                k,
                ..ExptArgs::default()
            },
        )
    }

    /// The plan this manifest records.
    pub fn plan(&self) -> Plan {
        Plan {
            drivers: self.drivers.clone(),
            shards: self.shards,
            retries: self.retries,
        }
    }

    /// The driver flags this run used, as [`ExptArgs`] — what a
    /// resuming backend must pass to reproduce the run bit-for-bit
    /// (scale / seed / replicates / k; everything else keeps its
    /// default).
    pub fn expt_args(&self) -> ExptArgs {
        ExptArgs {
            scale: self.scale,
            seed: self.seed,
            replicates: self.replicates,
            k: self.k,
            ..ExptArgs::default()
        }
    }

    /// Update (or add) the entry for `job`.
    fn set_job(
        &mut self,
        job: &ShardJob,
        status: JobStatus,
        attempts: usize,
        error: Option<String>,
        tables: Vec<String>,
    ) {
        match self
            .jobs
            .iter_mut()
            .find(|e| e.driver == job.driver && e.shard == job.shard)
        {
            Some(e) => {
                e.status = status;
                e.attempts = attempts;
                e.error = error;
                e.tables = tables;
            }
            None => self.jobs.push(JobEntry {
                driver: job.driver.clone(),
                shard: job.shard,
                status,
                attempts,
                error,
                tables,
            }),
        }
    }

    /// Render as `run.json` text.
    pub fn render(&self) -> String {
        let num = |n: usize| Json::Num(n.to_string());
        let mut m = BTreeMap::new();
        m.insert("format".to_string(), Json::Num(MANIFEST_FORMAT.to_string()));
        m.insert("backend".to_string(), Json::Str(self.backend.clone()));
        m.insert(
            "drivers".to_string(),
            Json::Arr(self.drivers.iter().cloned().map(Json::Str).collect()),
        );
        m.insert("shards".to_string(), num(self.shards));
        m.insert("retries".to_string(), num(self.retries));
        m.insert("scale".to_string(), Json::Str(self.scale.to_string()));
        m.insert("seed".to_string(), Json::Num(self.seed.to_string()));
        m.insert("replicates".to_string(), num(self.replicates));
        m.insert(
            "k".to_string(),
            match self.k {
                Some(k) => num(k),
                None => Json::Null,
            },
        );
        m.insert("complete".to_string(), Json::Bool(self.complete));
        m.insert(
            "jobs".to_string(),
            Json::Arr(
                self.jobs
                    .iter()
                    .map(|e| {
                        let mut j = BTreeMap::new();
                        j.insert("driver".to_string(), Json::Str(e.driver.clone()));
                        j.insert(
                            "shard".to_string(),
                            Json::Arr(vec![num(e.shard.0), num(e.shard.1)]),
                        );
                        j.insert("status".to_string(), Json::Str(e.status.name().to_string()));
                        j.insert("attempts".to_string(), num(e.attempts));
                        j.insert(
                            "error".to_string(),
                            match &e.error {
                                Some(err) => Json::Str(err.clone()),
                                None => Json::Null,
                            },
                        );
                        j.insert(
                            "tables".to_string(),
                            Json::Arr(e.tables.iter().cloned().map(Json::Str).collect()),
                        );
                        Json::Obj(j)
                    })
                    .collect(),
            ),
        );
        let mut s = Json::Obj(m).render();
        s.push('\n');
        s
    }

    /// Parse and validate `run.json` text. Beyond shape, this checks
    /// the job list covers exactly `drivers × shards` — a manifest
    /// whose jobs disagree with its own plan cannot be resumed.
    pub fn parse(text: &str) -> Result<RunManifest, String> {
        let j = Json::parse(text).map_err(|e| format!("run manifest: {e}"))?;
        if !matches!(j, Json::Obj(_)) {
            return Err("run manifest: expected a JSON object".into());
        }
        match j.get("format").and_then(Json::as_u64) {
            Some(MANIFEST_FORMAT) => {}
            Some(other) => {
                return Err(format!(
                    "run manifest: unsupported format {other} \
                     (this build reads format {MANIFEST_FORMAT})"
                ))
            }
            None => return Err("run manifest: missing or non-integer \"format\"".into()),
        }
        let str_field = |v: &Json, what: &str| -> Result<String, String> {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("run manifest: bad {what}"))
        };
        let uint = |k: &str| -> Result<usize, String> {
            j.get(k)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("run manifest: missing or non-integer {k:?}"))
        };
        let drivers = j
            .get("drivers")
            .and_then(Json::as_arr)
            .ok_or("run manifest: missing \"drivers\" array")?
            .iter()
            .map(|v| str_field(v, "\"drivers\" entry"))
            .collect::<Result<Vec<_>, _>>()?;
        let shards = uint("shards")?;
        if shards == 0 {
            return Err("run manifest: \"shards\" must be at least 1".into());
        }
        let scale = Scale::from_name(
            j.get("scale")
                .and_then(Json::as_str)
                .ok_or("run manifest: missing \"scale\"")?,
        )
        .map_err(|e| format!("run manifest: {e}"))?;
        let jobs = j
            .get("jobs")
            .and_then(Json::as_arr)
            .ok_or("run manifest: missing \"jobs\" array")?
            .iter()
            .map(|v| -> Result<JobEntry, String> {
                let shard = match v.get("shard").and_then(Json::as_arr) {
                    Some([i, n]) => (
                        i.as_usize().ok_or("run manifest: bad job \"shard\"")?,
                        n.as_usize().ok_or("run manifest: bad job \"shard\"")?,
                    ),
                    _ => return Err("run manifest: bad job \"shard\"".into()),
                };
                Ok(JobEntry {
                    driver: str_field(
                        v.get("driver")
                            .ok_or("run manifest: job missing \"driver\"")?,
                        "job \"driver\"",
                    )?,
                    shard,
                    status: JobStatus::from_name(
                        v.get("status")
                            .and_then(Json::as_str)
                            .ok_or("run manifest: job missing \"status\"")?,
                    )
                    .map_err(|e| format!("run manifest: {e}"))?,
                    attempts: v
                        .get("attempts")
                        .and_then(Json::as_usize)
                        .ok_or("run manifest: job missing \"attempts\"")?,
                    error: match v.get("error") {
                        None | Some(Json::Null) => None,
                        Some(e) => Some(str_field(e, "job \"error\"")?),
                    },
                    tables: v
                        .get("tables")
                        .and_then(Json::as_arr)
                        .ok_or("run manifest: job missing \"tables\"")?
                        .iter()
                        .map(|t| str_field(t, "job \"tables\" entry"))
                        .collect::<Result<Vec<_>, _>>()?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        // The job list must cover exactly drivers × shards.
        let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
        for e in &jobs {
            if !drivers.contains(&e.driver) {
                return Err(format!(
                    "run manifest: job for unplanned driver {:?}",
                    e.driver
                ));
            }
            if e.shard.1 != shards || e.shard.0 >= shards {
                return Err(format!(
                    "run manifest: job shard ({}, {}) inconsistent with {shards}-way plan",
                    e.shard.0, e.shard.1
                ));
            }
            if !seen.insert((e.driver.clone(), e.shard.0)) {
                return Err(format!(
                    "run manifest: duplicate job for driver {:?} shard {}",
                    e.driver, e.shard.0
                ));
            }
        }
        if seen.len() != drivers.len() * shards {
            return Err(format!(
                "run manifest: {} job(s) do not cover {} driver(s) × {shards} shard(s)",
                jobs.len(),
                drivers.len()
            ));
        }
        Ok(RunManifest {
            drivers,
            shards,
            retries: uint("retries")?,
            backend: str_field(
                j.get("backend")
                    .ok_or("run manifest: missing \"backend\"")?,
                "\"backend\"",
            )?,
            scale,
            seed: j
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("run manifest: missing or non-integer \"seed\"")?,
            replicates: uint("replicates")?,
            k: match j.get("k") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_usize().ok_or("run manifest: bad \"k\"")?),
            },
            complete: j
                .get("complete")
                .and_then(Json::as_bool)
                .ok_or("run manifest: missing or non-boolean \"complete\"")?,
            jobs,
        })
    }

    /// Read and validate a `run.json` file.
    pub fn read(path: &Path) -> Result<RunManifest, OrchestrateError> {
        let manifest_err = |detail: String| OrchestrateError::Manifest {
            path: path.to_path_buf(),
            detail,
        };
        let text = fs::read_to_string(path).map_err(|e| manifest_err(e.to_string()))?;
        RunManifest::parse(&text).map_err(manifest_err)
    }
}

/// Persists a run incrementally: implements [`RunObserver`] by writing
/// each completed job's shard documents (atomic tmp-file + rename) and
/// rewriting `run.json`, then [`RunWriter::finish`] writes the merged
/// CSVs and marks the run complete. Safe to share across the
/// orchestrator's worker threads.
#[derive(Debug)]
pub struct RunWriter {
    out: PathBuf,
    state: Mutex<WriterState>,
}

#[derive(Debug)]
struct WriterState {
    manifest: RunManifest,
    /// First persistence failure, surfaced by `finish` — `job_done`
    /// cannot return errors through the observer interface.
    error: Option<OrchestrateError>,
}

impl RunWriter {
    /// Start a *fresh* run under `out`: every planned driver directory
    /// is pruned (stale shard documents from a previous run with a
    /// different shard count would poison a later validation), shard
    /// directories are created, and the all-pending manifest is
    /// written.
    pub fn create(out: &Path, manifest: RunManifest) -> Result<RunWriter, OrchestrateError> {
        let io_err = |path: &Path, e: std::io::Error| OrchestrateError::Io {
            path: path.to_path_buf(),
            error: e.to_string(),
        };
        fs::create_dir_all(out).map_err(|e| io_err(out, e))?;
        for driver in &manifest.drivers {
            let dir = out.join(driver);
            if dir.exists() {
                fs::remove_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
            }
            let sdir = dir.join(output::SHARD_DIR);
            fs::create_dir_all(&sdir).map_err(|e| io_err(&sdir, e))?;
        }
        RunWriter::init(out, manifest)
    }

    /// Continue an *existing* run under `out`: nothing is pruned — the
    /// surviving shard documents are the whole point — and the manifest
    /// (with `complete` reset, since the merge must re-run) is written
    /// back.
    pub fn resume(out: &Path, mut manifest: RunManifest) -> Result<RunWriter, OrchestrateError> {
        let io_err = |path: &Path, e: std::io::Error| OrchestrateError::Io {
            path: path.to_path_buf(),
            error: e.to_string(),
        };
        for driver in &manifest.drivers {
            let sdir = out.join(driver).join(output::SHARD_DIR);
            fs::create_dir_all(&sdir).map_err(|e| io_err(&sdir, e))?;
        }
        manifest.complete = false;
        RunWriter::init(out, manifest)
    }

    fn init(out: &Path, manifest: RunManifest) -> Result<RunWriter, OrchestrateError> {
        let writer = RunWriter {
            out: out.to_path_buf(),
            state: Mutex::new(WriterState {
                manifest,
                error: None,
            }),
        };
        let st = writer.state.lock().unwrap();
        writer.flush_manifest(&st.manifest)?;
        drop(st);
        Ok(writer)
    }

    fn flush_manifest(&self, manifest: &RunManifest) -> Result<(), OrchestrateError> {
        let path = self.out.join(RUN_FILE);
        output::write_atomic(&path, &manifest.render()).map_err(|e| OrchestrateError::Io {
            path,
            error: e.to_string(),
        })
    }

    /// Persist one job completion: shard documents first (each written
    /// atomically), then the manifest update — so the manifest never
    /// claims a document that is not already safely on disk.
    fn record(
        &self,
        st: &mut WriterState,
        job: &ShardJob,
        attempts: usize,
        outcome: &Result<Vec<TableDoc>, String>,
    ) -> Result<(), OrchestrateError> {
        let (status, error, tables) = match outcome {
            Ok(docs) => {
                let sdir = self.out.join(&job.driver).join(output::SHARD_DIR);
                for doc in docs {
                    let path = sdir.join(output::shard_file_name(&doc.table, job.shard));
                    output::write_atomic(&path, &doc.render()).map_err(|e| {
                        OrchestrateError::Io {
                            path: path.clone(),
                            error: e.to_string(),
                        }
                    })?;
                }
                (
                    JobStatus::Ok,
                    None,
                    docs.iter().map(|d| d.table.clone()).collect(),
                )
            }
            Err(e) => (JobStatus::Failed, Some(e.clone()), Vec::new()),
        };
        st.manifest.set_job(job, status, attempts, error, tables);
        self.flush_manifest(&st.manifest)
    }

    /// Finish the run: write each driver's merged tables
    /// (`<table>.csv` + unsharded `<table>.json`, atomically), mark the
    /// manifest complete, and return the merged CSV paths. Surfaces the
    /// first persistence error any earlier [`RunObserver::job_done`]
    /// call swallowed.
    pub fn finish(
        &self,
        merged: &[(String, Vec<TableDoc>)],
    ) -> Result<Vec<PathBuf>, OrchestrateError> {
        let mut st = self.state.lock().unwrap();
        if let Some(e) = st.error.take() {
            return Err(e);
        }
        let mut csvs = Vec::new();
        for (driver, docs) in merged {
            let dir = self.out.join(driver);
            for doc in docs {
                let io_err = |path: PathBuf, e: std::io::Error| OrchestrateError::Io {
                    path,
                    error: e.to_string(),
                };
                let csv = dir.join(format!("{}.csv", doc.table));
                output::write_atomic(&csv, &doc.to_csv()).map_err(|e| io_err(csv.clone(), e))?;
                let json = dir.join(format!("{}.json", doc.table));
                output::write_atomic(&json, &doc.render()).map_err(|e| io_err(json, e))?;
                csvs.push(csv);
            }
        }
        st.manifest.complete = true;
        self.flush_manifest(&st.manifest)?;
        Ok(csvs)
    }
}

impl RunObserver for RunWriter {
    fn job_done(&self, job: &ShardJob, attempts: usize, outcome: &Result<Vec<TableDoc>, String>) {
        let mut st = self.state.lock().unwrap();
        if let Err(e) = self.record(&mut st, job, attempts, outcome) {
            // Keep the first failure; finish() will surface it.
            st.error.get_or_insert(e);
        }
    }
}

/// Why [`resume_run`] decided to re-run one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumedJob {
    /// The job being re-run.
    pub job: ShardJob,
    /// Human-readable reason (never completed / failed / missing or
    /// corrupt shard document / provenance mismatch).
    pub reason: String,
}

/// What a resumed run did.
#[derive(Debug)]
pub struct ResumeReport {
    /// Jobs whose persisted shard documents were reused as-is.
    pub reused: usize,
    /// Jobs that were re-run, with reasons, in plan order.
    pub rerun: Vec<ResumedJob>,
    /// Shard-job attempts the resume made (0 if everything was reused).
    pub attempts: usize,
    /// Merged CSV paths, re-written either way.
    pub csvs: Vec<PathBuf>,
}

/// Resume an interrupted (or failed) run in `dir`: read `run.json`,
/// re-validate every completed job's shard documents on disk (a
/// half-written file fails to parse; a document from a different run
/// configuration fails the provenance check), re-run only the jobs that
/// cannot be reused, then re-merge and re-write the final CSVs.
/// Determinism makes this safe: a re-run job produces byte-identical
/// documents to the ones the interrupted run lost.
pub fn resume_run<B: Backend>(
    dir: &Path,
    backend: B,
    workers: usize,
) -> Result<ResumeReport, OrchestrateError> {
    let manifest = RunManifest::read(&dir.join(RUN_FILE))?;
    let mut docs_by_job: BTreeMap<(String, usize), Vec<TableDoc>> = BTreeMap::new();
    let mut rerun: Vec<ResumedJob> = Vec::new();
    for entry in &manifest.jobs {
        let reason = match entry.status {
            JobStatus::Ok => match load_job_docs(dir, &manifest, entry) {
                Ok(docs) => {
                    docs_by_job.insert((entry.driver.clone(), entry.shard.0), docs);
                    continue;
                }
                Err(reason) => reason,
            },
            JobStatus::Pending => "job never completed".to_string(),
            JobStatus::Failed => format!(
                "job failed: {}",
                entry.error.as_deref().unwrap_or("no error recorded")
            ),
        };
        rerun.push(ResumedJob {
            job: entry.job(),
            reason,
        });
    }
    let reused = docs_by_job.len();

    let writer = RunWriter::resume(dir, manifest.clone())?;
    let jobs: Vec<ShardJob> = rerun.iter().map(|r| r.job.clone()).collect();
    let orch = Orchestrator::new(backend, workers);
    let outcomes = orch.execute_jobs(&jobs, manifest.retries, &writer);
    let mut attempts = 0;
    for (r, outcome) in rerun.iter().zip(outcomes) {
        attempts += outcome.attempts;
        match outcome.result {
            Ok(docs) => {
                docs_by_job.insert((r.job.driver.clone(), r.job.shard.0), docs);
            }
            Err(error) => {
                return Err(OrchestrateError::Job {
                    job: r.job.clone(),
                    attempts: outcome.attempts,
                    error,
                });
            }
        }
    }

    let mut merged = Vec::with_capacity(manifest.drivers.len());
    for driver in &manifest.drivers {
        let shard_docs: Vec<Vec<TableDoc>> = (0..manifest.shards)
            .map(|i| {
                docs_by_job
                    .remove(&(driver.clone(), i))
                    .expect("manifest job coverage validated on read")
            })
            .collect();
        merged.push((driver.clone(), merge_driver_docs(driver, &shard_docs)?));
    }
    let csvs = writer.finish(&merged)?;
    Ok(ResumeReport {
        reused,
        rerun,
        attempts,
        csvs,
    })
}

/// Load and re-validate one completed job's persisted shard documents.
/// Any failure (missing file, parse error, provenance drift against
/// the manifest) is a reason to re-run the job, not a fatal error —
/// determinism makes re-running always safe.
fn load_job_docs(
    dir: &Path,
    manifest: &RunManifest,
    entry: &JobEntry,
) -> Result<Vec<TableDoc>, String> {
    if entry.tables.is_empty() {
        return Err("no tables recorded for the job".to_string());
    }
    let sdir = dir.join(&entry.driver).join(output::SHARD_DIR);
    let mut docs = Vec::with_capacity(entry.tables.len());
    for table in &entry.tables {
        let path = sdir.join(output::shard_file_name(table, entry.shard));
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("missing shard document {}: {e}", path.display()))?;
        let doc = TableDoc::parse(&text)
            .map_err(|e| format!("corrupt shard document {}: {e}", path.display()))?;
        let provenance_ok = doc.driver == entry.driver
            && doc.shard == Some(entry.shard)
            && doc.table == *table
            && doc.scale == manifest.scale.to_string()
            && doc.seed == manifest.seed
            && doc.replicates == manifest.replicates
            && doc.k == manifest.k;
        if !provenance_ok {
            return Err(format!(
                "shard document {} does not match the run manifest's configuration",
                path.display()
            ));
        }
        docs.push(doc);
    }
    Ok(docs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrate::validate_dir;
    use crate::output::RunMeta;
    use crate::sweep::SweepRef;
    use crate::table::{Cell, Table};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("runfile-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    /// Same deterministic fake driver the orchestrate tests use: a
    /// 6-point sweep, 2 rows per point, one constant row.
    fn fake_docs(driver: &str, shard: (usize, usize)) -> Vec<TableDoc> {
        let points = 6usize;
        let owned: Vec<usize> = (0..points).filter(|p| p % shard.1 == shard.0).collect();
        let sweep = SweepRef {
            points,
            owned: owned.clone(),
        };
        let mut t = Table::new("data", &["point", "sub"]).for_sweep(&sweep);
        t.push(vec![Cell::from("const"), Cell::from(0u64)]);
        for &p in &owned {
            for sub in 0..2usize {
                t.push_indexed(p, vec![Cell::from(p), Cell::from(sub)]);
            }
        }
        let meta = RunMeta {
            driver: driver.to_string(),
            scale: "quick".into(),
            seed: 0,
            replicates: 1,
            k: None,
            shard: Some(shard),
        };
        vec![TableDoc::from_table(&t, &meta)]
    }

    /// Backend producing [`fake_docs`], counting calls per job.
    struct CountingBackend {
        calls: Mutex<BTreeMap<String, usize>>,
    }

    impl CountingBackend {
        fn new() -> Self {
            CountingBackend {
                calls: Mutex::new(BTreeMap::new()),
            }
        }
    }

    impl Backend for CountingBackend {
        fn run_shard(&self, job: &ShardJob) -> Result<Vec<String>, String> {
            *self
                .calls
                .lock()
                .unwrap()
                .entry(format!("{}:{}", job.driver, job.shard.0))
                .or_insert(0) += 1;
            Ok(fake_docs(&job.driver, job.shard)
                .iter()
                .map(TableDoc::render)
                .collect())
        }
    }

    fn quick_args() -> ExptArgs {
        ExptArgs {
            scale: Scale::Quick,
            seed: 0,
            replicates: 1,
            ..ExptArgs::default()
        }
    }

    fn two_shard_plan(drivers: &[&str]) -> Plan {
        Plan {
            drivers: drivers.iter().map(|s| s.to_string()).collect(),
            shards: 2,
            retries: 0,
        }
    }

    #[test]
    fn manifest_round_trips_and_validates() {
        let mut m = RunManifest::new(&two_shard_plan(&["a", "b"]), "subprocess", &quick_args());
        m.set_job(
            &ShardJob {
                driver: "a".into(),
                shard: (1, 2),
            },
            JobStatus::Ok,
            2,
            None,
            vec!["data".into()],
        );
        m.set_job(
            &ShardJob {
                driver: "b".into(),
                shard: (0, 2),
            },
            JobStatus::Failed,
            3,
            Some("exit status 1".into()),
            Vec::new(),
        );
        let parsed = RunManifest::parse(&m.render()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.plan().drivers, vec!["a", "b"]);
        assert_eq!(parsed.expt_args().scale, Scale::Quick);

        // Named rejections.
        assert!(RunManifest::parse("{").is_err());
        assert!(RunManifest::parse("{}").is_err());
        let garbage = m.render().replace("\"format\": 1", "\"format\": 99");
        assert!(RunManifest::parse(&garbage)
            .unwrap_err()
            .contains("unsupported format"));
        // Dropping a job breaks drivers × shards coverage.
        let mut short = m.clone();
        short.jobs.pop();
        assert!(RunManifest::parse(&short.render())
            .unwrap_err()
            .contains("do not cover"));
        // Duplicating one is named too.
        let mut dup = m.clone();
        let copy = dup.jobs[0].clone();
        dup.jobs.push(copy);
        assert!(RunManifest::parse(&dup.render())
            .unwrap_err()
            .contains("duplicate job"));
    }

    #[test]
    fn writer_persists_each_job_as_it_completes() {
        let out = tmp_dir("incremental");
        let plan = two_shard_plan(&["a"]);
        let manifest = RunManifest::new(&plan, "local", &quick_args());
        let writer = RunWriter::create(&out, manifest).unwrap();

        // Before any job completes: manifest on disk, all pending.
        let m = RunManifest::read(&out.join(RUN_FILE)).unwrap();
        assert!(!m.complete);
        assert!(m.jobs.iter().all(|e| e.status == JobStatus::Pending));

        // First job completes: its document is on disk *now*, and the
        // manifest already records it — the kill-safety invariant.
        let job0 = ShardJob {
            driver: "a".into(),
            shard: (0, 2),
        };
        writer.job_done(&job0, 1, &Ok(fake_docs("a", (0, 2))));
        assert!(out.join("a/shards/data.shard0of2.json").is_file());
        assert!(!out.join("a/shards/data.shard1of2.json").exists());
        let m = RunManifest::read(&out.join(RUN_FILE)).unwrap();
        let e0 = &m.jobs[0];
        assert_eq!(e0.status, JobStatus::Ok);
        assert_eq!(e0.tables, vec!["data".to_string()]);
        assert_eq!(m.jobs[1].status, JobStatus::Pending);

        // A failure is recorded with its error, consuming no documents.
        let job1 = ShardJob {
            driver: "a".into(),
            shard: (1, 2),
        };
        writer.job_done(&job1, 2, &Err("child crashed".into()));
        let m = RunManifest::read(&out.join(RUN_FILE)).unwrap();
        assert_eq!(m.jobs[1].status, JobStatus::Failed);
        assert_eq!(m.jobs[1].attempts, 2);
        assert_eq!(m.jobs[1].error.as_deref(), Some("child crashed"));

        // Second attempt path: the job later succeeds; finish merges.
        writer.job_done(&job1, 3, &Ok(fake_docs("a", (1, 2))));
        let shard_docs = vec![fake_docs("a", (0, 2)), fake_docs("a", (1, 2))];
        let merged = merge_driver_docs("a", &shard_docs).unwrap();
        let csvs = writer.finish(&[("a".into(), merged)]).unwrap();
        assert_eq!(csvs.len(), 1);
        assert!(RunManifest::read(&out.join(RUN_FILE)).unwrap().complete);
        assert_eq!(validate_dir(&out).unwrap().len(), 1);
        fs::remove_dir_all(&out).unwrap();
    }

    /// Run `drivers` through a [`CountingBackend`]-style full run,
    /// returning the run dir.
    fn full_run(tag: &str, drivers: &[&str]) -> PathBuf {
        let out = tmp_dir(tag);
        let plan = two_shard_plan(drivers);
        let writer =
            RunWriter::create(&out, RunManifest::new(&plan, "local", &quick_args())).unwrap();
        let orch = Orchestrator::new(CountingBackend::new(), 2);
        let report = orch.run_observed(&plan, &writer).unwrap();
        let merged: Vec<(String, Vec<TableDoc>)> = report
            .drivers
            .iter()
            .map(|d| (d.driver.clone(), d.merged.clone()))
            .collect();
        writer.finish(&merged).unwrap();
        out
    }

    #[test]
    fn resume_reruns_only_missing_and_corrupt_shards() {
        let out = full_run("resume", &["a", "b"]);
        let reference = fs::read_to_string(out.join("a/data.csv")).unwrap();

        // Delete one shard document and truncate (corrupt) another.
        fs::remove_file(out.join("a/shards/data.shard1of2.json")).unwrap();
        let corrupt = out.join("b/shards/data.shard0of2.json");
        let text = fs::read_to_string(&corrupt).unwrap();
        fs::write(&corrupt, &text[..text.len() / 2]).unwrap();

        let backend = CountingBackend::new();
        let report = resume_run(&out, backend, 2).unwrap();
        assert_eq!(report.reused, 2);
        let rerun: Vec<String> = report
            .rerun
            .iter()
            .map(|r| format!("{}:{}", r.job.driver, r.job.shard.0))
            .collect();
        assert_eq!(rerun, vec!["a:1".to_string(), "b:0".to_string()]);
        assert!(report.rerun[0].reason.contains("missing shard document"));
        assert!(report.rerun[1].reason.contains("corrupt shard document"));
        assert_eq!(report.attempts, 2);

        // The resumed merge is byte-identical and fully valid.
        assert_eq!(
            fs::read_to_string(out.join("a/data.csv")).unwrap(),
            reference
        );
        assert_eq!(validate_dir(&out).unwrap().len(), 2);
        assert!(RunManifest::read(&out.join(RUN_FILE)).unwrap().complete);

        // Nothing left to do: a second resume reuses everything.
        let report = resume_run(&out, CountingBackend::new(), 2).unwrap();
        assert_eq!(report.reused, 4);
        assert!(report.rerun.is_empty());
        assert_eq!(report.attempts, 0);
        fs::remove_dir_all(&out).unwrap();
    }

    #[test]
    fn resume_reruns_failed_and_pending_jobs_without_touching_done_ones() {
        // Simulate a run killed after one of two jobs: job 0 persisted,
        // job 1 pending.
        let out = tmp_dir("killed");
        let plan = two_shard_plan(&["a"]);
        let writer =
            RunWriter::create(&out, RunManifest::new(&plan, "local", &quick_args())).unwrap();
        writer.job_done(
            &ShardJob {
                driver: "a".into(),
                shard: (0, 2),
            },
            1,
            &Ok(fake_docs("a", (0, 2))),
        );
        drop(writer); // the "kill": no finish, no job 1

        let backend = CountingBackend::new();
        let report = resume_run(&out, backend, 1).unwrap();
        assert_eq!(report.reused, 1);
        assert_eq!(report.rerun.len(), 1);
        assert!(report.rerun[0].reason.contains("never completed"));
        assert_eq!(validate_dir(&out).unwrap().len(), 1);
        fs::remove_dir_all(&out).unwrap();
    }

    #[test]
    fn resume_rejects_documents_from_a_different_run() {
        let out = full_run("drift", &["a"]);
        // Overwrite shard 0's document with one from a different seed:
        // parses fine, but provenance disagrees with the manifest.
        let path = out.join("a/shards/data.shard0of2.json");
        let meta = RunMeta {
            driver: "a".into(),
            scale: "quick".into(),
            seed: 999,
            replicates: 1,
            k: None,
            shard: Some((0, 2)),
        };
        let sweep = SweepRef {
            points: 6,
            owned: vec![0, 2, 4],
        };
        let mut t = Table::new("data", &["point", "sub"]).for_sweep(&sweep);
        t.push(vec![Cell::from("const"), Cell::from(0u64)]);
        fs::write(&path, TableDoc::from_table(&t, &meta).render()).unwrap();

        let report = resume_run(&out, CountingBackend::new(), 1).unwrap();
        assert_eq!(report.rerun.len(), 1);
        assert!(report.rerun[0]
            .reason
            .contains("does not match the run manifest"));
        assert_eq!(validate_dir(&out).unwrap().len(), 1);
        fs::remove_dir_all(&out).unwrap();
    }

    #[test]
    fn resume_surfaces_a_still_failing_job() {
        struct AlwaysFail(AtomicUsize);
        impl Backend for AlwaysFail {
            fn run_shard(&self, _: &ShardJob) -> Result<Vec<String>, String> {
                self.0.fetch_add(1, Ordering::Relaxed);
                Err("still broken".into())
            }
        }
        let out = full_run("still-failing", &["a"]);
        fs::remove_file(out.join("a/shards/data.shard1of2.json")).unwrap();
        let backend = AlwaysFail(AtomicUsize::new(0));
        match resume_run(&out, backend, 1).unwrap_err() {
            OrchestrateError::Job { job, error, .. } => {
                assert_eq!(job.shard, (1, 2));
                assert!(error.contains("still broken"));
            }
            other => panic!("expected Job error, got {other}"),
        }
        // The failure is durably recorded for the next resume.
        let m = RunManifest::read(&out.join(RUN_FILE)).unwrap();
        assert!(!m.complete);
        let e = m
            .jobs
            .iter()
            .find(|e| e.shard == (1, 2))
            .expect("job entry");
        assert_eq!(e.status, JobStatus::Failed);
        assert_eq!(e.error.as_deref(), Some("still broken"));
        fs::remove_dir_all(&out).unwrap();
    }
}
