//! Golden-baseline store and tolerance-aware diff engine.
//!
//! A *golden* is a committed quick-mode CSV under
//! `goldens/<driver>/<table>.csv`: the blessed output of one figure
//! table. Because the harness is deterministic (fixed quick grids, fixed
//! base seed, thread-invariant collection), any drift between a fresh
//! run and its golden is a behavioral change in some simulation layer —
//! and the [`Drift`] report names the driver, table, row, and column
//! that moved, which is a far better regression signal than a distant
//! unit-test failure.
//!
//! Comparison is tolerance-aware per column: cells that parse as
//! numbers on both sides are compared with a [`Tolerance`]
//! (absolute-or-relative, `NaN == NaN`), everything else must match
//! byte-for-byte. The default [`GoldenSpec::strict`] tolerance (1e-9
//! abs/rel) is effectively exact for the formatted decimals the figure
//! tables emit while still absorbing cross-platform `libm` jitter in
//! shortest-round-trip floats.
//!
//! Regenerate goldens by running the comparison path with blessing
//! enabled (`OPERA_BLESS=1` for the tier-1 test, `--bless` for the
//! `golden_check` binary); on an unmodified tree a bless is
//! byte-idempotent.

use crate::json::{self, Json};
use crate::output::RunMeta;
use crate::table::Table;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Provenance manifest stamped into each `goldens/<driver>/` on bless
/// (`manifest.json`): which commit the bless ran on and which flags and
/// tables it recorded. [`compare_driver`] checks the flags and table
/// list — a golden blessed under different flags, or covering a table
/// set the driver no longer produces, is *stale* and reported as drift;
/// the commit is provenance for reviewers, not part of the comparison
/// (a bless necessarily runs before the commit that includes it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenManifest {
    /// `git rev-parse --short HEAD` of the tree the bless ran on
    /// (`unknown` outside a git checkout).
    pub commit: String,
    /// Scale the bless ran at.
    pub scale: String,
    /// Base seed.
    pub seed: u64,
    /// Replicates per sweep point.
    pub replicates: usize,
    /// Blessed table names, sorted.
    pub tables: Vec<String>,
}

impl GoldenManifest {
    /// File name of the manifest within a golden directory.
    pub const FILE: &'static str = "manifest.json";

    /// The manifest describing `tables` under `meta`. The commit field
    /// starts empty — only the bless path, which actually writes a
    /// manifest, pays for the `git rev-parse` ([`GoldenManifest::
    /// stamped`]); comparisons never look at it.
    pub fn new(meta: &RunMeta, tables: &[Table]) -> Self {
        let mut names: Vec<String> = tables.iter().map(|t| t.name.clone()).collect();
        names.sort_unstable();
        GoldenManifest {
            commit: String::new(),
            scale: meta.scale.clone(),
            seed: meta.seed,
            replicates: meta.replicates,
            tables: names,
        }
    }

    /// This manifest with the working tree's commit filled in (what a
    /// bless writes).
    pub fn stamped(mut self) -> Self {
        self.commit = current_commit();
        self
    }

    /// Render as JSON.
    pub fn render(&self) -> String {
        let mut s = String::from("{\n  \"commit\": ");
        json::write_string(&mut s, &self.commit);
        s.push_str(",\n  \"scale\": ");
        json::write_string(&mut s, &self.scale);
        s.push_str(&format!(",\n  \"seed\": {}", self.seed));
        s.push_str(&format!(",\n  \"replicates\": {}", self.replicates));
        s.push_str(",\n  \"tables\": [");
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            json::write_string(&mut s, t);
        }
        s.push_str("]\n}\n");
        s
    }

    /// Parse from JSON text.
    pub fn parse(text: &str) -> Result<GoldenManifest, String> {
        let j = Json::parse(text)?;
        let str_field = |k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("manifest: missing field {k:?}"))
        };
        Ok(GoldenManifest {
            commit: str_field("commit")?,
            scale: str_field("scale")?,
            seed: j
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("manifest: missing field \"seed\"")?,
            replicates: j
                .get("replicates")
                .and_then(Json::as_usize)
                .ok_or("manifest: missing field \"replicates\"")?,
            tables: j
                .get("tables")
                .and_then(Json::as_arr)
                .ok_or("manifest: missing field \"tables\"")?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "manifest: bad table name".to_string())
                })
                .collect::<Result<_, _>>()?,
        })
    }
}

/// Short commit hash of the working tree, for bless provenance.
/// `OPERA_COMMIT` overrides (useful in CI); falls back to `git
/// rev-parse`, then `"unknown"`.
fn current_commit() -> String {
    if let Ok(c) = std::env::var("OPERA_COMMIT") {
        if !c.is_empty() {
            return c;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Absolute/relative tolerance for one numeric comparison. Two values
/// are close when `|a - b| <= abs` **or** `|a - b| <= rel * max(|a|,
/// |b|)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Absolute slack.
    pub abs: f64,
    /// Relative slack (fraction of the larger magnitude).
    pub rel: f64,
}

impl Tolerance {
    /// Byte-exact numeric comparison (still `NaN == NaN`).
    pub const EXACT: Tolerance = Tolerance { abs: 0.0, rel: 0.0 };

    /// A tolerance with the given absolute and relative slack.
    pub fn new(abs: f64, rel: f64) -> Self {
        Tolerance { abs, rel }
    }

    /// True when `got` and `want` agree within this tolerance.
    pub fn close(&self, got: f64, want: f64) -> bool {
        if got.is_nan() && want.is_nan() {
            return true;
        }
        if got == want {
            return true; // covers equal infinities and exact matches
        }
        let d = (got - want).abs();
        d <= self.abs || d <= self.rel * got.abs().max(want.abs())
    }
}

/// Per-driver comparison spec: a default tolerance plus per-column
/// overrides (matched by exact column name), plus replicate-aware CI
/// rules keyed on the `RepTableBuilder` column pairs.
#[derive(Debug, Clone)]
pub struct GoldenSpec {
    /// Tolerance for columns without an override.
    pub default_tol: Tolerance,
    /// `(column name, tolerance)` overrides.
    pub columns: Vec<(String, Tolerance)>,
    /// Replicate-aware rules: for metric `m`, the `<m>_mean` column also
    /// passes when it falls within `factor ×` the **committed** row's
    /// `<m>_ci95` half-width. Statistically-identical output (e.g. a
    /// warm-started solver whose λ moves within its replicate CI) then
    /// compares clean without loosening the fixed tolerances; anything
    /// outside the interval is still drift, and rows whose `ci95` is NaN
    /// (fewer than 2 replicates) or whose table lacks the `ci95` column
    /// get no slack at all.
    pub ci_metrics: Vec<(String, f64)>,
}

impl GoldenSpec {
    /// Near-exact comparison: 1e-9 absolute/relative on every column.
    pub fn strict() -> Self {
        GoldenSpec {
            default_tol: Tolerance::new(1e-9, 1e-9),
            columns: Vec::new(),
            ci_metrics: Vec::new(),
        }
    }

    /// Add a per-column tolerance override.
    pub fn with_column(mut self, column: &str, tol: Tolerance) -> Self {
        self.columns.push((column.to_string(), tol));
        self
    }

    /// Accept `<metric>_mean` cells within `factor ×` the committed
    /// row's `<metric>_ci95` (see [`GoldenSpec::ci_metrics`]).
    pub fn with_ci_metric(mut self, metric: &str, factor: f64) -> Self {
        self.ci_metrics.push((metric.to_string(), factor));
        self
    }

    /// The tolerance applying to `column`.
    pub fn tol_for(&self, column: &str) -> Tolerance {
        self.columns
            .iter()
            .find(|(c, _)| c == column)
            .map(|&(_, t)| t)
            .unwrap_or(self.default_tol)
    }

    /// The CI rule applying to `column`, as `(ci95 column name, factor)`
    /// — `Some` only for a registered metric's `_mean` column.
    pub fn ci_rule_for(&self, column: &str) -> Option<(String, f64)> {
        self.ci_metrics.iter().find_map(|(m, factor)| {
            (column == format!("{m}_mean")).then(|| (format!("{m}_ci95"), *factor))
        })
    }
}

impl Default for GoldenSpec {
    fn default() -> Self {
        GoldenSpec::strict()
    }
}

/// One observed divergence from a golden.
#[derive(Debug, Clone)]
pub struct Drift {
    /// Driver (experiment) name.
    pub driver: String,
    /// Table name within the driver.
    pub table: String,
    /// 1-based data-row number, when the drift is cell-level.
    pub row: Option<usize>,
    /// Column name, when the drift is cell-level.
    pub column: Option<String>,
    /// What the fresh run produced.
    pub got: String,
    /// What the committed golden says.
    pub want: String,
    /// Human context (missing file, row-count mismatch, ...).
    pub note: String,
}

impl fmt::Display for Drift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.driver, self.table)?;
        if let Some(r) = self.row {
            write!(f, " row {r}")?;
        }
        if let Some(c) = &self.column {
            write!(f, " col {c}")?;
        }
        write!(f, ": got `{}` want `{}`", self.got, self.want)?;
        if !self.note.is_empty() {
            write!(f, " ({})", self.note)?;
        }
        Ok(())
    }
}

/// Parse CSV text into records (header included), honoring quoted
/// fields with embedded separators, doubled quotes, and newlines.
pub fn parse_csv(text: &str) -> Result<Vec<Vec<String>>, String> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut chars = text.chars().peekable();
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if quoted {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => quoted = false,
                c => field.push(c),
            }
        } else {
            match c {
                '"' if field.is_empty() => quoted = true,
                '"' => return Err("unexpected quote mid-field".into()),
                ',' => row.push(std::mem::take(&mut field)),
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                '\r' => {} // tolerate CRLF goldens from checkout mangling
                c => field.push(c),
            }
        }
    }
    if quoted {
        return Err("unterminated quoted field".into());
    }
    if any && (!field.is_empty() || !row.is_empty()) {
        // Final record without a trailing newline.
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

/// True when two rendered cells agree: numerically within `tol` when
/// both parse as floats, byte-equal otherwise.
fn cells_close(got: &str, want: &str, tol: Tolerance) -> bool {
    match (got.parse::<f64>(), want.parse::<f64>()) {
        (Ok(g), Ok(w)) => tol.close(g, w),
        _ => got == want,
    }
}

/// Replicate-aware escape hatch: true when `got` and `want` are numeric
/// and within `factor ×` the committed `ci` half-width (a finite,
/// parseable `_ci95` cell from the golden row).
fn cells_within_ci(got: &str, want: &str, ci: Option<&String>, factor: f64) -> bool {
    let (Ok(g), Ok(w)) = (got.parse::<f64>(), want.parse::<f64>()) else {
        return false;
    };
    let Some(Ok(ci)) = ci.map(|s| s.parse::<f64>()) else {
        return false;
    };
    ci.is_finite() && (g - w).abs() <= factor * ci
}

/// The golden directory of one driver under `golden_root`.
pub fn golden_dir(golden_root: &Path, driver: &str) -> PathBuf {
    golden_root.join(driver)
}

/// Compare a driver's freshly built tables against its committed
/// goldens. Returns every drift found (empty = clean). IO errors other
/// than "golden missing" (which is reported as a drift) are returned as
/// errors.
pub fn compare_driver(
    driver: &str,
    tables: &[Table],
    golden_root: &Path,
    spec: &GoldenSpec,
    meta: &RunMeta,
) -> io::Result<Vec<Drift>> {
    let dir = golden_dir(golden_root, driver);
    let drift = |table: &str, note: &str, got: String, want: String| Drift {
        driver: driver.to_string(),
        table: table.to_string(),
        row: None,
        column: None,
        got,
        want,
        note: note.to_string(),
    };
    if !dir.is_dir() {
        return Ok(vec![drift(
            "*",
            "no golden directory; bless with OPERA_BLESS=1",
            format!("{} table(s)", tables.len()),
            dir.display().to_string(),
        )]);
    }

    let mut drifts = Vec::new();
    for t in tables {
        let path = dir.join(format!("{}.csv", t.name));
        let text = match fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                drifts.push(drift(
                    &t.name,
                    "golden file missing; bless with OPERA_BLESS=1",
                    format!("{} row(s)", t.len()),
                    path.display().to_string(),
                ));
                continue;
            }
            Err(e) => return Err(e),
        };
        let golden = parse_csv(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: malformed golden CSV: {e}", path.display()),
            )
        })?;
        let (ghead, grows) = match golden.split_first() {
            Some((h, r)) => (h.clone(), r),
            None => {
                drifts.push(drift(
                    &t.name,
                    "golden file is empty",
                    t.to_csv(),
                    String::new(),
                ));
                continue;
            }
        };
        if ghead != t.columns {
            drifts.push(drift(
                &t.name,
                "column set changed",
                t.columns.join(","),
                ghead.join(","),
            ));
            continue;
        }
        if grows.len() != t.rows.len() {
            drifts.push(drift(
                &t.name,
                "row count changed",
                format!("{} rows", t.rows.len()),
                format!("{} rows", grows.len()),
            ));
        }
        // Resolve each column's CI rule once per table: the `_ci95`
        // column index the committed interval is read from, if any
        // (header equality was checked above, so fresh and golden
        // column positions coincide).
        let ci_rules: Vec<Option<(usize, f64)>> = t
            .columns
            .iter()
            .map(|c| {
                spec.ci_rule_for(c).and_then(|(ci_col, factor)| {
                    t.columns
                        .iter()
                        .position(|x| *x == ci_col)
                        .map(|idx| (idx, factor))
                })
            })
            .collect();
        for (ri, (got_row, want_row)) in t.rows.iter().zip(grows).enumerate() {
            for (ci, column) in t.columns.iter().enumerate() {
                let got = got_row[ci].to_string();
                let want = want_row.get(ci).cloned().unwrap_or_default();
                if !cells_close(&got, &want, spec.tol_for(column)) {
                    if let Some((ci_idx, factor)) = ci_rules[ci] {
                        if cells_within_ci(&got, &want, want_row.get(ci_idx), factor) {
                            continue;
                        }
                    }
                    drifts.push(Drift {
                        driver: driver.to_string(),
                        table: t.name.clone(),
                        row: Some(ri + 1),
                        column: Some(column.clone()),
                        got,
                        want,
                        note: String::new(),
                    });
                }
            }
        }
    }

    // Goldens for tables the driver no longer produces are drift too:
    // they would silently rot.
    let produced: Vec<String> = tables.iter().map(|t| format!("{}.csv", t.name)).collect();
    let mut stale: Vec<String> = Vec::new();
    for entry in fs::read_dir(&dir)? {
        let name = entry?.file_name().to_string_lossy().into_owned();
        if name.ends_with(".csv") && !produced.contains(&name) {
            stale.push(name);
        }
    }
    stale.sort_unstable();
    for name in stale {
        drifts.push(drift(
            name.trim_end_matches(".csv"),
            "stale golden: driver no longer produces this table",
            String::new(),
            name.clone(),
        ));
    }

    // Provenance: the manifest must exist and record the flags and
    // table set this comparison is running under, or the bless is
    // stale.
    let want = GoldenManifest::new(meta, tables);
    let mpath = dir.join(GoldenManifest::FILE);
    match fs::read_to_string(&mpath) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            drifts.push(drift(
                GoldenManifest::FILE,
                "manifest missing; bless with OPERA_BLESS=1 to stamp provenance",
                String::new(),
                mpath.display().to_string(),
            ));
        }
        Err(e) => return Err(e),
        Ok(text) => {
            let got = GoldenManifest::parse(&text).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", mpath.display()),
                )
            })?;
            // `want` holds what this run would stamp (the fresh side of
            // the drift), `committed` what the on-disk manifest
            // recorded (the golden side).
            let committed = got;
            for (field, run_v, manifest_v) in [
                ("scale", want.scale.clone(), committed.scale.clone()),
                ("seed", want.seed.to_string(), committed.seed.to_string()),
                (
                    "replicates",
                    want.replicates.to_string(),
                    committed.replicates.to_string(),
                ),
                ("tables", want.tables.join(","), committed.tables.join(",")),
            ] {
                if run_v != manifest_v {
                    drifts.push(drift(
                        GoldenManifest::FILE,
                        &format!("stale bless: manifest {field} disagrees with this run"),
                        run_v,
                        manifest_v,
                    ));
                }
            }
        }
    }
    Ok(drifts)
}

/// Write (bless) a driver's tables as its new goldens, stamping the
/// provenance manifest and deleting stale table files. Returns the
/// written CSV paths, in table order.
pub fn bless_driver(
    driver: &str,
    tables: &[Table],
    golden_root: &Path,
    meta: &RunMeta,
) -> io::Result<Vec<PathBuf>> {
    let dir = golden_dir(golden_root, driver);
    fs::create_dir_all(&dir)?;
    let mut written = Vec::with_capacity(tables.len());
    for t in tables {
        let path = dir.join(format!("{}.csv", t.name));
        fs::write(&path, t.to_csv())?;
        written.push(path);
    }
    fs::write(
        dir.join(GoldenManifest::FILE),
        GoldenManifest::new(meta, tables).stamped().render(),
    )?;
    let keep: Vec<String> = tables.iter().map(|t| format!("{}.csv", t.name)).collect();
    for entry in fs::read_dir(&dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".csv") && !keep.contains(&name) {
            fs::remove_file(entry.path())?;
        }
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;

    fn tmp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("golden-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn meta() -> RunMeta {
        RunMeta {
            driver: "drv".into(),
            scale: "quick".into(),
            seed: 0,
            replicates: 3,
            k: None,
            shard: None,
        }
    }

    fn demo_table() -> Table {
        let mut t = Table::new("series", &["label", "x", "y"]);
        t.push(vec![
            Cell::from("a,b"),
            Cell::from(1u64),
            Cell::from("0.5000"),
        ]);
        t.push(vec![
            Cell::from("plain"),
            Cell::from(2u64),
            Cell::from("NaN"),
        ]);
        t
    }

    #[test]
    fn tolerance_semantics() {
        let t = Tolerance::new(0.01, 0.0);
        assert!(t.close(1.0, 1.005));
        assert!(!t.close(1.0, 1.05));
        let r = Tolerance::new(0.0, 0.01);
        assert!(r.close(100.0, 100.5));
        assert!(!r.close(100.0, 102.0));
        assert!(Tolerance::EXACT.close(f64::NAN, f64::NAN));
        assert!(Tolerance::EXACT.close(2.5, 2.5));
        assert!(!Tolerance::EXACT.close(2.5, 2.5000001));
    }

    #[test]
    fn csv_round_trip_with_quoting() {
        let t = demo_table();
        let parsed = parse_csv(&t.to_csv()).unwrap();
        assert_eq!(parsed[0], ["label", "x", "y"]);
        assert_eq!(parsed[1], ["a,b", "1", "0.5000"]);
        assert_eq!(parsed.len(), 3);
        // Embedded quotes and newlines survive.
        let tricky = "h\n\"a\"\"b\",\"c\nd\"\n";
        let p = parse_csv(tricky).unwrap();
        assert_eq!(p[1], ["a\"b", "c\nd"]);
        assert!(parse_csv("a\"b,c\n").is_err());
        assert!(parse_csv("\"open\n").is_err());
    }

    #[test]
    fn clean_compare_and_bless_idempotence() {
        let root = tmp_root("clean");
        let t = vec![demo_table()];
        let first = bless_driver("drv", &t, &root, &meta()).unwrap();
        assert_eq!(first.len(), 1);
        let before = fs::read_to_string(&first[0]).unwrap();
        assert!(
            compare_driver("drv", &t, &root, &GoldenSpec::strict(), &meta())
                .unwrap()
                .is_empty()
        );
        // Re-bless on an unmodified table is byte-idempotent.
        bless_driver("drv", &t, &root, &meta()).unwrap();
        assert_eq!(fs::read_to_string(&first[0]).unwrap(), before);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn drift_names_row_and_column() {
        let root = tmp_root("drift");
        bless_driver("drv", &[demo_table()], &root, &meta()).unwrap();
        let mut changed = demo_table();
        changed.rows[0][2] = Cell::from("0.6000");
        let drifts =
            compare_driver("drv", &[changed], &root, &GoldenSpec::strict(), &meta()).unwrap();
        assert_eq!(drifts.len(), 1);
        let d = &drifts[0];
        assert_eq!((d.row, d.column.as_deref()), (Some(1), Some("y")));
        assert_eq!((d.got.as_str(), d.want.as_str()), ("0.6000", "0.5000"));
        assert!(d.to_string().contains("drv/series row 1 col y"));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn per_column_tolerance_overrides() {
        let root = tmp_root("tol");
        bless_driver("drv", &[demo_table()], &root, &meta()).unwrap();
        let mut changed = demo_table();
        changed.rows[0][2] = Cell::from("0.5004");
        let loose = GoldenSpec::strict().with_column("y", Tolerance::new(1e-3, 0.0));
        assert!(
            compare_driver("drv", &[changed.clone()], &root, &loose, &meta())
                .unwrap()
                .is_empty()
        );
        assert_eq!(
            compare_driver("drv", &[changed], &root, &GoldenSpec::strict(), &meta())
                .unwrap()
                .len(),
            1
        );
        fs::remove_dir_all(&root).unwrap();
    }

    fn rep_table(mean: &str, ci95: &str) -> Table {
        let mut t = Table::new("reps", &["x", "lambda_mean", "lambda_ci95", "reps"]);
        t.push(vec![
            Cell::from(1u64),
            Cell::from(mean),
            Cell::from(ci95),
            Cell::from(3u64),
        ]);
        t
    }

    #[test]
    fn ci_metric_rule_accepts_within_ci_and_catches_beyond() {
        let root = tmp_root("ci-metric");
        bless_driver("drv", &[rep_table("0.5000", "0.0300")], &root, &meta()).unwrap();
        let spec = GoldenSpec::strict().with_ci_metric("lambda", 1.0);

        // Within the committed ±ci95 interval: clean.
        let within = rep_table("0.5200", "0.0300");
        assert!(compare_driver("drv", &[within], &root, &spec, &meta())
            .unwrap()
            .is_empty());
        // A deliberate perturbation beyond the interval is still drift,
        // and strict comparison rejects even the within-CI change.
        let beyond = rep_table("0.5400", "0.0300");
        let drifts = compare_driver("drv", &[beyond], &root, &spec, &meta()).unwrap();
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].column.as_deref(), Some("lambda_mean"));
        let strict = compare_driver(
            "drv",
            &[rep_table("0.5200", "0.0300")],
            &root,
            &GoldenSpec::strict(),
            &meta(),
        )
        .unwrap();
        assert_eq!(strict.len(), 1);
        // The interval is read from the *golden* row: a fresh run can't
        // widen its own acceptance band by inflating its ci95 cell.
        let inflated = rep_table("0.5400", "9.0000");
        let drifts = compare_driver("drv", &[inflated], &root, &spec, &meta()).unwrap();
        assert!(drifts
            .iter()
            .any(|d| d.column.as_deref() == Some("lambda_mean")));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn ci_metric_rule_gives_no_slack_without_a_usable_interval() {
        let root = tmp_root("ci-nan");
        // NaN ci95 (single replicate): no slack.
        bless_driver("drv", &[rep_table("0.5000", "NaN")], &root, &meta()).unwrap();
        let spec = GoldenSpec::strict().with_ci_metric("lambda", 1.0);
        let drifts =
            compare_driver("drv", &[rep_table("0.5001", "NaN")], &root, &spec, &meta()).unwrap();
        assert_eq!(drifts.len(), 1);
        fs::remove_dir_all(&root).unwrap();

        // Table without the ci95 column: the rule is inert, strict
        // tolerances apply.
        let root = tmp_root("ci-absent");
        let bare = |mean: &str| {
            let mut t = Table::new("bare", &["x", "lambda_mean"]);
            t.push(vec![Cell::from(1u64), Cell::from(mean)]);
            t
        };
        bless_driver("drv", &[bare("0.5000")], &root, &meta()).unwrap();
        let drifts = compare_driver("drv", &[bare("0.5200")], &root, &spec, &meta()).unwrap();
        assert_eq!(drifts.len(), 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn nan_cells_match_and_structure_changes_are_drift() {
        let root = tmp_root("structure");
        bless_driver("drv", &[demo_table()], &root, &meta()).unwrap();
        // NaN golden vs NaN run: no drift (covered by clean compare).
        // Missing golden file (plus the manifest's table list no longer
        // matching the blessed set).
        let extra = Table::new("extra", &["a"]);
        let drifts = compare_driver(
            "drv",
            &[demo_table(), extra],
            &root,
            &GoldenSpec::strict(),
            &meta(),
        )
        .unwrap();
        assert_eq!(drifts.len(), 2);
        assert!(drifts[0].note.contains("missing"));
        assert!(drifts[1].note.contains("manifest tables"));
        // Stale golden file.
        let drifts = compare_driver("drv", &[], &root, &GoldenSpec::strict(), &meta()).unwrap();
        assert!(drifts.iter().any(|d| d.note.contains("stale golden")));
        // Row-count change.
        let mut short = demo_table();
        short.rows.pop();
        let drifts =
            compare_driver("drv", &[short], &root, &GoldenSpec::strict(), &meta()).unwrap();
        assert!(drifts.iter().any(|d| d.note.contains("row count")));
        // Column rename.
        let mut renamed = demo_table();
        renamed.columns[2] = "z".into();
        let drifts =
            compare_driver("drv", &[renamed], &root, &GoldenSpec::strict(), &meta()).unwrap();
        assert!(drifts.iter().any(|d| d.note.contains("column set")));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_directory_is_reported() {
        let root = tmp_root("nodir");
        let drifts = compare_driver(
            "ghost",
            &[demo_table()],
            &root,
            &GoldenSpec::strict(),
            &meta(),
        )
        .unwrap();
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].note.contains("no golden directory"));
    }

    #[test]
    fn manifest_round_trips_and_detects_stale_bless() {
        let root = tmp_root("manifest");
        bless_driver("drv", &[demo_table()], &root, &meta()).unwrap();
        let text = fs::read_to_string(root.join("drv").join(GoldenManifest::FILE)).unwrap();
        let m = GoldenManifest::parse(&text).unwrap();
        assert_eq!((m.scale.as_str(), m.seed, m.replicates), ("quick", 0, 3));
        assert_eq!(m.tables, ["series"]);
        assert!(!m.commit.is_empty());

        // Same tables compared under different flags: stale bless.
        let other = RunMeta {
            replicates: 5,
            ..meta()
        };
        let drifts =
            compare_driver("drv", &[demo_table()], &root, &GoldenSpec::strict(), &other).unwrap();
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].note.contains("manifest replicates"));
        assert_eq!(
            (drifts[0].got.as_str(), drifts[0].want.as_str()),
            ("5", "3")
        );

        // Deleting the manifest is detectable drift, not a pass.
        fs::remove_file(root.join("drv").join(GoldenManifest::FILE)).unwrap();
        let drifts = compare_driver(
            "drv",
            &[demo_table()],
            &root,
            &GoldenSpec::strict(),
            &meta(),
        )
        .unwrap();
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].note.contains("manifest missing"));
        fs::remove_dir_all(&root).unwrap();
    }
}
