//! `transport` — end-host transport protocols for the Opera reproduction.
//!
//! Two protocols carry all traffic in the paper (§4.2):
//!
//! * [`ndp`] — NDP \[Handley et al., SIGCOMM 2017\] for low-latency
//!   traffic: receiver-driven pull pacing, packet trimming at shallow
//!   switch queues, per-packet ACK/NACK, zero-RTT start.
//! * [`rotorlb`] — RotorLB \[RotorNet, SIGCOMM 2017\] for bulk traffic:
//!   buffer at the edge until a direct circuit to the destination rack is
//!   up; under skew, opportunistically spend spare circuit bandwidth on
//!   two-hop Valiant paths; NACK-and-requeue for bytes that miss their
//!   transmission window (§4.2.2).
//!
//! Both are deliberately *topology-free*: they speak in terms of host NICs,
//! rack indices, and packets. The `opera` crate wires them to concrete
//! networks.

pub mod ndp;
pub mod rotorlb;

pub use ndp::{NdpActions, NdpTimer};
pub use ndp::{NdpHost, NdpParams};
pub use rotorlb::{BulkChunk, RackBulk, RotorLbParams};
