//! `transport` — end-host transport protocols for the Opera reproduction.
//!
//! Low-latency traffic can be carried by any [`Transport`] implementation;
//! three ship, matched to the switch policies in `netsim::policy`:
//!
//! * [`ndp`] — NDP \[Handley et al., SIGCOMM 2017\], the paper's choice
//!   (§4.2): receiver-driven pull pacing, packet trimming at shallow
//!   switch queues, per-packet ACK/NACK, zero-RTT start. Pairs with
//!   `NdpTrim` switches.
//! * [`dctcp`] — DCTCP-style sender: per-packet ACKs echo the ECN
//!   congestion-experienced bit and the sender reduces its window in
//!   proportion to the marked fraction. Pairs with `EcnMark` switches.
//! * [`go_back_n`] — plain go-back-N: cumulative ACKs, in-order delivery
//!   only, timeout retransmission of the whole window. The baseline for
//!   lossy `DropTail` switches (and trivially correct under lossless
//!   `Pfc`).
//!
//! Bulk traffic keeps its own machinery ([`rotorlb`] — RotorLB \[RotorNet,
//! SIGCOMM 2017\]: buffer at the edge until a direct circuit is up, spill
//! onto two-hop Valiant paths under skew).
//!
//! All hosts are deliberately *topology-free*: they speak in terms of host
//! NICs and packets, and they cannot schedule timers directly — timer
//! token encoding is owned by the enclosing network model, so every entry
//! point returns [`Actions`] for the caller to schedule. The `opera` crate
//! wires hosts to concrete networks through one generic dispatch path.

pub mod dctcp;
pub mod go_back_n;
pub mod ndp;
pub mod rotorlb;

use netsim::fabric::{Fabric, NetEvent};
use netsim::packet::HEADER_SIZE;
use netsim::{FlowId, FlowTracker, Packet};
use simkit::engine::EventContext;
use simkit::SimTime;

pub use dctcp::{DctcpHost, DctcpParams};
pub use go_back_n::{GoBackNHost, GoBackNParams};
pub use ndp::{NdpHost, NdpParams};
pub use rotorlb::{BulkChunk, RackBulk, RotorLbParams};

/// Timer purposes a [`Transport`] asks its environment to schedule.
///
/// The set is shared across transports so the enclosing network model can
/// use one token encoding for all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportTimer {
    /// A pacer should release the next credit (NDP's pull pacer).
    PullPacer,
    /// Retransmission-timeout check for `flow`.
    Rto(FlowId),
}

/// What a host asks its environment to do after handling an event.
/// Timers cannot be scheduled directly because token encoding is owned by
/// the enclosing network model.
#[derive(Debug, Default)]
pub struct Actions {
    /// Timers to schedule: (fire time, purpose).
    pub timers: Vec<(SimTime, TransportTimer)>,
}

/// An end-host sender/receiver for low-latency flows.
///
/// The contract mirrors the event loop: the network model calls
/// [`Transport::start_flow`] when a flow's start time is due,
/// [`Transport::on_packet`] for every packet that reaches the host's NIC,
/// and [`Transport::on_timer`] when a timer it scheduled on the host's
/// behalf fires. Every call may emit packets into the fabric and returns
/// the timers to arm.
pub trait Transport: std::fmt::Debug {
    /// The host's NIC node id in the fabric.
    fn nic(&self) -> usize;

    /// The NIC port packets leave through (0 for single-homed hosts).
    fn nic_port(&self) -> usize;

    /// Start sending `flow` (`size` payload bytes) to `dst` (a NIC node
    /// id).
    fn start_flow(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        flow: FlowId,
        dst: usize,
        size: u64,
    ) -> Actions;

    /// Handle a packet addressed to this host. `tracker` records payload
    /// delivery and completion.
    fn on_packet(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        tracker: &mut FlowTracker,
        pkt: Packet,
    ) -> Actions;

    /// A timer scheduled via [`Actions`] fired.
    fn on_timer(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        which: TransportTimer,
    ) -> Actions;

    /// Number of flows currently being sent.
    fn active_sends(&self) -> usize;
}

/// Which [`Transport`] a network model should instantiate for its hosts,
/// with the transport's parameters. `Copy` so experiment configs that
/// embed it stay `Copy`.
#[derive(Debug, Clone, Copy)]
pub enum TransportKind {
    /// NDP (the paper's transport). Pairs with `NdpTrim` switches.
    Ndp(NdpParams),
    /// DCTCP-style ECN-echo sender. Pairs with `EcnMark` switches.
    Dctcp(DctcpParams),
    /// Go-back-N. Baseline for lossy `DropTail` / lossless `Pfc` switches.
    GoBackN(GoBackNParams),
}

impl TransportKind {
    /// The paper's configuration: NDP with default parameters.
    pub fn paper_default() -> Self {
        TransportKind::Ndp(NdpParams::paper_default())
    }

    /// Instantiate a host of this kind on NIC `nic`, port `nic_port`.
    pub fn make(&self, nic: usize, nic_port: usize) -> Box<dyn Transport> {
        match *self {
            TransportKind::Ndp(p) => Box::new(NdpHost::new(nic, nic_port, p)),
            TransportKind::Dctcp(p) => Box::new(DctcpHost::new(nic, nic_port, p)),
            TransportKind::GoBackN(p) => Box::new(GoBackNHost::new(nic, nic_port, p)),
        }
    }
}

/// Payload bytes carried by a full packet of `mtu` wire bytes.
pub(crate) fn payload_per_packet(mtu: u32) -> u32 {
    mtu - HEADER_SIZE
}

/// Number of packets a flow of `size` payload bytes needs at `mtu`.
pub(crate) fn packets_for(mtu: u32, size: u64) -> u32 {
    size.div_ceil(payload_per_packet(mtu) as u64).max(1) as u32
}

/// Wire size of segment `seq` of a flow with `size` payload bytes.
pub(crate) fn wire_size(mtu: u32, size: u64, seq: u32) -> u32 {
    let per = payload_per_packet(mtu) as u64;
    let sent = seq as u64 * per;
    let remaining = size.saturating_sub(sent).min(per) as u32;
    HEADER_SIZE + remaining
}

/// Per-flow receive bitmap shared by the sequence-number transports:
/// dedupes retransmissions so payload is delivered exactly once.
#[derive(Debug)]
pub(crate) struct RecvBitmap {
    seen: Vec<u64>,
    /// All payload delivered; further data is stale retransmission.
    pub complete: bool,
}

impl RecvBitmap {
    pub fn new(total: u32) -> Self {
        RecvBitmap {
            seen: vec![0; (total as usize).div_ceil(64)],
            complete: false,
        }
    }

    /// True when `seq` had not been seen before (and marks it seen).
    pub fn test_and_set(&mut self, seq: u32) -> bool {
        let (w, b) = (seq as usize / 64, seq as usize % 64);
        let was = self.seen[w] >> b & 1 == 1;
        self.seen[w] |= 1 << b;
        !was
    }
}
