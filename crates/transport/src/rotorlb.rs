//! RotorLB: edge-buffered bulk transport over cyclic direct circuits
//! (§4.2.2, RotorNet §4).
//!
//! Bulk bytes wait at the edge (per source rack) until a direct circuit to
//! the destination rack is up, then drain at line rate — paying zero
//! bandwidth tax. Under skewed demand, spare capacity on a circuit is spent
//! on *two-hop Valiant paths*: a packet rides the current circuit to an
//! intermediate rack, is stored there, and rides a later direct circuit to
//! its destination (100% bandwidth tax, used only when direct capacity is
//! insufficient).
//!
//! This module is the queueing brain only. The enclosing network model
//! drives it: on every slice it asks, packet by packet
//! ([`RackBulk::next_packet`]), what to send on each active circuit, and
//! returns packets that missed their window ([`RackBulk::requeue_with_rack`], the
//! paper's ToR NACK path — we shortcut the NACK's wire round-trip, which
//! only shifts retried bytes by microseconds).
//!
//! One simplification, recorded in DESIGN.md: the paper buffers bulk bytes
//! in end hosts and has ToRs poll them (§3.5); we keep the per-rack queues
//! in one `RackBulk` object per rack and charge the host→ToR hop in the
//! data plane. The queueing discipline and admission times are the same;
//! only the identity of the RAM holding the bytes differs.

use netsim::{FlowId, Packet, PacketKind, HEADER_SIZE, MTU};

/// RotorLB tuning.
#[derive(Debug, Clone, Copy)]
pub struct RotorLbParams {
    /// Wire MTU for bulk packets.
    pub mtu: u32,
    /// Maximum bytes of two-hop (Valiant) traffic stored at this rack for
    /// later relay.
    pub relay_capacity: u64,
    /// Only offer a destination's backlog to Valiant indirection beyond
    /// this many queued bytes (direct circuits will serve small backlogs
    /// within a cycle anyway).
    pub vlb_threshold: u64,
}

impl RotorLbParams {
    /// Defaults: 1500 B MTU, 50 MB relay store, VLB beyond 1 MB backlog.
    pub fn paper_default() -> Self {
        RotorLbParams {
            mtu: MTU,
            relay_capacity: 50_000_000,
            vlb_threshold: 1_000_000,
        }
    }

    /// Payload bytes per full bulk packet.
    pub fn payload_per_packet(&self) -> u32 {
        self.mtu - HEADER_SIZE
    }
}

/// A contiguous run of bulk bytes belonging to one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkChunk {
    /// Owning flow.
    pub flow: FlowId,
    /// Source host NIC.
    pub src_host: usize,
    /// Destination host NIC.
    pub dst_host: usize,
    /// Destination rack.
    pub dst_rack: usize,
    /// Payload bytes remaining in this chunk.
    pub bytes: u64,
    /// Next sequence number to stamp on emitted packets.
    pub next_seq: u32,
}

/// Per-rack RotorLB state: direct and relay queues.
#[derive(Debug)]
pub struct RackBulk {
    rack: usize,
    params: RotorLbParams,
    /// `direct[r]`: chunks originating here, destined to rack `r`.
    direct: Vec<Vec<BulkChunk>>,
    /// `relay[r]`: chunks stored here mid-Valiant, final destination `r`.
    relay: Vec<Vec<BulkChunk>>,
    /// Bytes currently stored across all relay queues.
    relay_bytes: u64,
    /// Round-robin cursor so concurrent flows to one rack share the
    /// circuit fairly.
    rr_cursor: usize,
}

impl RackBulk {
    /// Fresh state for `rack` in a network of `racks` racks.
    pub fn new(rack: usize, racks: usize, params: RotorLbParams) -> Self {
        RackBulk {
            rack,
            params,
            direct: vec![Vec::new(); racks],
            relay: vec![Vec::new(); racks],
            relay_bytes: 0,
            rr_cursor: 0,
        }
    }

    /// This rack's index.
    pub fn rack(&self) -> usize {
        self.rack
    }

    /// Queue a new bulk flow (or flow fragment) for transmission.
    pub fn enqueue(&mut self, chunk: BulkChunk) {
        debug_assert_ne!(chunk.dst_rack, self.rack, "bulk to own rack");
        self.direct[chunk.dst_rack].push(chunk);
    }

    /// Payload bytes queued for rack `r` (direct + stored relay).
    pub fn pending_to(&self, r: usize) -> u64 {
        self.direct[r].iter().map(|c| c.bytes).sum::<u64>()
            + self.relay[r].iter().map(|c| c.bytes).sum::<u64>()
    }

    /// Total direct backlog across all destinations.
    pub fn total_direct_backlog(&self) -> u64 {
        self.direct
            .iter()
            .flat_map(|q| q.iter().map(|c| c.bytes))
            .sum()
    }

    /// Bytes stored for relay.
    pub fn relay_bytes(&self) -> u64 {
        self.relay_bytes
    }

    /// Produce the next bulk packet to send on the active circuit to
    /// `circuit_dst`. Priority: stored relay traffic (it has already paid
    /// one hop), then direct traffic, then — if `allow_vlb` — new Valiant
    /// traffic for a congested *other* destination, relayed via
    /// `circuit_dst`.
    ///
    /// Returns `None` when nothing useful can ride this circuit.
    pub fn next_packet(&mut self, circuit_dst: usize, allow_vlb: bool) -> Option<Packet> {
        debug_assert_ne!(circuit_dst, self.rack);
        if let Some(pkt) = self.pop_from_relay(circuit_dst) {
            return Some(pkt);
        }
        if let Some(pkt) = self.pop_from_direct(circuit_dst) {
            return Some(pkt);
        }
        if allow_vlb {
            return self.pop_for_vlb(circuit_dst);
        }
        None
    }

    fn emit(params: &RotorLbParams, chunk: &mut BulkChunk, relay: Option<u32>) -> Packet {
        let payload = chunk.bytes.min(params.payload_per_packet() as u64) as u32;
        let seq = chunk.next_seq;
        chunk.next_seq += 1;
        chunk.bytes -= payload as u64;
        Packet {
            flow: chunk.flow,
            src: chunk.src_host,
            dst: chunk.dst_host,
            size: HEADER_SIZE + payload,
            prio: netsim::Priority::Bulk,
            kind: PacketKind::BulkData { seq, relay },
            hops: 0,
            ecn_ce: false,
        }
    }

    fn pop_from_relay(&mut self, dst: usize) -> Option<Packet> {
        let q = &mut self.relay[dst];
        let chunk = q.first_mut()?;
        let pkt = Self::emit(&self.params, chunk, None);
        self.relay_bytes -= pkt.payload() as u64;
        if chunk.bytes == 0 {
            q.remove(0);
        }
        Some(pkt)
    }

    fn pop_from_direct(&mut self, dst: usize) -> Option<Packet> {
        let q = &mut self.direct[dst];
        if q.is_empty() {
            return None;
        }
        // Round-robin across chunks (flows) sharing this circuit.
        let idx = self.rr_cursor % q.len();
        self.rr_cursor = self.rr_cursor.wrapping_add(1);
        let chunk = &mut q[idx];
        let pkt = Self::emit(&self.params, chunk, None);
        if chunk.bytes == 0 {
            q.remove(idx);
        }
        Some(pkt)
    }

    /// Pick the most-backlogged other destination over the VLB threshold
    /// and send one of its packets via `via` (first Valiant hop).
    fn pop_for_vlb(&mut self, via: usize) -> Option<Packet> {
        let (dst, backlog) = self
            .direct
            .iter()
            .enumerate()
            .filter(|&(r, _)| r != via && r != self.rack)
            .map(|(r, q)| (r, q.iter().map(|c| c.bytes).sum::<u64>()))
            .max_by_key(|&(_, b)| b)?;
        if backlog <= self.params.vlb_threshold {
            return None;
        }
        let q = &mut self.direct[dst];
        let chunk = q.first_mut()?;
        let pkt = Self::emit(&self.params, chunk, Some(dst as u32));
        if chunk.bytes == 0 {
            q.remove(0);
        }
        Some(pkt)
    }

    /// Accept a Valiant packet stored at this rack for later relay to its
    /// final destination. Returns `false` (and discards nothing — caller
    /// keeps the packet conceptually in flight) when the relay store is
    /// full; the enclosing model then treats it like a missed window and
    /// requeues at the *source*.
    pub fn store_relay(&mut self, pkt: &Packet, final_dst_rack: usize) -> bool {
        let payload = pkt.payload() as u64;
        if self.relay_bytes + payload > self.params.relay_capacity {
            return false;
        }
        self.relay_bytes += payload;
        // Coalesce consecutive packets of one flow into a chunk.
        if let Some(last) = self.relay[final_dst_rack].last_mut() {
            if last.flow == pkt.flow {
                last.bytes += payload;
                return true;
            }
        }
        self.relay[final_dst_rack].push(BulkChunk {
            flow: pkt.flow,
            src_host: pkt.src,
            dst_host: pkt.dst,
            dst_rack: final_dst_rack,
            bytes: payload,
            next_seq: 0,
        });
        true
    }

    /// Return a packet that missed its transmission window (the ToR
    /// drained its bulk queue at a reconfiguration, §4.2.2) to the front
    /// of the appropriate queue. `dst_rack` is the rack of `pkt.dst`
    /// (known to the caller, which owns the host→rack mapping).
    pub fn requeue_with_rack(&mut self, pkt: &Packet, dst_rack: usize) {
        let payload = pkt.payload() as u64;
        if payload == 0 {
            return;
        }
        let final_rack = match pkt.kind {
            PacketKind::BulkData { relay: Some(r), .. } => r as usize,
            PacketKind::BulkData { relay: None, .. } => dst_rack,
            _ => return,
        };
        self.prepend_direct(final_rack, pkt, payload);
    }

    fn prepend_direct(&mut self, dst_rack: usize, pkt: &Packet, payload: u64) {
        if let Some(first) = self.direct[dst_rack].first_mut() {
            if first.flow == pkt.flow {
                first.bytes += payload;
                return;
            }
        }
        self.direct[dst_rack].insert(
            0,
            BulkChunk {
                flow: pkt.flow,
                src_host: pkt.src,
                dst_host: pkt.dst,
                dst_rack,
                bytes: payload,
                next_seq: 0,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(flow: FlowId, dst_rack: usize, bytes: u64) -> BulkChunk {
        BulkChunk {
            flow,
            src_host: 100 + flow as usize,
            dst_host: 200 + flow as usize,
            dst_rack,
            bytes,
            next_seq: 0,
        }
    }

    #[test]
    fn direct_drain_order_and_sizes() {
        let mut rb = RackBulk::new(0, 4, RotorLbParams::paper_default());
        rb.enqueue(chunk(1, 2, 3000));
        assert_eq!(rb.pending_to(2), 3000);
        let p1 = rb.next_packet(2, false).unwrap();
        assert_eq!(p1.payload(), 1436);
        let p2 = rb.next_packet(2, false).unwrap();
        assert_eq!(p2.payload(), 1436);
        let p3 = rb.next_packet(2, false).unwrap();
        assert_eq!(p3.payload(), 128);
        assert!(rb.next_packet(2, false).is_none());
        assert_eq!(rb.pending_to(2), 0);
        // Sequence numbers increase.
        let seqs: Vec<u32> = [p1, p2, p3]
            .iter()
            .map(|p| match p.kind {
                PacketKind::BulkData { seq, .. } => seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn round_robin_between_flows() {
        let mut rb = RackBulk::new(0, 4, RotorLbParams::paper_default());
        rb.enqueue(chunk(1, 2, 10_000));
        rb.enqueue(chunk(2, 2, 10_000));
        let flows: Vec<FlowId> = (0..4)
            .map(|_| rb.next_packet(2, false).unwrap().flow)
            .collect();
        assert!(flows.contains(&1) && flows.contains(&2));
        // strict alternation from the rotating cursor
        assert_ne!(flows[0], flows[1]);
        assert_ne!(flows[1], flows[2]);
    }

    #[test]
    fn no_vlb_below_threshold() {
        let mut rb = RackBulk::new(0, 4, RotorLbParams::paper_default());
        rb.enqueue(chunk(1, 2, 1000)); // small backlog to rack 2
        assert!(
            rb.next_packet(3, true).is_none(),
            "small backlogs must wait for their direct circuit"
        );
    }

    #[test]
    fn vlb_offloads_large_backlog() {
        let mut rb = RackBulk::new(0, 4, RotorLbParams::paper_default());
        rb.enqueue(chunk(1, 2, 5_000_000)); // hot destination
        let p = rb.next_packet(3, true).unwrap();
        match p.kind {
            PacketKind::BulkData { relay: Some(r), .. } => assert_eq!(r, 2),
            k => panic!("expected VLB packet, got {k:?}"),
        }
        // Without VLB permission nothing flows to rack 3.
        assert!(rb.next_packet(3, false).is_none());
    }

    #[test]
    fn relay_store_and_forward() {
        let mut rb_mid = RackBulk::new(1, 4, RotorLbParams::paper_default());
        // A VLB packet for final rack 3 arrives at intermediate rack 1.
        let mut src = RackBulk::new(0, 4, RotorLbParams::paper_default());
        src.enqueue(chunk(7, 3, 5_000_000));
        let pkt = src.next_packet(1, true).unwrap();
        let final_rack = match pkt.kind {
            PacketKind::BulkData { relay: Some(r), .. } => r as usize,
            _ => unreachable!(),
        };
        assert!(rb_mid.store_relay(&pkt, final_rack));
        assert_eq!(rb_mid.relay_bytes(), pkt.payload() as u64);
        // When rack 1's circuit to rack 3 comes up, relay drains first.
        let out = rb_mid.next_packet(3, false).unwrap();
        assert_eq!(out.flow, 7);
        match out.kind {
            PacketKind::BulkData { relay, .. } => assert_eq!(relay, None),
            _ => unreachable!(),
        }
        assert_eq!(rb_mid.relay_bytes(), 0);
    }

    #[test]
    fn relay_capacity_enforced() {
        let params = RotorLbParams {
            relay_capacity: 1000,
            ..RotorLbParams::paper_default()
        };
        let mut rb = RackBulk::new(1, 4, params);
        let pkt = Packet::bulk(9, 100, 200, 0, 1500);
        assert!(!rb.store_relay(&pkt, 3), "1436B > 1000B capacity");
        assert_eq!(rb.relay_bytes(), 0);
    }

    #[test]
    fn requeue_returns_bytes_to_front() {
        let mut rb = RackBulk::new(0, 4, RotorLbParams::paper_default());
        rb.enqueue(chunk(1, 2, 2872)); // 2 packets
        let p1 = rb.next_packet(2, false).unwrap();
        assert_eq!(rb.pending_to(2), 1436);
        rb.requeue_with_rack(&p1, 2);
        assert_eq!(rb.pending_to(2), 2872);
        // Drains fully afterwards.
        let mut total = 0;
        while let Some(p) = rb.next_packet(2, false) {
            total += p.payload() as u64;
        }
        assert_eq!(total, 2872);
    }

    #[test]
    fn relay_priority_over_direct() {
        let mut rb = RackBulk::new(1, 4, RotorLbParams::paper_default());
        rb.enqueue(chunk(5, 3, 1436));
        let vlb_pkt = Packet {
            kind: PacketKind::BulkData {
                seq: 0,
                relay: Some(3),
            },
            ..Packet::bulk(6, 100, 200, 0, 1500)
        };
        assert!(rb.store_relay(&vlb_pkt, 3));
        let first = rb.next_packet(3, false).unwrap();
        assert_eq!(first.flow, 6, "stored relay bytes drain before direct");
    }
}
