//! NDP: receiver-driven, trimming-tolerant low-latency transport (§4.2.1).
//!
//! Mechanics implemented, following Handley et al. and the paper's usage:
//!
//! * **Zero-RTT start** — the sender blasts an initial window (8 full
//!   packets, one data-queue's worth) without waiting for credit.
//! * **Trimming** — switches cut payloads at full data queues; the header
//!   travels on at control priority (implemented in `netsim`). The receiver
//!   answers a trimmed header with a NACK; NACKed segments are
//!   retransmitted on future pulls.
//! * **Pull pacing** — the receiver enqueues one PULL per arriving header
//!   (full or trimmed) into a per-host pacer that releases pulls at the
//!   host's line rate, clocking the sender at exactly the receiver's
//!   capacity across all incasting flows.
//! * **Per-packet ACKs** so the sender can retire state, plus a coarse RTO
//!   as the last-resort recovery for lost control packets (rare: control
//!   queues are large and drops counted).
//!
//! The host object is topology-free: it emits packets out of its NIC and
//! reacts to packets handed to it via the [`Transport`] trait. Routing
//! between NICs is the enclosing network model's job.

use crate::{Actions, RecvBitmap, Transport, TransportTimer};
use netsim::fabric::{Fabric, NetEvent};
use netsim::{FlowId, FlowTracker, Packet, PacketKind, MTU};
use simkit::engine::EventContext;
use simkit::SimTime;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// NDP tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct NdpParams {
    /// Wire MTU (data packet size cap), bytes.
    pub mtu: u32,
    /// Initial window, packets (sent before any pull arrives).
    pub initial_window: u32,
    /// Interval between pulls released by the receiver pacer; should equal
    /// one MTU serialization time at the host link rate.
    pub pull_interval: SimTime,
    /// Retransmission timeout (safety net; normal recovery is NACK/pull).
    pub rto: SimTime,
}

impl NdpParams {
    /// Paper defaults for 10 Gb/s hosts: 1500 B MTU, 8-packet window
    /// (12 KB, one switch data queue), 1.2 µs pulls, 2 ms RTO.
    pub fn paper_default() -> Self {
        NdpParams {
            mtu: MTU,
            initial_window: 8,
            pull_interval: SimTime::from_ns(1200),
            rto: SimTime::from_ms(2),
        }
    }

    /// Payload bytes carried by a full packet.
    pub fn payload_per_packet(&self) -> u32 {
        crate::payload_per_packet(self.mtu)
    }

    /// Number of packets a flow of `size` payload bytes needs.
    pub fn packets_for(&self, size: u64) -> u32 {
        crate::packets_for(self.mtu, size)
    }

    /// Wire size of segment `seq` of a flow with `size` payload bytes.
    pub fn wire_size(&self, size: u64, seq: u32) -> u32 {
        crate::wire_size(self.mtu, size, seq)
    }
}

/// Sender-side per-flow state.
#[derive(Debug)]
struct SendFlow {
    flow: FlowId,
    src: usize,
    dst: usize,
    size: u64,
    total: u32,
    /// Next never-sent segment.
    next_new: u32,
    /// Segments NACKed and awaiting retransmission.
    rtx: VecDeque<u32>,
    /// Sent but not yet ACKed.
    unacked: BTreeSet<u32>,
    /// Time of the last useful event (send/ack/nack/pull).
    last_activity: SimTime,
}

impl SendFlow {
    fn done(&self) -> bool {
        self.next_new >= self.total && self.rtx.is_empty() && self.unacked.is_empty()
    }
}

/// All NDP state for one host (its NIC node id + port).
#[derive(Debug)]
pub struct NdpHost {
    /// NIC node in the fabric.
    pub nic: usize,
    /// NIC port (always 0 for single-homed hosts).
    pub nic_port: usize,
    params: NdpParams,
    sending: HashMap<FlowId, SendFlow>,
    receiving: HashMap<FlowId, RecvBitmap>,
    /// FIFO of pulls awaiting pacing: (flow, sender host NIC).
    pull_queue: VecDeque<(FlowId, usize)>,
    /// Earliest time the pacer may release the next pull.
    pacer_free_at: SimTime,
    /// True when a pacer timer is outstanding.
    pacer_armed: bool,
}

impl NdpHost {
    /// A fresh NDP host for NIC `nic`.
    pub fn new(nic: usize, nic_port: usize, params: NdpParams) -> Self {
        NdpHost {
            nic,
            nic_port,
            params,
            sending: HashMap::new(),
            receiving: HashMap::new(),
            pull_queue: VecDeque::new(),
            pacer_free_at: SimTime::ZERO,
            pacer_armed: false,
        }
    }

    /// Tuning parameters.
    pub fn params(&self) -> &NdpParams {
        &self.params
    }

    /// Send the next pending segment (retransmission first, then new).
    fn emit_next(
        params: &NdpParams,
        st: &mut SendFlow,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        nic: usize,
        nic_port: usize,
    ) {
        let seq = if let Some(seq) = st.rtx.pop_front() {
            seq
        } else if st.next_new < st.total {
            let s = st.next_new;
            st.next_new += 1;
            s
        } else {
            return; // nothing left to clock out
        };
        let size = params.wire_size(st.size, seq);
        let pkt = Packet::data(st.flow, st.src, st.dst, seq, size);
        st.unacked.insert(seq);
        st.last_activity = ctx.now();
        fabric.send(ctx, nic, nic_port, pkt);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_data(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        tracker: &mut FlowTracker,
        pkt: Packet,
        seq: u32,
        trimmed: bool,
        actions: &mut Actions,
    ) {
        let flow = pkt.flow;
        let sender = pkt.src;
        let total = self.params.packets_for(tracker.get(flow).size);
        let st = self
            .receiving
            .entry(flow)
            .or_insert_with(|| RecvBitmap::new(total));
        if st.complete {
            // Stale retransmission: ack so the sender retires it.
            let ack = Packet::control(flow, self.nic, sender, PacketKind::Ack { seq });
            fabric.send(ctx, self.nic, self.nic_port, ack);
            return;
        }
        if trimmed {
            // Ask for a retransmission, and clock the sender with a pull.
            let nack = Packet::control(flow, self.nic, sender, PacketKind::Nack { seq });
            fabric.send(ctx, self.nic, self.nic_port, nack);
            self.enqueue_pull(ctx, flow, sender, actions);
            return;
        }
        // Full data packet.
        let ack = Packet::control(flow, self.nic, sender, PacketKind::Ack { seq });
        fabric.send(ctx, self.nic, self.nic_port, ack);
        if st.test_and_set(seq) {
            let done = tracker.deliver(flow, pkt.payload() as u64, ctx.now());
            if done {
                st.complete = true;
                // Drop queued pulls for this flow: the sender needs no
                // more credit.
                self.pull_queue.retain(|&(f, _)| f != flow);
                return;
            }
        }
        self.enqueue_pull(ctx, flow, sender, actions);
    }

    fn enqueue_pull(
        &mut self,
        ctx: &mut EventContext<'_, NetEvent>,
        flow: FlowId,
        sender: usize,
        actions: &mut Actions,
    ) {
        self.pull_queue.push_back((flow, sender));
        if !self.pacer_armed {
            let at = ctx.now().max(self.pacer_free_at);
            self.pacer_armed = true;
            actions.timers.push((at, TransportTimer::PullPacer));
        }
    }
}

impl Transport for NdpHost {
    fn nic(&self) -> usize {
        self.nic
    }

    fn nic_port(&self) -> usize {
        self.nic_port
    }

    fn active_sends(&self) -> usize {
        self.sending.len()
    }

    /// Start sending: transmit the initial window immediately (zero-RTT).
    fn start_flow(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        flow: FlowId,
        dst: usize,
        size: u64,
    ) -> Actions {
        let total = self.params.packets_for(size);
        let mut st = SendFlow {
            flow,
            src: self.nic,
            dst,
            size,
            total,
            next_new: 0,
            rtx: VecDeque::new(),
            unacked: BTreeSet::new(),
            last_activity: ctx.now(),
        };
        let burst = total.min(self.params.initial_window);
        for _ in 0..burst {
            Self::emit_next(&self.params, &mut st, fabric, ctx, self.nic, self.nic_port);
        }
        let mut actions = Actions::default();
        actions
            .timers
            .push((ctx.now() + self.params.rto, TransportTimer::Rto(flow)));
        self.sending.insert(flow, st);
        actions
    }

    fn on_packet(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        tracker: &mut FlowTracker,
        pkt: Packet,
    ) -> Actions {
        let mut actions = Actions::default();
        if let PacketKind::Ack { .. } = pkt.kind {
            let (nic, port) = (self.nic, self.nic_port);
            fabric.trace_event(ctx.now(), nic, port, netsim::TraceEvent::Ack, Some(&pkt));
        }
        match pkt.kind {
            PacketKind::Data { seq, trimmed } => {
                self.on_data(fabric, ctx, tracker, pkt, seq, trimmed, &mut actions);
            }
            PacketKind::Ack { seq } => {
                if let Some(st) = self.sending.get_mut(&pkt.flow) {
                    st.unacked.remove(&seq);
                    st.last_activity = ctx.now();
                    if st.done() {
                        self.sending.remove(&pkt.flow);
                    }
                }
            }
            PacketKind::Nack { seq } => {
                if let Some(st) = self.sending.get_mut(&pkt.flow) {
                    st.last_activity = ctx.now();
                    if !st.rtx.contains(&seq) {
                        st.rtx.push_back(seq);
                    }
                }
            }
            PacketKind::Pull { .. } => {
                if let Some(st) = self.sending.get_mut(&pkt.flow) {
                    st.last_activity = ctx.now();
                    Self::emit_next(&self.params, st, fabric, ctx, self.nic, self.nic_port);
                    if st.done() {
                        self.sending.remove(&pkt.flow);
                    }
                }
            }
            _ => {} // bulk traffic handled elsewhere
        }
        actions
    }

    fn on_timer(
        &mut self,
        fabric: &mut Fabric,
        ctx: &mut EventContext<'_, NetEvent>,
        which: TransportTimer,
    ) -> Actions {
        let mut actions = Actions::default();
        let (nic, port) = (self.nic, self.nic_port);
        fabric.trace_event(ctx.now(), nic, port, netsim::TraceEvent::Timer, None);
        match which {
            TransportTimer::PullPacer => {
                self.pacer_armed = false;
                if let Some((flow, sender)) = self.pull_queue.pop_front() {
                    let pull =
                        Packet::control(flow, self.nic, sender, PacketKind::Pull { count: 1 });
                    fabric.send(ctx, self.nic, self.nic_port, pull);
                    self.pacer_free_at = ctx.now() + self.params.pull_interval;
                    if !self.pull_queue.is_empty() {
                        self.pacer_armed = true;
                        actions
                            .timers
                            .push((self.pacer_free_at, TransportTimer::PullPacer));
                    }
                }
            }
            TransportTimer::Rto(flow) => {
                if let Some(st) = self.sending.get_mut(&flow) {
                    let deadline = st.last_activity + self.params.rto;
                    if ctx.now() >= deadline {
                        // Stalled: re-send the oldest unacked segment.
                        if let Some(&seq) = st.unacked.iter().next() {
                            let size = self.params.wire_size(st.size, seq);
                            let pkt = Packet::data(st.flow, st.src, st.dst, seq, size);
                            st.last_activity = ctx.now();
                            fabric.send(ctx, self.nic, self.nic_port, pkt);
                        }
                        actions
                            .timers
                            .push((ctx.now() + self.params.rto, TransportTimer::Rto(flow)));
                    } else {
                        actions.timers.push((deadline, TransportTimer::Rto(flow)));
                    }
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::fabric::{LinkSpec, QueueConfig};
    use netsim::packet::HEADER_SIZE;
    use netsim::{NetLogic, NetWorld};
    use simkit::Simulator;

    /// Two hosts wired back-to-back; logic routes by dst NIC directly.
    struct TwoHostLogic {
        hosts: Vec<NdpHost>,
        tracker: FlowTracker,
        started: bool,
        flow_size: u64,
    }

    impl TwoHostLogic {
        fn apply(&mut self, host: usize, actions: Actions, ctx: &mut EventContext<'_, NetEvent>) {
            for (at, which) in actions.timers {
                let token = encode(host, which);
                ctx.schedule_at(at, NetEvent::Timer { token });
            }
        }
    }

    fn encode(host: usize, t: TransportTimer) -> u64 {
        match t {
            TransportTimer::PullPacer => (host as u64) << 32,
            TransportTimer::Rto(f) => 1 << 60 | (host as u64) << 32 | f as u64,
        }
    }
    fn decode(token: u64) -> (usize, TransportTimer) {
        let host = (token >> 32 & 0xFFF_FFFF) as usize;
        if token >> 60 == 1 {
            (host, TransportTimer::Rto((token & 0xFFFF_FFFF) as u32))
        } else {
            (host, TransportTimer::PullPacer)
        }
    }

    impl NetLogic for TwoHostLogic {
        fn on_arrive(
            &mut self,
            fabric: &mut Fabric,
            ctx: &mut EventContext<'_, NetEvent>,
            node: usize,
            _port: usize,
            packet: Packet,
        ) {
            let actions = self.hosts[node].on_packet(fabric, ctx, &mut self.tracker, packet);
            self.apply(node, actions, ctx);
        }

        fn on_timer(
            &mut self,
            fabric: &mut Fabric,
            ctx: &mut EventContext<'_, NetEvent>,
            token: u64,
        ) {
            if token == u64::MAX {
                if !self.started {
                    self.started = true;
                    let id = self.tracker.register(
                        0,
                        1,
                        self.flow_size,
                        netsim::FlowClass::LowLatency,
                        ctx.now(),
                    );
                    let actions = self.hosts[0].start_flow(fabric, ctx, id, 1, self.flow_size);
                    self.apply(0, actions, ctx);
                }
                return;
            }
            let (host, which) = decode(token);
            let actions = self.hosts[host].on_timer(fabric, ctx, which);
            self.apply(host, actions, ctx);
        }
    }

    fn run_two_host(flow_size: u64, cfg: QueueConfig) -> Simulator<NetWorld<TwoHostLogic>> {
        let mut fabric = Fabric::new();
        let a = fabric.add_node(1, cfg, LinkSpec::paper_default());
        let b = fabric.add_node(1, cfg, LinkSpec::paper_default());
        fabric.connect(a, 0, b, 0);
        let logic = TwoHostLogic {
            hosts: vec![
                NdpHost::new(a, 0, NdpParams::paper_default()),
                NdpHost::new(b, 0, NdpParams::paper_default()),
            ],
            tracker: FlowTracker::new(),
            started: false,
            flow_size,
        };
        let mut sim = Simulator::new(NetWorld::new(fabric, logic));
        sim.schedule_at(SimTime::ZERO, NetEvent::Timer { token: u64::MAX });
        sim.run_until(SimTime::from_ms(100));
        sim
    }

    #[test]
    fn small_flow_completes_in_one_burst() {
        // 1000 bytes: single packet, should complete in ~1 serialization +
        // propagation.
        let sim = run_two_host(1000, QueueConfig::builder().build());
        let t = &sim.world.logic.tracker;
        assert!(t.all_done());
        let fct = t.get(0).fct().unwrap();
        // 1064B at 10G = 852ns ser + 500 prop = 1352ns.
        assert_eq!(fct.as_ns(), 1352);
    }

    #[test]
    fn large_flow_completes_at_line_rate() {
        let size = 1_000_000u64; // 1 MB
        let sim = run_two_host(size, QueueConfig::builder().build());
        let t = &sim.world.logic.tracker;
        assert!(t.all_done(), "flow incomplete: {:?}", t.get(0));
        let fct = t.get(0).fct().unwrap().as_secs_f64();
        // Ideal: 1MB * 8 / (10G * (1436/1500 goodput)) ≈ 0.84 ms. Allow
        // pull-pacing overhead up to 2x.
        let ideal = size as f64 * 8.0 / 10e9 / (1436.0 / 1500.0);
        assert!(fct >= ideal, "fct {fct} < ideal {ideal}");
        assert!(fct < 2.0 * ideal, "fct {fct} too slow vs {ideal}");
    }

    #[test]
    fn sender_state_retired_after_completion() {
        let sim = run_two_host(100_000, QueueConfig::builder().build());
        assert_eq!(sim.world.logic.hosts[0].active_sends(), 0);
    }

    #[test]
    fn wire_size_math() {
        let p = NdpParams::paper_default();
        assert_eq!(p.payload_per_packet(), 1436);
        assert_eq!(p.packets_for(1436), 1);
        assert_eq!(p.packets_for(1437), 2);
        assert_eq!(p.packets_for(1), 1);
        assert_eq!(p.wire_size(1436, 0), 1500);
        assert_eq!(p.wire_size(1437, 1), HEADER_SIZE + 1);
        assert_eq!(p.packets_for(0), 1, "zero-size flows still send a runt");
    }

    #[test]
    fn incast_shares_receiver_line_rate() {
        // Three senders (NICs 2..=4) incast to one receiver (NIC 1)
        // through a 4-port hub switch (node 0). NDP's pull pacer must
        // share the receiver's line rate and trimming must bound queues.
        let mut fabric = Fabric::new();
        let cfg = QueueConfig::builder().build();
        let hub = fabric.add_node(4, cfg, LinkSpec::paper_default());
        let mut hosts = vec![NdpHost::new(hub, 0, NdpParams::paper_default())]; // placeholder for node 0
        for i in 0..4 {
            let h = fabric.add_node(1, cfg, LinkSpec::paper_default());
            fabric.connect(h, 0, hub, i);
            hosts.push(NdpHost::new(h, 0, NdpParams::paper_default()));
        }

        struct Incast {
            hosts: Vec<NdpHost>,
            tracker: FlowTracker,
            started: bool,
        }
        impl Incast {
            fn apply(
                &mut self,
                host: usize,
                actions: Actions,
                ctx: &mut EventContext<'_, NetEvent>,
            ) {
                for (at, which) in actions.timers {
                    ctx.schedule_at(
                        at,
                        NetEvent::Timer {
                            token: encode(host, which),
                        },
                    );
                }
            }
        }
        impl NetLogic for Incast {
            fn on_arrive(
                &mut self,
                fabric: &mut Fabric,
                ctx: &mut EventContext<'_, NetEvent>,
                node: usize,
                _port: usize,
                packet: Packet,
            ) {
                if node == 0 {
                    // Hub switch: forward toward dst NIC (NIC i on port i-1).
                    fabric.send(ctx, 0, packet.dst - 1, packet);
                    return;
                }
                let a = self.hosts[node].on_packet(fabric, ctx, &mut self.tracker, packet);
                self.apply(node, a, ctx);
            }
            fn on_timer(
                &mut self,
                fabric: &mut Fabric,
                ctx: &mut EventContext<'_, NetEvent>,
                token: u64,
            ) {
                if token == u64::MAX {
                    if !self.started {
                        self.started = true;
                        for s in 2..=4usize {
                            let id = self.tracker.register(
                                s,
                                1,
                                200_000,
                                netsim::FlowClass::LowLatency,
                                ctx.now(),
                            );
                            let a = self.hosts[s].start_flow(fabric, ctx, id, 1, 200_000);
                            self.apply(s, a, ctx);
                        }
                    }
                    return;
                }
                let (host, which) = decode(token);
                let a = self.hosts[host].on_timer(fabric, ctx, which);
                self.apply(host, a, ctx);
            }
        }
        let mut sim = Simulator::new(NetWorld::new(
            fabric,
            Incast {
                hosts,
                tracker: FlowTracker::new(),
                started: false,
            },
        ));
        sim.schedule_at(SimTime::ZERO, NetEvent::Timer { token: u64::MAX });
        sim.run_until(SimTime::from_ms(50));
        let t = &sim.world.logic.tracker;
        assert!(t.all_done(), "incast flows incomplete");
        // Aggregate 600 KB into one 10G NIC: ideal ≈ 0.5 ms; allow pacing
        // and retransmission overhead.
        for f in t.flows() {
            let fct = f.fct().unwrap().as_secs_f64();
            assert!(fct < 2e-3, "incast fct {fct}");
        }
    }
}
